//! Integration tests for the block-Philox bid kernel (bid-stream layout
//! v2): chi-square exactness on the paper's fitness vectors, thread-count
//! invariance of the rayon path, the pinned layout contract, and
//! draw-for-draw agreement between the selector's one-shot and buffer
//! entry points.

mod support;

use lrb_core::batch::batch_select_counts;
use lrb_core::parallel::bid_kernel::{reference_bid, STREAM_LAYOUT_VERSION};
use lrb_core::parallel::{ParallelLogBiddingSelector, PerIndexLogBiddingSelector};
use lrb_core::{Fitness, Selector};
use lrb_rng::{MersenneTwister64, Philox4x32, RandomSource, SeedableSource};
use rayon::ThreadPoolBuilder;
use support::assert_exact;

/// Tabulate `trials` one-shot selections driven by one sequential caller
/// generator (the non-batched path, exercising `select`).
fn tabulate(selector: &dyn Selector, fitness: &Fitness, trials: usize, seed: u64) -> Vec<u64> {
    let mut rng = MersenneTwister64::seed_from_u64(seed);
    let mut counts = vec![0u64; fitness.len()];
    for _ in 0..trials {
        counts[selector.select(fitness, &mut rng).unwrap()] += 1;
    }
    counts
}

#[test]
fn block_kernel_is_exact_on_table1() {
    let fitness = Fitness::table1();
    let counts = tabulate(
        &ParallelLogBiddingSelector::default(),
        &fitness,
        120_000,
        11,
    );
    assert_eq!(counts[0], 0, "zero-fitness index must never be selected");
    assert_exact("block kernel on Table I", &counts, fitness.values());
}

#[test]
fn block_kernel_is_exact_on_table2() {
    // Table II's point: the smallest probability (~0.005) must still be
    // served at its exact rate.
    let fitness = Fitness::table2();
    let counts = tabulate(
        &ParallelLogBiddingSelector::default(),
        &fitness,
        120_000,
        13,
    );
    assert!(counts[0] > 0, "the rare index must appear");
    assert_exact("block kernel on Table II", &counts, fitness.values());
}

#[test]
fn block_kernel_is_exact_through_the_batch_driver() {
    // The batched path (select_into under BatchDriver substreams) must be
    // just as exact as the select loop.
    let fitness = Fitness::table1();
    let batch = batch_select_counts(
        &ParallelLogBiddingSelector::default(),
        &fitness,
        120_000,
        17,
    )
    .unwrap();
    assert_exact(
        "block kernel batched on Table I",
        batch.counts(),
        fitness.values(),
    );
}

#[test]
fn block_and_per_index_paths_draw_the_same_distribution() {
    // Layouts v1 and v2 consume different uniforms but must induce the
    // identical exact distribution.
    let fitness = Fitness::new((1..=50).map(|i| ((i * 3) % 7 + 1) as f64).collect()).unwrap();
    let block = tabulate(&ParallelLogBiddingSelector::default(), &fitness, 80_000, 19);
    let per_index = tabulate(&PerIndexLogBiddingSelector::default(), &fitness, 80_000, 23);
    assert_exact("block kernel", &block, fitness.values());
    assert_exact("per-index reference", &per_index, fitness.values());
}

#[test]
fn selection_is_invariant_across_thread_counts() {
    // The rayon path's chunking is fixed, so the selected sequence is a
    // pure function of the caller stream — at any thread budget.
    let fitness = Fitness::new((0..20_000).map(|i| ((i % 29) + 1) as f64).collect()).unwrap();
    let selector = ParallelLogBiddingSelector {
        sequential_cutoff: 0,
    };
    let run = |threads: usize| -> Vec<usize> {
        let pool = ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| {
            let mut rng = MersenneTwister64::seed_from_u64(404);
            (0..50)
                .map(|_| selector.select(&fitness, &mut rng).unwrap())
                .collect()
        })
    };
    let reference = run(1);
    for threads in [2, 3, 8] {
        assert_eq!(run(threads), reference, "{threads} threads diverged");
    }
}

#[test]
fn select_into_agrees_with_a_select_loop_draw_for_draw() {
    // The consumption contract: one master next_u64 per selection, so the
    // buffer fill and the one-at-a-time loop agree on equal seeds.
    let fitness = Fitness::new((0..300).map(|i| ((i * 5) % 11) as f64).collect()).unwrap();
    let selector = ParallelLogBiddingSelector::default();
    for seed in 0..20 {
        let mut rng_loop = Philox4x32::for_substream(99, seed);
        let mut rng_fill = Philox4x32::for_substream(99, seed);
        let mut filled = vec![0usize; 64];
        selector
            .select_into(&fitness, &mut rng_fill, &mut filled)
            .unwrap();
        for (t, &got) in filled.iter().enumerate() {
            assert_eq!(
                got,
                selector.select(&fitness, &mut rng_loop).unwrap(),
                "seed {seed} diverged at draw {t}"
            );
        }
    }
}

#[test]
fn stream_layout_v2_is_pinned_to_the_sequential_philox_stream() {
    // The layout contract, asserted against raw Philox words: index j's
    // uniform is the j-th next_u64 of Philox4x32::with_key(master). A
    // change to the kernel's internal chunking must not move these bids.
    assert_eq!(STREAM_LAYOUT_VERSION, 2);
    let master = 0xC0FFEE;
    let mut stream = Philox4x32::with_key(master);
    for index in 0..64usize {
        let word = stream.next_u64();
        let expected = lrb_rng::uniform::f64_open_open(word).ln() / 2.5;
        assert_eq!(reference_bid(master, index, 2.5), expected, "index {index}");
    }
}

#[test]
fn kernel_winner_matches_the_reference_bids() {
    // End to end: the selector's winner must be the argmax of the oracle
    // bids for the master its caller stream produced.
    let fitness = Fitness::new((0..2_000).map(|i| ((i % 17) + 1) as f64).collect()).unwrap();
    let selector = ParallelLogBiddingSelector {
        sequential_cutoff: 0,
    };
    for seed in 0..10u64 {
        // The selector consumes exactly one u64 as master.
        let mut caller = MersenneTwister64::seed_from_u64(seed);
        let master = {
            let mut probe = MersenneTwister64::seed_from_u64(seed);
            probe.next_u64()
        };
        let chosen = selector.select(&fitness, &mut caller).unwrap();
        let mut best = (f64::NEG_INFINITY, usize::MAX);
        for (j, &f) in fitness.values().iter().enumerate() {
            let bid = reference_bid(master, j, f);
            if bid > best.0 || (bid == best.0 && j > best.1) {
                best = (bid, j);
            }
        }
        assert_eq!(chosen, best.1, "seed {seed}");
    }
}

// ---------------------------------------------------------------------------
// The fused multi-draw path (select_into: eight bid streams per pass).
// ---------------------------------------------------------------------------

mod fused {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The fused contract, fuzzed: a buffer fill of any length —
        /// including lengths that do not divide the fused width of 8 —
        /// agrees draw for draw with a `select` loop on an equally seeded
        /// caller generator, over arbitrary weight vectors with zeros.
        #[test]
        fn prop_fused_fill_equals_a_select_loop(
            weights in proptest::collection::vec(0.0f64..50.0, 2..600),
            batch in 1usize..40,
            seed: u64,
        ) {
            prop_assume!(weights.iter().any(|&w| w > 0.0));
            let fitness = Fitness::new(weights).unwrap();
            let selector = ParallelLogBiddingSelector::default();
            let mut rng_fill = Philox4x32::for_substream(seed, 1);
            let mut rng_loop = Philox4x32::for_substream(seed, 1);
            let mut filled = vec![0usize; batch];
            selector.select_into(&fitness, &mut rng_fill, &mut filled).unwrap();
            for (t, &got) in filled.iter().enumerate() {
                let expect = selector.select(&fitness, &mut rng_loop).unwrap();
                prop_assert_eq!(got, expect, "diverged at draw {} of {}", t, batch);
            }
            // Both paths consumed the same caller randomness.
            prop_assert_eq!(rng_fill.next_u64(), rng_loop.next_u64());
        }
    }

    #[test]
    fn fused_fill_is_exact_on_table1() {
        // Chi-square conformance of the fused path itself: tabulate one
        // large buffer fill.
        let fitness = Fitness::table1();
        let selector = ParallelLogBiddingSelector::default();
        let mut rng = MersenneTwister64::seed_from_u64(4242);
        let mut out = vec![0usize; 60_000];
        selector.select_into(&fitness, &mut rng, &mut out).unwrap();
        let mut counts = vec![0u64; fitness.len()];
        for &i in &out {
            counts[i] += 1;
        }
        assert_eq!(counts[0], 0, "zero-fitness index selected");
        assert_exact("fused select_into on Table I", &counts, fitness.values());
    }

    #[test]
    fn fused_fill_is_exact_through_the_batch_driver() {
        // The BatchDriver feeds select_into per chunk, so its batches run
        // the fused kernel end to end.
        let fitness = Fitness::new(vec![5.0, 1.0, 3.0, 1.0, 0.0, 2.0]).unwrap();
        let selector = ParallelLogBiddingSelector::default();
        let batch = batch_select_counts(&selector, &fitness, 80_000, 31).unwrap();
        assert_exact(
            "fused path through the batch driver",
            batch.counts(),
            fitness.values(),
        );
    }

    #[test]
    fn fused_fill_is_invariant_across_thread_counts() {
        let fitness = Fitness::new((0..20_000).map(|i| ((i % 29) + 1) as f64).collect()).unwrap();
        let selector = ParallelLogBiddingSelector {
            sequential_cutoff: 0,
        };
        let run = |threads: usize| -> Vec<usize> {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| {
                let mut rng = MersenneTwister64::seed_from_u64(808);
                let mut out = vec![0usize; 41]; // not a multiple of 8
                selector.select_into(&fitness, &mut rng, &mut out).unwrap();
                out
            })
        };
        let reference = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), reference, "{threads} threads diverged");
        }
    }

    #[test]
    fn fused_rayon_and_sequential_cutoff_paths_agree() {
        // Forcing the parallel path and the sequential path must fill the
        // same buffer: chunk boundaries are scheduling, not layout.
        let fitness = Fitness::new((0..9_000).map(|i| ((i * 3) % 23) as f64).collect()).unwrap();
        let par = ParallelLogBiddingSelector {
            sequential_cutoff: 0,
        };
        let seq = ParallelLogBiddingSelector {
            sequential_cutoff: usize::MAX,
        };
        for seed in 0..8 {
            let mut rng_a = Philox4x32::for_substream(7, seed);
            let mut rng_b = Philox4x32::for_substream(7, seed);
            let mut a = vec![0usize; 27];
            let mut b = vec![0usize; 27];
            par.select_into(&fitness, &mut rng_a, &mut a).unwrap();
            seq.select_into(&fitness, &mut rng_b, &mut b).unwrap();
            assert_eq!(a, b, "seed {seed}");
        }
    }
}
