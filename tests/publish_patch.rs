//! Integration tests for incremental snapshot publishes: patched snapshots
//! must be **weight-for-weight identical** to full rebuilds after arbitrary
//! override/evaporation bursts, and engines forced onto the patch path must
//! keep serving the exact distribution on every backend.

mod support;

use lrb_core::{DynamicSampler, SelectionError};
use lrb_dynamic::{FenwickSampler, StochasticAcceptanceSampler};
use lrb_engine::{BackendChoice, BackendRegistry, EngineConfig, PatchPolicy, SelectionEngine};
use lrb_rng::SeedableSource;
use proptest::prelude::*;
use support::assert_exact;

/// One coalesced publish batch, as the engine would drain it: a folded
/// scale, then distinct sorted overrides.
fn fold(weights: &[f64], overrides: &[(usize, f64)], scale: f64) -> Vec<f64> {
    let mut folded = weights.to_vec();
    for w in folded.iter_mut() {
        *w *= scale;
    }
    for &(index, weight) in overrides {
        folded[index] = weight;
    }
    folded
}

/// Deterministic pseudo-random batch for burst `round`: a scale in
/// `{1.0} ∪ (0, 1.1)` plus `count` distinct overrides.
fn burst(n: usize, round: u64, count: usize) -> (Vec<(usize, f64)>, f64) {
    let mut state = round.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut step = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    let scale = match round % 3 {
        0 => 1.0,
        1 => (step() % 1000) as f64 / 999.0, // evaporation, can hit 0
        _ => 1.0 + (step() % 100) as f64 / 1000.0,
    };
    let mut overrides = Vec::new();
    let mut used = vec![false; n];
    for _ in 0..count {
        let index = step() as usize % n;
        if !used[index] {
            used[index] = true;
            overrides.push((index, (step() % 1000) as f64 / 50.0));
        }
    }
    overrides.sort_unstable_by_key(|&(index, _)| index);
    (overrides, scale)
}

proptest! {
    /// Fenwick: patched state equals a from-scratch build over the folded
    /// weights — bit-equal weights, aggregate-consistent tree — after any
    /// burst sequence.
    #[test]
    fn prop_fenwick_patch_equals_rebuild(
        initial in proptest::collection::vec(0.0f64..20.0, 2..200),
        rounds in 1usize..6,
        seed: u64,
    ) {
        let mut current = FenwickSampler::from_weights(initial.clone())
            .expect("initial weights are valid");
        let mut shadow = initial;
        for round in 0..rounds {
            let (overrides, scale) = burst(shadow.len(), seed.wrapping_add(round as u64), 8);
            current = FenwickSampler::patched_from(&current, &overrides, scale)
                .expect("finite batch");
            shadow = fold(&shadow, &overrides, scale);
            let rebuilt = FenwickSampler::from_weights(shadow.clone()).unwrap();
            prop_assert_eq!(current.weights().len(), rebuilt.weights().len());
            for (i, (a, b)) in current.weights().iter().zip(rebuilt.weights()).enumerate() {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "weight {} diverged", i);
            }
            prop_assert_eq!(current.non_zero_count(), rebuilt.non_zero_count());
            // The tree stays aggregate-consistent (scaled sums can differ
            // from sums of scaled terms only by rounding).
            let total: f64 = shadow.iter().sum();
            prop_assert!((current.total_weight() - total).abs() <= 1e-9 * total.max(1.0));
            let mid = shadow.len() / 2;
            let prefix: f64 = shadow[..mid].iter().sum();
            prop_assert!((current.prefix_sum(mid) - prefix).abs() <= 1e-9 * total.max(1.0));
        }
    }

    /// Stochastic acceptance: patched weights and aggregates equal a
    /// rebuild's after any burst sequence.
    #[test]
    fn prop_stochastic_acceptance_patch_equals_rebuild(
        initial in proptest::collection::vec(0.0f64..20.0, 2..200),
        rounds in 1usize..6,
        seed: u64,
    ) {
        let mut current = StochasticAcceptanceSampler::from_weights(initial.clone())
            .expect("initial weights are valid");
        let mut shadow = initial;
        for round in 0..rounds {
            let (overrides, scale) = burst(shadow.len(), seed.wrapping_add(round as u64), 8);
            current = StochasticAcceptanceSampler::patched_from(&current, &overrides, scale)
                .expect("finite batch");
            shadow = fold(&shadow, &overrides, scale);
            let rebuilt = StochasticAcceptanceSampler::from_weights(shadow.clone()).unwrap();
            for (i, (a, b)) in current.weights().iter().zip(rebuilt.weights()).enumerate() {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "weight {} diverged", i);
            }
            prop_assert_eq!(current.non_zero_count(), rebuilt.non_zero_count());
            let total: f64 = shadow.iter().sum();
            prop_assert!((current.total_weight() - total).abs() <= 1e-9 * total.max(1.0));
            // The acceptance denominator must track the true maximum, or
            // draws stop being exact.
            let max = shadow.iter().cloned().fold(0.0, f64::max);
            if total > 0.0 {
                let expected = shadow.len() as f64 * max / total;
                prop_assert!((current.expected_rounds() - expected).abs() <= 1e-9 * expected.max(1.0));
            }
        }
    }

    /// Engine level: a patch-forced engine and a rebuild-forced engine end
    /// bit-identical after the same burst sequence, on every backend.
    #[test]
    fn prop_engine_patch_policies_converge(
        rounds in 1usize..5,
        seed: u64,
    ) {
        let n = 96usize;
        let initial: Vec<f64> = (0..n).map(|i| ((i % 13) + 1) as f64).collect();
        for name in BackendRegistry::standard().names() {
            let run = |policy: PatchPolicy| {
                let engine = SelectionEngine::new(
                    initial.clone(),
                    EngineConfig {
                        backend: BackendChoice::Fixed(name),
                        patch: policy,
                        ..EngineConfig::default()
                    },
                )
                .expect("initial weights are valid");
                for round in 0..rounds {
                    let (overrides, scale) = burst(n, seed.wrapping_add(round as u64), 12);
                    engine.scale_all(scale).expect("valid factor");
                    engine.enqueue_many(&overrides).expect("valid overrides");
                    engine.publish().expect("valid publish");
                }
                (engine.snapshot().weights().to_vec(), engine.stats().patched)
            };
            let (patched_weights, patched) = run(PatchPolicy::Always);
            let (rebuilt_weights, never_patched) = run(PatchPolicy::Never);
            prop_assert_eq!(never_patched, 0);
            if name != "alias" {
                prop_assert_eq!(patched as usize, rounds, "{} skipped a patch", name);
            }
            for (i, (a, b)) in patched_weights.iter().zip(&rebuilt_weights).enumerate() {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "{}: weight {} diverged", name, i);
            }
        }
    }
}

#[test]
fn patch_forced_engines_serve_the_exact_distribution_on_every_backend() {
    // The conformance run the satellite asks for: force the patch path on
    // every backend, push several coalesced batches through, then
    // chi-square the served draws against the folded weights.
    for name in BackendRegistry::standard().names() {
        let n = 64usize;
        let initial: Vec<f64> = (0..n).map(|i| ((i % 7) + 1) as f64).collect();
        let engine = SelectionEngine::new(
            initial,
            EngineConfig {
                backend: BackendChoice::Fixed(name),
                patch: PatchPolicy::Always,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        for round in 0..6u64 {
            let (overrides, scale) = burst(n, 1000 + round, 10);
            engine.scale_all(scale.max(0.05)).unwrap();
            engine.enqueue_many(&overrides).unwrap();
            engine.publish().unwrap();
        }
        if name != "alias" {
            assert!(
                engine.stats().patched >= 6,
                "{name}: patch path was not taken"
            );
        }
        let snapshot = engine.snapshot();
        if snapshot.total_weight() <= 0.0 {
            continue; // an all-evaporated state has nothing to serve
        }
        let counts = snapshot.batch_counts(120_000, 9).unwrap();
        assert_exact(
            &format!("patched {name} snapshot"),
            &counts,
            snapshot.weights(),
        );
    }
}

#[test]
fn patch_survives_support_collapse_and_revival() {
    // Evaporate everything to zero through the patch path, then revive.
    let engine = SelectionEngine::new(
        vec![1.0; 32],
        EngineConfig {
            backend: BackendChoice::Fixed("fenwick"),
            patch: PatchPolicy::Always,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    engine.scale_all(0.0).unwrap();
    engine.publish().unwrap();
    let mut rng = lrb_rng::MersenneTwister64::seed_from_u64(3);
    assert_eq!(
        engine.sample(&mut rng),
        Err(SelectionError::AllZeroFitness),
        "all-zero snapshot must refuse draws"
    );
    engine.enqueue(5, 2.0).unwrap();
    engine.publish().unwrap();
    assert_eq!(engine.stats().patched, 2);
    for _ in 0..50 {
        assert_eq!(engine.sample(&mut rng).unwrap(), 5);
    }
}

#[test]
fn dynamic_sampler_draws_stay_exact_after_a_patch() {
    // Draw-level conformance of a patched Fenwick sampler (not just its
    // weights): chi-square over 100k draws.
    let initial: Vec<f64> = (0..24).map(|i| ((i % 5) + 1) as f64).collect();
    let prev = FenwickSampler::from_weights(initial).unwrap();
    let (overrides, _) = burst(24, 77, 9);
    let patched = FenwickSampler::patched_from(&prev, &overrides, 0.8).unwrap();
    let mut rng = lrb_rng::MersenneTwister64::seed_from_u64(21);
    let mut counts = vec![0u64; patched.len()];
    for _ in 0..100_000 {
        counts[patched.sample(&mut rng).unwrap()] += 1;
    }
    assert_exact("patched fenwick draws", &counts, patched.weights());
}
