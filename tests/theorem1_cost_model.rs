//! Integration test for the paper's Theorem 1: on the simulated CRCW-PRAM the
//! logarithmic random bidding selects with the right probabilities in
//! expected O(log k) while-loop iterations and O(1) shared memory, while the
//! prefix-sum-based algorithm needs Θ(log n) steps and Θ(n) memory.

use lrb_bench::run_theorem1_experiment;
use lrb_core::parallel::CrcwLogBiddingSelector;
use lrb_core::{Fitness, Selector};
use lrb_pram::algorithms::{log_bidding_selection, prefix_sum_selection};
use lrb_rng::{MersenneTwister64, SeedableSource};

#[test]
fn iterations_grow_logarithmically_in_k_and_memory_stays_constant() {
    let report = run_theorem1_experiment(1024, 512, 20, 123);
    for row in &report.rows {
        assert_eq!(row.max_memory_cells, 2, "k = {}", row.k);
        assert!(
            row.max_iterations <= row.k as f64,
            "k = {}: {} iterations",
            row.k,
            row.max_iterations
        );
        if row.k >= 4 {
            assert!(
                row.mean_iterations <= row.reference_bound,
                "k = {}: mean {} exceeds 2*ceil(log2 k) = {}",
                row.k,
                row.mean_iterations,
                row.reference_bound
            );
        }
    }
    // Doubling k repeatedly should grow the mean by roughly a constant
    // (logarithmic growth), far slower than doubling.
    let first = &report.rows[1]; // k = 2
    let last = report.rows.last().unwrap(); // k = 512
    assert!(last.mean_iterations < first.mean_iterations + 12.0);
    assert!(last.mean_iterations > first.mean_iterations);
}

#[test]
fn crcw_log_bidding_is_exact_even_with_heavily_skewed_weights() {
    // Mix a tiny weight with large ones; the selection frequencies must still
    // follow F_i (this is the "precise probabilities" half of Theorem 1).
    let fitness = Fitness::new(vec![0.05, 1.0, 2.0, 5.0]).unwrap();
    let probs = fitness.probabilities();
    let selector = CrcwLogBiddingSelector;
    let mut rng = MersenneTwister64::seed_from_u64(9);
    let trials = 20_000;
    let mut counts = vec![0usize; fitness.len()];
    for _ in 0..trials {
        counts[selector.select(&fitness, &mut rng).unwrap()] += 1;
    }
    for (i, &c) in counts.iter().enumerate() {
        let freq = c as f64 / trials as f64;
        assert!(
            (freq - probs[i]).abs() < 0.01,
            "index {i}: frequency {freq}, exact {}",
            probs[i]
        );
    }
}

#[test]
fn prefix_sum_and_log_bidding_pram_costs_have_the_papers_shape() {
    let n = 256usize;
    let k = 4usize;
    let fitness = Fitness::sparse(n, k, 1.0).unwrap();
    let mut rng = MersenneTwister64::seed_from_u64(5);

    let ps = prefix_sum_selection(fitness.values(), &mut rng).unwrap();
    let lb = log_bidding_selection(fitness.values(), 77).unwrap();

    // Prefix-sum: Θ(log n) steps (Blelloch scan + broadcast), Θ(n) memory.
    assert!(ps.cost.steps >= 2 * 8, "prefix-sum steps {}", ps.cost.steps);
    assert!(ps.cost.memory_footprint >= n);
    // Log bidding: steps track k (here ≤ k + 2), memory exactly 2 cells.
    assert!(
        lb.cost.steps <= k + 2,
        "log-bidding steps {}",
        lb.cost.steps
    );
    assert_eq!(lb.cost.memory_footprint, 2);
    // Both selected something in the support.
    assert!(fitness.values()[ps.selected.unwrap()] > 0.0);
    assert!(fitness.values()[lb.selected.unwrap()] > 0.0);
}

#[test]
fn zero_fitness_processors_never_activate_the_while_loop() {
    // k = 1: exactly one processor is active, so the loop always takes one
    // iteration no matter how large n is — the strongest form of "runtime
    // depends on k, not n".
    for n in [16usize, 256, 2048] {
        let fitness = Fitness::sparse(n, 1, 3.0).unwrap();
        let selector = CrcwLogBiddingSelector;
        let mut rng = MersenneTwister64::seed_from_u64(n as u64);
        for _ in 0..10 {
            let stats = selector.select_with_stats(&fitness, &mut rng).unwrap();
            assert_eq!(stats.while_iterations, 1, "n = {n}");
            assert_eq!(stats.cost.memory_footprint, 2);
        }
    }
}
