//! Allocation accounting for the service's batch hot path.
//!
//! The point of the pooled [`DrawPlan`] is that a steady-state batch —
//! plan buffers warm, fan-out pool long-lived, level-one cut refilled in
//! place — touches no allocator at all on the submitting thread:
//! assignment, per-shard fused fills and the cursor scatter all run in
//! reused storage. This test installs a counting global allocator (this
//! test binary only; each integration-test target is its own process) and
//! asserts **zero** submitter-side allocator events across thousands of
//! warm batches, for the inline v2 path, the pooled v2 path and the v1
//! sequential oracle.
//!
//! Counting is **per thread** (a `const`-initialised `thread_local`, so
//! the counter itself never allocates): fan-out helper threads own their
//! events, and the contract under test is the caller-visible steady
//! state.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// `System`, with every allocator entry counted on the calling thread.
struct CountingAllocator;

thread_local! {
    static EVENTS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY (of the impl, not `unsafe` blocks): pure delegation to `System`
// plus a thread-local counter bump — no allocator state of our own, and a
// const-initialised TLS cell cannot recurse into the allocator.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        EVENTS.with(|events| events.set(events.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        EVENTS.with(|events| events.set(events.get() + 1));
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        EVENTS.with(|events| events.set(events.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAllocator = CountingAllocator;

/// Allocator events (allocs + deallocs + reallocs) performed by **this
/// thread** while running `f`.
fn allocator_events<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = EVENTS.with(Cell::get);
    let result = f();
    let after = EVENTS.with(Cell::get);
    (after - before, result)
}

use lrb_rng::{Philox4x32, RandomSource, SeedableSource};
use lrb_service::{DrawPlan, RouteLayout, ServiceConfig, ShardedService};

fn build(layout: RouteLayout, fanout_workers: usize) -> ShardedService {
    ShardedService::new(
        (0..1_024).map(|i| ((i % 13) + 1) as f64).collect(),
        ServiceConfig {
            shards: 4,
            route_layout: layout,
            fanout_workers,
            ..ServiceConfig::default()
        },
    )
    .expect("alloc test service construction cannot fail")
}

/// Warm the plan, then assert zero submitter-side allocator events over
/// `rounds` batches of `batch` draws.
fn assert_zero_alloc_steady_state(
    service: &ShardedService,
    batch: usize,
    rounds: usize,
    label: &str,
) {
    let mut plan = DrawPlan::new();
    let mut rng = Philox4x32::seed_from_u64(0xA110C);
    let mut out = vec![0usize; batch];
    // Warm-up: grow the plan's buffers to the batch shape, fault in each
    // shard's snapshot cache (on helpers too, for the pooled path) and
    // any lazy TLS the first acquisitions perform.
    for _ in 0..4 {
        service
            .draw_into_with_plan(&mut rng as &mut dyn RandomSource, &mut out, &mut plan)
            .expect("warm-up batch failed");
    }
    let (events, drawn) = allocator_events(|| {
        let mut drawn = 0usize;
        for _ in 0..rounds {
            service
                .draw_into_with_plan(&mut rng as &mut dyn RandomSource, &mut out, &mut plan)
                .expect("steady-state batch failed");
            drawn += out.len();
        }
        drawn
    });
    assert_eq!(drawn, rounds * batch);
    assert_eq!(
        events, 0,
        "{label}: steady-state batch path touched the allocator"
    );
    // The draws are real: every index is in range.
    assert!(out.iter().all(|&index| index < service.len()));
}

#[test]
fn inline_v2_batches_allocate_nothing_once_warm() {
    // One lane = the planner runs entirely inline on the calling thread,
    // so this covers the whole v2 path: assignment, substream fills,
    // scatter.
    let service = build(RouteLayout::V2Parallel, 1);
    assert_zero_alloc_steady_state(&service, 512, 2_000, "inline v2");
}

#[test]
fn pooled_v2_batches_allocate_nothing_on_the_submitter() {
    // Batches above the inline threshold hand fills to the persistent
    // pool; the submission, wait and scatter must stay silent on the
    // calling thread (helpers own their warm-up, counted on their own
    // thread-local counters).
    let service = build(RouteLayout::V2Parallel, 4);
    assert_zero_alloc_steady_state(&service, 4_096, 500, "pooled v2");
}

#[test]
fn sequential_v1_batches_allocate_nothing_once_warm() {
    // The oracle path shares the plan scratch and the cursor scatter, so
    // it inherits the zero-allocation property too.
    let service = build(RouteLayout::V1Sequential, 1);
    assert_zero_alloc_steady_state(&service, 512, 2_000, "sequential v1");
}

#[test]
fn thread_local_plan_path_is_quiet_after_first_use() {
    // The public `draw_into` borrows a per-thread plan; after the first
    // call warms it, the convenience path is as silent as the explicit
    // one.
    let service = build(RouteLayout::V2Parallel, 1);
    let mut rng = Philox4x32::seed_from_u64(0x71A);
    let mut out = vec![0usize; 256];
    for _ in 0..4 {
        service
            .draw_into(&mut rng as &mut dyn RandomSource, &mut out)
            .expect("warm-up batch failed");
    }
    let (events, _) = allocator_events(|| {
        for _ in 0..2_000 {
            service
                .draw_into(&mut rng as &mut dyn RandomSource, &mut out)
                .expect("steady-state batch failed");
        }
    });
    assert_eq!(events, 0, "thread-local plan path touched the allocator");
}
