//! Shared scaffolding for the statistical integration tests: turn counts
//! plus a weight vector into a chi-square verdict, one way, everywhere.
//!
//! Each integration-test target compiles this module privately (via
//! `mod support;`), so helpers unused by a particular target are expected —
//! hence the `dead_code` allowances.

use lrb_stats::chi_square_gof;

/// Exact selection probabilities `F_i = w_i / Σ w_j` of a weight vector.
#[allow(dead_code)]
pub fn probabilities(weights: &[f64]) -> Vec<f64> {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "probabilities need positive total mass");
    weights.iter().map(|w| w / total).collect()
}

/// Assert that `counts` are chi-square-consistent with the exact
/// probabilities of `weights` at significance `threshold`
/// (i.e. p > threshold), with `context` naming the failing configuration.
#[allow(dead_code)]
pub fn assert_conformance(context: &str, counts: &[u64], weights: &[f64], threshold: f64) {
    let probs = probabilities(weights);
    let gof = chi_square_gof(counts, &probs);
    assert!(
        gof.is_consistent(threshold),
        "{context}: p = {:.3e} <= {threshold} (statistic = {:.3}, dof = {})",
        gof.p_value,
        gof.statistic,
        gof.degrees_of_freedom
    );
}

/// [`assert_conformance`] at the suite's standard p > 0.01 bar.
#[allow(dead_code)]
pub fn assert_exact(context: &str, counts: &[u64], weights: &[f64]) {
    assert_conformance(context, counts, weights, 0.01);
}
