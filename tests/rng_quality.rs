//! Integration test: the random substrate actually produces the
//! distributions the selection algorithms rely on — uniforms are uniform,
//! exponential samplers are exponential, and the logarithmic bids have the
//! exponential-race distribution the paper's proof assumes.

use lrb_rng::exponential::{log_bid, standard_exponential, standard_exponential_ziggurat};
use lrb_rng::{
    MersenneTwister, MersenneTwister64, Pcg64, Philox4x32, RandomSource, SeedableSource,
    Xoshiro256PlusPlus,
};
use lrb_stats::ks_test;

fn uniform_cdf(x: f64) -> f64 {
    x.clamp(0.0, 1.0)
}

#[test]
fn every_generator_passes_a_ks_test_for_uniformity() {
    let n = 20_000;
    let cases: Vec<(&str, Vec<f64>)> = vec![
        ("mt19937", {
            let mut g = MersenneTwister::seed_from_u64(1);
            (0..n).map(|_| g.next_f64()).collect()
        }),
        ("mt19937-64", {
            let mut g = MersenneTwister64::seed_from_u64(2);
            (0..n).map(|_| g.next_f64()).collect()
        }),
        ("xoshiro256++", {
            let mut g = Xoshiro256PlusPlus::seed_from_u64(3);
            (0..n).map(|_| g.next_f64()).collect()
        }),
        ("pcg64", {
            let mut g = Pcg64::seed_from_u64(4);
            (0..n).map(|_| g.next_f64()).collect()
        }),
        ("philox4x32", {
            let mut g = Philox4x32::seed_from_u64(5);
            (0..n).map(|_| g.next_f64()).collect()
        }),
    ];
    for (name, samples) in cases {
        let result = ks_test(&samples, uniform_cdf);
        assert!(
            result.is_consistent(0.001),
            "{name}: D = {}, p = {}",
            result.statistic,
            result.p_value
        );
    }
}

#[test]
fn exponential_samplers_pass_a_ks_test() {
    let n = 30_000;
    let exponential_cdf = |x: f64| if x <= 0.0 { 0.0 } else { 1.0 - (-x).exp() };

    let mut rng = MersenneTwister64::seed_from_u64(6);
    let inverse: Vec<f64> = (0..n).map(|_| standard_exponential(&mut rng)).collect();
    let result = ks_test(&inverse, exponential_cdf);
    assert!(
        result.is_consistent(0.001),
        "inverse CDF sampler: p = {}",
        result.p_value
    );

    let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
    let ziggurat: Vec<f64> = (0..n)
        .map(|_| standard_exponential_ziggurat(&mut rng))
        .collect();
    let result = ks_test(&ziggurat, exponential_cdf);
    assert!(
        result.is_consistent(0.001),
        "ziggurat sampler: p = {}",
        result.p_value
    );
}

#[test]
fn logarithmic_bids_follow_the_negated_exponential_distribution() {
    // The paper's Section II derives Pr(r_i ≤ x) = exp(x·f_i) for x < 0;
    // equivalently −r_i ~ Exp(f_i). Check it for a couple of rates.
    let n = 30_000;
    for fitness in [0.5f64, 1.0, 4.0] {
        let mut rng = MersenneTwister64::seed_from_u64(fitness.to_bits());
        let negated: Vec<f64> = (0..n).map(|_| -log_bid(&mut rng, fitness)).collect();
        let cdf = |x: f64| {
            if x <= 0.0 {
                0.0
            } else {
                1.0 - (-fitness * x).exp()
            }
        };
        let result = ks_test(&negated, cdf);
        assert!(
            result.is_consistent(0.001),
            "fitness {fitness}: D = {}, p = {}",
            result.statistic,
            result.p_value
        );
    }
}

#[test]
fn bids_of_different_processors_are_independent_enough_to_race_fairly() {
    // Two processors with equal fitness must each win the race about half the
    // time when their bids come from distinct streams of one family.
    let trials = 40_000;
    let mut wins_first = 0usize;
    for t in 0..trials {
        let mut a = Philox4x32::for_substream(99, 2 * t as u64);
        let mut b = Philox4x32::for_substream(99, 2 * t as u64 + 1);
        if log_bid(&mut a, 2.0) > log_bid(&mut b, 2.0) {
            wins_first += 1;
        }
    }
    let frac = wins_first as f64 / trials as f64;
    assert!((frac - 0.5).abs() < 0.01, "first processor wins {frac}");
}
