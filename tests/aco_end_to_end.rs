//! Integration test: the ACO application built on the selection library
//! works end to end, and the choice of selection strategy has the effect the
//! paper predicts — exact selection explores according to the intended
//! probabilities, while the independent roulette's bias towards large fitness
//! values makes its construction greedier.

use lrb_aco::coloring::{greedy_coloring, ColoringColony, ColoringParams};
use lrb_aco::{
    construct_tour, AntParams, Colony, ColonyParams, Graph, PheromoneMatrix, TspInstance,
};
use lrb_core::parallel::{IndependentRouletteSelector, LogBiddingSelector};
use lrb_core::sequential::LinearScanSelector;
use lrb_core::Selector;
use lrb_rng::{MersenneTwister64, SeedableSource};

#[test]
fn colony_with_exact_selection_solves_a_circle_instance_well() {
    let n = 24;
    let instance = TspInstance::circle(n, 1.0);
    let optimum = TspInstance::circle_optimum(n, 1.0);
    let selector = LogBiddingSelector::default();
    let params = ColonyParams {
        ants: 12,
        local_search: true,
        ..ColonyParams::default()
    };
    let mut colony = Colony::new(&instance, &selector, params, 3);
    colony.run(25).unwrap();
    let best = colony.best_tour().unwrap();
    assert!(best.is_valid(n));
    assert!(
        best.length < optimum * 1.05,
        "best {} vs optimum {optimum}",
        best.length
    );
}

#[test]
fn exact_strategies_produce_statistically_identical_first_steps() {
    // For a fixed pheromone state, the first construction step is a pure
    // roulette selection; the two exact selectors must agree in distribution
    // (this ties the ACO layer back to the probability guarantees).
    let instance = TspInstance::random_euclidean(12, 5);
    let pheromone = PheromoneMatrix::new(12, 1.0);
    let params = AntParams::default();
    let trials = 20_000;

    let first_step_distribution = |selector: &dyn Selector, seed: u64| -> Vec<f64> {
        let mut rng = MersenneTwister64::seed_from_u64(seed);
        let mut counts = [0usize; 12];
        for _ in 0..trials {
            let tour =
                construct_tour(&instance, &pheromone, &params, selector, 0, &mut rng).unwrap();
            counts[tour.order[1]] += 1;
        }
        counts.iter().map(|&c| c as f64 / trials as f64).collect()
    };

    let linear = first_step_distribution(&LinearScanSelector, 1);
    let log_bid = first_step_distribution(&LogBiddingSelector::default(), 2);
    let independent = first_step_distribution(&IndependentRouletteSelector, 3);

    let max_gap_exact: f64 = linear
        .iter()
        .zip(&log_bid)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    assert!(
        max_gap_exact < 0.015,
        "exact strategies disagree by {max_gap_exact}"
    );

    // The independent roulette concentrates on the most desirable city; its
    // largest single-city probability should exceed the exact strategy's.
    let max_linear = linear.iter().cloned().fold(0.0, f64::max);
    let max_independent = independent.iter().cloned().fold(0.0, f64::max);
    assert!(
        max_independent > max_linear,
        "independent roulette should over-concentrate (linear {max_linear}, independent {max_independent})"
    );
}

#[test]
fn ant_system_and_mmas_both_improve_over_their_first_iteration() {
    let instance = TspInstance::random_euclidean(40, 9);
    let selector = LogBiddingSelector::default();
    for variant in [
        lrb_aco::ColonyVariant::AntSystem,
        lrb_aco::ColonyVariant::MaxMin,
    ] {
        let params = ColonyParams {
            ants: 10,
            variant,
            ..ColonyParams::default()
        };
        let mut colony = Colony::new(&instance, &selector, params, 13);
        let stats = colony.run(20).unwrap();
        let first = stats.first().unwrap().global_best;
        let last = stats.last().unwrap().global_best;
        assert!(
            last <= first,
            "{variant:?}: best went from {first} to {last}"
        );
        assert!(colony.best_tour().unwrap().is_valid(40));
    }
}

#[test]
fn coloring_colony_beats_or_matches_greedy_and_stays_proper() {
    let graph = Graph::random(45, 0.25, 21);
    let greedy = greedy_coloring(&graph);
    assert!(graph.is_proper_coloring(&greedy.colors));

    let selector = LogBiddingSelector::default();
    let mut colony = ColoringColony::new(&graph, &selector, ColoringParams::default(), 2);
    let aco = colony.run(15).unwrap();
    assert!(graph.is_proper_coloring(&aco.colors));
    assert!(aco.colors_used <= greedy.colors_used);
    assert!(aco.colors_used <= graph.max_degree() + 1);
}

#[test]
fn sparse_fitness_vectors_shrink_as_the_tour_grows() {
    // The motivation for O(log k): at step t of the construction, exactly
    // n − t fitness values are non-zero. Verify by instrumenting one tour.
    let n = 30;
    let instance = TspInstance::random_euclidean(n, 11);
    let pheromone = PheromoneMatrix::new(n, 1.0);
    let params = AntParams::default();
    let mut rng = MersenneTwister64::seed_from_u64(1);
    let tour = construct_tour(
        &instance,
        &pheromone,
        &params,
        &LogBiddingSelector::default(),
        0,
        &mut rng,
    )
    .unwrap();
    assert!(tour.is_valid(n));
    // The tour visits every city exactly once, so the k values run n-1 … 1.
    // (construct_tour already asserts the selector never picks a visited
    // city; this test documents the shrinking-k structure.)
    assert_eq!(tour.order.len(), n);
}
