//! Distributional equivalence of the two without-replacement executions.
//!
//! `sample_without_replacement` (sequential heap, n `log_bid` draws) and
//! `par_sample_without_replacement` (one master draw, per-index Philox
//! substreams, top-`m` merge) consume randomness differently **by design**,
//! so they can never agree draw-for-draw. What must hold — and what the
//! service's future `select_distinct_k` endpoint will rely on — is that
//! both produce the same Efraimidis–Spirakis distribution: the full chi-
//! square tests below compare each path's *ordered outcome* against the
//! exact closed form `P(i then j) = F_i · w_j / (T − w_i)`, not just the
//! first draw. Edge behaviour (`count == 0`, `count == support`,
//! `NotEnoughCandidates`, all-zero fitness) must also be error-for-error
//! identical between the two paths.

use lrb_core::error::SelectionError;
use lrb_core::fitness::Fitness;
use lrb_core::without_replacement::{par_sample_without_replacement, sample_without_replacement};
use lrb_rng::{MersenneTwister64, RandomSource, SeedableSource};
use lrb_stats::chi_square_gof;

/// Enumerate every ordered pair of distinct support indices with its exact
/// without-replacement probability `(w_i / T) · (w_j / (T − w_i))`.
fn ordered_pair_distribution(weights: &[f64]) -> (Vec<(usize, usize)>, Vec<f64>) {
    let total: f64 = weights.iter().sum();
    let mut pairs = Vec::new();
    let mut probs = Vec::new();
    for (i, &wi) in weights.iter().enumerate() {
        if wi == 0.0 {
            continue;
        }
        for (j, &wj) in weights.iter().enumerate() {
            if j == i || wj == 0.0 {
                continue;
            }
            pairs.push((i, j));
            probs.push((wi / total) * (wj / (total - wi)));
        }
    }
    (pairs, probs)
}

type Draw = fn(&Fitness, usize, &mut dyn RandomSource) -> Result<Vec<usize>, SelectionError>;

/// Chi-square the ordered (first, second) outcome of `draw` against the
/// exact pair distribution; `true` when consistent at the 1% level.
fn pairs_consistent(weights: &[f64], draw: Draw, seed: u64, trials: u64) -> bool {
    let fitness = Fitness::new(weights.to_vec()).unwrap();
    let (pairs, probs) = ordered_pair_distribution(weights);
    let mut rng = MersenneTwister64::seed_from_u64(seed);
    let mut counts = vec![0u64; pairs.len()];
    for _ in 0..trials {
        let picks = draw(&fitness, 2, &mut rng).unwrap();
        assert_eq!(picks.len(), 2);
        let slot = pairs
            .iter()
            .position(|&p| p == (picks[0], picks[1]))
            .expect("draws must come from the support, zeros excluded");
        counts[slot] += 1;
    }
    chi_square_gof(&counts, &probs).is_consistent(0.01)
}

/// A correct sampler fails a 1%-level chi-square ~1% of the time; two
/// independent seeds both failing is a ~10⁻⁴ event, so requiring one pass
/// out of two keeps the test sharp without being flaky.
fn assert_pairs_conform(weights: &[f64], draw: Draw, label: &str) {
    assert!(
        pairs_consistent(weights, draw, 0xE52006, 40_000)
            || pairs_consistent(weights, draw, 0x1DB1D, 40_000),
        "{label}: ordered-pair distribution failed chi-square on two seeds"
    );
}

#[test]
fn sequential_pairs_match_the_exact_distribution() {
    assert_pairs_conform(&[1.0, 2.0, 3.0, 4.0], sample_without_replacement, "seq");
}

#[test]
fn parallel_pairs_match_the_exact_distribution() {
    assert_pairs_conform(&[1.0, 2.0, 3.0, 4.0], par_sample_without_replacement, "par");
}

#[test]
fn both_paths_conform_with_zero_weight_holes() {
    // Zeros interleaved in the support: the sequential path skips
    // `f == 0.0`, the parallel path filters `f > 0.0` — both must yield
    // the same distribution over the remaining support, and the pair
    // enumeration (which excludes zeros) doubles as the assertion that
    // neither path ever emits a zero-weight index.
    let weights = [0.0, 2.0, 0.0, 1.0, 3.0];
    assert_pairs_conform(&weights, sample_without_replacement, "seq with zeros");
    assert_pairs_conform(&weights, par_sample_without_replacement, "par with zeros");
}

#[test]
fn count_zero_is_an_empty_sample_on_both_paths() {
    let fitness = Fitness::new(vec![1.0, 2.0, 3.0]).unwrap();
    let mut rng = MersenneTwister64::seed_from_u64(21);
    assert_eq!(
        sample_without_replacement(&fitness, 0, &mut rng).unwrap(),
        Vec::<usize>::new()
    );
    assert_eq!(
        par_sample_without_replacement(&fitness, 0, &mut rng).unwrap(),
        Vec::<usize>::new()
    );
}

#[test]
fn count_equal_to_support_permutes_the_support_on_both_paths() {
    let fitness = Fitness::new(vec![0.0, 2.0, 1.0, 0.0, 4.0]).unwrap();
    let mut rng = MersenneTwister64::seed_from_u64(22);
    for _ in 0..100 {
        let mut seq = sample_without_replacement(&fitness, 3, &mut rng).unwrap();
        let mut par = par_sample_without_replacement(&fitness, 3, &mut rng).unwrap();
        seq.sort_unstable();
        par.sort_unstable();
        assert_eq!(seq, vec![1, 2, 4]);
        assert_eq!(par, vec![1, 2, 4]);
    }
}

#[test]
fn not_enough_candidates_is_error_identical_on_both_paths() {
    let fitness = Fitness::new(vec![0.0, 1.0, 1.0, 0.0]).unwrap();
    let mut rng = MersenneTwister64::seed_from_u64(23);
    let expected = Err(SelectionError::NotEnoughCandidates {
        requested: 3,
        available: 2,
    });
    assert_eq!(sample_without_replacement(&fitness, 3, &mut rng), expected);
    assert_eq!(
        par_sample_without_replacement(&fitness, 3, &mut rng),
        expected
    );
}

#[test]
fn all_zero_fitness_is_rejected_on_both_paths_even_for_count_zero() {
    let fitness = Fitness::new(vec![0.0, 0.0]).unwrap();
    let mut rng = MersenneTwister64::seed_from_u64(24);
    for count in [0, 1] {
        assert_eq!(
            sample_without_replacement(&fitness, count, &mut rng),
            Err(SelectionError::AllZeroFitness)
        );
        assert_eq!(
            par_sample_without_replacement(&fitness, count, &mut rng),
            Err(SelectionError::AllZeroFitness)
        );
    }
}

#[test]
fn parallel_order_statistics_match_the_sequential_law() {
    // Beyond pairs: for k = support the result is an ordered permutation.
    // The *last* element's law is the hardest to get right (it is the
    // loser of every comparison), so chi-square it too: P(last = i) for
    // weights [1,2,3] has closed form Σ over the other orderings.
    let weights = [1.0, 2.0, 3.0];
    let total = 6.0;
    // P(last = k) = Σ_{(i,j) perm of others} F_i · w_j/(T−w_i).
    let mut last_prob = [0.0f64; 3];
    for i in 0..3 {
        for j in 0..3 {
            if i == j {
                continue;
            }
            let k = 3 - i - j;
            last_prob[k] += (weights[i] / total) * (weights[j] / (total - weights[i]));
        }
    }
    let fitness = Fitness::new(weights.to_vec()).unwrap();
    let consistent = |seed: u64| {
        let mut rng = MersenneTwister64::seed_from_u64(seed);
        let mut counts = [0u64; 3];
        for _ in 0..30_000 {
            let picks = par_sample_without_replacement(&fitness, 3, &mut rng).unwrap();
            counts[picks[2]] += 1;
        }
        chi_square_gof(&counts, &last_prob).is_consistent(0.01)
    };
    assert!(consistent(31) || consistent(32));
}
