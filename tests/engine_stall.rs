//! Regression tests for the writer-stall bugfix: `publish()` must hold the
//! batch mutex only for the drain, never across a backend build, so
//! `enqueue`/`enqueue_many`/`scale_all` stay microsecond-fast while a slow
//! freeze is in flight — and a freeze that *fails* must re-merge its
//! drained batch under whatever writers enqueued meanwhile (new writes
//! win).
//!
//! The tests drive the engine through a registry-pluggable **gated**
//! backend whose builds park on a rendezvous channel until the test
//! releases them. That makes "a build is provably in flight" a fact, not a
//! race: the pre-fix engine deadlocks here (the enqueue below would wait on
//! the batch mutex held by the parked publisher, and the release it waits
//! for would never be sent), while the fixed engine sails through even on a
//! single-core host.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use lrb_core::error::SelectionError;
use lrb_core::traits::FrozenSampler;
use lrb_engine::{
    BackendChoice, BackendCost, BackendRegistry, EngineConfig, FenwickBackend, FrozenBackend,
    SelectionEngine, WorkloadProfile,
};

/// A Fenwick backend whose builds can be gated: while `armed`, a build
/// announces itself on `entered` and parks on `release`; with `fail_next`
/// set, the released build errors instead of producing a sampler.
struct GatedBackend {
    armed: AtomicBool,
    fail_next: AtomicBool,
    builds: AtomicU64,
    entered: Mutex<SyncSender<()>>,
    release: Mutex<Receiver<()>>,
}

impl GatedBackend {
    /// Returns the backend plus the test's ends of the two gates.
    fn new() -> (Arc<Self>, Receiver<()>, Sender<()>) {
        let (entered_tx, entered_rx) = sync_channel(0);
        let (release_tx, release_rx) = channel();
        let backend = Arc::new(Self {
            armed: AtomicBool::new(false),
            fail_next: AtomicBool::new(false),
            builds: AtomicU64::new(0),
            entered: Mutex::new(entered_tx),
            release: Mutex::new(release_rx),
        });
        (backend, entered_rx, release_tx)
    }
}

impl FrozenBackend for GatedBackend {
    fn name(&self) -> &'static str {
        "gated-fenwick"
    }

    fn build(&self, weights: &[f64]) -> Result<Box<dyn FrozenSampler>, SelectionError> {
        self.builds.fetch_add(1, Ordering::SeqCst);
        if self.armed.load(Ordering::SeqCst) {
            self.entered.lock().unwrap().send(()).unwrap();
            self.release.lock().unwrap().recv().unwrap();
        }
        if self.fail_next.swap(false, Ordering::SeqCst) {
            return Err(SelectionError::AllZeroFitness);
        }
        FenwickBackend.build(weights)
    }

    fn model_cost(&self, profile: &WorkloadProfile) -> BackendCost {
        FenwickBackend.model_cost(profile)
    }
}

fn gated_engine(
    weights: Vec<f64>,
) -> (SelectionEngine, Arc<GatedBackend>, Receiver<()>, Sender<()>) {
    let (backend, entered, release) = GatedBackend::new();
    let mut registry = BackendRegistry::empty();
    registry.register(Arc::clone(&backend) as Arc<dyn FrozenBackend>);
    let config = EngineConfig {
        backend: BackendChoice::Fixed("gated-fenwick"),
        ..EngineConfig::default()
    };
    let engine = SelectionEngine::with_registry(weights, config, registry).unwrap();
    (engine, backend, entered, release)
}

/// How long the gated build is held open while writers hammer the engine.
const BLOCK: Duration = Duration::from_millis(100);

#[test]
fn writers_never_block_on_a_backend_build() {
    let (engine, backend, entered, release) = gated_engine(vec![1.0; 64]);
    let engine = Arc::new(engine);
    backend.armed.store(true, Ordering::SeqCst);

    let publisher = {
        let engine = Arc::clone(&engine);
        thread::spawn(move || {
            engine.enqueue(0, 5.0).unwrap();
            engine.publish().unwrap()
        })
    };

    // Rendezvous: the publisher has drained its batch and is now parked
    // inside the backend build. Pre-fix, it would still hold the batch
    // mutex here and every write below would deadlock.
    entered.recv().unwrap();
    let build_started = Instant::now();

    let mut latencies_ns = Vec::with_capacity(256);
    for k in 0..200u32 {
        let started = Instant::now();
        engine.enqueue(1, f64::from(k) + 1.0).unwrap();
        latencies_ns.push(started.elapsed().as_nanos() as u64);
    }
    let started = Instant::now();
    engine
        .enqueue_many(&[(2, 3.0), (3, 4.0)])
        .expect("batched writes must land mid-build too");
    latencies_ns.push(started.elapsed().as_nanos() as u64);
    engine.enqueue(1, 7.0).unwrap();

    // Keep the build provably open for the full window, then let it finish.
    if build_started.elapsed() < BLOCK {
        thread::sleep(BLOCK - build_started.elapsed());
    }
    release.send(()).unwrap();
    assert_eq!(publisher.join().unwrap(), 1, "the gated publish succeeded");

    // The published snapshot carries only the batch drained *before* the
    // build; every mid-build write waited in the next batch.
    assert_eq!(engine.snapshot().weight(0), 5.0);
    assert_eq!(
        engine.snapshot().weight(1),
        1.0,
        "mid-build write not yet visible"
    );
    backend.armed.store(false, Ordering::SeqCst);
    assert_eq!(engine.publish().unwrap(), 2);
    assert_eq!(engine.snapshot().weight(1), 7.0);
    assert_eq!(engine.snapshot().weight(2), 3.0);
    assert_eq!(engine.snapshot().weight(3), 4.0);

    // The ≥10x acceptance bar, measured two ways. Directly: writer p99
    // while the build was parked must be at least 10x below the build
    // span (it is microseconds against a 100ms gate).
    latencies_ns.sort_unstable();
    let p99 = latencies_ns[latencies_ns.len() * 99 / 100 - 1];
    assert!(
        p99.saturating_mul(10) <= BLOCK.as_nanos() as u64,
        "enqueue p99 {p99}ns must be ≥10x below the {}ns build it overlapped",
        BLOCK.as_nanos()
    );
    // And through the always-on telemetry histogram the fix added: the
    // writer tail stays decoupled from the freeze tail.
    let enqueue_p99 = engine.observability().enqueue_latency().p99();
    let freeze_p99 = engine.observability().freeze_latency().p99();
    assert!(
        enqueue_p99.saturating_mul(10) <= freeze_p99,
        "telemetry enqueue p99 {enqueue_p99}ns vs freeze p99 {freeze_p99}ns"
    );
}

#[test]
fn failed_publish_remerges_under_mid_build_writes_new_wins() {
    let (engine, backend, entered, release) = gated_engine(vec![8.0, 8.0, 8.0]);
    let engine = Arc::new(engine);

    // The batch that will be drained and then fail to freeze.
    engine.enqueue(0, 4.0).unwrap();
    engine.scale_all(0.5).unwrap();
    backend.armed.store(true, Ordering::SeqCst);
    backend.fail_next.store(true, Ordering::SeqCst);

    let publisher = {
        let engine = Arc::clone(&engine);
        thread::spawn(move || engine.publish())
    };
    entered.recv().unwrap();

    // Mid-build writes: a newer override for category 0 and a newer scale.
    // Under arrival-order semantics they happened *after* the drained
    // batch, so when the freeze fails and the batch is restored, the newer
    // override must win and the newer scale must apply on top.
    engine.enqueue(0, 9.0).unwrap();
    engine.scale_all(2.0).unwrap();
    release.send(()).unwrap();
    assert_eq!(
        publisher.join().unwrap(),
        Err(SelectionError::AllZeroFitness),
        "the gated build was told to fail"
    );
    assert_eq!(engine.version(), 0, "nothing was installed");

    // Republish through a healthy build: the merged batch must equal the
    // sequential application of every accepted operation, in order:
    //   set(0,4) · scale(0.5) · set(0,9) · scale(2)
    //   → w0 = 9·2 = 18 (new override wins; the restored 4·0.5 lost),
    //     w1 = w2 = 8·0.5·2 = 8.
    backend.armed.store(false, Ordering::SeqCst);
    assert_eq!(engine.publish().unwrap(), 1);
    let snapshot = engine.snapshot();
    assert_eq!(snapshot.weight(0), 18.0);
    assert_eq!(snapshot.weight(1), 8.0);
    assert_eq!(snapshot.weight(2), 8.0);
    assert_eq!(
        backend.builds.load(Ordering::SeqCst),
        3,
        "construction + failed gated build + healthy republish"
    );
}
