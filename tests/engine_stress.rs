//! Concurrency stress for the snapshot-isolated engine: reader threads
//! sample flat out while a writer publishes a stream of snapshots whose
//! supports rotate, so any torn read — a draw served from a mix of two
//! published states — would land outside its snapshot's support and fail
//! loudly. Also pins the deterministic-batch contract across the rayon
//! shim's thread-count overrides (`ThreadPool::install` and the
//! `LRB_THREADS` environment default used by the CI matrix).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use lrb_engine::{BackendChoice, EngineConfig, SelectionEngine};
use lrb_rng::{Philox4x32, SeedableSource, SplitMix64};

const CATEGORIES: usize = 64;
const SUPPORT_CLASSES: u64 = 8;
const PUBLISHES: u64 = 300;

/// Weights whose support is exactly the residue class `version % 8`:
/// index `i` is positive iff `i % 8 == version % 8`. Weights within the
/// class vary by version so consecutive snapshots never coincide.
fn class_weights(version: u64) -> Vec<f64> {
    let class = (version % SUPPORT_CLASSES) as usize;
    (0..CATEGORIES)
        .map(|i| {
            if i % SUPPORT_CLASSES as usize == class {
                1.0 + ((version + i as u64) % 5) as f64
            } else {
                0.0
            }
        })
        .collect()
}

/// Reader threads to spawn: the CI matrix drives this through the same
/// `LRB_THREADS` variable the rayon shim honours.
fn reader_threads() -> usize {
    std::env::var("LRB_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(4)
}

#[test]
fn concurrent_draws_always_match_a_published_snapshot() {
    let engine = SelectionEngine::new(class_weights(0), EngineConfig::default()).unwrap();
    let stop = AtomicBool::new(false);
    let violations = AtomicU64::new(0);
    let draws_total = AtomicU64::new(0);
    let readers = reader_threads();

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for reader in 0..readers {
            let engine = &engine;
            let stop = &stop;
            let violations = &violations;
            let draws_total = &draws_total;
            handles.push(scope.spawn(move || {
                let mut rng = SplitMix64::seed_from_u64(reader as u64 + 1);
                let mut draws = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Hold one snapshot for several draws: every single one
                    // must respect THAT snapshot's support, no matter how
                    // many versions the writer publishes meanwhile.
                    let snapshot = engine.snapshot();
                    let class = snapshot.version() % SUPPORT_CLASSES;
                    for _ in 0..16 {
                        let index = snapshot.sample(&mut rng).expect("support is never empty");
                        draws += 1;
                        if index as u64 % SUPPORT_CLASSES != class || snapshot.weight(index) <= 0.0
                        {
                            violations.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                draws_total.fetch_add(draws, Ordering::Relaxed);
            }));
        }

        // Writer: publish PUBLISHES rotated-support snapshots, each through
        // the coalescing batch (a full rewrite of all 64 categories).
        for version in 1..=PUBLISHES {
            let weights = class_weights(version);
            let updates: Vec<(usize, f64)> = weights.iter().cloned().enumerate().collect();
            engine.enqueue_many(&updates).unwrap();
            let published = engine.publish().unwrap();
            assert_eq!(published, version, "versions must be strictly ordered");
        }
        stop.store(true, Ordering::Relaxed);
    });

    assert_eq!(
        violations.load(Ordering::Relaxed),
        0,
        "torn reads: draws landed outside their snapshot's support"
    );
    assert!(draws_total.load(Ordering::Relaxed) > 0, "readers never ran");
    assert_eq!(engine.version(), PUBLISHES);
    assert_eq!(engine.stats().publishes, PUBLISHES);
}

#[test]
fn readers_holding_old_snapshots_keep_their_distribution() {
    // Pin a snapshot, publish far past it, then verify the pinned snapshot
    // still draws exactly its own (now thoroughly replaced) distribution.
    let engine = SelectionEngine::new(class_weights(0), EngineConfig::default()).unwrap();
    let pinned = engine.snapshot();
    for version in 1..=40 {
        let updates: Vec<(usize, f64)> =
            class_weights(version).iter().cloned().enumerate().collect();
        engine.enqueue_many(&updates).unwrap();
        engine.publish().unwrap();
    }
    assert_eq!(pinned.version(), 0);
    let counts = pinned.batch_counts(20_000, 9).unwrap();
    for (i, &count) in counts.iter().enumerate() {
        if pinned.weight(i) <= 0.0 {
            assert_eq!(count, 0, "index {i} is outside the pinned support");
        }
    }
    assert_eq!(counts.iter().sum::<u64>(), 20_000);
}

#[test]
fn batch_draws_are_identical_across_thread_count_overrides() {
    let engine = SelectionEngine::new(
        (0..1024).map(|i| ((i % 31) + 1) as f64).collect(),
        EngineConfig {
            backend: BackendChoice::Fixed("fenwick"),
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let snapshot = engine.snapshot();
    let trials = 50_000;
    let reference = snapshot.batch_indices(trials, 42).unwrap();

    // Explicit pool overrides.
    for threads in [1usize, 2, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let result = pool.install(|| snapshot.batch_indices(trials, 42).unwrap());
        assert_eq!(result, reference, "{threads} threads diverged");
    }

    // The environment default the CI matrix uses. Restore the prior value
    // afterwards — the matrix sets LRB_THREADS job-wide, and sibling tests
    // (the stress reader count) must keep seeing it.
    let previous = std::env::var("LRB_THREADS").ok();
    std::env::set_var("LRB_THREADS", "3");
    let under_env = snapshot.batch_indices(trials, 42).unwrap();
    match previous {
        Some(value) => std::env::set_var("LRB_THREADS", value),
        None => std::env::remove_var("LRB_THREADS"),
    }
    assert_eq!(under_env, reference, "LRB_THREADS=3 diverged");
}

#[test]
fn deterministic_batches_are_reproducible_mid_stress() {
    // Batches taken from a snapshot are a pure function of (snapshot, seed)
    // even while a writer churns: take one snapshot, publish a pile of new
    // versions concurrently, and re-run the same batch afterwards.
    let engine = SelectionEngine::new(class_weights(3), EngineConfig::default()).unwrap();
    let snapshot = engine.snapshot();
    let before = snapshot.batch_indices(10_000, 7).unwrap();
    std::thread::scope(|scope| {
        scope.spawn(|| {
            for version in 1..=50 {
                let updates: Vec<(usize, f64)> =
                    class_weights(version).iter().cloned().enumerate().collect();
                engine.enqueue_many(&updates).unwrap();
                engine.publish().unwrap();
            }
        });
        // Concurrent re-draws from the pinned snapshot.
        let during = snapshot.batch_indices(10_000, 7).unwrap();
        assert_eq!(during, before);
    });
    let after = snapshot.batch_indices(10_000, 7).unwrap();
    assert_eq!(after, before);

    // Determinism also covers the Philox substream contract directly.
    let mut a = Philox4x32::for_substream(9, 4);
    let mut b = Philox4x32::for_substream(9, 4);
    assert_eq!(
        snapshot.sample(&mut a).unwrap(),
        snapshot.sample(&mut b).unwrap()
    );
}
