//! Property-based tests (via the offline proptest shim) for
//! [`FenwickSampler`]: the tree's aggregates must track an independent
//! shadow vector through arbitrary update bursts, draws must never land on
//! zero weights, and the `O(log n)` prefix descent must agree draw-for-draw
//! with the `O(n)` linear-scan oracle on a shared random stream.

use lrb_core::sequential::LinearScanSelector;
use lrb_core::{DynamicSampler, Fitness, Selector};
use lrb_dynamic::FenwickSampler;
use lrb_rng::{MersenneTwister64, SeedableSource};
use proptest::prelude::*;

/// Deterministically spread update positions over the vector from a seed.
fn burst_positions(seed: u64, count: usize, len: usize) -> Vec<usize> {
    let mut state = seed;
    (0..count)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as usize % len
        })
        .collect()
}

proptest! {
    #[test]
    fn prop_total_weight_equals_the_sum_of_leaves(
        initial in proptest::collection::vec(0.0f64..100.0, 1..256),
        updates in proptest::collection::vec(0.0f64..100.0, 0..96),
        seed: u64,
    ) {
        let mut sampler = FenwickSampler::from_weights(initial.clone()).unwrap();
        let mut shadow = initial;
        for (&value, &index) in updates.iter().zip(&burst_positions(seed, updates.len(), shadow.len())) {
            sampler.update(index, value).unwrap();
            shadow[index] = value;
        }
        let leaf_sum: f64 = shadow.iter().sum();
        prop_assert!((sampler.total_weight() - leaf_sum).abs() < 1e-6 * (1.0 + leaf_sum));
        // The per-leaf reads must agree with the shadow exactly (updates
        // store, they never accumulate error into the raw weights).
        for (i, &w) in shadow.iter().enumerate() {
            prop_assert_eq!(sampler.weight(i), w);
        }
        prop_assert_eq!(
            sampler.non_zero_count(),
            shadow.iter().filter(|&&w| w > 0.0).count()
        );
    }

    #[test]
    fn prop_update_then_sample_never_returns_a_zero_weight_index(
        initial in proptest::collection::vec(0.0f64..8.0, 2..128),
        updates in proptest::collection::vec(0.0f64..8.0, 1..64),
        seed: u64,
    ) {
        let mut sampler = FenwickSampler::from_weights(initial.clone()).unwrap();
        let mut shadow = initial;
        for (&value, &index) in updates.iter().zip(&burst_positions(seed, updates.len(), shadow.len())) {
            // Zero out roughly a third of the touched entries so the "never
            // draw zero" claim is actually exercised.
            let value = if index % 3 == 0 { 0.0 } else { value };
            sampler.update(index, value).unwrap();
            shadow[index] = value;
        }
        prop_assume!(shadow.iter().any(|&w| w > 0.0));
        let mut rng = MersenneTwister64::seed_from_u64(seed ^ 0xA5A5);
        for _ in 0..200 {
            let drawn = sampler.sample(&mut rng).unwrap();
            prop_assert!(
                shadow[drawn] > 0.0,
                "drew index {} with weight {}", drawn, shadow[drawn]
            );
        }
    }

    #[test]
    fn prop_prefix_descent_agrees_with_the_linear_scan_oracle(
        initial in proptest::collection::vec(0.0f64..50.0, 1..160),
        updates in proptest::collection::vec(0.0f64..50.0, 0..48),
        seed: u64,
    ) {
        let mut sampler = FenwickSampler::from_weights(initial.clone()).unwrap();
        let mut shadow = initial;
        for (&value, &index) in updates.iter().zip(&burst_positions(seed, updates.len(), shadow.len())) {
            sampler.update(index, value).unwrap();
            shadow[index] = value;
        }
        prop_assume!(shadow.iter().any(|&w| w > 0.0));
        // Both sides invert the same CDF and consume exactly one uniform per
        // draw, so on a shared stream they must pick identical indices.
        let fitness = Fitness::new(shadow).unwrap();
        let mut tree_rng = MersenneTwister64::seed_from_u64(seed);
        let mut oracle_rng = MersenneTwister64::seed_from_u64(seed);
        for _ in 0..64 {
            prop_assert_eq!(
                sampler.sample(&mut tree_rng).unwrap(),
                LinearScanSelector.select(&fitness, &mut oracle_rng).unwrap()
            );
        }
    }
}
