//! Integration test: reproducibility guarantees that span crates — the same
//! seeds produce the same selections, tours and reports, and independent
//! streams really are independent.

use lrb_aco::{Colony, ColonyParams, TspInstance};
use lrb_bench::{run_probability_experiment, run_theorem1_experiment};
use lrb_core::parallel::{LogBiddingSelector, ParallelLogBiddingSelector};
use lrb_core::{Fitness, Selector};
use lrb_rng::{spawn_streams, MersenneTwister64, RandomSource, SeedableSource, Xoshiro256PlusPlus};

#[test]
fn selections_are_bit_reproducible_across_runs() {
    let fitness = Fitness::linear(500).unwrap();
    let selector = ParallelLogBiddingSelector::default();
    let run = |seed: u64| -> Vec<usize> {
        let mut rng = MersenneTwister64::seed_from_u64(seed);
        (0..200)
            .map(|_| selector.select(&fitness, &mut rng).unwrap())
            .collect()
    };
    assert_eq!(run(1), run(1));
    assert_ne!(run(1), run(2));
}

#[test]
fn probability_reports_are_deterministic() {
    let fitness = Fitness::table1();
    let selectors: Vec<Box<dyn Selector>> = vec![Box::new(LogBiddingSelector::default())];
    let a = run_probability_experiment("t", &fitness, &selectors, 20_000, 5);
    let b = run_probability_experiment("t", &fitness, &selectors, 20_000, 5);
    assert_eq!(a.columns[0].frequencies, b.columns[0].frequencies);
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn theorem1_reports_are_deterministic() {
    let a = run_theorem1_experiment(256, 64, 10, 3);
    let b = run_theorem1_experiment(256, 64, 10, 3);
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn colony_runs_are_deterministic_for_fixed_seed_even_with_parallel_ants() {
    let instance = TspInstance::random_euclidean(20, 8);
    let selector = LogBiddingSelector::default();
    let run = |seed: u64| {
        let mut colony = Colony::new(&instance, &selector, ColonyParams::default(), seed);
        colony.run(6).unwrap().last().unwrap().global_best
    };
    assert_eq!(run(4), run(4));
}

#[test]
fn spawned_streams_are_pairwise_distinct_and_reproducible() {
    let streams_a: Vec<Xoshiro256PlusPlus> = spawn_streams(99, 32);
    let streams_b: Vec<Xoshiro256PlusPlus> = spawn_streams(99, 32);
    for (i, (mut a, mut b)) in streams_a.into_iter().zip(streams_b).enumerate() {
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys, "stream {i} not reproducible");
    }
    // Distinctness: first outputs of all 32 streams are unique.
    let mut firsts: Vec<u64> = spawn_streams::<Xoshiro256PlusPlus>(99, 32)
        .into_iter()
        .map(|mut s| s.next_u64())
        .collect();
    firsts.sort_unstable();
    firsts.dedup();
    assert_eq!(firsts.len(), 32);
}

#[test]
fn changing_the_selector_does_not_change_the_workload_or_targets() {
    // The report's exact column depends only on the fitness, never on which
    // selectors were run — guards against accidental coupling in the harness.
    let fitness = Fitness::table2();
    let a = run_probability_experiment(
        "t",
        &fitness,
        &[Box::new(LogBiddingSelector::default()) as Box<dyn Selector>],
        1_000,
        1,
    );
    let b = run_probability_experiment(
        "t",
        &fitness,
        &[Box::new(ParallelLogBiddingSelector::default()) as Box<dyn Selector>],
        1_000,
        1,
    );
    assert_eq!(a.exact, b.exact);
    assert_eq!(a.independent_analytic, b.independent_analytic);
}
