//! Integration test: every *exact* selector in the library induces the same
//! distribution — the roulette wheel target `F_i` — on a shared set of
//! workloads, while the independent roulette does not. This is the
//! cross-crate statement of the paper's central claim.

use lrb_core::parallel::IndependentRouletteSelector;
use lrb_core::sequential::{AliasSampler, CdfSampler};
use lrb_core::{exact_selectors, Fitness, Selector};
use lrb_core::{without_replacement::sample_without_replacement, PreparedSampler};
use lrb_rng::{MersenneTwister64, SeedableSource};
use lrb_stats::{chi_square_gof, EmpiricalDistribution};

fn workloads() -> Vec<(&'static str, Fitness)> {
    vec![
        ("table1", Fitness::table1()),
        ("skewed", Fitness::new(vec![0.1, 0.1, 0.1, 5.0]).unwrap()),
        (
            "with-zeros",
            Fitness::new(vec![0.0, 2.0, 0.0, 1.0, 3.0]).unwrap(),
        ),
    ]
}

#[test]
fn every_exact_selector_passes_a_chi_square_test_against_f_i() {
    for (name, fitness) in workloads() {
        let target = fitness.probabilities();
        for selector in exact_selectors() {
            // The CRCW simulation is slow per draw: smaller sample, looser test.
            let trials: u64 = if selector.name().contains("crcw") {
                8_000
            } else {
                60_000
            };
            let mut rng = MersenneTwister64::seed_from_u64(17);
            let mut dist = EmpiricalDistribution::new(fitness.len());
            for _ in 0..trials {
                dist.record(selector.select(&fitness, &mut rng).unwrap());
            }
            let gof = chi_square_gof(dist.counts(), &target);
            assert!(
                gof.is_consistent(0.0001),
                "{} on {name}: chi2 = {:.2}, p = {:.2e}",
                selector.name(),
                gof.statistic,
                gof.p_value
            );
        }
    }
}

#[test]
fn prepared_samplers_agree_with_the_exact_selectors() {
    for (name, fitness) in workloads() {
        let target = fitness.probabilities();
        let alias = AliasSampler::new(&fitness).unwrap();
        let cdf = CdfSampler::new(&fitness).unwrap();
        for (label, sampler) in [("alias", &alias as &dyn PreparedSampler), ("cdf", &cdf)] {
            let mut rng = MersenneTwister64::seed_from_u64(23);
            let mut dist = EmpiricalDistribution::new(fitness.len());
            for _ in 0..60_000 {
                dist.record(sampler.sample(&mut rng));
            }
            let gof = chi_square_gof(dist.counts(), &target);
            assert!(
                gof.is_consistent(0.0001),
                "{label} on {name}: p = {:.2e}",
                gof.p_value
            );
        }
    }
}

#[test]
fn the_independent_roulette_fails_the_same_test_on_uneven_weights() {
    let fitness = Fitness::table1();
    let target = fitness.probabilities();
    let mut rng = MersenneTwister64::seed_from_u64(29);
    let mut dist = EmpiricalDistribution::new(fitness.len());
    for _ in 0..60_000 {
        dist.record(
            IndependentRouletteSelector
                .select(&fitness, &mut rng)
                .unwrap(),
        );
    }
    let gof = chi_square_gof(dist.counts(), &target);
    assert!(
        !gof.is_consistent(0.0001),
        "the biased selector unexpectedly passed: p = {}",
        gof.p_value
    );
}

#[test]
fn without_replacement_first_draw_matches_the_one_shot_selectors() {
    // Sampling k items without replacement and keeping the first is the same
    // distribution as a one-shot roulette selection; tie the two APIs together.
    let fitness = Fitness::new(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
    let target = fitness.probabilities();
    let mut rng = MersenneTwister64::seed_from_u64(31);
    let mut dist = EmpiricalDistribution::new(fitness.len());
    for _ in 0..60_000 {
        let picks = sample_without_replacement(&fitness, 3, &mut rng).unwrap();
        dist.record(picks[0]);
    }
    let gof = chi_square_gof(dist.counts(), &target);
    assert!(gof.is_consistent(0.0001), "p = {:.2e}", gof.p_value);
}

#[test]
fn exact_selectors_never_select_outside_the_support() {
    let fitness = Fitness::sparse(200, 3, 1.0).unwrap();
    for selector in exact_selectors() {
        let trials = if selector.name().contains("crcw") {
            50
        } else {
            2_000
        };
        let mut rng = MersenneTwister64::seed_from_u64(37);
        for _ in 0..trials {
            let i = selector.select(&fitness, &mut rng).unwrap();
            assert!(
                fitness.values()[i] > 0.0,
                "{} escaped the support",
                selector.name()
            );
        }
    }
}
