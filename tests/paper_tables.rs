//! Integration test: the paper's Table I and Table II are reproduced in
//! shape by the experiment harness (lower trial counts than the binaries, so
//! the suite stays fast, but every qualitative claim of the tables is
//! checked).

use lrb_bench::run_probability_experiment;
use lrb_core::analysis::independent_roulette_probabilities;
use lrb_core::parallel::{
    IndependentRouletteSelector, LogBiddingSelector, ParallelLogBiddingSelector,
};
use lrb_core::{Fitness, Selector};

fn selectors() -> Vec<Box<dyn Selector>> {
    vec![
        Box::new(IndependentRouletteSelector),
        Box::new(LogBiddingSelector::default()),
        Box::new(ParallelLogBiddingSelector::default()),
    ]
}

#[test]
fn table1_logarithmic_matches_exact_and_independent_does_not() {
    let fitness = Fitness::table1();
    let report = run_probability_experiment("Table I", &fitness, &selectors(), 120_000, 42);

    let independent = &report.columns[0];
    let log_sequential = &report.columns[1];
    let log_rayon = &report.columns[2];

    // The logarithmic bidding columns agree with F_i (chi-square does not
    // reject, max deviation small)…
    for column in [log_sequential, log_rayon] {
        assert!(column.exact);
        assert!(
            column.max_abs_deviation < 0.006,
            "{}: {}",
            column.name,
            column.max_abs_deviation
        );
        assert!(
            column.p_value > 0.001,
            "{}: p = {}",
            column.name,
            column.p_value
        );
    }
    // …while the independent roulette is rejected decisively and shows the
    // paper's qualitative pattern: small indices starved, index 9 inflated
    // from 0.2 to ≈ 0.39.
    assert!(independent.p_value < 1e-12);
    assert!(independent.frequencies[1] < 1e-4);
    assert!(independent.frequencies[2] < 1e-3);
    assert!(independent.frequencies[9] > 0.35 && independent.frequencies[9] < 0.45);
    // Index 0 has zero fitness: nobody may ever select it.
    for column in &report.columns {
        assert_eq!(column.frequencies[0], 0.0, "{}", column.name);
    }
}

#[test]
fn table1_empirical_independent_column_matches_the_closed_form() {
    let fitness = Fitness::table1();
    let analytic = independent_roulette_probabilities(&fitness);
    let report = run_probability_experiment(
        "Table I",
        &fitness,
        &[Box::new(IndependentRouletteSelector) as Box<dyn Selector>],
        150_000,
        7,
    );
    let empirical = &report.columns[0].frequencies;
    for i in 0..fitness.len() {
        assert!(
            (empirical[i] - analytic[i]).abs() < 0.005,
            "index {i}: empirical {} vs analytic {}",
            empirical[i],
            analytic[i]
        );
    }
    // And the specific values the paper prints for the independent column.
    assert!((analytic[5] - 0.038787).abs() < 5e-4);
    assert!((analytic[9] - 0.393536).abs() < 5e-4);
}

#[test]
fn table2_index_zero_is_selected_by_log_bidding_but_never_by_independent() {
    let fitness = Fitness::table2();
    let report = run_probability_experiment("Table II", &fitness, &selectors(), 80_000, 11);

    let independent = &report.columns[0];
    let log_sequential = &report.columns[1];

    // Exact probability of processor 0 is 1/199 ≈ 0.005025 (as in the paper).
    assert!((report.exact[0] - 0.005025).abs() < 1e-5);
    // The logarithmic bidding reproduces it within Monte-Carlo noise.
    assert!((log_sequential.frequencies[0] - 0.005025).abs() < 0.002);
    // The independent roulette never selects it (analytic ≈ 1.58e-32).
    assert_eq!(independent.frequencies[0], 0.0);
    assert!(report.independent_analytic[0] < 1e-30);
    // The remaining indices are fine for both (all equal fitness 2).
    assert!((log_sequential.frequencies[5] - 0.010050).abs() < 0.002);
    assert!((independent.frequencies[5] - 0.010101).abs() < 0.002);
}

#[test]
fn reports_render_and_serialise() {
    let fitness = Fitness::table2();
    let report = run_probability_experiment("Table II", &fitness, &selectors(), 2_000, 3);
    let text = report.render(10);
    assert!(text.contains("Table II"));
    let json = report.to_json();
    assert!(json.contains("\"workload\""));
    assert!(json.contains("independent-roulette-sequential"));
}
