//! Integration test: the three CRCW maximum-finding strategies (the paper's
//! constant-memory loop, the EREW reduction tree, and the classic n²-processor
//! constant-time algorithm) agree on the winner, and their PRAM costs sit at
//! the three corners of the time/processors/memory trade-off described in
//! DESIGN.md. Also checks the compaction-based alternative for sparse inputs.

use lrb_core::Fitness;
use lrb_pram::algorithms::{
    bid_max, compact_non_zero, constant_time_max, prefix_sums_blelloch, reduce_max,
};
use lrb_rng::exponential::log_bid;
use lrb_rng::{MersenneTwister64, RandomSource, SeedableSource, StreamFamily, Xoshiro256PlusPlus};

fn bids_for(fitness: &Fitness, master_seed: u64) -> Vec<f64> {
    let family = StreamFamily::new(master_seed);
    fitness
        .values()
        .iter()
        .enumerate()
        .map(|(i, &f)| {
            let mut stream: Xoshiro256PlusPlus = family.stream(i as u64);
            log_bid(&mut stream, f)
        })
        .collect()
}

#[test]
fn all_three_maximum_strategies_agree_on_the_winner() {
    let fitness = Fitness::new((1..=48).map(|i| ((i * 7) % 13 + 1) as f64).collect()).unwrap();
    for seed in 0..10u64 {
        let bids = bids_for(&fitness, seed);

        let loop_result = bid_max(&bids, seed).unwrap().unwrap();
        let tree_result = reduce_max(&bids).unwrap();
        let pairwise_result = constant_time_max(&bids).unwrap().unwrap();

        assert_eq!(loop_result.max_bid, tree_result.value, "seed {seed}");
        assert_eq!(loop_result.winner, pairwise_result.winner, "seed {seed}");
        assert_eq!(bids[loop_result.winner], loop_result.max_bid);
    }
}

#[test]
fn the_three_strategies_occupy_different_cost_corners() {
    let n = 64usize;
    let fitness = Fitness::uniform(n, 1.0).unwrap();
    let bids = bids_for(&fitness, 3);

    let loop_result = bid_max(&bids, 3).unwrap().unwrap();
    let tree_result = reduce_max(&bids).unwrap();
    let pairwise_result = constant_time_max(&bids).unwrap().unwrap();

    // Paper's loop: O(1) memory, expected O(log k) steps.
    assert_eq!(loop_result.cost.memory_footprint, 2);
    assert!(loop_result.while_iterations <= 2 * 6 + 4);
    // EREW tree: exactly log2(n) steps, Θ(n) memory.
    assert_eq!(tree_result.cost.steps, 6);
    assert!(tree_result.cost.memory_footprint >= n);
    // Constant-time: 2 steps, Θ(n) memory, n² processors (reflected in the
    // write volume of step 1, which is Θ(n²) in the worst case but at least n−1
    // here because every non-maximal index is defeated at least once).
    assert_eq!(pairwise_result.cost.steps, 2);
    assert!(pairwise_result.cost.writes >= n - 1);
}

#[test]
fn compaction_plus_dense_selection_matches_direct_selection_probabilities() {
    // The compaction-based alternative: compact the k live indices, then do a
    // roulette selection over the dense array. Its probabilities must match
    // the direct approach; only its PRAM cost differs (Θ(log n) vs O(log k)).
    let n = 64usize;
    let mut values = vec![0.0; n];
    values[5] = 1.0;
    values[17] = 2.0;
    values[40] = 3.0;
    values[63] = 4.0;
    let fitness = Fitness::new(values.clone()).unwrap();

    let compaction = compact_non_zero(&values).unwrap();
    assert_eq!(compaction.live_indices, vec![5, 17, 40, 63]);
    assert!(
        compaction.cost.steps > 10,
        "compaction pays the Θ(log n) scan"
    );

    // Dense roulette over the compacted weights via prefix sums.
    let dense: Vec<f64> = compaction.live_indices.iter().map(|&i| values[i]).collect();
    let scan = prefix_sums_blelloch(&dense).unwrap();
    let total = *scan.prefix.last().unwrap();
    let mut rng = MersenneTwister64::seed_from_u64(11);
    let trials = 40_000;
    let mut counts = vec![0usize; dense.len()];
    for _ in 0..trials {
        let r = rng.next_f64() * total;
        let slot = scan
            .prefix
            .partition_point(|&p| p <= r)
            .min(dense.len() - 1);
        counts[slot] += 1;
    }
    for (slot, &count) in counts.iter().enumerate() {
        let original_index = compaction.live_indices[slot];
        let expected = fitness.probability(original_index);
        let got = count as f64 / trials as f64;
        assert!(
            (got - expected).abs() < 0.01,
            "slot {slot} (index {original_index}): {got} vs {expected}"
        );
    }
}

#[test]
fn arbitrary_crcw_policy_distributes_wins_among_equal_bidders() {
    // Sanity check of the simulator's conflict policy through the public
    // algorithm: with identical bids, the announced winner varies with the
    // seed (Arbitrary), rather than always being processor 0 (Priority).
    let bids = vec![-1.0; 16];
    let mut winners = std::collections::HashSet::new();
    for seed in 0..40 {
        winners.insert(bid_max(&bids, seed).unwrap().unwrap().winner);
    }
    assert!(winners.len() > 4, "winners {winners:?} look deterministic");
}
