//! Cross-shard batch-planner contract tests: the v2 parallel layout must
//! be a pure function of `(snapshots, master draw)` — bit-identical at
//! any fan-out lane count and any `LRB_THREADS` budget — the v1
//! sequential layout must stay draw-for-draw identical to a hand-rolled
//! reference of the service's historical batch path, the two-level law
//! must survive the parallel path statistically, and core-pinning must
//! degrade to a graceful no-op when the policy names cores the host does
//! not have.

use lrb_core::sharding::TotalsCut;
use lrb_rng::{Philox4x32, RandomSource, SeedableSource};
use lrb_service::{
    parse_cpu_list, CoreMap, RouteLayout, ServiceConfig, ShardedService, ROUTE_LAYOUT_VERSION,
};
use lrb_stats::chi_square_gof;
use proptest::prelude::*;

/// Deterministic, mildly lumpy weights (a few zeros to keep the
/// zero-weight invariant honest).
fn test_weights(categories: usize) -> Vec<f64> {
    (0..categories)
        .map(|i| {
            if i % 17 == 3 {
                0.0
            } else {
                ((i % 29) + 1) as f64
            }
        })
        .collect()
}

fn service(
    categories: usize,
    shards: usize,
    layout: RouteLayout,
    fanout_workers: usize,
) -> ShardedService {
    ShardedService::new(
        test_weights(categories),
        ServiceConfig {
            shards,
            route_layout: layout,
            fanout_workers,
            ..ServiceConfig::default()
        },
    )
    .expect("planner test service construction cannot fail")
}

#[test]
fn route_layout_is_versioned_and_defaults_to_parallel() {
    assert_eq!(ROUTE_LAYOUT_VERSION, 2);
    assert_eq!(RouteLayout::default(), RouteLayout::V2Parallel);
    let service = service(64, 4, RouteLayout::default(), 0);
    assert_eq!(service.route_layout(), RouteLayout::V2Parallel);
    assert!(service.fanout_lanes() >= 1);
}

proptest! {
    /// The tentpole determinism contract: the v2 output is invariant in
    /// the lane count. Lanes = 1 forces inline (sequential) execution, so
    /// this is also a parallel-vs-sequential-execution parity oracle;
    /// batches above the inline threshold exercise the pooled hand-off.
    #[test]
    fn prop_v2_output_is_invariant_across_lane_counts(
        seed: u64,
        small_batch in 1usize..192,
    ) {
        for batch in [small_batch, 2_048] {
            let mut reference: Option<Vec<usize>> = None;
            for lanes in [1usize, 2, 8] {
                let service = service(384, 6, RouteLayout::V2Parallel, lanes);
                let mut rng = Philox4x32::seed_from_u64(seed);
                let mut out = vec![0usize; batch];
                service
                    .draw_into(&mut rng as &mut dyn RandomSource, &mut out)
                    .expect("v2 batch draw failed");
                match &reference {
                    None => reference = Some(out),
                    Some(expected) => prop_assert_eq!(
                        expected,
                        &out,
                        "lane count changed v2 output (lanes {}, batch {})",
                        lanes,
                        batch
                    ),
                }
            }
        }
    }

    /// The v1 oracle must be draw-for-draw identical to the service's
    /// historical batch path, reconstructed here from public pieces: the
    /// caller's RNG threads through one level-one pick per slot, then
    /// through each touched shard's fused fill in shard order, and the
    /// grouped fills scatter back to slot order.
    #[test]
    fn prop_v1_matches_the_handrolled_sequential_reference(
        seed: u64,
        batch in 1usize..512,
    ) {
        let categories = 300;
        let shards = 5;
        let service = service(categories, shards, RouteLayout::V1Sequential, 1);

        let mut expected = vec![0usize; batch];
        {
            let mut rng = Philox4x32::seed_from_u64(seed);
            let cut = TotalsCut::from_totals(service.shard_totals());
            let mut assignment = vec![0usize; batch];
            let mut counts = vec![0usize; shards];
            for slot in assignment.iter_mut() {
                let (shard, _) = cut
                    .pick_uniform(rng.next_f64())
                    .expect("live totals cannot be all-zero");
                *slot = shard;
                counts[shard] += 1;
            }
            // Shard starts within each shard's contiguous category range.
            let offsets: Vec<usize> = {
                let base = categories / shards;
                let extra = categories % shards;
                let mut offsets = vec![0usize];
                for s in 0..shards {
                    offsets.push(offsets[s] + base + usize::from(s < extra));
                }
                offsets
            };
            let mut buffer = Vec::new();
            for (shard, &count) in counts.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                buffer.resize(count, 0usize);
                service
                    .shard_engine(shard)
                    .read(|snapshot| snapshot.sample_into(&mut rng, &mut buffer))
                    .expect("reference shard fill failed");
                let mut filled = 0usize;
                for (slot, &owner) in assignment.iter().enumerate() {
                    if owner == shard {
                        expected[slot] = offsets[shard] + buffer[filled];
                        filled += 1;
                    }
                }
            }
        }

        let mut rng = Philox4x32::seed_from_u64(seed);
        let mut out = vec![0usize; batch];
        service
            .draw_into(&mut rng as &mut dyn RandomSource, &mut out)
            .expect("v1 batch draw failed");
        prop_assert_eq!(out, expected);
    }
}

#[test]
fn v2_output_is_invariant_in_the_lrb_threads_budget() {
    // `fanout_workers: 0` resolves the lane count from `LRB_THREADS`;
    // the drawn indices must not notice. (Only this test builds services
    // with the auto budget while mutating the variable; every other test
    // in this binary passes an explicit lane count.)
    let saved = std::env::var("LRB_THREADS").ok();
    let mut reference: Option<Vec<usize>> = None;
    for budget in ["1", "2", "8"] {
        std::env::set_var("LRB_THREADS", budget);
        let service = service(512, 8, RouteLayout::V2Parallel, 0);
        let mut rng = Philox4x32::seed_from_u64(0xBEEF);
        let mut out = vec![0usize; 4_096];
        service
            .draw_into(&mut rng as &mut dyn RandomSource, &mut out)
            .expect("budgeted batch draw failed");
        match &reference {
            None => reference = Some(out),
            Some(expected) => {
                assert_eq!(expected, &out, "LRB_THREADS={budget} changed v2 output")
            }
        }
    }
    match saved {
        Some(value) => std::env::set_var("LRB_THREADS", value),
        None => std::env::remove_var("LRB_THREADS"),
    }
}

#[test]
fn two_level_law_survives_the_parallel_path() {
    // Chi-square conformance of the end-to-end two-level distribution
    // through the v2 planner with real fan-out (4 lanes, batches above
    // the inline threshold). Best of two seeds: a correct sampler fails
    // both at the 1% level with probability ~1e-4.
    let weights: Vec<f64> = (1..=24).map(f64::from).collect();
    let total: f64 = weights.iter().sum();
    let probs: Vec<f64> = weights.iter().map(|w| w / total).collect();
    let consistent = |seed: u64| {
        let service = ShardedService::new(
            weights.clone(),
            ServiceConfig {
                shards: 6,
                route_layout: RouteLayout::V2Parallel,
                fanout_workers: 4,
                ..ServiceConfig::default()
            },
        )
        .expect("conformance service construction cannot fail");
        let mut rng = Philox4x32::seed_from_u64(seed);
        let mut counts = vec![0u64; weights.len()];
        let mut out = vec![0usize; 4_096];
        for _ in 0..8 {
            service
                .draw_into(&mut rng as &mut dyn RandomSource, &mut out)
                .expect("conformance batch draw failed");
            for &index in &out {
                counts[index] += 1;
            }
        }
        chi_square_gof(&counts, &probs).is_consistent(0.01)
    };
    assert!(
        consistent(0x2E11) || consistent(0x2E12),
        "two-level law failed chi-square through the parallel planner twice"
    );
}

#[test]
fn pinning_to_impossible_cores_is_a_graceful_no_op() {
    // A policy naming a core the host does not have must not break
    // anything: draws keep working, nothing reports as pinned.
    let service = ShardedService::new(
        test_weights(96),
        ServiceConfig {
            shards: 4,
            core_map: CoreMap::Explicit(vec![100_000]),
            fanout_workers: 2,
            ..ServiceConfig::default()
        },
    )
    .expect("service with an impossible core map must still construct");
    let mut rng = Philox4x32::seed_from_u64(0xC0DE);
    let mut out = vec![0usize; 2_048];
    service
        .draw_into(&mut rng as &mut dyn RandomSource, &mut out)
        .expect("draws must survive a failed pin");
    assert!(service.pinner().is_active());
    assert_eq!(
        service.pinner().pinned_threads(),
        0,
        "a core the host does not have cannot be pinned"
    );
}

#[test]
fn cpu_list_parsing_round_trips_the_policy_surface() {
    assert_eq!(parse_cpu_list("0-2,5"), Some(vec![0, 1, 2, 5]));
    assert_eq!(parse_cpu_list(" 3 "), Some(vec![3]));
    assert_eq!(parse_cpu_list("2-2,2"), Some(vec![2]));
    assert_eq!(parse_cpu_list("banana"), None);
    assert_eq!(parse_cpu_list("3-1"), None);
    // The empty list is a valid (empty) policy — sysfs emits it for a
    // node with no CPUs.
    assert_eq!(parse_cpu_list(""), Some(Vec::new()));
}
