//! Durability and crash-recovery integration tests.
//!
//! Three layers of assurance, bottom-up:
//!
//! 1. **Property tests over injected storage faults** — seeded
//!    [`FaultPlan`] schedules (short writes, torn writes, fsync errors,
//!    bit flips), arbitrary truncation points and arbitrary single-bit
//!    flips all leave a WAL that replays to a *prefix* of the appends
//!    that reported success, without panicking, and that replays clean
//!    after truncation to the reported valid length (recovery invariants
//!    1 and 2 in `lrb-durable`'s crate docs).
//! 2. **Reopen determinism** — an engine reopened over a WAL directory
//!    recovers weights **bit-identical** to an oracle engine that
//!    replayed the same publish sequence in memory, and serves the same
//!    draw sequence (invariant 4).
//! 3. **Kill-and-restore** — a child process (`durable_storm`) runs a
//!    deterministic publish storm against a WAL-durable engine and is
//!    SIGKILLed mid-storm at several points; the parent reopens the
//!    directory and checks the recovered state against the oracle replay
//!    of exactly the recovered-version prefix. A sharded service reopen
//!    checks the per-shard WAL split the same way.

use std::io::BufRead;
use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use lrb_durable::{
    replay_with, FaultPlan, FaultyFile, MemFile, ReplayStep, StorageFile, Wal, WalRecord,
};
use lrb_engine::{
    BackendChoice, Durability, EngineConfig, FsyncPolicy, PatchPolicy, SelectionEngine, WalOptions,
};
use lrb_integration::storm;
use lrb_rng::Philox4x32;
use lrb_service::{ServiceConfig, ShardedService};
use proptest::prelude::*;

const CATEGORIES: usize = 64;
const STORM_SEED: u64 = 0xB1D5_CA5E;

/// A per-test scratch directory under the system temp dir, removed on
/// drop (PID + name keyed, so parallel tests never collide).
struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        let path = std::env::temp_dir().join(format!("lrb-durable-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("scratch dir");
        Self(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The deterministic engine config both the recovered side and the
/// oracle use: a pinned backend, no patches, no calibration — publishes
/// are then a pure function of the enqueued batches, which is what makes
/// "bit-identical recovery" a checkable claim rather than a hope.
fn deterministic_config(durability: Durability) -> EngineConfig {
    EngineConfig {
        backend: BackendChoice::Fixed("fenwick"),
        patch: PatchPolicy::Never,
        calibrate: false,
        durability,
        ..EngineConfig::default()
    }
}

fn wal_config(dir: &Path, checkpoint_every: u64) -> EngineConfig {
    deterministic_config(Durability::Wal(WalOptions {
        dir: dir.to_path_buf(),
        // SIGKILL does not lose page-cache writes, so the crash tests
        // exercise recovery without paying a disk flush per publish.
        fsync: FsyncPolicy::Off,
        checkpoint_every,
    }))
}

/// The oracle: a fresh in-memory engine that replays storm publishes
/// `1..=version` and therefore holds the exact state the durable engine
/// must recover.
fn oracle_at(version: u64) -> SelectionEngine {
    let engine = SelectionEngine::new(
        storm::initial_weights(CATEGORIES),
        deterministic_config(Durability::Off),
    )
    .expect("oracle engine");
    for k in 1..=version {
        storm::apply_publish(&engine, STORM_SEED, k, CATEGORIES).expect("oracle publish");
    }
    engine
}

/// Bit-identical state: same version, same weight bits, same draw
/// sequence under identical RNG streams.
fn assert_states_identical(recovered: &SelectionEngine, oracle: &SelectionEngine) {
    assert_eq!(recovered.version(), oracle.version(), "recovered version");
    let recovered_weights = recovered.read(|s| s.weights().to_vec());
    let oracle_weights = oracle.read(|s| s.weights().to_vec());
    assert_eq!(recovered_weights.len(), oracle_weights.len());
    for (i, (r, o)) in recovered_weights.iter().zip(&oracle_weights).enumerate() {
        assert_eq!(
            r.to_bits(),
            o.to_bits(),
            "weight {i} diverged after recovery: {r} vs {o}"
        );
    }
    for substream in 0..64 {
        let mut recovered_rng = Philox4x32::for_substream(0xD00D, substream);
        let mut oracle_rng = Philox4x32::for_substream(0xD00D, substream);
        assert_eq!(
            recovered
                .sample(&mut recovered_rng)
                .expect("recovered draw"),
            oracle.sample(&mut oracle_rng).expect("oracle draw"),
            "draw diverged on substream {substream}"
        );
    }
}

/// One storm-shaped WAL record for the fault-injection properties.
fn storm_record(version: u64) -> WalRecord {
    WalRecord {
        version,
        scale: if version.is_multiple_of(5) { 0.75 } else { 1.0 },
        overrides: vec![
            (version as usize % CATEGORIES, version as f64 * 1.5),
            (7, 0.25 + version as f64),
        ],
    }
}

proptest! {
    /// Invariants 1 + 2 under a seeded storm of injected faults: appends
    /// that report success and survive uncorrupted replay as a strict
    /// in-order prefix; nothing panics; truncating to the reported valid
    /// length yields a clean log.
    #[test]
    fn prop_faulted_wal_replays_a_valid_prefix(
        seed: u64,
        per_mille in 20u32..400,
    ) {
        let plan = FaultPlan::seeded(seed, 256, per_mille);
        let faulty = FaultyFile::new(MemFile::new(), plan, seed ^ 0xF00D);
        let mut wal = Wal::new(faulty, 0, FsyncPolicy::EveryN(3));
        let mut succeeded = Vec::new();
        for version in 1..=48u64 {
            let record = storm_record(version);
            if wal.append(&record).is_ok() {
                succeeded.push(record);
            }
        }
        let mut disk = wal.file_mut().inner().clone();
        let mut applied = Vec::new();
        let summary = replay_with(&mut disk, |record| {
            applied.push(record.clone());
            ReplayStep::Apply
        }).unwrap();
        // Whatever replays is an in-order prefix of the successful
        // appends — a bit-flipped record stops replay *before* itself.
        prop_assert!(applied.len() <= succeeded.len());
        for (got, expected) in applied.iter().zip(&succeeded) {
            prop_assert_eq!(got, expected);
        }
        // Truncating to the valid prefix makes the log clean again, with
        // the same records.
        disk.set_len(summary.valid_bytes).unwrap();
        let cleaned = replay_with(&mut disk, |_| ReplayStep::Apply).unwrap();
        prop_assert!(cleaned.clean);
        prop_assert_eq!(cleaned.applied, applied.len() as u64);
        prop_assert_eq!(cleaned.truncated_bytes, 0);
    }

    /// A crash can cut the log at *any* byte; the cut log replays to a
    /// prefix of the original records and reports a valid length that
    /// replays clean.
    #[test]
    fn prop_truncation_at_any_byte_recovers_a_prefix(
        records in 1u64..20,
        cut_fraction in 0.0f64..1.0,
    ) {
        let mut wal = Wal::new(MemFile::new(), 0, FsyncPolicy::Off);
        let originals: Vec<WalRecord> = (1..=records).map(storm_record).collect();
        for record in &originals {
            wal.append(record).unwrap();
        }
        let cut = (wal.bytes() as f64 * cut_fraction) as u64;
        let mut disk = wal.file_mut().clone();
        disk.set_len(cut).unwrap();
        let mut applied = Vec::new();
        let summary = replay_with(&mut disk, |record| {
            applied.push(record.clone());
            ReplayStep::Apply
        }).unwrap();
        prop_assert!(summary.valid_bytes <= cut);
        prop_assert_eq!(summary.valid_bytes + summary.truncated_bytes, cut);
        for (got, expected) in applied.iter().zip(&originals) {
            prop_assert_eq!(got, expected);
        }
        disk.set_len(summary.valid_bytes).unwrap();
        prop_assert!(replay_with(&mut disk, |_| ReplayStep::Apply).unwrap().clean);
    }

    /// Silent media corruption: flip any single bit anywhere in the log;
    /// replay must not panic, and every record that replays from before
    /// the damaged byte is byte-identical to the original.
    #[test]
    fn prop_single_bit_flip_never_panics(
        records in 2u64..16,
        flip: u64,
    ) {
        let mut wal = Wal::new(MemFile::new(), 0, FsyncPolicy::Off);
        let originals: Vec<WalRecord> = (1..=records).map(storm_record).collect();
        let mut frame_ends = Vec::new();
        let mut offset = 0u64;
        for record in &originals {
            wal.append(record).unwrap();
            offset += record.frame_bytes() as u64;
            frame_ends.push(offset);
        }
        let mut disk = wal.file_mut().clone();
        let bit = flip % (disk.contents().len() as u64 * 8);
        let flipped_byte = bit / 8;
        disk.contents_mut()[flipped_byte as usize] ^= 1 << (bit % 8);
        let mut applied = Vec::new();
        replay_with(&mut disk, |record| {
            applied.push(record.clone());
            ReplayStep::Apply
        }).unwrap();
        prop_assert!(applied.len() <= originals.len());
        for (i, got) in applied.iter().enumerate() {
            if frame_ends[i] <= flipped_byte {
                prop_assert_eq!(got, &originals[i]);
            }
        }
    }
}

#[test]
fn engine_reopen_matches_oracle_without_crash() {
    let dir = TempDir::new("reopen");
    const PUBLISHES: u64 = 300;
    {
        let engine = SelectionEngine::new(
            storm::initial_weights(CATEGORIES),
            wal_config(dir.path(), 64),
        )
        .expect("durable engine");
        for k in 1..=PUBLISHES {
            storm::apply_publish(&engine, STORM_SEED, k, CATEGORIES).expect("storm publish");
        }
        assert_eq!(engine.version(), PUBLISHES);
    }
    let recovered = SelectionEngine::new(
        storm::initial_weights(CATEGORIES),
        wal_config(dir.path(), 64),
    )
    .expect("recovered engine");
    assert_eq!(recovered.observability().recoveries(), 1);
    assert_states_identical(&recovered, &oracle_at(PUBLISHES));
}

/// Spawn the `durable_storm` crash child over `dir`.
fn storm_child(dir: &Path, publishes: u64, checkpoint_every: u64) -> Child {
    Command::new(env!("CARGO_BIN_EXE_durable_storm"))
        .arg(dir.as_os_str())
        .arg(CATEGORIES.to_string())
        .arg(publishes.to_string())
        .arg(STORM_SEED.to_string())
        .arg(checkpoint_every.to_string())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn durable_storm")
}

/// Block until the child reports its WAL is live (kill timers start at a
/// known point in its lifecycle, not at exec).
fn await_publishing(child: &mut Child) -> BufReader<std::process::ChildStdout> {
    let stdout = child.stdout.take().expect("child stdout piped");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("child readiness line");
    assert_eq!(line.trim(), "publishing");
    reader
}

#[test]
fn uninterrupted_storm_recovers_exactly() {
    const PUBLISHES: u64 = 400;
    let dir = TempDir::new("storm-full");
    let mut child = storm_child(dir.path(), PUBLISHES, 64);
    let mut reader = await_publishing(&mut child);
    let mut done = String::new();
    reader.read_line(&mut done).expect("child done line");
    assert_eq!(done.trim(), format!("done {PUBLISHES}"));
    assert!(child.wait().expect("child exit").success());

    let recovered = SelectionEngine::new(
        storm::initial_weights(CATEGORIES),
        wal_config(dir.path(), 64),
    )
    .expect("recovered engine");
    assert_eq!(recovered.version(), PUBLISHES);
    assert_states_identical(&recovered, &oracle_at(PUBLISHES));
}

#[cfg(unix)]
#[test]
fn sigkilled_storm_recovers_bit_identically() {
    // Far more publishes than any kill delay allows, so the kill always
    // lands mid-storm; checkpoints keep the WAL (and recovery) bounded.
    const PUBLISHES: u64 = 5_000_000;
    const CHECKPOINT_EVERY: u64 = 512;
    let mut total_recovered = 0u64;
    for (run, delay_ms) in [3u64, 15, 45].into_iter().enumerate() {
        let dir = TempDir::new(&format!("storm-kill-{run}"));
        let mut child = storm_child(dir.path(), PUBLISHES, CHECKPOINT_EVERY);
        let _reader = await_publishing(&mut child);
        std::thread::sleep(Duration::from_millis(delay_ms));
        child.kill().expect("SIGKILL child");
        child.wait().expect("reap child");

        let recovered = SelectionEngine::new(
            storm::initial_weights(CATEGORIES),
            wal_config(dir.path(), CHECKPOINT_EVERY),
        )
        .expect("recovery after SIGKILL");
        let version = recovered.version();
        assert!(version < PUBLISHES, "kill landed after the whole storm");
        total_recovered += version;
        assert_states_identical(&recovered, &oracle_at(version));
    }
    assert!(
        total_recovered > 0,
        "no kill run recovered any publishes — the storm never got going"
    );
}

#[test]
fn sharded_service_recovers_each_shard() {
    let dir = TempDir::new("shards");
    let weights: Vec<f64> = (1..=24).map(f64::from).collect();
    let config = ServiceConfig {
        shards: 3,
        engine: wal_config(dir.path(), 16),
        ..ServiceConfig::default()
    };
    let service = ShardedService::new(weights.clone(), config.clone()).expect("durable service");
    for (index, weight) in [(0usize, 5.0), (7, 0.25), (12, 9.0), (23, 3.5)] {
        service.update(index, weight).expect("update");
    }
    service.scale_all(0.5).expect("scale");
    service.publish_all().expect("publish");
    let totals_before = service.shard_totals();
    drop(service);

    // Each shard owns an independent WAL under its own subdirectory.
    for shard in 0..3 {
        assert!(
            dir.path().join(format!("shard-{shard}")).is_dir(),
            "shard {shard} has no WAL directory"
        );
    }

    let reopened = ShardedService::new(weights, config).expect("recovered service");
    let totals_after = reopened.shard_totals();
    assert_eq!(totals_before.len(), totals_after.len());
    for (shard, (before, after)) in totals_before.iter().zip(&totals_after).enumerate() {
        assert_eq!(
            before.to_bits(),
            after.to_bits(),
            "shard {shard} total diverged after recovery: {before} vs {after}"
        );
    }
}
