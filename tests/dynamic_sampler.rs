//! Integration tests for the `lrb-dynamic` crate: Fenwick exactness under
//! chi-square against the sequential ground truth (before and after a burst
//! of random updates), degenerate-weight edge cases, and the sharded arena's
//! batch determinism across rayon thread counts.

mod support;

use lrb_core::sequential::LinearScanSelector;
use lrb_core::{DynamicSampler, Fitness, SelectionError, Selector};
use lrb_dynamic::{
    batch_sample_counts, batch_sample_indices, FenwickSampler, RebuildingAliasSampler, ShardedArena,
};
use lrb_rng::{MersenneTwister64, RandomSource, SeedableSource};
use support::assert_conformance;

/// Per-index draw counts of a dynamic sampler over `trials` draws.
fn empirical(sampler: &dyn DynamicSampler, trials: u64, seed: u64) -> Vec<u64> {
    let mut rng = MersenneTwister64::seed_from_u64(seed);
    let mut counts = vec![0u64; sampler.len()];
    for _ in 0..trials {
        counts[sampler.sample(&mut rng).unwrap()] += 1;
    }
    counts
}

/// Per-index draw counts of the linear-scan ground truth on the same weights.
fn ground_truth(weights: &[f64], trials: u64, seed: u64) -> Vec<u64> {
    let fitness = Fitness::new(weights.to_vec()).unwrap();
    let mut rng = MersenneTwister64::seed_from_u64(seed);
    let mut counts = vec![0u64; fitness.len()];
    for _ in 0..trials {
        counts[LinearScanSelector.select(&fitness, &mut rng).unwrap()] += 1;
    }
    counts
}

#[test]
fn fenwick_passes_chi_square_against_linear_scan_before_and_after_updates() {
    let initial: Vec<f64> = (0..48).map(|i| ((i * 7) % 13) as f64).collect();
    let mut sampler = FenwickSampler::from_weights(initial.clone()).unwrap();
    let trials = 120_000;

    // Before any update: both the sampler and the ground truth must be
    // consistent with the exact F_i of the initial weights.
    let counts = empirical(&sampler, trials, 101);
    assert_conformance("before updates", &counts, &initial, 0.001);
    let truth = ground_truth(sampler.weights(), trials, 202);
    assert_conformance("ground truth drifted", &truth, &initial, 0.001);

    // Burst of random updates (including some zeroings), then re-test
    // against the *new* exact distribution.
    let mut update_rng = MersenneTwister64::seed_from_u64(303);
    for _ in 0..200 {
        let index = (update_rng.next_u64() % sampler.len() as u64) as usize;
        let weight = if update_rng.next_f64() < 0.2 {
            0.0
        } else {
            update_rng.next_f64() * 10.0
        };
        sampler.update(index, weight).unwrap();
    }
    let mutated = sampler.weights().to_vec();
    let counts = empirical(&sampler, trials, 404);
    assert_conformance("after updates", &counts, &mutated, 0.001);

    // And it still agrees with the linear-scan ground truth run on the
    // mutated weights (same test, independent stream).
    let truth = ground_truth(&mutated, trials, 505);
    assert_conformance("ground truth after updates", &truth, &mutated, 0.001);
}

#[test]
fn fenwick_edge_cases_update_to_zero_and_all_zero() {
    let mut sampler = FenwickSampler::from_weights(vec![0.0, 3.0, 0.0, 2.0]).unwrap();
    let mut rng = MersenneTwister64::seed_from_u64(7);

    // Zero out one of the two live indices: all mass moves to the other.
    sampler.update(3, 0.0).unwrap();
    for _ in 0..200 {
        assert_eq!(sampler.sample(&mut rng).unwrap(), 1);
    }

    // Zero out the last positive weight: sampling must fail with
    // AllZeroFitness, exactly like the one-shot selectors.
    sampler.update(1, 0.0).unwrap();
    assert_eq!(sampler.total_weight(), 0.0);
    assert_eq!(
        sampler.sample(&mut rng),
        Err(SelectionError::AllZeroFitness)
    );

    // Revive a different index and the sampler recovers.
    sampler.update(0, 1.5).unwrap();
    assert_eq!(sampler.sample(&mut rng).unwrap(), 0);
}

#[test]
fn all_dynamic_engines_agree_in_distribution() {
    let weights: Vec<f64> = vec![0.0, 1.0, 4.0, 2.0, 0.0, 8.0, 1.0, 0.5];
    let trials = 80_000;
    let engines: Vec<(&str, Box<dyn DynamicSampler>)> = vec![
        (
            "fenwick",
            Box::new(FenwickSampler::from_weights(weights.clone()).unwrap()),
        ),
        (
            "alias-rebuild",
            Box::new(RebuildingAliasSampler::from_weights(weights.clone()).unwrap()),
        ),
        (
            "sharded-arena",
            Box::new(ShardedArena::from_weights(weights.clone(), 3).unwrap()),
        ),
    ];
    for (name, engine) in engines {
        let counts = empirical(engine.as_ref(), trials, 42);
        assert_conformance(name, &counts, &weights, 0.001);
        assert_eq!(counts[0], 0, "{name} drew a zero-weight index");
        assert_eq!(counts[4], 0, "{name} drew a zero-weight index");
    }
}

#[test]
fn sharded_arena_batches_are_identical_across_rayon_thread_counts() {
    let weights: Vec<f64> = (0..4_096).map(|i| ((i % 31) + 1) as f64).collect();
    let arena = ShardedArena::from_weights(weights, 16).unwrap();
    // Both batch APIs fan out per trial (counts delegates to indices), so
    // 30k trials sit far above the rayon shim's parallel threshold and the
    // work is really split differently for each thread count below.
    let trials = 30_000;
    let master_seed = 99;

    let reference = batch_sample_indices(&arena, trials, master_seed).unwrap();
    assert_eq!(reference.len(), trials as usize);
    let reference_counts = batch_sample_counts(&arena, trials, master_seed).unwrap();
    assert_eq!(reference_counts.iter().sum::<u64>(), trials);

    for threads in [1usize, 2, 3, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool builds");
        let (indices, counts) = pool.install(|| {
            (
                batch_sample_indices(&arena, trials, master_seed).unwrap(),
                batch_sample_counts(&arena, trials, master_seed).unwrap(),
            )
        });
        assert_eq!(
            indices, reference,
            "per-trial indices changed with {threads} rayon threads"
        );
        assert_eq!(
            counts, reference_counts,
            "batch counts changed with {threads} rayon threads"
        );
    }

    // The two batch APIs must agree with each other as well.
    let mut recount = vec![0u64; arena.len()];
    for &i in &reference {
        recount[i] += 1;
    }
    assert_eq!(recount, reference_counts);
}

#[test]
fn sharded_arena_batch_matches_flat_fenwick_batch() {
    // Same weights, same master seed: the arena's two-level walk must give
    // the same per-trial indices as a flat Fenwick tree, because both invert
    // the same CDF with the same uniform draw.
    let weights: Vec<f64> = (0..1_000).map(|i| ((i % 11) as f64) * 0.5).collect();
    let arena = ShardedArena::from_weights(weights.clone(), 8).unwrap();
    let fenwick = FenwickSampler::from_weights(weights).unwrap();
    let arena_counts = batch_sample_counts(&arena, 20_000, 7).unwrap();
    let fenwick_counts = batch_sample_counts(&fenwick, 20_000, 7).unwrap();
    let diff: u64 = arena_counts
        .iter()
        .zip(&fenwick_counts)
        .map(|(a, b)| a.abs_diff(*b))
        .sum();
    // Identical up to floating-point edge draws (division re-quantisation in
    // the arena's shard delegation); allow a vanishing fraction.
    assert!(
        diff <= 4,
        "arena and fenwick disagreed on {diff} of 20000 draws"
    );
}
