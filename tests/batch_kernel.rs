//! Test coverage for the unified batched sampling kernel: the buffer
//! primitives (`sample_into` / `select_into`) must agree **draw for draw**
//! with the one-at-a-time APIs under the same substream seeds, the shared
//! `BatchDriver` must be schedule-independent, and the batched engine path
//! must stay chi-square-exact on every registered backend.

mod support;

use lrb_core::batch::BatchDriver;
use lrb_core::sequential::{AliasSampler, CdfSampler, StochasticAcceptanceSelector};
use lrb_core::{DynamicSampler, Fitness, PreparedSampler, Selector};
use lrb_dynamic::{
    FenwickSampler, RebuildingAliasSampler, ShardedArena, StochasticAcceptanceSampler,
};
use lrb_engine::{BackendChoice, BackendRegistry, EngineConfig, SelectionEngine};
use lrb_rng::Philox4x32;
use proptest::prelude::*;
use support::assert_exact;

proptest! {
    /// Every dynamic sampler's buffer override consumes randomness exactly
    /// like its one-at-a-time path: identical Philox substreams → identical
    /// draws.
    #[test]
    fn prop_dynamic_sample_into_agrees_draw_for_draw(
        weights in proptest::collection::vec(0.0f64..10.0, 2..96),
        substream: u64,
    ) {
        prop_assume!(weights.iter().any(|&x| x > 0.0));
        let samplers: Vec<(&str, Box<dyn DynamicSampler>)> = vec![
            ("fenwick", Box::new(FenwickSampler::from_weights(weights.clone()).unwrap())),
            (
                "stochastic-acceptance",
                Box::new(StochasticAcceptanceSampler::from_weights(weights.clone()).unwrap()),
            ),
            (
                "rebuilding-alias",
                Box::new(RebuildingAliasSampler::from_weights(weights.clone()).unwrap()),
            ),
        ];
        for (name, sampler) in samplers {
            let mut rng_batch = Philox4x32::for_substream(7, substream);
            let mut rng_loop = Philox4x32::for_substream(7, substream);
            let mut buffer = vec![0usize; 64];
            sampler.sample_into(&mut rng_batch, &mut buffer).unwrap();
            for (t, &filled) in buffer.iter().enumerate() {
                prop_assert_eq!(
                    filled,
                    sampler.sample(&mut rng_loop).unwrap(),
                    "{} diverged at draw {}", name, t
                );
            }
        }
    }

    /// Prepared samplers (Vose alias, CDF binary search): same agreement.
    #[test]
    fn prop_prepared_sample_into_agrees_draw_for_draw(
        weights in proptest::collection::vec(0.0f64..10.0, 2..96),
        substream: u64,
    ) {
        prop_assume!(weights.iter().any(|&x| x > 0.0));
        let fitness = Fitness::new(weights).unwrap();
        let samplers: Vec<(&str, Box<dyn PreparedSampler>)> = vec![
            ("alias", Box::new(AliasSampler::new(&fitness).unwrap())),
            ("cdf", Box::new(CdfSampler::new(&fitness).unwrap())),
        ];
        for (name, sampler) in samplers {
            let mut rng_batch = Philox4x32::for_substream(11, substream);
            let mut rng_loop = Philox4x32::for_substream(11, substream);
            let mut buffer = vec![0usize; 64];
            sampler.sample_into(&mut rng_batch, &mut buffer);
            for (t, &filled) in buffer.iter().enumerate() {
                prop_assert_eq!(
                    filled,
                    sampler.sample(&mut rng_loop),
                    "{} diverged at draw {}", name, t
                );
            }
        }
    }

    /// One-shot selectors: the buffer override (and the default loop) agree
    /// with repeated `select` under a shared stream.
    #[test]
    fn prop_select_into_agrees_draw_for_draw(
        weights in proptest::collection::vec(0.0f64..10.0, 2..96),
        substream: u64,
    ) {
        prop_assume!(weights.iter().any(|&x| x > 0.0));
        let fitness = Fitness::new(weights).unwrap();
        let selectors: Vec<(&str, Box<dyn Selector>)> = vec![
            (
                "stochastic-acceptance",
                Box::new(StochasticAcceptanceSelector::default()),
            ),
            (
                "linear-scan",
                Box::new(lrb_core::sequential::LinearScanSelector),
            ),
        ];
        for (name, selector) in selectors {
            let mut rng_batch = Philox4x32::for_substream(13, substream);
            let mut rng_loop = Philox4x32::for_substream(13, substream);
            let mut buffer = vec![0usize; 48];
            selector
                .select_into(&fitness, &mut rng_batch, &mut buffer)
                .unwrap();
            for (t, &filled) in buffer.iter().enumerate() {
                prop_assert_eq!(
                    filled,
                    selector.select(&fitness, &mut rng_loop).unwrap(),
                    "{} diverged at draw {}", name, t
                );
            }
        }
    }

    /// The engine snapshot's buffer path agrees with its one-at-a-time path
    /// on every registered backend.
    #[test]
    fn prop_snapshot_sample_into_agrees_draw_for_draw(
        weights in proptest::collection::vec(0.0f64..10.0, 2..96),
        substream: u64,
    ) {
        prop_assume!(weights.iter().any(|&x| x > 0.0));
        for name in BackendRegistry::standard().names() {
            let engine = SelectionEngine::new(
                weights.clone(),
                EngineConfig {
                    backend: BackendChoice::Fixed(name),
                    ..EngineConfig::default()
                },
            )
            .unwrap();
            let snapshot = engine.snapshot();
            let mut rng_batch = Philox4x32::for_substream(17, substream);
            let mut rng_loop = Philox4x32::for_substream(17, substream);
            let mut buffer = vec![0usize; 64];
            snapshot.sample_into(&mut rng_batch, &mut buffer).unwrap();
            for (t, &filled) in buffer.iter().enumerate() {
                prop_assert_eq!(
                    filled,
                    snapshot.sample(&mut rng_loop).unwrap(),
                    "{} diverged at draw {}", name, t
                );
            }
        }
    }
}

#[test]
fn one_driver_serves_core_dynamic_and_engine_identically() {
    // The three layers all freeze the same weights into Fenwick-CDF
    // inversion and run the same BatchDriver, so their per-trial indices
    // must be identical.
    let weights: Vec<f64> = (0..600).map(|i| ((i % 13) as f64) * 0.5).collect();
    let trials = 20_000u64;
    let seed = 99u64;

    let fenwick = FenwickSampler::from_weights(weights.clone()).unwrap();
    let from_dynamic = lrb_dynamic::batch_sample_indices(&fenwick, trials, seed).unwrap();

    let arena = ShardedArena::from_weights(weights.clone(), 7).unwrap();
    let from_arena = arena.sample_batch(trials, seed).unwrap();

    let engine = SelectionEngine::new(
        weights.clone(),
        EngineConfig {
            backend: BackendChoice::Fixed("fenwick"),
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let from_engine = engine.snapshot().batch_indices(trials, seed).unwrap();

    let from_driver = BatchDriver::new()
        .drive_indices(seed, trials, |rng, out| fenwick.sample_into(rng, out))
        .unwrap();

    assert_eq!(from_dynamic, from_driver);
    assert_eq!(from_arena, from_driver);
    assert_eq!(from_engine, from_driver);
}

#[test]
fn batched_engine_path_is_chi_square_exact_on_every_backend() {
    let weights = vec![0.5, 3.0, 0.0, 1.5, 2.0, 8.0, 1.0, 0.25];
    for name in BackendRegistry::standard().names() {
        let engine = SelectionEngine::new(
            weights.clone(),
            EngineConfig {
                backend: BackendChoice::Fixed(name),
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let snapshot = engine.snapshot();

        // The rayon batch path.
        let counts = snapshot.batch_counts(120_000, 37).unwrap();
        assert_eq!(counts[2], 0, "{name} drew a zero-weight category");
        assert_exact(&format!("{name} batch path"), &counts, &weights);

        // The single-reader buffer path.
        let mut rng = Philox4x32::for_substream(37, 1);
        let mut buffer = vec![0usize; 4096];
        let mut counts = vec![0u64; weights.len()];
        for _ in 0..24 {
            snapshot.sample_into(&mut rng, &mut buffer).unwrap();
            for &index in &buffer {
                counts[index] += 1;
            }
        }
        assert_exact(&format!("{name} buffer path"), &counts, &weights);
    }
}

#[test]
fn driver_batches_are_thread_count_invariant_at_every_layer() {
    let weights: Vec<f64> = (0..2_048).map(|i| ((i % 31) + 1) as f64).collect();
    let engine = SelectionEngine::new(weights.clone(), EngineConfig::default()).unwrap();
    let snapshot = engine.snapshot();
    let arena = ShardedArena::from_weights(weights, 16).unwrap();
    let trials = 40_000u64;

    let engine_reference = snapshot.batch_indices(trials, 5).unwrap();
    let arena_reference = arena.sample_batch(trials, 5).unwrap();
    for threads in [1usize, 2, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let (from_engine, from_arena) = pool.install(|| {
            (
                snapshot.batch_indices(trials, 5).unwrap(),
                arena.sample_batch(trials, 5).unwrap(),
            )
        });
        assert_eq!(from_engine, engine_reference, "{threads} threads (engine)");
        assert_eq!(from_arena, arena_reference, "{threads} threads (arena)");
    }
}
