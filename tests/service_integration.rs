//! End-to-end tests of the sharded selection service over real sockets:
//! a Unix-domain server under mixed single/batch/update traffic, exact
//! two-level conformance (service draws vs the flat distribution), wire
//! error mapping, and a TCP smoke test.

use lrb_core::SelectionError;
use lrb_service::{
    protocol, ServiceClient, ServiceConfig, ServiceError, ServiceServer, ShardedService,
};
use lrb_stats::chi_square_gof;

/// A per-test UDS path under the system temp dir (PID + name keyed, so
/// parallel tests never collide).
#[cfg(unix)]
fn socket_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("lrb-service-{}-{name}.sock", std::process::id()))
}

fn weights_1_to_24() -> Vec<f64> {
    (1..=24).map(f64::from).collect()
}

#[cfg(unix)]
#[test]
fn uds_two_level_draws_match_the_flat_distribution() {
    let weights = weights_1_to_24();
    let service = ShardedService::new(
        weights.clone(),
        ServiceConfig {
            shards: 6,
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let path = socket_path("chi2");
    let server = ServiceServer::bind_uds(service.core(), &path, 0x5E1EC7).unwrap();

    let total: f64 = weights.iter().sum();
    let probs: Vec<f64> = weights.iter().map(|w| w / total).collect();
    // A fresh connection gets a fresh server-side RNG stream, so "best of
    // two seeds" is "best of two connections" (a correct sampler fails a
    // 1% chi-square ~1% of the time; both failing is ~10⁻⁴).
    let consistent = || {
        let mut client = ServiceClient::connect_uds(&path).unwrap();
        let mut counts = vec![0u64; weights.len()];
        for _ in 0..10 {
            for index in client.draw_batch(3_000).unwrap() {
                counts[index] += 1;
            }
        }
        chi_square_gof(&counts, &probs).is_consistent(0.01)
    };
    assert!(
        consistent() || consistent(),
        "two-level service draws failed chi-square against the flat law on two connections"
    );
    drop(server);
}

#[cfg(unix)]
#[test]
fn uds_mixed_traffic_stays_coherent() {
    let service = ShardedService::new(
        weights_1_to_24(),
        ServiceConfig {
            shards: 4,
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let path = socket_path("mixed");
    let server = ServiceServer::bind_uds(service.core(), &path, 0x11FE).unwrap();

    // Concurrent clients: two single-draw loops (exercising the
    // aggregator), one batch-draw loop, one writer doing updates.
    let mut handles = Vec::new();
    for _ in 0..2 {
        let path = path.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = ServiceClient::connect_uds(&path).unwrap();
            for _ in 0..100 {
                let pick = client.draw().unwrap();
                assert!(pick < 24);
            }
        }));
    }
    {
        let path = path.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = ServiceClient::connect_uds(&path).unwrap();
            for _ in 0..20 {
                let picks = client.draw_batch(64).unwrap();
                assert_eq!(picks.len(), 64);
                assert!(picks.iter().all(|&p| p < 24));
            }
        }));
    }
    {
        let path = path.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = ServiceClient::connect_uds(&path).unwrap();
            for round in 0..10u32 {
                client
                    .update_many(&[(0, f64::from(round) + 2.0), (23, 50.0)])
                    .unwrap();
                client.scale_all(1.0).unwrap();
                client.publish().unwrap();
            }
        }));
    }
    for handle in handles {
        handle.join().unwrap();
    }

    // The writer's final state is visible through the totals endpoint.
    let mut client = ServiceClient::connect_uds(&path).unwrap();
    let totals = client.totals().unwrap();
    assert_eq!(totals.len(), 4);
    // Shards are 6 categories each; shard 0 = (11)+2+3+4+5+6, shard 3 =
    // 19+…+23 + 50.
    assert_eq!(totals[0], 31.0);
    assert_eq!(totals[3], (19..24).map(f64::from).sum::<f64>() + 50.0);

    // The aggregator actually coalesced work and the metrics document
    // reports it.
    let metrics = client.metrics_json().unwrap();
    for needle in [
        "lrb_service_draws_total",
        "lrb_service_agg_batched_draws_total",
        "lrb_service_shard0_publish_ns",
        "lrb_service_shard_imbalance",
    ] {
        assert!(metrics.contains(needle), "missing {needle} in metrics");
    }
    let telemetry = service.telemetry();
    assert!(
        telemetry.batched_draws() >= 200,
        "single draws bypassed the aggregator"
    );
    assert!(
        telemetry.publishes() >= 40,
        "publishes were not routed per shard"
    );
    drop(server);
}

#[cfg(unix)]
#[test]
fn uds_errors_map_to_wire_codes() {
    let service = ShardedService::new(vec![1.0, 2.0], ServiceConfig::default()).unwrap();
    let path = socket_path("errors");
    let server = ServiceServer::bind_uds(service.core(), &path, 3).unwrap();
    let mut client = ServiceClient::connect_uds(&path).unwrap();

    match client.update(5, 1.0) {
        Err(ServiceError::Remote { code, message }) => {
            assert_eq!(code, protocol::codes::INDEX_OUT_OF_RANGE);
            assert!(message.contains('5'), "unhelpful message: {message}");
        }
        other => panic!("expected a remote index error, got {other:?}"),
    }
    match client.scale_all(f64::NAN) {
        Err(ServiceError::Remote { code, .. }) => {
            assert_eq!(code, protocol::codes::INVALID_SCALE)
        }
        other => panic!("expected a remote scale error, got {other:?}"),
    }
    // The connection survives in-band errors.
    assert!(client.draw().unwrap() < 2);

    // An all-or-nothing batch with one bad index leaves the service clean.
    match client.update_many(&[(0, 9.0), (7, 1.0)]) {
        Err(ServiceError::Remote { code, .. }) => {
            assert_eq!(code, protocol::codes::INDEX_OUT_OF_RANGE)
        }
        other => panic!("expected a remote batch error, got {other:?}"),
    }
    client.publish().unwrap();
    assert_eq!(client.totals().unwrap(), vec![1.0, 2.0]);
    drop(server);
}

#[test]
fn tcp_round_trip_draw_update_publish() {
    let service = ShardedService::new(weights_1_to_24(), ServiceConfig::default()).unwrap();
    let server = ServiceServer::bind_tcp(service.core(), "127.0.0.1:0", 0x7C9).unwrap();
    let mut client = ServiceClient::connect(server.local_addr()).unwrap();

    assert!(client.draw().unwrap() < 24);
    client.update(0, 100.0).unwrap();
    let versions = client.publish().unwrap();
    assert_eq!(versions.len(), 4);
    assert_eq!(versions[0], 1);
    let totals = client.totals().unwrap();
    assert_eq!(totals[0], 100.0 + (2..=6).map(f64::from).sum::<f64>());
    drop(server);
}

#[test]
fn in_process_service_rejects_what_the_engine_rejects() {
    // The service's validation surface mirrors the engine's, so client
    // bugs fail identically whether they arrive by socket or in-process.
    let service = ShardedService::new(weights_1_to_24(), ServiceConfig::default()).unwrap();
    assert_eq!(
        service.update(24, 1.0),
        Err(SelectionError::IndexOutOfRange { index: 24, len: 24 })
    );
    assert_eq!(
        service.scale_all(-0.5),
        Err(SelectionError::InvalidScale { factor: -0.5 })
    );
}
