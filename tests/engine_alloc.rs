//! Allocation accounting for the engine's reader hot path.
//!
//! The whole point of the lock-free read side is that a steady-state
//! reader — thread-local snapshot cache warm, buffer preallocated — touches
//! no allocator at all: `SelectionEngine::read` + `Snapshot::sample_into`
//! is a generation probe, a TLS hit and the backend's tight loop. This
//! test installs a counting global allocator (this test binary only; each
//! integration-test target gets its own process) and asserts **zero**
//! allocations and deallocations across millions of steady-state draws,
//! for every standard backend.
//!
//! Counting is **per thread** (a `const`-initialised `thread_local`, so the
//! counter itself never allocates): the harness runs tests on sibling
//! threads, and only the measuring thread's allocator traffic belongs to
//! the path under test.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// `System`, with every allocator entry counted on the calling thread.
struct CountingAllocator;

thread_local! {
    static EVENTS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY (of the impl, not `unsafe` blocks): pure delegation to `System`
// plus a thread-local counter bump — no allocator state of our own, and a
// const-initialised TLS cell cannot recurse into the allocator.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        EVENTS.with(|events| events.set(events.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        EVENTS.with(|events| events.set(events.get() + 1));
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        EVENTS.with(|events| events.set(events.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAllocator = CountingAllocator;

/// Allocator events (allocs + deallocs + reallocs) performed by **this
/// thread** while running `f`.
fn allocator_events<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = EVENTS.with(Cell::get);
    let result = f();
    let after = EVENTS.with(Cell::get);
    (after - before, result)
}

use lrb_engine::{BackendChoice, BackendRegistry, EngineConfig, SelectionEngine};
use lrb_rng::Philox4x32;

#[test]
fn steady_state_reader_samples_allocate_nothing() {
    for name in BackendRegistry::standard().names() {
        let config = EngineConfig {
            backend: BackendChoice::Fixed(name),
            ..EngineConfig::default()
        };
        let weights: Vec<f64> = (0..4_096).map(|i| ((i % 13) + 1) as f64).collect();
        let engine = SelectionEngine::new(weights, config).unwrap();
        let mut rng = Philox4x32::for_substream(7, 1);
        let mut buffer = vec![0usize; 256];
        // Warm-up: fault in the thread-local snapshot cache, the reader
        // shard id and any lazy TLS the first acquisition performs.
        engine
            .read(|snapshot| snapshot.sample_into(&mut rng, &mut buffer))
            .unwrap();
        let (events, total) = allocator_events(|| {
            let mut total = 0usize;
            for _ in 0..4_000 {
                engine
                    .read(|snapshot| snapshot.sample_into(&mut rng, &mut buffer))
                    .unwrap();
                total += buffer.len();
            }
            total
        });
        assert_eq!(total, 4_000 * 256);
        assert_eq!(
            events, 0,
            "{name}: steady-state reader hot path touched the allocator"
        );
    }
}

#[test]
fn steady_state_single_draws_allocate_nothing() {
    // Even the unbatched convenience path is allocation-free once warm.
    let engine = SelectionEngine::new(vec![1.0, 2.0, 3.0], EngineConfig::default()).unwrap();
    let mut rng = Philox4x32::for_substream(9, 2);
    let _ = engine.sample(&mut rng).unwrap();
    let (events, _) = allocator_events(|| {
        for _ in 0..100_000 {
            engine.sample(&mut rng).unwrap();
        }
    });
    assert_eq!(events, 0, "single-draw path touched the allocator");
}

#[test]
fn publishes_refresh_readers_without_per_sample_allocation() {
    // Across a publish the reader pays one bounded refresh (the new
    // snapshot acquisition), then returns to zero-allocation sampling.
    let engine = SelectionEngine::new(vec![1.0; 512], EngineConfig::default()).unwrap();
    let mut rng = Philox4x32::for_substream(11, 3);
    let mut buffer = vec![0usize; 64];
    engine
        .read(|snapshot| snapshot.sample_into(&mut rng, &mut buffer))
        .unwrap();
    engine.enqueue(0, 5.0).unwrap();
    engine.publish().unwrap();
    // First post-publish read refreshes the cache (allowed to allocate
    // nothing itself — the Arc already exists — but don't assert on it);
    // everything after must be silent again.
    engine
        .read(|snapshot| snapshot.sample_into(&mut rng, &mut buffer))
        .unwrap();
    let (events, _) = allocator_events(|| {
        for _ in 0..2_000 {
            engine
                .read(|snapshot| snapshot.sample_into(&mut rng, &mut buffer))
                .unwrap();
        }
    });
    assert_eq!(
        events, 0,
        "post-publish steady state is not allocation-free"
    );
    // Reader-thread enumeration really assigned this thread a shard.
    assert!(engine.snapshot().served() > 0);
}
