//! End-to-end tests of the epoll reactor front: a 1000-connection fan-in
//! storm with interleaved pipelined draws (chi-square on the merged
//! histogram, bounded server threads), the in-flight backpressure budget,
//! the slow-consumer disconnect policy, response ordering under
//! pipelining, and torn-frame trickle delivery through the reactor path.

#![cfg(unix)]

use std::io::{Read, Write};
use std::os::unix::net::UnixStream;

use lrb_service::{
    protocol, ServerConfig, ServiceClient, ServiceConfig, ServiceEvent, ServiceServer,
    ShardedService,
};
use lrb_stats::chi_square_gof;

/// A per-test UDS path under the system temp dir (PID + name keyed, so
/// parallel tests never collide).
fn socket_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("lrb-reactor-{}-{name}.sock", std::process::id()))
}

fn weights_1_to_24() -> Vec<f64> {
    (1..=24).map(f64::from).collect()
}

/// The soft fd limit, from `/proc/self/limits` (no getrlimit without
/// unsafe). Falls back to the conservative classic default.
fn fd_soft_limit() -> usize {
    std::fs::read_to_string("/proc/self/limits")
        .ok()
        .and_then(|limits| {
            limits.lines().find_map(|line| {
                line.strip_prefix("Max open files")?
                    .split_whitespace()
                    .next()?
                    .parse()
                    .ok()
            })
        })
        .unwrap_or(1024)
}

/// Threads in this process, from `/proc/self/status`.
fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find_map(|line| line.strip_prefix("Threads:")?.trim().parse().ok())
        })
        .expect("/proc/self/status has a Threads: line")
}

/// Write `frame_count` `DRAW_BATCH(count)` request frames in one burst.
fn write_draw_batches(stream: &mut UnixStream, counts: &[u32]) {
    let mut wire = Vec::new();
    for &count in counts {
        protocol::encode_request(&mut wire, protocol::OpCode::DrawBatch, &count.to_le_bytes());
    }
    stream.write_all(&wire).unwrap();
}

#[test]
fn fan_in_storm_pipelined_draws_hold_the_two_level_law() {
    let weights = weights_1_to_24();
    let service = ShardedService::new(
        weights.clone(),
        ServiceConfig {
            shards: 6,
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let path = socket_path("fanin");
    let server = ServiceServer::bind_uds(service.core(), &path, 0xFA41).unwrap();

    // 1000 connections when the fd budget allows: each costs two fds
    // (client + server end); leave generous slack for the harness.
    let connections = 1000.min((fd_soft_limit().saturating_sub(128)) / 2).max(64);
    const DRAWS_PER_CONN: usize = 24;
    const WINDOW: usize = 4;

    let total: f64 = weights.iter().sum();
    let probs: Vec<f64> = weights.iter().map(|w| w / total).collect();

    let storm = |counts: &mut [u64]| {
        // Accept storm: open everything before drawing anything.
        let mut clients: Vec<ServiceClient> = (0..connections)
            .map(|_| ServiceClient::connect_uds(&path).unwrap())
            .collect();
        let baseline = thread_count();
        assert!(
            baseline < 128,
            "{connections} open connections pushed the process to {baseline} threads — \
             the server is spawning per-connection"
        );

        // Interleaved pipelining: every connection keeps WINDOW draws in
        // flight; rounds rotate across all connections so the reactors
        // juggle them concurrently rather than serially.
        for client in &mut clients {
            for _ in 0..WINDOW {
                client.queue_draw();
            }
            client.flush().unwrap();
        }
        for round in 0..DRAWS_PER_CONN {
            for client in clients.iter_mut() {
                let index = client.recv_draw().unwrap();
                counts[index] += 1;
                if round + WINDOW < DRAWS_PER_CONN {
                    client.queue_draw();
                    client.flush().unwrap();
                }
            }
        }
        for client in clients.iter_mut() {
            while client.outstanding() > 0 {
                let index = client.recv_draw().unwrap();
                counts[index] += 1;
            }
        }
    };

    // A correct sampler fails a 1% chi-square ~1% of the time; re-run the
    // storm with fresh connections (fresh server-side RNG streams) before
    // declaring the merged histogram broken.
    let consistent = || {
        let mut counts = vec![0u64; weights.len()];
        storm(&mut counts);
        let drawn: u64 = counts.iter().sum();
        assert_eq!(
            drawn,
            (connections * DRAWS_PER_CONN) as u64,
            "storm lost draws"
        );
        chi_square_gof(&counts, &probs).is_consistent(0.01)
    };
    assert!(
        consistent() || consistent(),
        "merged fan-in histogram failed chi-square against the flat law twice"
    );

    let telemetry = service.telemetry();
    assert!(
        telemetry.connects() >= connections as u64,
        "server accepted {} connections, expected at least {connections}",
        telemetry.connects(),
    );
    drop(server);
}

#[test]
fn backpressure_budget_defers_reads_until_responses_drain() {
    let service = ShardedService::new(weights_1_to_24(), ServiceConfig::default()).unwrap();
    let path = socket_path("budget");
    let server = ServiceServer::bind_uds_with(
        service.core(),
        &path,
        0xB4D6,
        ServerConfig {
            inflight_budget: 4,
            ..ServerConfig::default()
        },
    )
    .unwrap();

    // A burst far beyond the budget: every draw must still be answered
    // (the overflow waits in the kernel socket buffer, not in server
    // memory), and the deferral must be visible in telemetry. The burst
    // usually lands in the socket buffer faster than the reactor drains
    // it, but that is a race — retry a few times before declaring the
    // budget dead.
    let mut deferred = false;
    for _ in 0..5 {
        let mut client = ServiceClient::connect_uds(&path).unwrap();
        for _ in 0..64 {
            client.queue_draw();
        }
        client.flush().unwrap();
        for _ in 0..64 {
            assert!(client.recv_draw().unwrap() < 24);
        }
        if service.telemetry().read_deferrals() > 0 {
            deferred = true;
            break;
        }
    }
    assert!(
        deferred,
        "a 64-draw burst against a budget of 4 never deferred a read"
    );
    drop(server);
}

#[test]
fn slow_consumer_is_disconnected_and_journaled() {
    let service = ShardedService::new(weights_1_to_24(), ServiceConfig::default()).unwrap();
    let path = socket_path("slow");
    let server = ServiceServer::bind_uds_with(
        service.core(),
        &path,
        0x510,
        ServerConfig {
            max_outbound_bytes: 64 * 1024,
            ..ServerConfig::default()
        },
    )
    .unwrap();

    // Ask for ~1 MiB of responses (8 × 16384 draws × 8 bytes) and read
    // none of them: the socket buffer fills, the server's outbound backlog
    // blows the 64 KiB cap, and the policy disconnects us.
    let mut stream = UnixStream::connect(&path).unwrap();
    write_draw_batches(&mut stream, &[16_384; 8]);
    // Stay slow until the policy has actually fired: reading concurrently
    // with response production could drain fast enough that the backlog
    // never tops the cap, and then no EOF ever comes.
    let disconnect_deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while service.telemetry().slow_consumer_disconnects() == 0 {
        assert!(
            std::time::Instant::now() < disconnect_deadline,
            "the stalled connection was never dropped by the cap"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    // The disconnect closes the socket; draining what the socket buffered
    // must end in EOF, not hang.
    let mut sink = Vec::new();
    stream.read_to_end(&mut sink).expect("EOF, not an error");

    let telemetry = service.telemetry();
    assert_eq!(
        telemetry.slow_consumer_disconnects(),
        1,
        "the stalled connection was not dropped by the cap"
    );
    assert!(
        telemetry.journal().iter().any(
            |e| matches!(e, ServiceEvent::SlowConsumer { buffered, .. } if *buffered > 64 * 1024)
        ),
        "no SlowConsumer event journaled: {:?}",
        telemetry.journal()
    );

    // The server survives; a well-behaved connection still works.
    let mut client = ServiceClient::connect_uds(&path).unwrap();
    assert!(client.draw().unwrap() < 24);
    drop(server);
}

#[test]
fn pipelined_responses_arrive_in_request_order() {
    let service = ShardedService::new(weights_1_to_24(), ServiceConfig::default()).unwrap();
    let path = socket_path("order");
    let server = ServiceServer::bind_uds(service.core(), &path, 0x0D4).unwrap();

    // Distinguishable requests in one burst: DRAW_BATCH(1..=8) answers
    // carry their count, so any reordering is visible.
    let mut stream = UnixStream::connect(&path).unwrap();
    let counts: Vec<u32> = (1..=8).collect();
    write_draw_batches(&mut stream, &counts);
    for expect in 1..=8u32 {
        let payload = protocol::read_response(&mut stream).unwrap();
        let got = u32::from_le_bytes(payload[..4].try_into().unwrap());
        assert_eq!(got, expect, "response out of order");
        assert_eq!(payload.len(), 4 + 8 * expect as usize);
    }

    // A draw run sandwiched between batches keeps its slots: the server
    // coalesces the two DRAWs into one fused batch but still answers one
    // OK frame per request, in place.
    let mut wire = Vec::new();
    protocol::encode_request(&mut wire, protocol::OpCode::DrawBatch, &3u32.to_le_bytes());
    protocol::encode_request(&mut wire, protocol::OpCode::Draw, &[]);
    protocol::encode_request(&mut wire, protocol::OpCode::Draw, &[]);
    protocol::encode_request(&mut wire, protocol::OpCode::DrawBatch, &5u32.to_le_bytes());
    stream.write_all(&wire).unwrap();
    let sizes: Vec<usize> = (0..4)
        .map(|_| protocol::read_response(&mut stream).unwrap().len())
        .collect();
    assert_eq!(sizes, vec![4 + 24, 8, 8, 4 + 40]);
    drop(server);
}

#[test]
fn torn_frames_trickle_through_the_reactor() {
    let service = ShardedService::new(weights_1_to_24(), ServiceConfig::default()).unwrap();
    let path = socket_path("trickle");
    let server = ServiceServer::bind_uds(service.core(), &path, 0x7E42).unwrap();

    let mut stream = UnixStream::connect(&path).unwrap();
    let mut wire = Vec::new();
    protocol::encode_request(&mut wire, protocol::OpCode::DrawBatch, &5u32.to_le_bytes());

    // Byte-by-byte with pauses: the reactor sees a long sequence of
    // 1-byte reads and must resume the parse across every one of them.
    for &byte in &wire {
        stream.write_all(&[byte]).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let payload = protocol::read_response(&mut stream).unwrap();
    assert_eq!(u32::from_le_bytes(payload[..4].try_into().unwrap()), 5);

    // A torn boundary inside a pipelined pair: first frame's tail and the
    // second frame arrive in one segment.
    let mut pair = Vec::new();
    protocol::encode_request(&mut pair, protocol::OpCode::DrawBatch, &2u32.to_le_bytes());
    let split = pair.len() - 3;
    protocol::encode_request(&mut pair, protocol::OpCode::DrawBatch, &4u32.to_le_bytes());
    stream.write_all(&pair[..split]).unwrap();
    stream.flush().unwrap();
    std::thread::sleep(std::time::Duration::from_millis(5));
    stream.write_all(&pair[split..]).unwrap();
    for expect in [2u32, 4] {
        let payload = protocol::read_response(&mut stream).unwrap();
        assert_eq!(u32::from_le_bytes(payload[..4].try_into().unwrap()), expect);
    }
    drop(server);
}

#[test]
fn graceful_drain_flushes_pipelined_responses_then_closes() {
    let service = ShardedService::new(weights_1_to_24(), ServiceConfig::default()).unwrap();
    let path = socket_path("drain");
    let mut server = ServiceServer::bind_uds(service.core(), &path, 0xD7A1).unwrap();

    const FRAMES: usize = 32;
    let mut stream = UnixStream::connect(&path).unwrap();
    write_draw_batches(&mut stream, &[3; FRAMES]);
    // Let the burst reach the reactor and its runs reach the workers
    // before the drain stops reading new requests.
    std::thread::sleep(std::time::Duration::from_millis(200));
    server.shutdown_within(std::time::Duration::from_secs(5));

    // Every pipelined response was completed and flushed before the
    // close, in request order...
    for _ in 0..FRAMES {
        let payload = protocol::read_response(&mut stream).unwrap();
        assert_eq!(u32::from_le_bytes(payload[..4].try_into().unwrap()), 3);
    }
    // ...and the connection then reads clean EOF.
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "bytes after the last drained response");

    // The drain journaled one Drained entry per reactor, none of them
    // abandoning work, and the reactor that held this connection saw it.
    let drained: Vec<(u64, u64)> = service
        .telemetry()
        .journal()
        .iter()
        .filter_map(|event| match event {
            ServiceEvent::Drained { conns, abandoned } => Some((*conns, *abandoned)),
            _ => None,
        })
        .collect();
    assert!(
        !drained.is_empty(),
        "no Drained event in the service journal"
    );
    assert!(
        drained.iter().all(|&(_, abandoned)| abandoned == 0),
        "drain abandoned in-flight work: {drained:?}"
    );
    assert!(
        drained.iter().any(|&(conns, _)| conns >= 1),
        "no reactor reported draining our connection: {drained:?}"
    );
}

#[test]
fn client_rides_through_a_server_restart() {
    use std::time::Duration;

    let service = ShardedService::new(weights_1_to_24(), ServiceConfig::default()).unwrap();
    let path = socket_path("restart");
    let server = ServiceServer::bind_uds(service.core(), &path, 0x0FF1).unwrap();

    let config = lrb_service::ClientConfig {
        deadline: Some(Duration::from_secs(2)),
        retries: 3,
        reconnect_attempts: 20,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(20),
        seed: 0xC11E,
    };
    let mut client = lrb_service::ServiceClient::connect_with(
        &lrb_service::ServerAddr::Unix(path.clone()),
        config,
    )
    .unwrap();
    assert!(client.draw().unwrap() < 24);

    // Bounce the server: the client's connection goes stale, the socket
    // file vanishes, a fresh server appears at the same address.
    drop(server);
    let server = ServiceServer::bind_uds(service.core(), &path, 0x0FF2).unwrap();

    // An idempotent request after the bounce reconnects and retries
    // transparently; the stats expose that it happened.
    assert!(client.draw().unwrap() < 24);
    let stats = client.stats();
    assert!(stats.reconnects >= 1, "client never reconnected: {stats:?}");
    assert!(stats.retries >= 1, "client never retried: {stats:?}");
    assert!(client.is_connected());
    drop(server);
}
