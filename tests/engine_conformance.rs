//! Statistical conformance of the serving layer: chi-square tests holding
//! the [`StochasticAcceptanceSampler`] and the engine's snapshot path — all
//! three frozen backends — to the source paper's exactness standard
//! (`F_i = w_i / Σ w_j`), across multiple seeds, through coalesced update
//! batches, and at the degenerate edges (all-equal weights, single
//! survivor).

use lrb_core::{DynamicSampler, SelectionError};
use lrb_dynamic::StochasticAcceptanceSampler;
use lrb_engine::{BackendChoice, BackendKind, EngineConfig, SelectionEngine};
use lrb_rng::{MersenneTwister64, SeedableSource};
use lrb_stats::chi_square_gof;

const TRIALS: u64 = 120_000;
const SEEDS: [u64; 3] = [11, 2024, 987_654_321];

/// Expected probabilities of a weight vector.
fn probabilities(weights: &[f64]) -> Vec<f64> {
    let total: f64 = weights.iter().sum();
    weights.iter().map(|w| w / total).collect()
}

/// Build an engine pinned to one backend.
fn engine_with(weights: &[f64], kind: BackendKind) -> SelectionEngine {
    SelectionEngine::new(
        weights.to_vec(),
        EngineConfig {
            backend: BackendChoice::Fixed(kind),
            ..EngineConfig::default()
        },
    )
    .unwrap()
}

#[test]
fn stochastic_acceptance_sampler_is_exact_across_seeds() {
    let weights = vec![1.0, 2.0, 3.0, 4.0, 0.0, 10.0];
    let sampler = StochasticAcceptanceSampler::from_weights(weights.clone()).unwrap();
    let probs = probabilities(&weights);
    for seed in SEEDS {
        let mut rng = MersenneTwister64::seed_from_u64(seed);
        let mut counts = vec![0u64; weights.len()];
        for _ in 0..TRIALS {
            counts[sampler.sample(&mut rng).unwrap()] += 1;
        }
        let gof = chi_square_gof(&counts, &probs);
        assert!(
            gof.is_consistent(0.01),
            "seed {seed}: p = {}, statistic = {}",
            gof.p_value,
            gof.statistic
        );
    }
}

#[test]
fn every_engine_backend_is_exact_on_the_snapshot_path() {
    let weights = vec![5.0, 1.0, 0.0, 3.0, 2.0, 9.0, 4.0];
    let probs = probabilities(&weights);
    for kind in BackendKind::all() {
        let engine = engine_with(&weights, kind);
        let snapshot = engine.snapshot();
        assert_eq!(snapshot.backend(), kind);
        for seed in SEEDS {
            let counts = snapshot.batch_counts(TRIALS, seed).unwrap();
            let gof = chi_square_gof(&counts, &probs);
            assert!(
                gof.is_consistent(0.01),
                "{} seed {seed}: p = {}",
                kind.name(),
                gof.p_value
            );
        }
    }
}

#[test]
fn published_batches_keep_every_backend_exact() {
    // Fold a realistic coalescing batch — evaporation, overrides, a
    // last-write-wins rewrite — and hold the *new* snapshot to the same
    // standard.
    let initial = vec![4.0; 8];
    for kind in BackendKind::all() {
        let engine = engine_with(&initial, kind);
        engine.enqueue(0, 1.0).unwrap();
        engine.scale_all(0.5).unwrap(); // scales the pending 1.0 to 0.5
        engine.enqueue(3, 6.0).unwrap();
        engine.enqueue(3, 8.0).unwrap(); // last write wins
        engine.enqueue(5, 0.0).unwrap(); // kill a category
        engine.publish().unwrap();

        let expected = vec![0.5, 2.0, 2.0, 8.0, 2.0, 0.0, 2.0, 2.0];
        let snapshot = engine.snapshot();
        assert_eq!(snapshot.weights(), expected.as_slice(), "{}", kind.name());
        let probs = probabilities(&expected);
        let counts = snapshot.batch_counts(TRIALS, 77).unwrap();
        assert_eq!(counts[5], 0, "{} drew a zeroed category", kind.name());
        let gof = chi_square_gof(&counts, &probs);
        assert!(
            gof.is_consistent(0.01),
            "{}: p = {}",
            kind.name(),
            gof.p_value
        );
    }
}

#[test]
fn all_equal_weights_are_uniform_for_every_backend() {
    let weights = vec![3.0; 16];
    let probs = probabilities(&weights);
    for kind in BackendKind::all() {
        let engine = engine_with(&weights, kind);
        let snapshot = engine.snapshot();
        for seed in SEEDS {
            let counts = snapshot.batch_counts(TRIALS, seed).unwrap();
            let gof = chi_square_gof(&counts, &probs);
            assert!(
                gof.is_consistent(0.01),
                "{} seed {seed}: p = {}",
                kind.name(),
                gof.p_value
            );
        }
    }
}

#[test]
fn single_survivor_always_wins_for_every_backend() {
    let mut weights = vec![0.0; 9];
    weights[4] = 0.25;
    for kind in BackendKind::all() {
        let engine = engine_with(&weights, kind);
        let counts = engine.snapshot().batch_counts(5_000, 3).unwrap();
        assert_eq!(counts[4], 5_000, "{}", kind.name());
        assert_eq!(counts.iter().sum::<u64>(), 5_000, "{}", kind.name());
    }
}

#[test]
fn killing_the_survivor_turns_the_snapshot_all_zero() {
    for kind in BackendKind::all() {
        let engine = engine_with(&[0.0, 7.0], kind);
        engine.enqueue(1, 0.0).unwrap();
        engine.publish().unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(4);
        assert_eq!(
            engine.snapshot().sample(&mut rng),
            Err(SelectionError::AllZeroFitness),
            "{}",
            kind.name()
        );
    }
}

#[test]
fn stochastic_acceptance_stays_exact_in_its_degenerate_fallback_regime() {
    // Skew far past the rejection budget: draws go through the linear-scan
    // fallback, which must be just as exact.
    let n = 2048;
    let mut weights = vec![1e-6; n];
    weights[100] = 5.0;
    weights[200] = 3.0;
    let sampler = StochasticAcceptanceSampler::from_weights(weights.clone()).unwrap();
    assert!(
        sampler.expected_rounds() > 256.0,
        "workload is not degenerate enough to exercise the fallback"
    );
    let mut rng = MersenneTwister64::seed_from_u64(55);
    let mut heavy = 0u64;
    let mut heavier = 0u64;
    let trials = 100_000;
    for _ in 0..trials {
        match sampler.sample(&mut rng).unwrap() {
            100 => heavier += 1,
            200 => heavy += 1,
            _ => {}
        }
    }
    // Indices 100 and 200 split ~8.0 of ~8.002 total mass 5:3.
    let p_heavier = heavier as f64 / trials as f64;
    let p_heavy = heavy as f64 / trials as f64;
    assert!((p_heavier - 5.0 / 8.0).abs() < 0.01, "{p_heavier}");
    assert!((p_heavy - 3.0 / 8.0).abs() < 0.01, "{p_heavy}");
}
