//! Statistical conformance of the serving layer: chi-square tests holding
//! the [`StochasticAcceptanceSampler`] and the engine's snapshot path — all
//! registered frozen backends — to the source paper's exactness standard
//! (`F_i = w_i / Σ w_j`), across multiple seeds, through coalesced update
//! batches, and at the degenerate edges (all-equal weights, single
//! survivor).

mod support;

use lrb_core::{DynamicSampler, SelectionError};
use lrb_dynamic::StochasticAcceptanceSampler;
use lrb_engine::{BackendChoice, BackendRegistry, EngineConfig, SelectionEngine};
use lrb_rng::{MersenneTwister64, SeedableSource};
use support::{assert_conformance, assert_exact};

const TRIALS: u64 = 120_000;
const SEEDS: [u64; 3] = [11, 2024, 987_654_321];

/// Build an engine pinned to one backend.
fn engine_with(weights: &[f64], backend: &'static str) -> SelectionEngine {
    SelectionEngine::new(
        weights.to_vec(),
        EngineConfig {
            backend: BackendChoice::Fixed(backend),
            ..EngineConfig::default()
        },
    )
    .unwrap()
}

#[test]
fn stochastic_acceptance_sampler_is_exact_across_seeds() {
    let weights = vec![1.0, 2.0, 3.0, 4.0, 0.0, 10.0];
    let sampler = StochasticAcceptanceSampler::from_weights(weights.clone()).unwrap();
    for seed in SEEDS {
        let mut rng = MersenneTwister64::seed_from_u64(seed);
        let mut counts = vec![0u64; weights.len()];
        for _ in 0..TRIALS {
            counts[sampler.sample(&mut rng).unwrap()] += 1;
        }
        assert_exact(&format!("seed {seed}"), &counts, &weights);
    }
}

#[test]
fn every_engine_backend_is_exact_on_the_snapshot_path() {
    let weights = vec![5.0, 1.0, 0.0, 3.0, 2.0, 9.0, 4.0];
    for name in BackendRegistry::standard().names() {
        let engine = engine_with(&weights, name);
        let snapshot = engine.snapshot();
        assert_eq!(snapshot.backend(), name);
        for seed in SEEDS {
            let counts = snapshot.batch_counts(TRIALS, seed).unwrap();
            assert_exact(&format!("{name} seed {seed}"), &counts, &weights);
        }
    }
}

#[test]
fn published_batches_keep_every_backend_exact() {
    // Fold a realistic coalescing batch — evaporation, overrides, a
    // last-write-wins rewrite — and hold the *new* snapshot to the same
    // standard.
    let initial = vec![4.0; 8];
    for name in BackendRegistry::standard().names() {
        let engine = engine_with(&initial, name);
        engine.enqueue(0, 1.0).unwrap();
        engine.scale_all(0.5).unwrap(); // scales the pending 1.0 to 0.5
        engine.enqueue(3, 6.0).unwrap();
        engine.enqueue(3, 8.0).unwrap(); // last write wins
        engine.enqueue(5, 0.0).unwrap(); // kill a category
        engine.publish().unwrap();

        let expected = vec![0.5, 2.0, 2.0, 8.0, 2.0, 0.0, 2.0, 2.0];
        let snapshot = engine.snapshot();
        assert_eq!(snapshot.weights(), expected.as_slice(), "{name}");
        let counts = snapshot.batch_counts(TRIALS, 77).unwrap();
        assert_eq!(counts[5], 0, "{name} drew a zeroed category");
        assert_exact(name, &counts, &expected);
    }
}

#[test]
fn all_equal_weights_are_uniform_for_every_backend() {
    let weights = vec![3.0; 16];
    for name in BackendRegistry::standard().names() {
        let engine = engine_with(&weights, name);
        let snapshot = engine.snapshot();
        for seed in SEEDS {
            let counts = snapshot.batch_counts(TRIALS, seed).unwrap();
            assert_exact(&format!("{name} seed {seed}"), &counts, &weights);
        }
    }
}

#[test]
fn single_survivor_always_wins_for_every_backend() {
    let mut weights = vec![0.0; 9];
    weights[4] = 0.25;
    for name in BackendRegistry::standard().names() {
        let engine = engine_with(&weights, name);
        let counts = engine.snapshot().batch_counts(5_000, 3).unwrap();
        assert_eq!(counts[4], 5_000, "{name}");
        assert_eq!(counts.iter().sum::<u64>(), 5_000, "{name}");
    }
}

#[test]
fn killing_the_survivor_turns_the_snapshot_all_zero() {
    for name in BackendRegistry::standard().names() {
        let engine = engine_with(&[0.0, 7.0], name);
        engine.enqueue(1, 0.0).unwrap();
        engine.publish().unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(4);
        assert_eq!(
            engine.snapshot().sample(&mut rng),
            Err(SelectionError::AllZeroFitness),
            "{name}"
        );
    }
}

#[test]
fn telemetry_driven_switches_preserve_conformance() {
    // The decider switches backends as the observed workload drifts; every
    // snapshot along the way must stay exact. Serve draws, spike the skew,
    // publish, rebalance — and chi-square every snapshot touched.
    let n = 256usize;
    let engine = SelectionEngine::new(
        vec![1.0; n],
        EngineConfig {
            backend: BackendChoice::Auto,
            expected_draws_per_publish: TRIALS as f64,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let before = engine.snapshot();
    let counts = before.batch_counts(TRIALS, 5).unwrap();
    assert_exact(
        &format!("pre-switch ({})", before.backend()),
        &counts,
        before.weights(),
    );

    // Spike a few categories and let the publish-time decider react.
    for index in [3usize, 97, 200] {
        engine.enqueue(index, (n as f64) * 2.0).unwrap();
    }
    engine.publish().unwrap();
    let after = engine.snapshot();
    let counts = after.batch_counts(TRIALS, 6).unwrap();
    assert_exact(
        &format!("post-switch ({})", after.backend()),
        &counts,
        after.weights(),
    );
    assert!(
        !engine.switch_history().is_empty(),
        "the skew spike should have moved the decider off {}",
        before.backend()
    );

    // Mid-stream rebalance (if the decider takes it) must also stay exact.
    let _ = engine.maybe_rebalance().unwrap();
    let rebalanced = engine.snapshot();
    let counts = rebalanced.batch_counts(TRIALS, 7).unwrap();
    assert_exact(
        &format!("rebalanced ({})", rebalanced.backend()),
        &counts,
        rebalanced.weights(),
    );
}

#[test]
fn stochastic_acceptance_stays_exact_in_its_degenerate_fallback_regime() {
    // Skew far past the rejection budget: draws go through the linear-scan
    // fallback, which must be just as exact. The chi-square runs on the
    // pooled {heavy, heavy, rest} partition so every cell's expected count
    // is sound.
    let n = 2048;
    let mut weights = vec![1e-6; n];
    weights[100] = 5.0;
    weights[200] = 3.0;
    let sampler = StochasticAcceptanceSampler::from_weights(weights.clone()).unwrap();
    assert!(
        sampler.expected_rounds() > 256.0,
        "workload is not degenerate enough to exercise the fallback"
    );
    let mut rng = MersenneTwister64::seed_from_u64(55);
    let trials = 100_000;
    let mut pooled = [0u64; 3]; // [index 100, index 200, everything else]
    for _ in 0..trials {
        match sampler.sample(&mut rng).unwrap() {
            100 => pooled[0] += 1,
            200 => pooled[1] += 1,
            _ => pooled[2] += 1,
        }
    }
    let rest_mass = 1e-6 * (n as f64 - 2.0);
    assert_conformance("degenerate fallback", &pooled, &[5.0, 3.0, rest_mass], 0.01);
}
