//! A Fenwick-tree (binary indexed tree) weighted sampler: exact
//! probabilities, `O(log n)` draws and `O(log n)` single-weight updates.
//!
//! The tree stores partial sums of the weight vector; a draw generates
//! `r ∈ [0, Σw)` and descends the implicit tree from the highest power of two
//! downward, subtracting left-subtree masses — the classic `O(log n)`
//! inverse-CDF walk. An update adds the weight delta to `O(log n)` nodes.
//! This makes the Fenwick sampler the right engine for the paper's
//! mutate-and-sample regime, where alias tables would be rebuilt from
//! scratch after every change.

use lrb_core::error::SelectionError;
use lrb_core::fitness::Fitness;
use lrb_core::traits::DynamicSampler;
use lrb_rng::RandomSource;

use crate::validate_weight;

/// An updatable weighted sampler backed by a Fenwick tree.
///
/// # Example
///
/// ```
/// use lrb_core::DynamicSampler;
/// use lrb_dynamic::FenwickSampler;
/// use lrb_rng::{MersenneTwister64, SeedableSource};
///
/// let mut sampler = FenwickSampler::from_weights(vec![5.0, 0.0, 5.0]).unwrap();
/// sampler.update(1, 90.0).unwrap();
/// let mut rng = MersenneTwister64::seed_from_u64(1);
/// let mut hits = 0;
/// for _ in 0..1_000 {
///     if sampler.sample(&mut rng).unwrap() == 1 {
///         hits += 1;
///     }
/// }
/// assert!(hits > 800); // index 1 now carries 90% of the mass
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FenwickSampler {
    /// Raw weights, kept for `O(1)` point reads and exact delta updates.
    weights: Vec<f64>,
    /// One-based Fenwick array of partial sums.
    tree: Vec<f64>,
    /// Largest power of two `≤ n`, the root step of the descent.
    top: usize,
    /// Number of strictly positive weights.
    non_zero: usize,
}

impl FenwickSampler {
    /// Build a sampler from raw weights, validating them like
    /// [`Fitness::new`]. An all-zero vector is allowed (sampling then fails
    /// with [`SelectionError::AllZeroFitness`]); an empty one is not.
    pub fn from_weights(weights: Vec<f64>) -> Result<Self, SelectionError> {
        if weights.is_empty() {
            return Err(SelectionError::EmptyFitness);
        }
        for (index, &value) in weights.iter().enumerate() {
            validate_weight(index, value)?;
        }
        Ok(Self::from_validated(weights))
    }

    /// Build a sampler from an already-validated [`Fitness`] vector.
    pub fn from_fitness(fitness: &Fitness) -> Self {
        Self::from_validated(fitness.values().to_vec())
    }

    fn from_validated(weights: Vec<f64>) -> Self {
        let n = weights.len();
        let mut sampler = Self {
            tree: vec![0.0; n + 1],
            top: n.next_power_of_two().min(usize::MAX / 2),
            non_zero: 0,
            weights,
        };
        if sampler.top > n {
            sampler.top /= 2;
        }
        sampler.rebuild();
        sampler
    }

    /// Rebuild the tree from the raw weights in `O(n)`.
    ///
    /// Used at construction and by [`reload`](FenwickSampler::reload); point
    /// updates never need it.
    fn rebuild(&mut self) {
        let n = self.weights.len();
        self.non_zero = self.weights.iter().filter(|&&w| w > 0.0).count();
        for node in self.tree.iter_mut() {
            *node = 0.0;
        }
        for i in 0..n {
            self.tree[i + 1] += self.weights[i];
        }
        for node in 1..=n {
            let parent = node + (node & node.wrapping_neg());
            if parent <= n {
                let carried = self.tree[node];
                self.tree[parent] += carried;
            }
        }
    }

    /// Replace every weight at once (`O(n)`, no allocation), e.g. when an
    /// ACO iteration re-derives a whole desirability row.
    pub fn reload(&mut self, new_weights: &[f64]) -> Result<(), SelectionError> {
        assert_eq!(
            new_weights.len(),
            self.weights.len(),
            "reload must keep the category count"
        );
        for (index, &value) in new_weights.iter().enumerate() {
            validate_weight(index, value)?;
        }
        self.weights.copy_from_slice(new_weights);
        self.rebuild();
        Ok(())
    }

    /// Build the **next** sampler from `prev` by applying a coalesced
    /// publish batch — a whole-vector `scale` fold followed by absolute
    /// `(index, weight)` overrides — as point updates on a copy of `prev`'s
    /// state instead of an `O(n)` rebuild.
    ///
    /// The copy is two straight `memcpy`s (weights and tree); a `scale ≠ 1`
    /// adds one multiply pass (scaling every partial sum scales the tree
    /// consistently); each override then costs `O(log n)`. The resulting
    /// *weights* are exactly what
    /// [`from_weights`](FenwickSampler::from_weights) over the folded
    /// vector would hold — tree node sums may differ from a rebuilt tree in
    /// the last ulp (sums of scaled terms versus scaled sums), the same
    /// rounding class [`update`](DynamicSampler::update)'s delta
    /// maintenance already tolerates.
    ///
    /// Overrides are validated like `update`; a scale fold that overflows
    /// any weight to `∞` fails with the same
    /// [`SelectionError::InvalidFitness`] the full-rebuild validation
    /// would raise.
    pub fn patched_from(
        prev: &Self,
        overrides: &[(usize, f64)],
        scale: f64,
    ) -> Result<Self, SelectionError> {
        if !scale.is_finite() || scale < 0.0 {
            return Err(SelectionError::InvalidScale { factor: scale });
        }
        let mut sampler = prev.clone();
        if scale != 1.0 {
            // Recount the support while scaling: a tiny scale can underflow
            // a positive weight to exactly zero, which the non_zero count
            // must observe for the all-zero guard to stay truthful. An
            // overflow to ∞ diverts to the reconciliation path *before*
            // any override applies — a delta update through an ∞ would
            // poison the tree with NaN even when the override replaces the
            // overflowed weight with a finite value.
            let mut non_zero = 0usize;
            let mut overflowed = false;
            for w in sampler.weights.iter_mut() {
                *w *= scale;
                overflowed |= !w.is_finite();
                non_zero += (*w > 0.0) as usize;
            }
            if overflowed {
                return Self::reconcile_overflow(sampler.weights, overrides);
            }
            for node in sampler.tree.iter_mut() {
                *node *= scale;
            }
            sampler.non_zero = non_zero;
        }
        for &(index, weight) in overrides {
            sampler.update(index, weight)?;
        }
        // A non-finite total is only an error when an individual weight
        // overflowed — the rebuild path validates weights, not their sum.
        if !sampler.total_weight().is_finite() {
            if let Some(error) = non_finite_weight_error(&sampler.weights) {
                return Err(error);
            }
        }
        Ok(sampler)
    }

    /// The scale fold pushed some weight to `∞`. Validity is decided by
    /// the **folded** vector, exactly as a rebuild would decide it: the
    /// overrides may replace every overflowed entry, in which case the
    /// batch is valid and must succeed. Apply the overrides as plain
    /// writes (no delta updates through an ∞), then validate and rebuild —
    /// this pathological batch pays the `O(n)` the fast path saved, and
    /// returns a sampler identical to a full rebuild's.
    #[cold]
    #[inline(never)]
    fn reconcile_overflow(
        mut weights: Vec<f64>,
        overrides: &[(usize, f64)],
    ) -> Result<Self, SelectionError> {
        for &(index, weight) in overrides {
            validate_weight(index, weight)?;
            weights[index] = weight;
        }
        for (index, &value) in weights.iter().enumerate() {
            if !value.is_finite() {
                return Err(SelectionError::InvalidFitness { index, value });
            }
        }
        Ok(Self::from_validated(weights))
    }

    /// Prefix sum `w_0 + … + w_{index-1}` in `O(log n)`.
    pub fn prefix_sum(&self, index: usize) -> f64 {
        let mut node = index.min(self.weights.len());
        let mut sum = 0.0;
        while node > 0 {
            sum += self.tree[node];
            node -= node & node.wrapping_neg();
        }
        sum
    }

    /// Number of strictly positive weights.
    pub fn non_zero_count(&self) -> usize {
        self.non_zero
    }

    /// The raw weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Find the smallest index whose cumulative weight exceeds `r`
    /// (the inverse-CDF descent), skipping zero-weight indices.
    #[inline]
    fn descend(&self, mut r: f64) -> usize {
        let n = self.weights.len();
        let mut pos = 0usize; // one-based node position of the found prefix
        let mut step = self.top;
        while step > 0 {
            let next = pos + step;
            if next <= n && self.tree[next] <= r {
                r -= self.tree[next];
                pos = next;
            }
            step /= 2;
        }
        // `pos` counts the indices whose cumulative mass lies at or below
        // `r`; the winner is the next index. Floating-point rounding at the
        // extreme right edge can push past the end or onto a zero weight —
        // walk back to the last positive weight in that case.
        let candidate = pos.min(n - 1);
        if self.weights[candidate] > 0.0 {
            return candidate;
        }
        self.walk_back(candidate)
    }

    /// The right-edge rounding repair for [`descend`](Self::descend), out
    /// of line so the `O(log n)` hot path stays compact — it runs only
    /// when a draw lands past the support.
    #[cold]
    #[inline(never)]
    fn walk_back(&self, candidate: usize) -> usize {
        self.weights[..candidate]
            .iter()
            .rposition(|&w| w > 0.0)
            .or_else(|| self.weights.iter().position(|&w| w > 0.0))
            .expect("descend is only called with positive total mass")
    }
}

/// Blame the first non-finite weight after a scale fold overflowed —
/// failure path of the patch constructors, kept out of the hot publish
/// code. `None` when every weight is individually finite (a sum can still
/// overflow; the rebuild path validates weights, not totals, so that state
/// is accepted).
#[cold]
#[inline(never)]
pub(crate) fn non_finite_weight_error(weights: &[f64]) -> Option<SelectionError> {
    weights
        .iter()
        .enumerate()
        .find(|(_, w)| !w.is_finite())
        .map(|(index, &value)| SelectionError::InvalidFitness { index, value })
}

impl DynamicSampler for FenwickSampler {
    fn len(&self) -> usize {
        self.weights.len()
    }

    fn weight(&self, index: usize) -> f64 {
        self.weights[index]
    }

    fn total_weight(&self) -> f64 {
        self.prefix_sum(self.weights.len())
    }

    fn sample(&self, rng: &mut dyn RandomSource) -> Result<usize, SelectionError> {
        if self.non_zero == 0 {
            return Err(SelectionError::AllZeroFitness);
        }
        let total = self.total_weight();
        let r = rng.next_f64() * total;
        Ok(self.descend(r))
    }

    /// Tight-loop fill: the support check and the `O(log n)` total-weight
    /// read happen once per buffer instead of once per draw (the weights
    /// cannot change behind `&self`), then each draw is one uniform and one
    /// descent — the same consumption as [`sample`](DynamicSampler::sample),
    /// so both paths agree draw for draw on equal seeds.
    fn sample_into(
        &self,
        rng: &mut dyn RandomSource,
        out: &mut [usize],
    ) -> Result<(), SelectionError> {
        if self.non_zero == 0 {
            return Err(SelectionError::AllZeroFitness);
        }
        let total = self.total_weight();
        for slot in out.iter_mut() {
            *slot = self.descend(rng.next_f64() * total);
        }
        Ok(())
    }

    fn update(&mut self, index: usize, new_weight: f64) -> Result<(), SelectionError> {
        assert!(
            index < self.weights.len(),
            "index {index} outside 0..{}",
            self.weights.len()
        );
        validate_weight(index, new_weight)?;
        let old = self.weights[index];
        if old > 0.0 && new_weight == 0.0 {
            self.non_zero -= 1;
        } else if old == 0.0 && new_weight > 0.0 {
            self.non_zero += 1;
        }
        self.weights[index] = new_weight;
        let delta = new_weight - old;
        let n = self.weights.len();
        let mut node = index + 1;
        while node <= n {
            self.tree[node] += delta;
            node += node & node.wrapping_neg();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrb_rng::{MersenneTwister64, SeedableSource};
    use proptest::prelude::*;

    #[test]
    fn empty_weights_are_rejected() {
        assert_eq!(
            FenwickSampler::from_weights(vec![]),
            Err(SelectionError::EmptyFitness)
        );
    }

    #[test]
    fn invalid_weights_are_rejected_at_construction() {
        assert!(FenwickSampler::from_weights(vec![1.0, -2.0]).is_err());
        assert!(FenwickSampler::from_weights(vec![f64::NAN]).is_err());
    }

    #[test]
    fn prefix_sums_match_naive_accumulation() {
        let weights = vec![0.5, 0.0, 2.0, 1.5, 3.0, 0.0, 1.0];
        let sampler = FenwickSampler::from_weights(weights.clone()).unwrap();
        let mut acc = 0.0;
        for i in 0..=weights.len() {
            assert!(
                (sampler.prefix_sum(i) - acc).abs() < 1e-12,
                "prefix {i}: {} vs {acc}",
                sampler.prefix_sum(i)
            );
            if i < weights.len() {
                acc += weights[i];
            }
        }
    }

    #[test]
    fn updates_are_reflected_in_prefix_sums_and_total() {
        let mut sampler = FenwickSampler::from_weights(vec![1.0; 10]).unwrap();
        sampler.update(3, 5.0).unwrap();
        sampler.update(9, 0.0).unwrap();
        assert!((sampler.total_weight() - 13.0).abs() < 1e-12);
        assert!((sampler.prefix_sum(4) - 8.0).abs() < 1e-12);
        assert_eq!(sampler.non_zero_count(), 9);
    }

    #[test]
    fn sampling_follows_the_weights_exactly_in_distribution() {
        let sampler = FenwickSampler::from_weights(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(5);
        let trials = 200_000;
        let mut counts = [0u64; 4];
        for _ in 0..trials {
            counts[sampler.sample(&mut rng).unwrap()] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let freq = c as f64 / trials as f64;
            let target = (i + 1) as f64 / 10.0;
            assert!(
                (freq - target).abs() < 0.005,
                "index {i}: {freq} vs {target}"
            );
        }
    }

    #[test]
    fn zero_weights_are_never_drawn_even_after_updates() {
        let mut sampler = FenwickSampler::from_weights(vec![1.0; 8]).unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(6);
        for dead in [0usize, 3, 7] {
            sampler.update(dead, 0.0).unwrap();
        }
        for _ in 0..20_000 {
            let i = sampler.sample(&mut rng).unwrap();
            assert!(sampler.weight(i) > 0.0, "drew zero-weight index {i}");
        }
    }

    #[test]
    fn updating_the_last_positive_weight_to_zero_yields_all_zero_error() {
        let mut sampler = FenwickSampler::from_weights(vec![0.0, 2.0, 0.0]).unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(7);
        assert_eq!(sampler.sample(&mut rng).unwrap(), 1);
        sampler.update(1, 0.0).unwrap();
        assert_eq!(
            sampler.sample(&mut rng),
            Err(SelectionError::AllZeroFitness)
        );
        // Reviving an index makes sampling work again.
        sampler.update(2, 1.0).unwrap();
        assert_eq!(sampler.sample(&mut rng).unwrap(), 2);
    }

    #[test]
    fn single_category_always_wins() {
        let sampler = FenwickSampler::from_weights(vec![0.25]).unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(8);
        for _ in 0..100 {
            assert_eq!(sampler.sample(&mut rng).unwrap(), 0);
        }
    }

    #[test]
    fn patch_scale_overflow_reconciles_exactly_like_a_rebuild() {
        // A scale fold overflows weight 0 to ∞, but the override replaces
        // that same weight with a finite value — the folded vector is
        // valid, so the patch must succeed with a rebuild-identical,
        // NaN-free sampler (a delta update through the ∞ would have
        // poisoned the tree).
        let prev = FenwickSampler::from_weights(vec![f64::MAX / 8.0, 1.0, 2.0, 3.0]).unwrap();
        let patched = FenwickSampler::patched_from(&prev, &[(0, 5.0)], 16.0).unwrap();
        let rebuilt = FenwickSampler::from_weights(vec![5.0, 16.0, 32.0, 48.0]).unwrap();
        assert_eq!(patched.weights(), rebuilt.weights());
        assert_eq!(patched.non_zero_count(), 4);
        assert!(patched.total_weight().is_finite());
        assert_eq!(patched.total_weight(), rebuilt.total_weight());
        for i in 0..=4 {
            assert_eq!(patched.prefix_sum(i), rebuilt.prefix_sum(i), "prefix {i}");
        }
        // An overflowed weight that no override repairs still fails with
        // the rebuild path's validation error.
        assert!(matches!(
            FenwickSampler::patched_from(&prev, &[(1, 9.0)], 16.0),
            Err(SelectionError::InvalidFitness { index: 0, .. })
        ));
    }

    #[test]
    fn reload_replaces_the_distribution() {
        let mut sampler = FenwickSampler::from_weights(vec![1.0, 1.0, 1.0]).unwrap();
        sampler.reload(&[0.0, 0.0, 4.0]).unwrap();
        assert!((sampler.total_weight() - 4.0).abs() < 1e-12);
        assert_eq!(sampler.non_zero_count(), 1);
        let mut rng = MersenneTwister64::seed_from_u64(9);
        for _ in 0..50 {
            assert_eq!(sampler.sample(&mut rng).unwrap(), 2);
        }
        assert!(sampler.reload(&[1.0, f64::NAN, 0.0]).is_err());
    }

    #[test]
    fn agrees_with_linear_scan_given_the_same_randomness() {
        // Both consume exactly one uniform and invert the same CDF, so with
        // a shared stream they must pick identical indices.
        use lrb_core::sequential::LinearScanSelector;
        use lrb_core::Selector;
        let weights = vec![0.3, 0.0, 2.0, 1.7, 0.0, 5.0, 0.25];
        let fitness = Fitness::new(weights.clone()).unwrap();
        let sampler = FenwickSampler::from_weights(weights).unwrap();
        let mut rng_a = MersenneTwister64::seed_from_u64(12);
        let mut rng_b = MersenneTwister64::seed_from_u64(12);
        for _ in 0..5_000 {
            assert_eq!(
                sampler.sample(&mut rng_a).unwrap(),
                LinearScanSelector.select(&fitness, &mut rng_b).unwrap()
            );
        }
    }

    proptest! {
        #[test]
        fn prop_prefix_sums_track_random_update_bursts(
            initial in proptest::collection::vec(0.0f64..10.0, 1..128),
            updates in proptest::collection::vec(0.0f64..10.0, 1..64),
            seed: u64,
        ) {
            let mut sampler = FenwickSampler::from_weights(initial.clone()).unwrap();
            let mut shadow = initial;
            let mut pick = seed;
            for &w in &updates {
                pick = pick.wrapping_mul(6364136223846793005).wrapping_add(1);
                let index = (pick >> 33) as usize % shadow.len();
                shadow[index] = w;
                sampler.update(index, w).unwrap();
            }
            let total: f64 = shadow.iter().sum();
            prop_assert!((sampler.total_weight() - total).abs() < 1e-9);
            let mid = shadow.len() / 2;
            let prefix: f64 = shadow[..mid].iter().sum();
            prop_assert!((sampler.prefix_sum(mid) - prefix).abs() < 1e-9);
        }
    }
}
