//! # lrb-dynamic — updatable weighted selection
//!
//! The paper's motivating setting (ant colony construction) mutates the
//! fitness vector *every round*: pheromone evaporates, deposits land on the
//! best tours, visited cities drop to zero. The one-shot selectors in
//! `lrb-core` re-scan the whole vector per draw, and the frozen
//! `PreparedSampler`s (alias table, CDF binary search) must be rebuilt in
//! `O(n)` after *any* weight change. This crate supplies the missing
//! primitive — samplers implementing
//! [`DynamicSampler`](lrb_core::DynamicSampler) with cheap in-place updates:
//!
//! * [`FenwickSampler`] — a Fenwick (binary indexed) tree over the weights:
//!   exact `F_i = f_i / Σ f_j` probabilities, `O(log n)` per draw **and**
//!   `O(log n)` per single-weight update. The workhorse for
//!   mutate-and-sample traffic.
//! * [`RebuildingAliasSampler`] — Vose's alias method wrapped with dirty
//!   tracking: `O(1)` draws while the weights rest, a deferred `O(n)` rebuild
//!   on the first draw after a change. The right tool when updates are rare
//!   and draws dominate, and the baseline the benches compare against.
//! * [`StochasticAcceptanceSampler`] — stochastic acceptance (Lipowski &
//!   Lipowska): `O(1)` expected draws by rejection against the maximum
//!   weight, `O(1)` typical updates, with an exact linear-scan fallback for
//!   degenerate (single-survivor or extremely skewed) weight vectors. The
//!   cheapest backend when the weights are balanced.
//! * [`ShardedArena`] — a concurrent engine that partitions the categories
//!   across independently locked shards (each holding a [`FenwickSampler`]),
//!   samples a shard by total weight and then delegates within it. Supports
//!   deterministic rayon batch sampling through the shared
//!   `lrb_core::batch::BatchDriver` (one Philox substream per buffer
//!   chunk — the same determinism contract as `lrb_core::batch`).
//!
//! ## Quickstart
//!
//! ```
//! use lrb_core::{DynamicSampler, Fitness};
//! use lrb_dynamic::FenwickSampler;
//! use lrb_rng::{MersenneTwister64, SeedableSource};
//!
//! let fitness = Fitness::new(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
//! let mut sampler = FenwickSampler::from_fitness(&fitness);
//! let mut rng = MersenneTwister64::seed_from_u64(7);
//!
//! let first = sampler.sample(&mut rng).unwrap();
//! sampler.update(first, 0.0).unwrap();          // O(log n), no rebuild
//! let second = sampler.sample(&mut rng).unwrap();
//! assert_ne!(first, second);                    // zero weights are never drawn
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod batch;
pub mod fenwick;
pub mod rebuilding_alias;
pub mod stochastic_acceptance;

pub use arena::ShardedArena;
pub use batch::{batch_sample_counts, batch_sample_indices};
pub use fenwick::FenwickSampler;
pub use rebuilding_alias::RebuildingAliasSampler;
pub use stochastic_acceptance::StochasticAcceptanceSampler;

use lrb_core::error::SelectionError;

/// Validate a prospective weight the way [`lrb_core::Fitness`] validates its
/// entries: finite and non-negative.
pub(crate) fn validate_weight(index: usize, value: f64) -> Result<(), SelectionError> {
    if !value.is_finite() || value < 0.0 {
        return Err(SelectionError::InvalidFitness { index, value });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use lrb_core::{DynamicSampler, Fitness};
    use lrb_rng::{MersenneTwister64, SeedableSource};

    use crate::{
        FenwickSampler, RebuildingAliasSampler, ShardedArena, StochasticAcceptanceSampler,
    };

    /// Every engine in the crate, behind the object-safe trait.
    fn engines(fitness: &Fitness) -> Vec<(&'static str, Box<dyn DynamicSampler>)> {
        vec![
            ("fenwick", Box::new(FenwickSampler::from_fitness(fitness))),
            (
                "rebuilding-alias",
                Box::new(RebuildingAliasSampler::from_fitness(fitness)),
            ),
            (
                "stochastic-acceptance",
                Box::new(StochasticAcceptanceSampler::from_fitness(fitness)),
            ),
            (
                "sharded-arena",
                Box::new(ShardedArena::from_fitness(fitness, 4)),
            ),
        ]
    }

    #[test]
    fn all_engines_agree_on_aggregates() {
        let fitness = Fitness::new(vec![0.0, 1.0, 2.0, 3.0, 4.0]).unwrap();
        for (name, engine) in engines(&fitness) {
            assert_eq!(engine.len(), 5, "{name}");
            assert!((engine.total_weight() - 10.0).abs() < 1e-12, "{name}");
            assert_eq!(engine.weight(0), 0.0, "{name}");
            assert_eq!(engine.weight(4), 4.0, "{name}");
        }
    }

    #[test]
    fn all_engines_track_updates_and_never_draw_zero_weights() {
        let fitness = Fitness::new(vec![1.0, 1.0, 1.0, 1.0]).unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(3);
        for (name, mut engine) in engines(&fitness) {
            engine.update(2, 0.0).unwrap();
            engine.update(0, 5.0).unwrap();
            assert!((engine.total_weight() - 7.0).abs() < 1e-12, "{name}");
            for _ in 0..500 {
                let i = engine.sample(&mut rng).unwrap();
                assert_ne!(i, 2, "{name} drew a zero-weight index");
            }
        }
    }

    #[test]
    fn all_engines_reject_invalid_weights() {
        let fitness = Fitness::new(vec![1.0, 2.0]).unwrap();
        for (name, mut engine) in engines(&fitness) {
            for bad in [-1.0, f64::NAN, f64::INFINITY] {
                assert!(engine.update(0, bad).is_err(), "{name} accepted {bad}");
            }
            // The failed updates must not have corrupted the totals.
            assert!((engine.total_weight() - 3.0).abs() < 1e-12, "{name}");
        }
    }
}
