//! An updatable stochastic-acceptance sampler (Lipowski & Lipowska,
//! arXiv:1109.3627): `O(1)` expected draws by rejection against the maximum
//! weight, `O(1)` typical updates.
//!
//! A draw picks a uniform index and accepts it with probability
//! `w_i / w_max` — exactly `F_i = w_i / Σ w_j` overall, because every index
//! is proposed equally often and acceptance is proportional to its weight.
//! The expected number of rejection rounds is `n · w_max / Σ w_j`, so the
//! engine shines on balanced weight vectors (where it needs ~1 round and no
//! tree or table at all) and degrades on skewed ones. Two fallbacks keep the
//! worst case bounded **and** exact:
//!
//! * construction and updates watch the skew `n · w_max / Σ w_j`; a draw
//!   whose expected round count is hopeless (or whose support collapsed to a
//!   single survivor) skips rejection entirely and inverts the CDF by linear
//!   scan, which is the same distribution;
//! * otherwise a hard `max_rounds` cap backstops unlucky streaks with the
//!   same linear scan.
//!
//! Updates maintain `w_max` in `O(1)` when the new weight rises to (or
//! above) the maximum; lowering the current argmax rescans once in `O(n)`.

use lrb_core::error::SelectionError;
use lrb_core::fitness::Fitness;
use lrb_core::sequential::{acceptance_rounds, linear_scan_weights};
use lrb_core::traits::DynamicSampler;
use lrb_rng::RandomSource;

use crate::validate_weight;

/// Expected-rounds threshold beyond which a draw goes straight to the
/// linear-scan fallback instead of rejection sampling.
const DEGENERATE_ROUNDS: f64 = 256.0;

/// An updatable weighted sampler using stochastic acceptance.
///
/// # Example
///
/// ```
/// use lrb_core::DynamicSampler;
/// use lrb_dynamic::StochasticAcceptanceSampler;
/// use lrb_rng::{MersenneTwister64, SeedableSource};
///
/// let mut sampler = StochasticAcceptanceSampler::from_weights(vec![1.0, 1.0, 2.0]).unwrap();
/// sampler.update(0, 0.0).unwrap();
/// let mut rng = MersenneTwister64::seed_from_u64(4);
/// for _ in 0..200 {
///     assert_ne!(sampler.sample(&mut rng).unwrap(), 0); // zero weight, never drawn
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StochasticAcceptanceSampler {
    weights: Vec<f64>,
    /// Exact running total, re-derived on the `O(n)` paths so accumulation
    /// error stays bounded by one update window.
    total: f64,
    /// Largest current weight (the acceptance denominator).
    max: f64,
    /// Number of strictly positive weights.
    non_zero: usize,
    /// Hard cap on rejection rounds before the linear-scan fallback.
    max_rounds: usize,
}

impl StochasticAcceptanceSampler {
    /// Build a sampler from raw weights, validating them like
    /// [`Fitness::new`]. An all-zero vector is allowed (sampling then fails
    /// with [`SelectionError::AllZeroFitness`]); an empty one is not.
    pub fn from_weights(weights: Vec<f64>) -> Result<Self, SelectionError> {
        if weights.is_empty() {
            return Err(SelectionError::EmptyFitness);
        }
        for (index, &value) in weights.iter().enumerate() {
            validate_weight(index, value)?;
        }
        Ok(Self::from_validated(weights))
    }

    /// Build a sampler from an already-validated [`Fitness`] vector.
    pub fn from_fitness(fitness: &Fitness) -> Self {
        Self::from_validated(fitness.values().to_vec())
    }

    fn from_validated(weights: Vec<f64>) -> Self {
        let mut sampler = Self {
            weights,
            total: 0.0,
            max: 0.0,
            non_zero: 0,
            max_rounds: 10_000,
        };
        sampler.recompute_aggregates();
        sampler
    }

    /// Re-derive `total`, `max` and `non_zero` exactly from the weights.
    fn recompute_aggregates(&mut self) {
        self.total = self.weights.iter().sum();
        self.max = self.weights.iter().cloned().fold(0.0, f64::max);
        self.non_zero = self.weights.iter().filter(|&&w| w > 0.0).count();
    }

    /// Build the **next** sampler from `prev` by applying a coalesced
    /// publish batch — a whole-vector `scale` fold followed by absolute
    /// `(index, weight)` overrides — on a copy of `prev`'s weights instead
    /// of an `O(n)` rebuild.
    ///
    /// The copy is one `memcpy`; a `scale ≠ 1` adds a single pass that
    /// re-derives `total`, `max` and the support count exactly while
    /// scaling; the overrides then apply in `O(d)` with `max` maintained
    /// incrementally — only when some override lowered a weight that held
    /// the maximum does one deferred aggregate rescan run at the end
    /// (applying it per override, as a plain `update` loop would, costs
    /// `O(d · n)` on adversarial batches). Weights equal exactly what
    /// [`from_weights`](StochasticAcceptanceSampler::from_weights) over
    /// the folded vector would hold; a scale fold that overflows fails
    /// with the full-rebuild path's validation error.
    pub fn patched_from(
        prev: &Self,
        overrides: &[(usize, f64)],
        scale: f64,
    ) -> Result<Self, SelectionError> {
        if !scale.is_finite() || scale < 0.0 {
            return Err(SelectionError::InvalidScale { factor: scale });
        }
        for &(index, weight) in overrides {
            validate_weight(index, weight)?;
        }
        let mut sampler = prev.clone();
        if scale != 1.0 {
            let mut total = 0.0;
            let mut max = 0.0f64;
            let mut non_zero = 0usize;
            for w in sampler.weights.iter_mut() {
                *w *= scale;
                total += *w;
                max = max.max(*w);
                non_zero += (*w > 0.0) as usize;
            }
            sampler.total = total;
            sampler.max = max;
            sampler.non_zero = non_zero;
        }
        let mut max_lowered = false;
        for &(index, weight) in overrides {
            assert!(
                index < sampler.weights.len(),
                "index {index} outside 0..{}",
                sampler.weights.len()
            );
            let old = sampler.weights[index];
            sampler.weights[index] = weight;
            if old > 0.0 && weight == 0.0 {
                sampler.non_zero -= 1;
            } else if old == 0.0 && weight > 0.0 {
                sampler.non_zero += 1;
            }
            sampler.total += weight - old;
            if weight >= sampler.max {
                sampler.max = weight;
            } else if old >= sampler.max {
                max_lowered = true;
            }
        }
        if max_lowered {
            sampler.recompute_aggregates();
        }
        // A non-finite total is only an error when an individual weight
        // overflowed — the rebuild path validates weights, not their sum.
        if !sampler.total.is_finite() {
            if let Some(error) = crate::fenwick::non_finite_weight_error(&sampler.weights) {
                return Err(error);
            }
        }
        Ok(sampler)
    }

    /// Expected rejection rounds per draw, `n · w_max / Σ w_j`.
    pub fn expected_rounds(&self) -> f64 {
        if self.total <= 0.0 {
            return f64::INFINITY;
        }
        self.weights.len() as f64 * self.max / self.total
    }

    /// Number of strictly positive weights.
    pub fn non_zero_count(&self) -> usize {
        self.non_zero
    }

    /// The raw weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl DynamicSampler for StochasticAcceptanceSampler {
    fn len(&self) -> usize {
        self.weights.len()
    }

    fn weight(&self, index: usize) -> f64 {
        self.weights[index]
    }

    fn total_weight(&self) -> f64 {
        self.total
    }

    fn sample(&self, rng: &mut dyn RandomSource) -> Result<usize, SelectionError> {
        if self.non_zero == 0 {
            return Err(SelectionError::AllZeroFitness);
        }
        // Degenerate weights: a single survivor makes rejection pointless,
        // and extreme skew makes it unboundedly slow; both fall back to the
        // exact linear scan shared with `lrb_core::sequential`.
        if self.non_zero == 1 || self.expected_rounds() > DEGENERATE_ROUNDS {
            return Ok(linear_scan_weights(&self.weights, self.total, rng));
        }
        if let Some(candidate) = acceptance_rounds(&self.weights, self.max, self.max_rounds, rng) {
            return Ok(candidate);
        }
        // Statistically unreachable given the skew guard above; stay exact.
        Ok(linear_scan_weights(&self.weights, self.total, rng))
    }

    /// Tight-loop fill: the support check and the degenerate-regime decision
    /// (single survivor or hopeless skew → linear scan) are hoisted out of
    /// the loop — they depend only on aggregates that cannot change behind
    /// `&self`. Per-draw randomness consumption matches
    /// [`sample`](DynamicSampler::sample) exactly on both branches.
    fn sample_into(
        &self,
        rng: &mut dyn RandomSource,
        out: &mut [usize],
    ) -> Result<(), SelectionError> {
        if self.non_zero == 0 {
            return Err(SelectionError::AllZeroFitness);
        }
        if self.non_zero == 1 || self.expected_rounds() > DEGENERATE_ROUNDS {
            for slot in out.iter_mut() {
                *slot = linear_scan_weights(&self.weights, self.total, rng);
            }
            return Ok(());
        }
        for slot in out.iter_mut() {
            *slot = match acceptance_rounds(&self.weights, self.max, self.max_rounds, rng) {
                Some(candidate) => candidate,
                None => linear_scan_weights(&self.weights, self.total, rng),
            };
        }
        Ok(())
    }

    fn update(&mut self, index: usize, new_weight: f64) -> Result<(), SelectionError> {
        assert!(
            index < self.weights.len(),
            "index {index} outside 0..{}",
            self.weights.len()
        );
        validate_weight(index, new_weight)?;
        let old = self.weights[index];
        self.weights[index] = new_weight;
        if old > 0.0 && new_weight == 0.0 {
            self.non_zero -= 1;
        } else if old == 0.0 && new_weight > 0.0 {
            self.non_zero += 1;
        }
        if new_weight >= self.max {
            // O(1): a new (or tied) maximum.
            self.max = new_weight;
            self.total += new_weight - old;
        } else if old >= self.max {
            // Lowered the argmax holder: rescan once, refreshing the exact
            // total for free.
            self.recompute_aggregates();
        } else {
            self.total += new_weight - old;
        }
        Ok(())
    }

    fn update_many(&mut self, updates: &[(usize, f64)]) -> Result<(), SelectionError> {
        for &(index, weight) in updates {
            assert!(
                index < self.weights.len(),
                "index {index} outside 0..{}",
                self.weights.len()
            );
            validate_weight(index, weight)?;
        }
        for &(index, weight) in updates {
            self.weights[index] = weight;
        }
        self.recompute_aggregates();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrb_rng::{MersenneTwister64, SeedableSource};
    use lrb_stats::chi_square_gof;

    #[test]
    fn empty_and_invalid_weights_are_rejected() {
        assert_eq!(
            StochasticAcceptanceSampler::from_weights(vec![]),
            Err(SelectionError::EmptyFitness)
        );
        assert!(StochasticAcceptanceSampler::from_weights(vec![1.0, -2.0]).is_err());
        assert!(StochasticAcceptanceSampler::from_weights(vec![f64::NAN]).is_err());
    }

    #[test]
    fn aggregates_track_updates_exactly() {
        let mut sampler =
            StochasticAcceptanceSampler::from_weights(vec![1.0, 4.0, 2.0, 0.0]).unwrap();
        assert_eq!(sampler.non_zero_count(), 3);
        assert!((sampler.total_weight() - 7.0).abs() < 1e-12);
        assert!((sampler.expected_rounds() - 4.0 * 4.0 / 7.0).abs() < 1e-12);
        // Lower the argmax holder: the max must drop to the runner-up.
        sampler.update(1, 0.5).unwrap();
        assert!((sampler.total_weight() - 3.5).abs() < 1e-12);
        assert!((sampler.expected_rounds() - 4.0 * 2.0 / 3.5).abs() < 1e-12);
        // Raise past the maximum in O(1).
        sampler.update(3, 9.0).unwrap();
        assert!((sampler.total_weight() - 12.5).abs() < 1e-12);
        assert_eq!(sampler.non_zero_count(), 4);
    }

    #[test]
    fn draws_match_the_weights_in_distribution() {
        let weights = vec![1.0, 2.0, 3.0, 4.0];
        let sampler = StochasticAcceptanceSampler::from_weights(weights.clone()).unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(31);
        let trials = 200_000u64;
        let mut counts = vec![0u64; weights.len()];
        for _ in 0..trials {
            counts[sampler.sample(&mut rng).unwrap()] += 1;
        }
        let total: f64 = weights.iter().sum();
        let probs: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let gof = chi_square_gof(&counts, &probs);
        assert!(gof.is_consistent(0.01), "p = {}", gof.p_value);
    }

    #[test]
    fn distribution_stays_exact_after_update_bursts() {
        let mut sampler = StochasticAcceptanceSampler::from_weights(vec![1.0; 8]).unwrap();
        let burst = [(0, 5.0), (3, 0.0), (7, 2.5), (1, 0.25), (3, 1.5), (0, 0.5)];
        for &(i, w) in &burst {
            sampler.update(i, w).unwrap();
        }
        let weights = sampler.weights().to_vec();
        let total: f64 = weights.iter().sum();
        let probs: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let mut rng = MersenneTwister64::seed_from_u64(32);
        let mut counts = vec![0u64; weights.len()];
        for _ in 0..200_000 {
            counts[sampler.sample(&mut rng).unwrap()] += 1;
        }
        let gof = chi_square_gof(&counts, &probs);
        assert!(gof.is_consistent(0.01), "p = {}", gof.p_value);
    }

    #[test]
    fn single_survivor_uses_the_degenerate_fallback() {
        let mut sampler = StochasticAcceptanceSampler::from_weights(vec![0.0, 0.0, 3.0]).unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(33);
        for _ in 0..100 {
            assert_eq!(sampler.sample(&mut rng).unwrap(), 2);
        }
        sampler.update(2, 0.0).unwrap();
        assert_eq!(
            sampler.sample(&mut rng),
            Err(SelectionError::AllZeroFitness)
        );
    }

    #[test]
    fn pathological_skew_stays_exact_via_linear_fallback() {
        // One overwhelming weight among many tiny ones: expected rounds
        // ~ n, far past the degenerate threshold at this size.
        let n = 4096;
        let mut weights = vec![1e-9; n];
        weights[17] = 1.0;
        let sampler = StochasticAcceptanceSampler::from_weights(weights).unwrap();
        assert!(sampler.expected_rounds() > DEGENERATE_ROUNDS);
        let mut rng = MersenneTwister64::seed_from_u64(34);
        let mut hits = 0;
        for _ in 0..1_000 {
            if sampler.sample(&mut rng).unwrap() == 17 {
                hits += 1;
            }
        }
        // Index 17 holds ~99.9996% of the mass.
        assert!(hits >= 998, "only {hits}/1000 draws hit the heavy index");
    }

    #[test]
    fn update_many_recomputes_aggregates() {
        let mut sampler = StochasticAcceptanceSampler::from_weights(vec![1.0; 4]).unwrap();
        sampler
            .update_many(&[(0, 0.0), (1, 0.0), (2, 0.0), (3, 2.0)])
            .unwrap();
        assert_eq!(sampler.non_zero_count(), 1);
        assert!((sampler.total_weight() - 2.0).abs() < 1e-12);
        assert!(sampler.update_many(&[(0, f64::INFINITY)]).is_err());
        // Failed batches must not corrupt the aggregates.
        assert!((sampler.total_weight() - 2.0).abs() < 1e-12);
    }
}
