//! Batch sampling for dynamic samplers, running on the shared
//! [`BatchDriver`] and inheriting its
//! determinism contract: the output buffer is split into fixed chunks, chunk
//! `c` draws from its own counter-based Philox substream derived from one
//! master seed, so the result is a pure function of
//! `(sampler state, master_seed, trials)` and never depends on the rayon
//! schedule or thread count.
//!
//! Every batch is **snapshot-isolated**: the sampler's weights are frozen
//! once (via [`DynamicSampler::snapshot_weights`], which internally locked
//! samplers override with a mutually consistent cut) into a private Fenwick
//! tree, and all trials draw against that frozen copy through its tight-loop
//! [`sample_into`](DynamicSampler::sample_into). Concurrent updates — e.g.
//! writers mutating a [`ShardedArena`](crate::ShardedArena) mid-batch —
//! therefore cannot tear a batch across two distributions, and per-trial
//! draws skip the arena's shard locks entirely.

use lrb_core::batch::BatchDriver;
use lrb_core::error::SelectionError;
use lrb_core::traits::DynamicSampler;

use crate::fenwick::FenwickSampler;

/// Run `trials` independent draws and return per-index counts.
///
/// # Example
///
/// ```
/// use lrb_dynamic::{batch_sample_counts, FenwickSampler};
///
/// let sampler = FenwickSampler::from_weights(vec![0.0, 1.0, 3.0]).unwrap();
/// let counts = batch_sample_counts(&sampler, 8_000, 7).unwrap();
/// assert_eq!(counts[0], 0);                       // zero weight, never drawn
/// assert_eq!(counts.iter().sum::<u64>(), 8_000);
/// assert!(counts[2] > counts[1]);                 // 3:1 mass ratio
/// ```
pub fn batch_sample_counts(
    sampler: &dyn DynamicSampler,
    trials: u64,
    master_seed: u64,
) -> Result<Vec<u64>, SelectionError> {
    let indices = batch_sample_indices(sampler, trials, master_seed)?;
    let mut counts = vec![0u64; sampler.len()];
    for index in indices {
        counts[index] += 1;
    }
    Ok(counts)
}

/// Run `trials` independent draws and return the selected indices in trial
/// order.
///
/// # Example
///
/// ```
/// use lrb_dynamic::{batch_sample_indices, ShardedArena};
///
/// let arena = ShardedArena::from_weights(vec![1.0, 1.0, 1.0, 1.0], 2).unwrap();
/// let a = batch_sample_indices(&arena, 100, 42).unwrap();
/// let b = batch_sample_indices(&arena, 100, 42).unwrap();
/// assert_eq!(a, b); // same master seed, same trials → identical sequence
/// ```
pub fn batch_sample_indices(
    sampler: &dyn DynamicSampler,
    trials: u64,
    master_seed: u64,
) -> Result<Vec<usize>, SelectionError> {
    if trials == 0 {
        return Ok(Vec::new());
    }
    // Freeze one consistent snapshot and serve the whole batch from it; for
    // a flat Fenwick sampler the frozen tree inverts the identical CDF, so
    // the drawn indices are unchanged from sampling the live tree.
    let frozen = FenwickSampler::from_weights(sampler.snapshot_weights())?;
    BatchDriver::new().drive_indices(master_seed, trials, |rng, out| frozen.sample_into(rng, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FenwickSampler, ShardedArena};
    use lrb_core::DynamicSampler;

    #[test]
    fn counts_and_indices_agree() {
        let sampler = FenwickSampler::from_weights(vec![1.0, 2.0, 1.0]).unwrap();
        let counts = batch_sample_counts(&sampler, 5_000, 3).unwrap();
        let indices = batch_sample_indices(&sampler, 5_000, 3).unwrap();
        let mut recount = vec![0u64; sampler.len()];
        for &i in &indices {
            recount[i] += 1;
        }
        assert_eq!(recount, counts);
    }

    #[test]
    fn batches_are_deterministic_per_seed() {
        let arena = ShardedArena::from_weights(vec![2.0, 1.0, 4.0, 3.0], 2).unwrap();
        let a = batch_sample_counts(&arena, 20_000, 9).unwrap();
        let b = batch_sample_counts(&arena, 20_000, 9).unwrap();
        assert_eq!(a, b);
        let c = batch_sample_counts(&arena, 20_000, 10).unwrap();
        assert_ne!(a, c, "different master seeds should differ");
    }

    #[test]
    fn all_zero_sampler_fails_fast() {
        let sampler = FenwickSampler::from_weights(vec![0.0, 0.0]).unwrap();
        assert!(batch_sample_counts(&sampler, 10, 1).is_err());
        assert!(batch_sample_indices(&sampler, 10, 1).is_err());
    }

    #[test]
    fn zero_trials_is_an_empty_batch() {
        let sampler = FenwickSampler::from_weights(vec![1.0]).unwrap();
        assert_eq!(batch_sample_counts(&sampler, 0, 1).unwrap(), vec![0]);
        assert!(batch_sample_indices(&sampler, 0, 1).unwrap().is_empty());
    }

    #[test]
    fn arena_batches_go_through_the_frozen_snapshot_path() {
        // Batching the live arena and batching its explicit freeze() must
        // agree draw for draw: both freeze the same weights into the same
        // Fenwick tree before any trial runs.
        let arena = ShardedArena::from_weights(vec![1.0, 5.0, 2.0, 0.0, 3.0, 4.0], 3).unwrap();
        let live = batch_sample_indices(&arena, 10_000, 77).unwrap();
        let frozen = batch_sample_indices(&arena.freeze(), 10_000, 77).unwrap();
        assert_eq!(live, frozen);
        assert!(live.iter().all(|&i| i != 3), "drew the zero-weight index");
    }

    #[test]
    fn arena_sample_batch_is_the_same_shared_driver_path() {
        let arena = ShardedArena::from_weights(vec![2.0, 0.5, 1.0, 4.0], 2).unwrap();
        assert_eq!(
            arena.sample_batch(5_000, 13).unwrap(),
            batch_sample_indices(&arena, 5_000, 13).unwrap()
        );
    }

    #[test]
    fn batches_are_isolated_from_concurrent_arena_updates() {
        // A writer hammers the arena while batches run: every batch must
        // match SOME consistent snapshot. The writer keeps an invariant —
        // indices 0 and 1 always carry equal weight — so any torn cut
        // (observing index 0 mid-update but index 1 pre-update) would show
        // up as a lopsided batch distribution.
        let arena = ShardedArena::from_weights(vec![4.0, 4.0], 2).unwrap();
        std::thread::scope(|scope| {
            let arena_ref = &arena;
            let writer = scope.spawn(move || {
                for step in 0..200u64 {
                    let w = (step % 9 + 1) as f64;
                    arena_ref.update_shared(0, w).unwrap();
                    arena_ref.update_shared(1, w).unwrap();
                }
            });
            for round in 0..20u64 {
                let counts = batch_sample_counts(arena_ref, 2_000, round).unwrap();
                let share = counts[0] as f64 / 2_000.0;
                // Snapshot cuts land between the two update_shared calls at
                // most one update apart, bounding the weight ratio to
                // [w/(w+9), 9/(w+1)] — far looser than this band.
                assert!(
                    (0.2..=0.8).contains(&share),
                    "round {round}: lopsided batch {counts:?}"
                );
            }
            writer.join().expect("writer panicked");
        });
    }
}
