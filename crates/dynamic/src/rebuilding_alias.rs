//! A Vose-alias sampler with dirty tracking and deferred, amortised
//! rebuilds: the "sample-heavy, update-light" baseline.
//!
//! Draws are `O(1)` while the weights rest. Any [`update`] merely records
//! the new weight and marks the alias table dirty; the table is rebuilt
//! (`O(n)`) lazily on the next draw. Between two updates, any number of
//! draws share a single rebuild — the amortisation that makes this engine
//! competitive when the update:sample ratio is low, and hopeless when it is
//! 1:1 (which is exactly what the `dynamic_benches` sweep shows against
//! [`FenwickSampler`](crate::FenwickSampler)).
//!
//! [`update`]: lrb_core::DynamicSampler::update

use std::sync::Mutex;

use lrb_core::error::SelectionError;
use lrb_core::fitness::Fitness;
use lrb_core::sequential::AliasSampler;
use lrb_core::traits::{DynamicSampler, PreparedSampler};
use lrb_rng::RandomSource;

use crate::validate_weight;

/// Interior state guarded by a mutex so `sample(&self)` can rebuild lazily.
#[derive(Debug)]
struct Cache {
    /// The alias table, or `None` when an update invalidated it.
    table: Option<AliasSampler>,
    /// How many times the table has been (re)built — exposed so benches and
    /// tests can observe the amortisation.
    rebuilds: u64,
    /// Cached weight sum, accumulated in O(1) per update and recomputed
    /// exactly at every rebuild (so drift is bounded by one dirty window).
    total: f64,
}

/// An updatable sampler that rebuilds a Vose alias table on demand.
///
/// # Example
///
/// ```
/// use lrb_core::DynamicSampler;
/// use lrb_dynamic::RebuildingAliasSampler;
/// use lrb_rng::{MersenneTwister64, SeedableSource};
///
/// let mut sampler = RebuildingAliasSampler::from_weights(vec![1.0, 3.0]).unwrap();
/// let mut rng = MersenneTwister64::seed_from_u64(2);
/// let _ = sampler.sample(&mut rng).unwrap();   // builds the table
/// assert_eq!(sampler.rebuild_count(), 1);
/// let _ = sampler.sample(&mut rng).unwrap();   // reuses it
/// assert_eq!(sampler.rebuild_count(), 1);
/// sampler.update(0, 2.0).unwrap();             // marks it dirty
/// let _ = sampler.sample(&mut rng).unwrap();   // rebuilds once
/// assert_eq!(sampler.rebuild_count(), 2);
/// ```
#[derive(Debug)]
pub struct RebuildingAliasSampler {
    weights: Vec<f64>,
    non_zero: usize,
    cache: Mutex<Cache>,
}

impl RebuildingAliasSampler {
    /// Build from raw weights, validating them like [`Fitness::new`].
    pub fn from_weights(weights: Vec<f64>) -> Result<Self, SelectionError> {
        if weights.is_empty() {
            return Err(SelectionError::EmptyFitness);
        }
        for (index, &value) in weights.iter().enumerate() {
            validate_weight(index, value)?;
        }
        Ok(Self::from_validated(weights))
    }

    /// Build from an already-validated [`Fitness`] vector.
    pub fn from_fitness(fitness: &Fitness) -> Self {
        Self::from_validated(fitness.values().to_vec())
    }

    fn from_validated(weights: Vec<f64>) -> Self {
        let total = weights.iter().sum();
        let non_zero = weights.iter().filter(|&&w| w > 0.0).count();
        Self {
            weights,
            non_zero,
            cache: Mutex::new(Cache {
                table: None,
                rebuilds: 0,
                total,
            }),
        }
    }

    /// How many times the alias table has been built so far.
    pub fn rebuild_count(&self) -> u64 {
        self.cache.lock().expect("cache lock poisoned").rebuilds
    }

    /// Whether the next draw will have to rebuild the table.
    pub fn is_dirty(&self) -> bool {
        self.cache
            .lock()
            .expect("cache lock poisoned")
            .table
            .is_none()
    }

    /// Lock the cache with an up-to-date alias table (rebuilding if dirty).
    ///
    /// The caller must have checked `non_zero > 0` — an all-zero vector has
    /// no alias table.
    fn locked_cache(&self) -> Result<std::sync::MutexGuard<'_, Cache>, SelectionError> {
        let mut cache = self.cache.lock().expect("cache lock poisoned");
        if cache.table.is_none() {
            let fitness = Fitness::new(self.weights.clone())?;
            // The rebuild is already O(n); refresh the exact total here so
            // the O(1) per-update accumulation cannot drift across windows.
            cache.total = fitness.total();
            cache.table = Some(AliasSampler::new(&fitness)?);
            cache.rebuilds += 1;
        }
        Ok(cache)
    }

    /// Draw using a locked, up-to-date cache (rebuilding it if dirty).
    fn sample_locked(&self, rng: &mut dyn RandomSource) -> Result<usize, SelectionError> {
        if self.non_zero == 0 {
            return Err(SelectionError::AllZeroFitness);
        }
        let cache = self.locked_cache()?;
        let table = cache.table.as_ref().expect("table built above");
        Ok(table.sample(rng))
    }
}

impl DynamicSampler for RebuildingAliasSampler {
    fn len(&self) -> usize {
        self.weights.len()
    }

    fn weight(&self, index: usize) -> f64 {
        self.weights[index]
    }

    fn total_weight(&self) -> f64 {
        self.cache.lock().expect("cache lock poisoned").total
    }

    fn sample(&self, rng: &mut dyn RandomSource) -> Result<usize, SelectionError> {
        self.sample_locked(rng)
    }

    /// Tight-loop fill: the cache mutex is taken (and the table rebuilt, if
    /// dirty) **once** per buffer instead of once per draw, then every slot
    /// is an `O(1)` alias draw with the same per-draw randomness consumption
    /// as [`sample`](DynamicSampler::sample).
    fn sample_into(
        &self,
        rng: &mut dyn RandomSource,
        out: &mut [usize],
    ) -> Result<(), SelectionError> {
        if self.non_zero == 0 {
            return Err(SelectionError::AllZeroFitness);
        }
        let cache = self.locked_cache()?;
        let table = cache.table.as_ref().expect("table built above");
        table.sample_into(rng, out);
        Ok(())
    }

    fn update(&mut self, index: usize, new_weight: f64) -> Result<(), SelectionError> {
        assert!(
            index < self.weights.len(),
            "index {index} outside 0..{}",
            self.weights.len()
        );
        validate_weight(index, new_weight)?;
        let old = self.weights[index];
        if old > 0.0 && new_weight == 0.0 {
            self.non_zero -= 1;
        } else if old == 0.0 && new_weight > 0.0 {
            self.non_zero += 1;
        }
        self.weights[index] = new_weight;
        // O(1) accumulation keeps the update cheap (the whole point of this
        // engine's dirty tracking); the exact sum is recomputed for free
        // inside the next O(n) lazy rebuild, which bounds any drift to the
        // updates applied since the last draw.
        let cache = self.cache.get_mut().expect("cache lock poisoned");
        cache.total += new_weight - old;
        cache.table = None;
        Ok(())
    }

    fn update_many(&mut self, updates: &[(usize, f64)]) -> Result<(), SelectionError> {
        for &(index, weight) in updates {
            assert!(index < self.weights.len());
            validate_weight(index, weight)?;
        }
        for &(index, weight) in updates {
            self.weights[index] = weight;
        }
        self.non_zero = self.weights.iter().filter(|&&w| w > 0.0).count();
        let cache = self.cache.get_mut().expect("cache lock poisoned");
        cache.total = self.weights.iter().sum();
        cache.table = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrb_rng::{MersenneTwister64, SeedableSource};

    #[test]
    fn draws_match_the_weights_in_distribution() {
        let sampler = RebuildingAliasSampler::from_weights(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(11);
        let trials = 200_000;
        let mut counts = [0u64; 4];
        for _ in 0..trials {
            counts[sampler.sample(&mut rng).unwrap()] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let freq = c as f64 / trials as f64;
            let target = (i + 1) as f64 / 10.0;
            assert!(
                (freq - target).abs() < 0.005,
                "index {i}: {freq} vs {target}"
            );
        }
        assert_eq!(sampler.rebuild_count(), 1, "resting weights need one build");
    }

    #[test]
    fn updates_invalidate_and_draws_rebuild_once() {
        let mut sampler = RebuildingAliasSampler::from_weights(vec![1.0, 1.0]).unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(12);
        assert!(sampler.is_dirty());
        let _ = sampler.sample(&mut rng).unwrap();
        assert!(!sampler.is_dirty());
        sampler.update(0, 3.0).unwrap();
        sampler.update(1, 4.0).unwrap();
        assert!(sampler.is_dirty());
        for _ in 0..10 {
            let _ = sampler.sample(&mut rng).unwrap();
        }
        assert_eq!(sampler.rebuild_count(), 2, "ten draws shared one rebuild");
        assert!((sampler.total_weight() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn batch_updates_count_as_one_invalidation() {
        let mut sampler = RebuildingAliasSampler::from_weights(vec![1.0; 6]).unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(13);
        sampler
            .update_many(&[(0, 0.0), (1, 2.0), (5, 9.0)])
            .unwrap();
        assert!((sampler.total_weight() - 14.0).abs() < 1e-12);
        for _ in 0..1_000 {
            let i = sampler.sample(&mut rng).unwrap();
            assert_ne!(i, 0, "drew the zeroed index");
        }
        assert_eq!(sampler.rebuild_count(), 1);
    }

    #[test]
    fn all_zero_after_updates_is_reported() {
        let mut sampler = RebuildingAliasSampler::from_weights(vec![2.0, 0.0]).unwrap();
        sampler.update(0, 0.0).unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(14);
        assert_eq!(
            sampler.sample(&mut rng),
            Err(SelectionError::AllZeroFitness)
        );
    }
}
