//! A sharded concurrent selection arena: categories are partitioned across
//! independently locked shards, each holding a [`FenwickSampler`].
//!
//! A draw walks two levels — pick the owning shard by total weight, then
//! delegate the inverse-CDF descent to that shard — consuming a single
//! uniform variate, so the overall distribution is exactly
//! `F_i = w_i / Σ w_j`, identical to one flat Fenwick tree over the same
//! weights. The point of the sharding is the locking: updates to categories
//! in different shards take different `RwLock`s and proceed concurrently,
//! which is what a production engine serving mutate-and-sample traffic
//! needs. [`ShardedArena::update_shared`] exposes the `&self` update path;
//! the [`DynamicSampler`] implementation delegates to it.

use std::sync::RwLock;

use lrb_core::error::SelectionError;
use lrb_core::fitness::Fitness;
use lrb_core::sharding::ShardTotals;
use lrb_core::traits::DynamicSampler;
use lrb_rng::RandomSource;

use crate::fenwick::FenwickSampler;
use crate::validate_weight;

/// A concurrent, updatable weighted sampler partitioned into shards.
///
/// # Example
///
/// ```
/// use lrb_core::DynamicSampler;
/// use lrb_dynamic::ShardedArena;
/// use lrb_rng::{MersenneTwister64, SeedableSource};
///
/// let arena = ShardedArena::from_weights(vec![1.0; 64], 8).unwrap();
/// arena.update_shared(10, 100.0).unwrap();      // &self: no exclusive borrow
/// let mut rng = MersenneTwister64::seed_from_u64(3);
/// let mut hits = 0;
/// for _ in 0..1_000 {
///     if arena.sample(&mut rng).unwrap() == 10 {
///         hits += 1;
///     }
/// }
/// assert!(hits > 500); // index 10 now holds 100 of the 163 total mass
/// ```
#[derive(Debug)]
pub struct ShardedArena {
    /// Contiguous partition: shard `j` owns categories
    /// `offsets[j]..offsets[j + 1]`.
    offsets: Vec<usize>,
    shards: Vec<RwLock<FenwickSampler>>,
    /// Per-shard total weights, published through the shared
    /// [`ShardTotals`] layer (the same level-one machinery the sharded
    /// selection service routes on) so the shard pick in
    /// [`DynamicSampler::sample`] is lock-free: each cell is refreshed by
    /// the writer while it still holds that shard's write lock.
    totals: ShardTotals,
}

impl ShardedArena {
    /// Build an arena over raw weights, split into `shards` contiguous
    /// shards (clamped to the category count).
    pub fn from_weights(weights: Vec<f64>, shards: usize) -> Result<Self, SelectionError> {
        if weights.is_empty() {
            return Err(SelectionError::EmptyFitness);
        }
        for (index, &value) in weights.iter().enumerate() {
            validate_weight(index, value)?;
        }
        Ok(Self::from_validated(weights, shards))
    }

    /// Build an arena from an already-validated [`Fitness`] vector.
    pub fn from_fitness(fitness: &Fitness, shards: usize) -> Self {
        Self::from_validated(fitness.values().to_vec(), shards)
    }

    fn from_validated(weights: Vec<f64>, shards: usize) -> Self {
        let n = weights.len();
        let shard_count = shards.clamp(1, n);
        let base = n / shard_count;
        let remainder = n % shard_count;
        let mut offsets = Vec::with_capacity(shard_count + 1);
        let mut shard_samplers = Vec::with_capacity(shard_count);
        let mut start = 0usize;
        for j in 0..shard_count {
            let len = base + usize::from(j < remainder);
            offsets.push(start);
            shard_samplers.push(RwLock::new(
                FenwickSampler::from_weights(weights[start..start + len].to_vec())
                    .expect("non-empty validated shard"),
            ));
            start += len;
        }
        offsets.push(n);
        let initial: Vec<f64> = shard_samplers
            .iter()
            .map(|shard| shard.read().expect("fresh lock").total_weight())
            .collect();
        Self {
            offsets,
            shards: shard_samplers,
            totals: ShardTotals::from_totals(&initial),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning a global category index.
    fn shard_of(&self, index: usize) -> usize {
        debug_assert!(index < *self.offsets.last().expect("offsets non-empty"));
        // offsets is sorted; partition_point returns the first shard whose
        // start exceeds `index`, so subtract one.
        self.offsets.partition_point(|&start| start <= index) - 1
    }

    /// Update a weight through a shared reference: only the owning shard's
    /// lock is taken, so updates to different shards run concurrently. The
    /// shard's cached total is refreshed while the write lock is still held,
    /// so readers never observe a total older than the last completed
    /// update.
    pub fn update_shared(&self, index: usize, new_weight: f64) -> Result<(), SelectionError> {
        let n = *self.offsets.last().expect("offsets non-empty");
        assert!(index < n, "index {index} outside 0..{n}");
        validate_weight(index, new_weight)?;
        let shard = self.shard_of(index);
        let mut guard = self.shards[shard].write().expect("shard lock poisoned");
        guard.update(index - self.offsets[shard], new_weight)?;
        self.totals.set(shard, guard.total_weight());
        Ok(())
    }

    /// Per-shard total weights, read lock-free from the shared
    /// [`ShardTotals`] cells.
    pub fn shard_totals(&self) -> Vec<f64> {
        self.totals.snapshot()
    }

    /// Freeze the arena into a flat [`FenwickSampler`] over a consistent cut
    /// of the weights — the snapshot the batch path and the `lrb-engine`
    /// serving layer draw against.
    pub fn freeze(&self) -> FenwickSampler {
        FenwickSampler::from_weights(self.snapshot_weights())
            .expect("a non-empty arena snapshots to non-empty weights")
    }

    /// Run `trials` deterministic draws against one consistent frozen cut of
    /// the arena, in trial order — the shared
    /// [`BatchDriver`](lrb_core::batch::BatchDriver) path (identical to
    /// [`batch_sample_indices`](crate::batch_sample_indices) on this arena).
    /// Trials never touch the shard locks: the freeze takes them once, the
    /// batch draws lock-free from the frozen tree.
    pub fn sample_batch(
        &self,
        trials: u64,
        master_seed: u64,
    ) -> Result<Vec<usize>, SelectionError> {
        crate::batch::batch_sample_indices(self, trials, master_seed)
    }
}

impl DynamicSampler for ShardedArena {
    fn len(&self) -> usize {
        *self.offsets.last().expect("offsets non-empty")
    }

    fn weight(&self, index: usize) -> f64 {
        let n = self.len();
        assert!(index < n, "index {index} outside 0..{n}");
        let shard = self.shard_of(index);
        self.shards[shard]
            .read()
            .expect("shard lock poisoned")
            .weight(index - self.offsets[shard])
    }

    fn total_weight(&self) -> f64 {
        self.shard_totals().iter().sum()
    }

    fn sample(&self, rng: &mut dyn RandomSource) -> Result<usize, SelectionError> {
        // Two-level inverse CDF on one uniform: locate the shard through
        // the shared level-one Fenwick (a `TotalsCut` frozen from the
        // lock-free cells — only the single landing shard is then
        // read-locked), and delegate the in-shard descent. The residual is
        // renormalised against the *cut's* total of the landing shard (not
        // a re-read one), so a concurrent update racing between the cut and
        // the shard lock rescales the draw proportionally into the shard's
        // new mass instead of clamping it onto the rightmost index. Draws
        // are exact whenever no update races this call; under racing
        // updates they remain proportional per shard.
        let cut = self.totals.cut();
        let Some((shard, mut r)) = cut.pick_uniform(rng.next_f64()) else {
            return Err(SelectionError::AllZeroFitness);
        };
        let totals = cut.totals();
        // Walk left from the landing shard if it turned out empty (possible
        // only through a concurrent update racing the cut — the cut itself
        // never lands on a zero-total shard).
        for j in (0..=shard).rev() {
            let guard = self.shards[j].read().expect("shard lock poisoned");
            match guard.sample(&mut ClampedDraw {
                r,
                total: totals[j],
            }) {
                Ok(local) => return Ok(self.offsets[j] + local),
                Err(SelectionError::AllZeroFitness) => {
                    r = f64::MAX; // fall back to "rightmost mass" in earlier shards
                    continue;
                }
                Err(other) => return Err(other),
            }
        }
        // Everything left of the landing shard is empty; scan right instead.
        for (j, shard_lock) in self.shards.iter().enumerate().skip(shard + 1) {
            let guard = shard_lock.read().expect("shard lock poisoned");
            let total = guard.total_weight();
            if let Ok(local) = guard.sample(&mut ClampedDraw { r: 0.0, total }) {
                return Ok(self.offsets[j] + local);
            }
        }
        Err(SelectionError::AllZeroFitness)
    }

    fn update(&mut self, index: usize, new_weight: f64) -> Result<(), SelectionError> {
        self.update_shared(index, new_weight)
    }

    /// A mutually consistent cut: every shard's read lock is held
    /// simultaneously while copying, so the returned vector corresponds to
    /// one instant between updates — the default trait method's
    /// weight-by-weight reads could interleave with writers and tear.
    fn snapshot_weights(&self) -> Vec<f64> {
        let guards: Vec<_> = self
            .shards
            .iter()
            .map(|shard| shard.read().expect("shard lock poisoned"))
            .collect();
        let mut weights = Vec::with_capacity(self.len());
        for guard in &guards {
            weights.extend_from_slice(guard.weights());
        }
        weights
    }
}

/// A one-shot "random source" that replays a pre-drawn threshold.
///
/// The arena draws a single uniform for the whole two-level walk; the
/// in-shard [`FenwickSampler::sample`] expects to draw its own uniform, so
/// this adapter feeds it `r / total`, making the delegated descent continue
/// the arena-level draw exactly.
struct ClampedDraw {
    r: f64,
    total: f64,
}

impl RandomSource for ClampedDraw {
    fn next_u64(&mut self) -> u64 {
        unreachable!("ClampedDraw only serves next_f64")
    }

    fn next_f64(&mut self) -> f64 {
        if self.total <= 0.0 {
            return 0.0;
        }
        (self.r / self.total).clamp(0.0, 1.0 - f64::EPSILON)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrb_rng::{MersenneTwister64, SeedableSource};

    #[test]
    fn partition_covers_every_index_once() {
        for (n, shards) in [(10, 3), (64, 8), (7, 7), (5, 16), (1, 1)] {
            let arena = ShardedArena::from_weights(vec![1.0; n], shards).unwrap();
            assert_eq!(arena.len(), n);
            assert!(arena.shard_count() <= n.max(1));
            for i in 0..n {
                assert_eq!(arena.weight(i), 1.0, "n={n} shards={shards} i={i}");
            }
            assert!((arena.total_weight() - n as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn distribution_matches_a_flat_fenwick_tree() {
        let weights: Vec<f64> = (0..40).map(|i| (i % 7) as f64).collect();
        let arena = ShardedArena::from_weights(weights.clone(), 5).unwrap();
        let total: f64 = weights.iter().sum();
        let mut rng = MersenneTwister64::seed_from_u64(21);
        let trials = 200_000;
        let mut counts = vec![0u64; weights.len()];
        for _ in 0..trials {
            counts[arena.sample(&mut rng).unwrap()] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let freq = c as f64 / trials as f64;
            let target = weights[i] / total;
            assert!(
                (freq - target).abs() < 0.006,
                "index {i}: {freq} vs {target}"
            );
        }
    }

    #[test]
    fn updates_route_to_the_owning_shard() {
        let arena = ShardedArena::from_weights(vec![1.0; 12], 4).unwrap();
        arena.update_shared(0, 0.0).unwrap();
        arena.update_shared(11, 9.0).unwrap();
        arena.update_shared(5, 2.5).unwrap();
        assert_eq!(arena.weight(0), 0.0);
        assert_eq!(arena.weight(11), 9.0);
        assert_eq!(arena.weight(5), 2.5);
        // 9 untouched unit weights plus the three updates.
        assert!((arena.total_weight() - (9.0 + 2.5 + 9.0)).abs() < 1e-12);
    }

    #[test]
    fn zeroing_everything_yields_all_zero_error() {
        let mut arena = ShardedArena::from_weights(vec![1.0, 1.0, 1.0], 2).unwrap();
        for i in 0..3 {
            arena.update(i, 0.0).unwrap();
        }
        let mut rng = MersenneTwister64::seed_from_u64(5);
        assert_eq!(arena.sample(&mut rng), Err(SelectionError::AllZeroFitness));
    }

    #[test]
    fn empty_shards_are_walked_over() {
        // Mass only in the last shard: the cumulative walk must cross the
        // empty shards and still land on a positive weight.
        let mut weights = vec![0.0; 30];
        weights[29] = 1.0;
        weights[28] = 1.0;
        let arena = ShardedArena::from_weights(weights, 6).unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(6);
        for _ in 0..2_000 {
            let i = arena.sample(&mut rng).unwrap();
            assert!(i == 28 || i == 29);
        }
    }

    #[test]
    fn concurrent_updates_to_disjoint_shards_are_safe() {
        let arena = ShardedArena::from_weights(vec![1.0; 256], 8).unwrap();
        std::thread::scope(|scope| {
            for t in 0..8usize {
                let arena = &arena;
                scope.spawn(move || {
                    for step in 0..1_000usize {
                        let index = t * 32 + step % 32;
                        arena.update_shared(index, (step % 5) as f64).unwrap();
                    }
                });
            }
        });
        // Final state: every index i holds ((999 - (999 % 32) + i % 32) % 5)
        // … simpler: just verify the totals are consistent with the weights.
        let recomputed: f64 = (0..256).map(|i| arena.weight(i)).sum();
        assert!((arena.total_weight() - recomputed).abs() < 1e-9);
    }
}
