//! Confidence intervals for binomial proportions.
//!
//! Each row of Table I / Table II is an estimated selection probability from
//! `T` Bernoulli-style trials; a Wilson score interval around the empirical
//! frequency tells us whether the exact `F_i` lies within sampling noise.

/// A two-sided confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower bound.
    pub low: f64,
    /// Upper bound.
    pub high: f64,
}

impl ConfidenceInterval {
    /// Whether `value` lies inside the interval (inclusive).
    pub fn contains(&self, value: f64) -> bool {
        self.low <= value && value <= self.high
    }

    /// Width of the interval.
    pub fn width(&self) -> f64 {
        self.high - self.low
    }
}

/// Wilson score interval for a binomial proportion.
///
/// `successes` out of `trials`, with critical value `z` (1.96 for 95%,
/// 2.576 for 99%). Well-behaved even when the proportion is near 0 or 1,
/// which matters for Table II's `F_0 ≈ 0.005` row and for the independent
/// roulette's essentially-zero frequencies.
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> ConfidenceInterval {
    assert!(trials > 0, "cannot build an interval from zero trials");
    assert!(successes <= trials, "successes cannot exceed trials");
    assert!(z > 0.0, "critical value must be positive");
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ConfidenceInterval {
        low: (centre - half).max(0.0),
        high: (centre + half).min(1.0),
    }
}

/// Normal-approximation (Wald) interval, provided for comparison and for
/// large-sample quick estimates.
pub fn wald_interval(successes: u64, trials: u64, z: f64) -> ConfidenceInterval {
    assert!(trials > 0, "cannot build an interval from zero trials");
    assert!(successes <= trials, "successes cannot exceed trials");
    let n = trials as f64;
    let p = successes as f64 / n;
    let half = z * (p * (1.0 - p) / n).sqrt();
    ConfidenceInterval {
        low: (p - half).max(0.0),
        high: (p + half).min(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn wilson_interval_contains_the_point_estimate() {
        let ci = wilson_interval(70, 100, 1.96);
        assert!(ci.contains(0.7));
        assert!(ci.low > 0.59 && ci.high < 0.79);
    }

    #[test]
    fn wilson_known_value() {
        // A classic worked example: 10 successes in 50 trials at 95% gives
        // roughly [0.112, 0.330].
        let ci = wilson_interval(10, 50, 1.96);
        assert!((ci.low - 0.112).abs() < 0.005, "low {}", ci.low);
        assert!((ci.high - 0.330).abs() < 0.005, "high {}", ci.high);
    }

    #[test]
    fn zero_successes_still_gives_a_sensible_interval() {
        let ci = wilson_interval(0, 1000, 1.96);
        assert_eq!(ci.low, 0.0);
        assert!(ci.high > 0.0 && ci.high < 0.01);
    }

    #[test]
    fn all_successes_still_gives_a_sensible_interval() {
        let ci = wilson_interval(1000, 1000, 1.96);
        assert_eq!(ci.high, 1.0);
        assert!(ci.low < 1.0 && ci.low > 0.99);
    }

    #[test]
    fn interval_narrows_with_more_trials() {
        let small = wilson_interval(50, 100, 1.96);
        let big = wilson_interval(5000, 10_000, 1.96);
        assert!(big.width() < small.width());
    }

    #[test]
    fn wald_and_wilson_agree_for_large_balanced_samples() {
        let wilson = wilson_interval(50_000, 100_000, 1.96);
        let wald = wald_interval(50_000, 100_000, 1.96);
        assert!((wilson.low - wald.low).abs() < 1e-3);
        assert!((wilson.high - wald.high).abs() < 1e-3);
    }

    #[test]
    #[should_panic]
    fn zero_trials_panics() {
        wilson_interval(0, 0, 1.96);
    }

    #[test]
    #[should_panic]
    fn successes_beyond_trials_panics() {
        wilson_interval(5, 3, 1.96);
    }

    proptest! {
        #[test]
        fn prop_wilson_bounds_are_ordered_and_in_unit_interval(
            trials in 1u64..100_000,
            frac in 0.0f64..=1.0,
        ) {
            let successes = (trials as f64 * frac) as u64;
            let ci = wilson_interval(successes.min(trials), trials, 1.96);
            prop_assert!(ci.low <= ci.high);
            prop_assert!(ci.low >= 0.0 && ci.high <= 1.0);
            prop_assert!(ci.contains(successes.min(trials) as f64 / trials as f64));
        }
    }
}
