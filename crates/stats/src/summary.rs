//! Summary statistics: streaming moments (Welford) and order statistics.
//!
//! The Theorem 1 experiment reports the mean, standard deviation and upper
//! percentiles of the while-loop iteration counts across many trials; these
//! helpers compute them without storing gigabytes of samples (the streaming
//! path) or from a retained sample vector (the percentile path).

/// Streaming mean/variance accumulator (Welford's algorithm), numerically
/// stable for long runs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The running mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The population variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// The sample (Bessel-corrected) variance.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator into this one (parallel reduction of
    /// partial statistics, Chan et al.).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let total_f = total as f64;
        self.m2 += other.m2 + delta * delta * (self.count as f64) * (other.count as f64) / total_f;
        self.mean += delta * other.count as f64 / total_f;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Summary of a retained sample: moments plus selected percentiles.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Compute a summary of a non-empty sample.
    pub fn of(samples: &[f64]) -> Summary {
        assert!(!samples.is_empty(), "cannot summarise an empty sample");
        let mut online = OnlineStats::new();
        for &x in samples {
            online.push(x);
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not contain NaN"));
        Summary {
            count: samples.len(),
            mean: online.mean(),
            std_dev: online.std_dev(),
            min: sorted[0],
            median: percentile_of_sorted(&sorted, 50.0),
            p95: percentile_of_sorted(&sorted, 95.0),
            max: *sorted.last().unwrap(),
        }
    }
}

/// Linear-interpolated percentile of an ascending-sorted sample.
pub fn percentile_of_sorted(sorted: &[f64], pct: f64) -> f64 {
    assert!(!sorted.is_empty(), "empty sample");
    assert!(
        (0.0..=100.0).contains(&pct),
        "percentile must be in [0, 100]"
    );
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = pct / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn online_stats_basic_moments() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_and_single_observation_edge_cases() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.variance(), 0.0);
        let mut s = OnlineStats::new();
        s.push(3.0);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    fn sample_variance_uses_bessel_correction() {
        let mut s = OnlineStats::new();
        for x in [1.0, 2.0, 3.0] {
            s.push(x);
        }
        assert!((s.variance() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.sample_variance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_single_pass() {
        let data: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 / 7.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &data[..400] {
            left.push(x);
        }
        for &x in &data[400..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn percentiles_of_small_samples() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile_of_sorted(&sorted, 0.0), 1.0);
        assert_eq!(percentile_of_sorted(&sorted, 50.0), 3.0);
        assert_eq!(percentile_of_sorted(&sorted, 100.0), 5.0);
        assert!((percentile_of_sorted(&sorted, 25.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 100.0]);
        assert_eq!(s.count, 5);
        assert!((s.mean - 22.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.median, 3.0);
        assert!(s.p95 > 4.0 && s.p95 <= 100.0);
    }

    #[test]
    #[should_panic]
    fn summary_of_empty_sample_panics() {
        Summary::of(&[]);
    }

    proptest! {
        #[test]
        fn prop_online_matches_naive(data in proptest::collection::vec(-1e3f64..1e3, 1..200)) {
            let mut s = OnlineStats::new();
            for &x in &data {
                s.push(x);
            }
            let n = data.len() as f64;
            let mean = data.iter().sum::<f64>() / n;
            let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
            prop_assert!((s.mean() - mean).abs() < 1e-6);
            prop_assert!((s.variance() - var).abs() < 1e-6);
        }

        #[test]
        fn prop_percentile_is_within_range(
            data in proptest::collection::vec(-1e3f64..1e3, 1..100),
            pct in 0.0f64..100.0,
        ) {
            let mut sorted = data.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let p = percentile_of_sorted(&sorted, pct);
            prop_assert!(p >= sorted[0] - 1e-12);
            prop_assert!(p <= sorted[sorted.len() - 1] + 1e-12);
        }
    }
}
