//! # lrb-stats — statistical verification substrate
//!
//! The paper's evaluation is entirely about *probability precision*: Tables I
//! and II compare the empirical selection frequencies of two algorithms
//! against the exact target probabilities `F_i`. This crate supplies the
//! machinery to make that comparison quantitative rather than visual:
//!
//! * [`EmpiricalDistribution`] — counts selections and turns them into
//!   frequencies with exact-target comparison helpers.
//! * [`chi_square`] — Pearson's chi-square goodness-of-fit test, including the
//!   p-value (via the regularized incomplete gamma function in [`special`]).
//! * [`divergence`] — total-variation distance, Kullback–Leibler divergence
//!   and chi-square distance between distributions.
//! * [`summary`] — streaming mean/variance (Welford) and order statistics.
//! * [`ci`] — Wilson score confidence intervals for the per-index selection
//!   frequencies, used to decide whether a deviation from `F_i` is noise.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chi_square;
pub mod ci;
pub mod divergence;
pub mod empirical;
pub mod ks;
pub mod special;
pub mod summary;

pub use chi_square::{chi_square_gof, ChiSquareResult};
pub use ci::{wilson_interval, ConfidenceInterval};
pub use divergence::{chi_square_distance, kl_divergence, total_variation};
pub use empirical::EmpiricalDistribution;
pub use ks::{ks_test, KsResult};
pub use summary::{OnlineStats, Summary};
