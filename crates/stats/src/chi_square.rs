//! Pearson's chi-square goodness-of-fit test.
//!
//! Used by the Table I / Table II experiments to decide whether the empirical
//! selection counts of an algorithm are consistent with the exact target
//! probabilities `F_i` (they are for the logarithmic random bidding, and are
//! spectacularly not for the independent roulette).

use crate::special::chi_square_cdf;

/// Result of a chi-square goodness-of-fit test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquareResult {
    /// The test statistic `Σ (observed − expected)² / expected` over the
    /// categories with non-zero expected count.
    pub statistic: f64,
    /// Degrees of freedom (non-zero-expectation categories minus one).
    pub degrees_of_freedom: usize,
    /// The p-value: probability of a statistic at least this large under the
    /// null hypothesis that the observations follow the expected
    /// distribution.
    pub p_value: f64,
}

impl ChiSquareResult {
    /// Whether the test fails to reject the null hypothesis at the given
    /// significance level (e.g. `0.01`).
    pub fn is_consistent(&self, significance: f64) -> bool {
        self.p_value > significance
    }
}

/// Run a chi-square goodness-of-fit test.
///
/// `observed[i]` is the number of times category `i` was observed;
/// `expected_probs[i]` is the null-hypothesis probability of category `i`.
/// Categories whose expected probability is zero are checked separately: any
/// observation there makes the test fail outright (statistic = ∞), because a
/// zero-probability event occurred.
///
/// Panics if the slices have different lengths, if the probabilities do not
/// sum to approximately one, or if there are fewer than two categories with
/// positive expected probability.
pub fn chi_square_gof(observed: &[u64], expected_probs: &[f64]) -> ChiSquareResult {
    assert_eq!(
        observed.len(),
        expected_probs.len(),
        "observed and expected must have the same length"
    );
    let prob_sum: f64 = expected_probs.iter().sum();
    assert!(
        (prob_sum - 1.0).abs() < 1e-6,
        "expected probabilities must sum to 1, got {prob_sum}"
    );
    assert!(
        expected_probs.iter().all(|&p| p >= 0.0),
        "expected probabilities must be non-negative"
    );

    let total: u64 = observed.iter().sum();
    let total_f = total as f64;

    let mut statistic = 0.0;
    let mut categories = 0usize;
    let mut impossible_observed = false;
    for (&obs, &p) in observed.iter().zip(expected_probs) {
        if p == 0.0 {
            if obs > 0 {
                impossible_observed = true;
            }
            continue;
        }
        categories += 1;
        let expected = p * total_f;
        let diff = obs as f64 - expected;
        statistic += diff * diff / expected;
    }
    assert!(
        categories >= 2,
        "need at least two categories with positive expected probability"
    );

    if impossible_observed {
        return ChiSquareResult {
            statistic: f64::INFINITY,
            degrees_of_freedom: categories - 1,
            p_value: 0.0,
        };
    }

    let dof = categories - 1;
    let p_value = 1.0 - chi_square_cdf(statistic, dof as f64);
    ChiSquareResult {
        statistic,
        degrees_of_freedom: dof,
        p_value: p_value.clamp(0.0, 1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_matching_counts_give_statistic_zero() {
        let observed = [250u64, 250, 250, 250];
        let expected = [0.25, 0.25, 0.25, 0.25];
        let r = chi_square_gof(&observed, &expected);
        assert_eq!(r.statistic, 0.0);
        assert_eq!(r.degrees_of_freedom, 3);
        assert!((r.p_value - 1.0).abs() < 1e-9);
        assert!(r.is_consistent(0.05));
    }

    #[test]
    fn textbook_example_fair_die() {
        // Classic worked example: 60 rolls of a die with observed counts
        // [5, 8, 9, 8, 10, 20] gives χ² = 13.4 and p ≈ 0.0199 with 5 dof.
        let observed = [5u64, 8, 9, 8, 10, 20];
        let expected = [1.0 / 6.0; 6];
        let r = chi_square_gof(&observed, &expected);
        assert!(
            (r.statistic - 13.4).abs() < 1e-9,
            "statistic {}",
            r.statistic
        );
        assert_eq!(r.degrees_of_freedom, 5);
        assert!((r.p_value - 0.0199).abs() < 0.001, "p {}", r.p_value);
        assert!(!r.is_consistent(0.05));
        assert!(r.is_consistent(0.01));
    }

    #[test]
    fn grossly_skewed_counts_are_rejected() {
        let observed = [900u64, 50, 25, 25];
        let expected = [0.25, 0.25, 0.25, 0.25];
        let r = chi_square_gof(&observed, &expected);
        assert!(r.p_value < 1e-10);
        assert!(!r.is_consistent(0.001));
    }

    #[test]
    fn zero_probability_category_with_observations_fails_hard() {
        let observed = [10u64, 90, 5];
        let expected = [0.1, 0.9, 0.0];
        let r = chi_square_gof(&observed, &expected);
        assert_eq!(r.statistic, f64::INFINITY);
        assert_eq!(r.p_value, 0.0);
    }

    #[test]
    fn zero_probability_category_without_observations_is_ignored() {
        let observed = [100u64, 900, 0];
        let expected = [0.1, 0.9, 0.0];
        let r = chi_square_gof(&observed, &expected);
        assert_eq!(r.degrees_of_freedom, 1);
        assert!(r.is_consistent(0.05));
    }

    #[test]
    fn proportional_counts_scale_the_statistic_linearly() {
        // Doubling all counts doubles the statistic when frequencies are off.
        let observed_small = [60u64, 40];
        let observed_big = [120u64, 80];
        let expected = [0.5, 0.5];
        let small = chi_square_gof(&observed_small, &expected);
        let big = chi_square_gof(&observed_big, &expected);
        assert!((big.statistic - 2.0 * small.statistic).abs() < 1e-9);
        assert!(big.p_value < small.p_value);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        chi_square_gof(&[1, 2], &[0.5, 0.3, 0.2]);
    }

    #[test]
    #[should_panic]
    fn probabilities_must_sum_to_one() {
        chi_square_gof(&[1, 2], &[0.5, 0.6]);
    }

    #[test]
    fn large_sample_near_exact_distribution_is_consistent() {
        // Simulated "correct algorithm" case: frequencies within Poisson noise
        // of the targets.
        let expected = [0.1, 0.2, 0.3, 0.4];
        let n = 1_000_000u64;
        let observed = [100_300u64, 199_500, 300_400, 399_800];
        assert_eq!(observed.iter().sum::<u64>(), n);
        let r = chi_square_gof(&observed, &expected);
        assert!(r.is_consistent(0.01), "p = {}", r.p_value);
    }
}
