//! Special functions needed by the statistical tests: log-gamma, the
//! regularized incomplete gamma functions, and the error function.
//!
//! Implementations follow the standard numerical recipes: a Lanczos
//! approximation for `ln Γ`, the series/continued-fraction split for the
//! incomplete gamma functions, and the Abramowitz–Stegun rational
//! approximation for `erf`. Accuracy is more than sufficient for p-values
//! (absolute error well below 1e-10 over the ranges exercised here).

/// Lanczos coefficients (g = 7, n = 9), quoted verbatim from the standard
/// tables (the extra digits beyond f64 precision are kept for provenance).
const LANCZOS_G: f64 = 7.0;
#[allow(clippy::excessive_precision)]
const LANCZOS_COEFFS: [f64; 9] = [
    0.999_999_999_999_809_93,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_13,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_571_6e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument, got {x}");
    if x < 0.5 {
        // Reflection formula keeps the Lanczos series in its accurate range.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS_COEFFS[0];
    for (i, &c) in LANCZOS_COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_p requires a > 0 and x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_continued_fraction(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_q requires a > 0 and x >= 0");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_continued_fraction(a, x)
    }
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut denom = a;
    for _ in 0..500 {
        denom += 1.0;
        term *= x / denom;
        sum += term;
        if term.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_q_continued_fraction(a: f64, x: f64) -> f64 {
    // Modified Lentz's method for the continued fraction representation.
    let tiny = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// The error function `erf(x)`, accurate to about 1.2e-7 (Abramowitz–Stegun
/// 7.1.26), sufficient for confidence-interval z-scores.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Cumulative distribution function of the standard normal distribution.
pub fn standard_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Cumulative distribution function of the chi-square distribution with `k`
/// degrees of freedom evaluated at `x`.
pub fn chi_square_cdf(x: f64, k: f64) -> f64 {
    assert!(k > 0.0, "degrees of freedom must be positive");
    if x <= 0.0 {
        return 0.0;
    }
    gamma_p(k / 2.0, x / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + b.abs())
    }

    #[test]
    fn ln_gamma_known_values() {
        assert!(close(ln_gamma(1.0), 0.0, 1e-12));
        assert!(close(ln_gamma(2.0), 0.0, 1e-12));
        assert!(close(ln_gamma(3.0), std::f64::consts::LN_2, 1e-12));
        assert!(close(ln_gamma(5.0), 24.0f64.ln(), 1e-12));
        assert!(close(ln_gamma(11.0), 3_628_800.0f64.ln(), 1e-11));
        // Γ(1/2) = √π.
        assert!(close(
            ln_gamma(0.5),
            std::f64::consts::PI.sqrt().ln(),
            1e-12
        ));
    }

    #[test]
    fn ln_gamma_small_arguments_use_reflection() {
        // Γ(0.25) ≈ 3.625609908.
        assert!(close(ln_gamma(0.25), 3.625_609_908_221_908f64.ln(), 1e-9));
    }

    #[test]
    #[should_panic]
    fn ln_gamma_rejects_non_positive() {
        ln_gamma(0.0);
    }

    #[test]
    fn gamma_p_of_one_is_exponential_cdf() {
        for x in [0.1f64, 0.5, 1.0, 2.0, 5.0, 10.0] {
            let expect = 1.0 - (-x).exp();
            assert!(close(gamma_p(1.0, x), expect, 1e-10), "x={x}");
        }
    }

    #[test]
    fn gamma_p_and_q_sum_to_one() {
        for a in [0.5, 1.0, 2.5, 10.0, 50.0] {
            for x in [0.01, 0.5, 1.0, 3.0, 10.0, 60.0] {
                let p = gamma_p(a, x);
                let q = gamma_q(a, x);
                assert!(close(p + q, 1.0, 1e-10), "a={a}, x={x}: {p} + {q}");
            }
        }
    }

    #[test]
    fn gamma_p_is_monotone_in_x() {
        let a = 3.0;
        let mut prev = 0.0;
        for i in 1..100 {
            let x = i as f64 * 0.2;
            let p = gamma_p(a, x);
            assert!(p >= prev - 1e-12);
            prev = p;
        }
        assert!(prev > 0.999);
    }

    #[test]
    fn chi_square_cdf_two_dof_closed_form() {
        // With k = 2 the chi-square CDF is 1 − exp(−x/2).
        for x in [0.5, 1.0, 2.0, 5.0, 9.0] {
            let expect = 1.0 - (-x / 2.0f64).exp();
            assert!(close(chi_square_cdf(x, 2.0), expect, 1e-10), "x={x}");
        }
    }

    #[test]
    fn chi_square_cdf_median_of_k_equals_roughly_k_minus_two_thirds() {
        // A classical approximation: the median of χ²_k is ≈ k(1 − 2/(9k))³.
        for k in [1.0f64, 4.0, 10.0, 30.0] {
            let median_approx = k * (1.0 - 2.0 / (9.0 * k)).powi(3);
            let cdf = chi_square_cdf(median_approx, k);
            assert!((cdf - 0.5).abs() < 0.01, "k={k}: cdf {cdf}");
        }
    }

    #[test]
    fn erf_known_values() {
        // The rational approximation has absolute error ~1e-7.
        assert!(erf(0.0).abs() < 1e-6);
        assert!((erf(1.0) - 0.842_700_792_9).abs() < 1e-6);
        assert!((erf(2.0) - 0.995_322_265_0).abs() < 1e-6);
        assert!(erf(5.0) > 0.999_999);
    }

    #[test]
    fn erf_is_odd() {
        for x in [0.3, 1.2, 2.5] {
            assert!(close(erf(-x), -erf(x), 1e-12));
        }
    }

    #[test]
    fn normal_cdf_known_values() {
        assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-6);
        assert!((standard_normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((standard_normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }
}
