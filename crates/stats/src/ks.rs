//! One-sample Kolmogorov–Smirnov test against a known continuous CDF.
//!
//! Used to validate the *continuous* building blocks of the reproduction —
//! the uniform `[0, 1)` conversions and the exponential samplers behind the
//! logarithmic bids — where a chi-square over bins would waste information.

/// Result of a one-sample KS test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsResult {
    /// The KS statistic `D_n = sup |F_empirical − F|`.
    pub statistic: f64,
    /// Number of samples.
    pub n: usize,
    /// Asymptotic p-value (Kolmogorov distribution; accurate for `n ≳ 35`).
    pub p_value: f64,
}

impl KsResult {
    /// Whether the sample is consistent with the reference distribution at
    /// the given significance level.
    pub fn is_consistent(&self, significance: f64) -> bool {
        self.p_value > significance
    }
}

/// Run a one-sample KS test of `samples` against the continuous CDF `cdf`.
///
/// Panics on an empty sample or NaN values.
pub fn ks_test(samples: &[f64], cdf: impl Fn(f64) -> f64) -> KsResult {
    assert!(!samples.is_empty(), "KS test needs at least one sample");
    assert!(
        samples.iter().all(|x| !x.is_nan()),
        "samples must not contain NaN"
    );
    let n = samples.len();
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));

    let mut d = 0.0f64;
    for (i, &x) in sorted.iter().enumerate() {
        let f = cdf(x).clamp(0.0, 1.0);
        let upper = (i as f64 + 1.0) / n as f64 - f;
        let lower = f - i as f64 / n as f64;
        d = d.max(upper).max(lower);
    }

    KsResult {
        statistic: d,
        n,
        p_value: kolmogorov_survival((n as f64).sqrt() * d),
    }
}

/// The survival function of the Kolmogorov distribution,
/// `Q(t) = 2 Σ_{j≥1} (−1)^{j−1} exp(−2 j² t²)`.
fn kolmogorov_survival(t: f64) -> f64 {
    if t <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    for j in 1..=100 {
        let term = (-2.0 * (j as f64) * (j as f64) * t * t).exp();
        if term < 1e-18 {
            break;
        }
        sum += if j % 2 == 1 { term } else { -term };
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic low-discrepancy sequence that is (by construction)
    /// consistent with the uniform distribution.
    fn uniform_grid(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 + 0.5) / n as f64).collect()
    }

    #[test]
    fn uniform_grid_is_accepted_against_uniform_cdf() {
        let samples = uniform_grid(1000);
        let result = ks_test(&samples, |x| x.clamp(0.0, 1.0));
        assert!(result.statistic < 0.01);
        assert!(result.is_consistent(0.05));
    }

    #[test]
    fn shifted_sample_is_rejected() {
        let samples: Vec<f64> = uniform_grid(1000).iter().map(|x| x * 0.5).collect();
        let result = ks_test(&samples, |x| x.clamp(0.0, 1.0));
        assert!(result.statistic > 0.4);
        assert!(!result.is_consistent(0.01));
    }

    #[test]
    fn exponential_grid_matches_exponential_cdf() {
        // Inverse-transform the uniform grid: exact exponential quantiles.
        let samples: Vec<f64> = uniform_grid(2000).iter().map(|u| -(1.0 - u).ln()).collect();
        let result = ks_test(&samples, |x| 1.0 - (-x).exp());
        assert!(result.is_consistent(0.05), "D = {}", result.statistic);
    }

    #[test]
    fn exponential_sample_against_wrong_rate_is_rejected() {
        let samples: Vec<f64> = uniform_grid(2000).iter().map(|u| -(1.0 - u).ln()).collect();
        // Test against rate 2 instead of 1.
        let result = ks_test(&samples, |x| 1.0 - (-2.0 * x).exp());
        assert!(!result.is_consistent(0.01));
    }

    #[test]
    fn kolmogorov_survival_known_values() {
        // Q(0) = 1; Q(∞) = 0; the 95% critical point is ≈ 1.358.
        assert_eq!(kolmogorov_survival(0.0), 1.0);
        assert!(kolmogorov_survival(10.0) < 1e-12);
        let q = kolmogorov_survival(1.358);
        assert!((q - 0.05).abs() < 0.005, "Q(1.358) = {q}");
    }

    #[test]
    #[should_panic]
    fn empty_sample_panics() {
        ks_test(&[], |x| x);
    }

    #[test]
    fn small_sample_still_produces_a_statistic_in_range() {
        let result = ks_test(&[0.1, 0.5, 0.9], |x| x.clamp(0.0, 1.0));
        assert!((0.0..=1.0).contains(&result.statistic));
        assert!((0.0..=1.0).contains(&result.p_value));
        assert_eq!(result.n, 3);
    }
}
