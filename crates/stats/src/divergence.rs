//! Distances between probability distributions.
//!
//! The reproduction summarises "how wrong" the independent roulette selection
//! is (and "how right" the logarithmic random bidding is) as a single number
//! per experiment; total-variation distance is the headline metric, with KL
//! divergence and chi-square distance available for the curious.

/// Total-variation distance `½ Σ |p_i − q_i|` between two distributions over
/// the same categories. Ranges from 0 (identical) to 1 (disjoint support).
pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions must share a support");
    0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

/// Kullback–Leibler divergence `Σ p_i ln(p_i / q_i)` in nats.
///
/// Terms with `p_i = 0` contribute zero. A term with `p_i > 0` and `q_i = 0`
/// makes the divergence infinite — which is precisely what happens when the
/// independent roulette assigns probability ~0 to an index whose true
/// probability is positive.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions must share a support");
    let mut sum = 0.0;
    for (&a, &b) in p.iter().zip(q) {
        debug_assert!(a >= 0.0 && b >= 0.0);
        if a == 0.0 {
            continue;
        }
        if b == 0.0 {
            return f64::INFINITY;
        }
        sum += a * (a / b).ln();
    }
    sum
}

/// Neyman chi-square distance `Σ (p_i − q_i)² / q_i` over categories with
/// `q_i > 0`; categories with `q_i = 0` and `p_i > 0` make it infinite.
pub fn chi_square_distance(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions must share a support");
    let mut sum = 0.0;
    for (&a, &b) in p.iter().zip(q) {
        if b == 0.0 {
            if a > 0.0 {
                return f64::INFINITY;
            }
            continue;
        }
        let d = a - b;
        sum += d * d / b;
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_distributions_have_zero_distance() {
        let p = [0.2, 0.3, 0.5];
        assert_eq!(total_variation(&p, &p), 0.0);
        assert_eq!(kl_divergence(&p, &p), 0.0);
        assert_eq!(chi_square_distance(&p, &p), 0.0);
    }

    #[test]
    fn disjoint_distributions_have_tv_one() {
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        assert!((total_variation(&p, &q) - 1.0).abs() < 1e-15);
        assert_eq!(kl_divergence(&p, &q), f64::INFINITY);
    }

    #[test]
    fn tv_known_value() {
        let p = [0.5, 0.5];
        let q = [0.75, 0.25];
        assert!((total_variation(&p, &q) - 0.25).abs() < 1e-15);
    }

    #[test]
    fn kl_known_value() {
        // KL([0.5,0.5] || [0.75,0.25]) = 0.5 ln(2/3) + 0.5 ln 2.
        let p = [0.5, 0.5];
        let q = [0.75, 0.25];
        let expect = 0.5 * (0.5f64 / 0.75).ln() + 0.5 * (0.5f64 / 0.25).ln();
        assert!((kl_divergence(&p, &q) - expect).abs() < 1e-12);
    }

    #[test]
    fn kl_ignores_zero_p_categories() {
        let p = [0.0, 1.0];
        let q = [0.5, 0.5];
        let expect = 1.0 * (1.0f64 / 0.5).ln();
        assert!((kl_divergence(&p, &q) - expect).abs() < 1e-12);
    }

    #[test]
    fn chi_square_distance_known_value() {
        let p = [0.6, 0.4];
        let q = [0.5, 0.5];
        let expect = 0.01 / 0.5 + 0.01 / 0.5;
        assert!((chi_square_distance(&p, &q) - expect).abs() < 1e-12);
    }

    #[test]
    fn chi_square_distance_infinite_when_support_mismatch() {
        assert_eq!(chi_square_distance(&[0.5, 0.5], &[1.0, 0.0]), f64::INFINITY);
        assert_eq!(chi_square_distance(&[1.0, 0.0], &[1.0, 0.0]), 0.0);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        total_variation(&[1.0], &[0.5, 0.5]);
    }

    fn normalised(v: Vec<f64>) -> Vec<f64> {
        let s: f64 = v.iter().sum();
        v.iter().map(|x| x / s).collect()
    }

    proptest! {
        #[test]
        fn prop_tv_symmetric_and_bounded(
            a in proptest::collection::vec(0.001f64..1.0, 5),
            b in proptest::collection::vec(0.001f64..1.0, 5),
        ) {
            let p = normalised(a);
            let q = normalised(b);
            let d1 = total_variation(&p, &q);
            let d2 = total_variation(&q, &p);
            prop_assert!((d1 - d2).abs() < 1e-12);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&d1));
        }

        #[test]
        fn prop_kl_non_negative(
            a in proptest::collection::vec(0.001f64..1.0, 5),
            b in proptest::collection::vec(0.001f64..1.0, 5),
        ) {
            let p = normalised(a);
            let q = normalised(b);
            prop_assert!(kl_divergence(&p, &q) >= -1e-12);
        }
    }
}
