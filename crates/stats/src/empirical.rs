//! Empirical distributions built from repeated selections.
//!
//! This is the bookkeeping behind every "probability table" in the
//! reproduction: run an algorithm for `T` trials, count how often each index
//! was selected, and compare the frequencies against the exact `F_i`.

use serde::{Deserialize, Serialize};

use crate::chi_square::{chi_square_gof, ChiSquareResult};
use crate::ci::{wilson_interval, ConfidenceInterval};
use crate::divergence::total_variation;

/// Selection counts over a fixed index range `0..categories`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EmpiricalDistribution {
    counts: Vec<u64>,
    trials: u64,
}

impl EmpiricalDistribution {
    /// Create an empty distribution over `categories` indices.
    pub fn new(categories: usize) -> Self {
        Self {
            counts: vec![0; categories],
            trials: 0,
        }
    }

    /// Build a distribution directly from an iterator of selected indices.
    pub fn from_selections(categories: usize, selections: impl IntoIterator<Item = usize>) -> Self {
        let mut dist = Self::new(categories);
        for s in selections {
            dist.record(s);
        }
        dist
    }

    /// Record one selection of index `index`.
    ///
    /// Panics if the index is outside the category range.
    pub fn record(&mut self, index: usize) {
        assert!(
            index < self.counts.len(),
            "index {index} outside 0..{}",
            self.counts.len()
        );
        self.counts[index] += 1;
        self.trials += 1;
    }

    /// Record a trial where nothing was selected (still counts towards the
    /// trial total so frequencies remain honest).
    pub fn record_none(&mut self) {
        self.trials += 1;
    }

    /// Number of categories.
    pub fn categories(&self) -> usize {
        self.counts.len()
    }

    /// Total number of recorded trials.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Raw counts per category.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Empirical frequency of category `index`.
    pub fn frequency(&self, index: usize) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.counts[index] as f64 / self.trials as f64
        }
    }

    /// All empirical frequencies.
    pub fn frequencies(&self) -> Vec<f64> {
        (0..self.counts.len()).map(|i| self.frequency(i)).collect()
    }

    /// Merge another distribution over the same categories into this one.
    pub fn merge(&mut self, other: &EmpiricalDistribution) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "cannot merge distributions over different category counts"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.trials += other.trials;
    }

    /// Wilson 95% confidence interval for the frequency of category `index`.
    pub fn frequency_interval(&self, index: usize) -> ConfidenceInterval {
        wilson_interval(self.counts[index], self.trials, 1.96)
    }

    /// Chi-square goodness-of-fit test against exact target probabilities.
    pub fn goodness_of_fit(&self, target: &[f64]) -> ChiSquareResult {
        chi_square_gof(&self.counts, target)
    }

    /// Total-variation distance between the empirical frequencies and a
    /// target distribution.
    pub fn tv_distance(&self, target: &[f64]) -> f64 {
        total_variation(&self.frequencies(), target)
    }

    /// Largest absolute deviation `|frequency_i − target_i|` over all
    /// categories, the number quoted when we say a table "matches to within
    /// x".
    pub fn max_abs_deviation(&self, target: &[f64]) -> f64 {
        assert_eq!(self.counts.len(), target.len());
        self.frequencies()
            .iter()
            .zip(target)
            .map(|(f, t)| (f - t).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_and_frequencies() {
        let mut d = EmpiricalDistribution::new(3);
        for _ in 0..6 {
            d.record(0);
        }
        for _ in 0..3 {
            d.record(1);
        }
        d.record(2);
        assert_eq!(d.trials(), 10);
        assert_eq!(d.counts(), &[6, 3, 1]);
        assert_eq!(d.frequency(0), 0.6);
        assert_eq!(d.frequencies(), vec![0.6, 0.3, 0.1]);
    }

    #[test]
    fn from_selections_constructor() {
        let d = EmpiricalDistribution::from_selections(4, [0usize, 1, 1, 3, 3, 3]);
        assert_eq!(d.counts(), &[1, 2, 0, 3]);
        assert_eq!(d.trials(), 6);
    }

    #[test]
    fn record_none_counts_towards_trials() {
        let mut d = EmpiricalDistribution::new(2);
        d.record(0);
        d.record_none();
        assert_eq!(d.trials(), 2);
        assert_eq!(d.frequency(0), 0.5);
    }

    #[test]
    fn empty_distribution_has_zero_frequencies() {
        let d = EmpiricalDistribution::new(5);
        assert_eq!(d.frequency(3), 0.0);
        assert_eq!(d.trials(), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_index_panics() {
        let mut d = EmpiricalDistribution::new(2);
        d.record(2);
    }

    #[test]
    fn merge_adds_counts() {
        let a = EmpiricalDistribution::from_selections(3, [0usize, 1, 2, 2]);
        let mut b = EmpiricalDistribution::from_selections(3, [1usize, 1]);
        b.merge(&a);
        assert_eq!(b.counts(), &[1, 3, 2]);
        assert_eq!(b.trials(), 6);
    }

    #[test]
    #[should_panic]
    fn merge_requires_matching_categories() {
        let a = EmpiricalDistribution::new(3);
        let mut b = EmpiricalDistribution::new(4);
        b.merge(&a);
    }

    #[test]
    fn max_abs_deviation_and_tv() {
        let d = EmpiricalDistribution::from_selections(
            2,
            std::iter::repeat_n(0usize, 60).chain(std::iter::repeat_n(1, 40)),
        );
        let target = [0.5, 0.5];
        assert!((d.max_abs_deviation(&target) - 0.1).abs() < 1e-12);
        assert!((d.tv_distance(&target) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn goodness_of_fit_consistent_for_matching_counts() {
        let mut d = EmpiricalDistribution::new(2);
        for _ in 0..500 {
            d.record(0);
        }
        for _ in 0..500 {
            d.record(1);
        }
        let r = d.goodness_of_fit(&[0.5, 0.5]);
        assert!(r.is_consistent(0.05));
    }

    #[test]
    fn frequency_interval_contains_the_frequency() {
        let d = EmpiricalDistribution::from_selections(
            2,
            std::iter::repeat_n(0usize, 70).chain(std::iter::repeat_n(1, 30)),
        );
        let ci = d.frequency_interval(0);
        assert!(ci.low <= 0.7 && 0.7 <= ci.high);
        assert!(ci.low > 0.5 && ci.high < 0.9);
    }

    #[test]
    fn clone_and_equality() {
        let d = EmpiricalDistribution::from_selections(3, [0usize, 2, 2]);
        let e = d.clone();
        assert_eq!(d, e);
    }

    // The Serialize/Deserialize derives are exercised by the bench crate,
    // which writes experiment reports as JSON.
    fn _assert_serde_impls()
    where
        EmpiricalDistribution: serde::Serialize + for<'de> serde::Deserialize<'de>,
    {
    }
}
