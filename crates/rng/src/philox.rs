//! Philox4x32-10: a counter-based generator from the Random123 family
//! (Salmon et al., SC'11, "Parallel random numbers: as easy as 1, 2, 3").
//!
//! Counter-based generators are a natural fit for PRAM-style experiments:
//! processor `i` of trial `t` can deterministically derive its own stream by
//! placing `(i, t)` in the counter, with no sequential seeding pass and no
//! shared state, while the key carries the experiment seed.

use crate::splitmix64::SplitMix64;
use crate::traits::{RandomSource, SeedableSource};

const PHILOX_M0: u32 = 0xD251_1F53;
const PHILOX_M1: u32 = 0xCD9E_8D57;
const PHILOX_W0: u32 = 0x9E37_79B9;
const PHILOX_W1: u32 = 0xBB67_AE85;
const ROUNDS: usize = 10;

/// One Philox4x32-10 block: encrypt a 128-bit counter under a 64-bit key.
#[inline]
pub fn philox4x32_block(counter: [u32; 4], key: [u32; 2]) -> [u32; 4] {
    let mut ctr = counter;
    let mut k = key;
    for round in 0..ROUNDS {
        if round > 0 {
            k[0] = k[0].wrapping_add(PHILOX_W0);
            k[1] = k[1].wrapping_add(PHILOX_W1);
        }
        let p0 = (PHILOX_M0 as u64) * (ctr[0] as u64);
        let p1 = (PHILOX_M1 as u64) * (ctr[2] as u64);
        let hi0 = (p0 >> 32) as u32;
        let lo0 = p0 as u32;
        let hi1 = (p1 >> 32) as u32;
        let lo1 = p1 as u32;
        ctr = [hi1 ^ ctr[1] ^ k[0], lo1, hi0 ^ ctr[3] ^ k[1], lo0];
    }
    ctr
}

/// A block-oriented Philox4x32-10 generator for tight kernels: the ten
/// per-round keys are expanded **once** at construction and every call to
/// [`next_block`](PhiloxBlock::next_block) yields four 32-bit lanes for a
/// single counter bump — no per-output cursor bookkeeping, no per-stream key
/// schedule re-derivation.
///
/// This is the engine under the `lrb-core` block bid kernel: one
/// `PhiloxBlock` per chunk replaces one [`Philox4x32`] per *index*, so the
/// key schedule and counter arithmetic amortise over the whole chunk while
/// the output stream stays a pure function of `(key, starting block)`.
///
/// The block counter is a `u128`, identical to the counter layout of
/// [`Philox4x32::at`]: `PhiloxBlock::at_block(key, b)` produces exactly the
/// lanes a `Philox4x32::at(key, b)` would serve, in the same order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhiloxBlock {
    /// The ten expanded round keys (`key + round · weyl` per lane).
    round_keys: [[u32; 2]; ROUNDS],
    /// Next 128-bit block counter.
    block: u128,
}

impl PhiloxBlock {
    /// Create a block generator with the given 64-bit key, starting at
    /// block 0.
    pub fn new(key: u64) -> Self {
        Self::at_block(key, 0)
    }

    /// Create a block generator positioned at an arbitrary block counter.
    pub fn at_block(key: u64, block: u128) -> Self {
        let mut k = [key as u32, (key >> 32) as u32];
        let mut round_keys = [[0u32; 2]; ROUNDS];
        for keys in round_keys.iter_mut() {
            *keys = k;
            k[0] = k[0].wrapping_add(PHILOX_W0);
            k[1] = k[1].wrapping_add(PHILOX_W1);
        }
        Self { round_keys, block }
    }

    /// The next block counter to be consumed.
    pub fn position(&self) -> u128 {
        self.block
    }

    /// Encrypt the current counter and advance it: four 32-bit lanes per
    /// call, identical to [`philox4x32_block`] at the same counter/key.
    #[inline]
    pub fn next_block(&mut self) -> [u32; 4] {
        let mut ctr = [
            self.block as u32,
            (self.block >> 32) as u32,
            (self.block >> 64) as u32,
            (self.block >> 96) as u32,
        ];
        self.block = self.block.wrapping_add(1);
        for keys in &self.round_keys {
            let p0 = (PHILOX_M0 as u64) * (ctr[0] as u64);
            let p1 = (PHILOX_M1 as u64) * (ctr[2] as u64);
            ctr = [
                (p1 >> 32) as u32 ^ ctr[1] ^ keys[0],
                p1 as u32,
                (p0 >> 32) as u32 ^ ctr[3] ^ keys[1],
                p0 as u32,
            ];
        }
        ctr
    }

    /// The next two 64-bit words of the stream (lanes `(0,1)` and `(2,3)` of
    /// one block, low lane first — the same pairing as
    /// [`RandomSource::next_u64`] on a [`Philox4x32`]).
    #[inline]
    pub fn next_u64_pair(&mut self) -> [u64; 2] {
        let lanes = self.next_block();
        [
            (lanes[1] as u64) << 32 | lanes[0] as u64,
            (lanes[3] as u64) << 32 | lanes[2] as u64,
        ]
    }

    /// Fill `out` with consecutive 64-bit words of the stream, two per
    /// counter bump. Always consumes `out.len().div_ceil(2)` whole blocks:
    /// an odd-length fill discards the trailing lane pair, so the *block*
    /// position after the call depends only on how many words were asked
    /// for, never on buffer alignment.
    #[inline]
    pub fn fill_u64(&mut self, out: &mut [u64]) {
        let mut chunks = out.chunks_exact_mut(2);
        for pair in &mut chunks {
            let words = self.next_u64_pair();
            pair[0] = words[0];
            pair[1] = words[1];
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            rem[0] = self.next_u64_pair()[0];
        }
    }
}

/// A Philox4x32-10 generator presented as an ordinary sequential source.
///
/// Internally it encrypts an incrementing 128-bit counter and serves the four
/// 32-bit lanes of each block in order. Use [`Philox4x32::at`] to jump to an
/// arbitrary block, or [`Philox4x32::for_substream`] to derive an independent
/// stream for a logical processor index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Philox4x32 {
    key: [u32; 2],
    counter: [u32; 4],
    buffer: [u32; 4],
    /// Next unread lane in `buffer`; 4 means "buffer exhausted".
    cursor: usize,
}

impl Philox4x32 {
    /// Create a generator with the given 64-bit key; the counter starts at 0.
    pub fn with_key(key: u64) -> Self {
        Self {
            key: [key as u32, (key >> 32) as u32],
            counter: [0; 4],
            buffer: [0; 4],
            cursor: 4,
        }
    }

    /// Create a generator positioned at an arbitrary 128-bit counter value.
    pub fn at(key: u64, counter: u128) -> Self {
        let mut g = Self::with_key(key);
        g.counter = [
            counter as u32,
            (counter >> 32) as u32,
            (counter >> 64) as u32,
            (counter >> 96) as u32,
        ];
        g
    }

    /// Derive an independent stream for a logical substream id.
    ///
    /// The substream id is placed in the top 64 bits of the counter, so each
    /// substream has 2⁶⁴ blocks (2⁶⁶ 32-bit outputs) before it could collide
    /// with a neighbour.
    pub fn for_substream(key: u64, substream: u64) -> Self {
        Self::at(key, (substream as u128) << 64)
    }

    #[inline]
    fn increment_counter(&mut self) {
        for word in &mut self.counter {
            let (next, carry) = word.overflowing_add(1);
            *word = next;
            if !carry {
                break;
            }
        }
    }

    #[inline]
    fn refill(&mut self) {
        self.buffer = philox4x32_block(self.counter, self.key);
        self.increment_counter();
        self.cursor = 0;
    }

    /// The next 32-bit lane.
    #[inline]
    pub fn next_lane(&mut self) -> u32 {
        if self.cursor >= 4 {
            self.refill();
        }
        let lane = self.buffer[self.cursor];
        self.cursor += 1;
        lane
    }
}

impl RandomSource for Philox4x32 {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.next_lane()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_lane() as u64;
        let hi = self.next_lane() as u64;
        (hi << 32) | lo
    }
}

impl SeedableSource for Philox4x32 {
    fn seed_from_u64(seed: u64) -> Self {
        Self::with_key(SplitMix64::mix64(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_is_deterministic() {
        let a = philox4x32_block([1, 2, 3, 4], [5, 6]);
        let b = philox4x32_block([1, 2, 3, 4], [5, 6]);
        assert_eq!(a, b);
    }

    #[test]
    fn block_depends_on_every_counter_word() {
        let base = philox4x32_block([0, 0, 0, 0], [0, 0]);
        for lane in 0..4 {
            let mut ctr = [0u32; 4];
            ctr[lane] = 1;
            assert_ne!(philox4x32_block(ctr, [0, 0]), base, "lane {lane} ignored");
        }
    }

    #[test]
    fn block_depends_on_key() {
        let a = philox4x32_block([1, 2, 3, 4], [0, 0]);
        let b = philox4x32_block([1, 2, 3, 4], [1, 0]);
        let c = philox4x32_block([1, 2, 3, 4], [0, 1]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn sequential_outputs_cover_consecutive_blocks() {
        let mut g = Philox4x32::with_key(0xDEAD_BEEF);
        let first_block = philox4x32_block([0, 0, 0, 0], [0xDEAD_BEEF, 0]);
        let second_block = philox4x32_block([1, 0, 0, 0], [0xDEAD_BEEF, 0]);
        let got: Vec<u32> = (0..8).map(|_| g.next_lane()).collect();
        assert_eq!(&got[..4], &first_block);
        assert_eq!(&got[4..], &second_block);
    }

    #[test]
    fn counter_carry_propagates() {
        let mut g = Philox4x32::at(7, u32::MAX as u128);
        g.next_lane(); // consumes block at counter = u32::MAX
                       // After the refill the counter must have carried into word 1.
        assert_eq!(g.counter, [0, 1, 0, 0]);
    }

    #[test]
    fn substreams_do_not_collide() {
        let mut a = Philox4x32::for_substream(1, 0);
        let mut b = Philox4x32::for_substream(1, 1);
        let xs: Vec<u64> = (0..1000).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..1000).map(|_| b.next_u64()).collect();
        let overlap = xs.iter().filter(|x| ys.contains(x)).count();
        assert!(overlap < 2);
    }

    #[test]
    fn at_position_matches_sequential_reading() {
        // Reading from counter position k directly must equal skipping k
        // blocks sequentially.
        let key = 42;
        let mut seq = Philox4x32::with_key(key);
        for _ in 0..4 * 5 {
            seq.next_lane();
        }
        let mut jumped = Philox4x32::at(key, 5);
        for _ in 0..4 {
            assert_eq!(seq.next_lane(), jumped.next_lane());
        }
    }

    #[test]
    fn block_generator_matches_the_sequential_stream() {
        // PhiloxBlock::at_block(key, b) must serve exactly the lanes of
        // Philox4x32::at(key, b) — the block API is a faster view of the
        // same stream, not a different stream.
        let key = 0x5EED_CAFE_u64;
        let mut seq = Philox4x32::with_key(key);
        let mut blk = PhiloxBlock::new(key);
        for _ in 0..32 {
            let lanes = blk.next_block();
            for lane in lanes {
                assert_eq!(lane, seq.next_lane());
            }
        }
        // Jumping to a block matches the cursor position too.
        let mut jumped = PhiloxBlock::at_block(key, 32);
        assert_eq!(jumped.position(), 32);
        assert_eq!(jumped.next_block()[0], seq.next_lane());
    }

    #[test]
    fn block_fill_u64_matches_next_u64() {
        let key = 77;
        let mut seq = Philox4x32::with_key(key);
        let mut blk = PhiloxBlock::new(key);
        let mut out = [0u64; 9]; // odd length exercises the remainder path
        blk.fill_u64(&mut out);
        for (i, &word) in out.iter().enumerate() {
            assert_eq!(word, seq.next_u64(), "word {i}");
        }
        // 9 words = 5 whole blocks consumed (trailing lane pair discarded).
        assert_eq!(blk.position(), 5);
    }

    #[test]
    fn block_pairs_agree_with_fill() {
        let mut a = PhiloxBlock::at_block(3, 10);
        let mut b = PhiloxBlock::at_block(3, 10);
        let mut filled = [0u64; 4];
        a.fill_u64(&mut filled);
        let p0 = b.next_u64_pair();
        let p1 = b.next_u64_pair();
        assert_eq!(filled, [p0[0], p0[1], p1[0], p1[1]]);
    }

    #[test]
    fn unit_interval_and_mean() {
        let mut g = Philox4x32::seed_from_u64(3);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
