//! Philox4x32-10: a counter-based generator from the Random123 family
//! (Salmon et al., SC'11, "Parallel random numbers: as easy as 1, 2, 3").
//!
//! Counter-based generators are a natural fit for PRAM-style experiments:
//! processor `i` of trial `t` can deterministically derive its own stream by
//! placing `(i, t)` in the counter, with no sequential seeding pass and no
//! shared state, while the key carries the experiment seed.

use crate::splitmix64::SplitMix64;
use crate::traits::{RandomSource, SeedableSource};

const PHILOX_M0: u32 = 0xD251_1F53;
const PHILOX_M1: u32 = 0xCD9E_8D57;
const PHILOX_W0: u32 = 0x9E37_79B9;
const PHILOX_W1: u32 = 0xBB67_AE85;
const ROUNDS: usize = 10;

/// One Philox4x32-10 block: encrypt a 128-bit counter under a 64-bit key.
#[inline]
pub fn philox4x32_block(counter: [u32; 4], key: [u32; 2]) -> [u32; 4] {
    let mut ctr = counter;
    let mut k = key;
    for round in 0..ROUNDS {
        if round > 0 {
            k[0] = k[0].wrapping_add(PHILOX_W0);
            k[1] = k[1].wrapping_add(PHILOX_W1);
        }
        let p0 = (PHILOX_M0 as u64) * (ctr[0] as u64);
        let p1 = (PHILOX_M1 as u64) * (ctr[2] as u64);
        let hi0 = (p0 >> 32) as u32;
        let lo0 = p0 as u32;
        let hi1 = (p1 >> 32) as u32;
        let lo1 = p1 as u32;
        ctr = [hi1 ^ ctr[1] ^ k[0], lo1, hi0 ^ ctr[3] ^ k[1], lo0];
    }
    ctr
}

/// A Philox4x32-10 generator presented as an ordinary sequential source.
///
/// Internally it encrypts an incrementing 128-bit counter and serves the four
/// 32-bit lanes of each block in order. Use [`Philox4x32::at`] to jump to an
/// arbitrary block, or [`Philox4x32::for_substream`] to derive an independent
/// stream for a logical processor index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Philox4x32 {
    key: [u32; 2],
    counter: [u32; 4],
    buffer: [u32; 4],
    /// Next unread lane in `buffer`; 4 means "buffer exhausted".
    cursor: usize,
}

impl Philox4x32 {
    /// Create a generator with the given 64-bit key; the counter starts at 0.
    pub fn with_key(key: u64) -> Self {
        Self {
            key: [key as u32, (key >> 32) as u32],
            counter: [0; 4],
            buffer: [0; 4],
            cursor: 4,
        }
    }

    /// Create a generator positioned at an arbitrary 128-bit counter value.
    pub fn at(key: u64, counter: u128) -> Self {
        let mut g = Self::with_key(key);
        g.counter = [
            counter as u32,
            (counter >> 32) as u32,
            (counter >> 64) as u32,
            (counter >> 96) as u32,
        ];
        g
    }

    /// Derive an independent stream for a logical substream id.
    ///
    /// The substream id is placed in the top 64 bits of the counter, so each
    /// substream has 2⁶⁴ blocks (2⁶⁶ 32-bit outputs) before it could collide
    /// with a neighbour.
    pub fn for_substream(key: u64, substream: u64) -> Self {
        Self::at(key, (substream as u128) << 64)
    }

    #[inline]
    fn increment_counter(&mut self) {
        for word in &mut self.counter {
            let (next, carry) = word.overflowing_add(1);
            *word = next;
            if !carry {
                break;
            }
        }
    }

    #[inline]
    fn refill(&mut self) {
        self.buffer = philox4x32_block(self.counter, self.key);
        self.increment_counter();
        self.cursor = 0;
    }

    /// The next 32-bit lane.
    #[inline]
    pub fn next_lane(&mut self) -> u32 {
        if self.cursor >= 4 {
            self.refill();
        }
        let lane = self.buffer[self.cursor];
        self.cursor += 1;
        lane
    }
}

impl RandomSource for Philox4x32 {
    fn next_u32(&mut self) -> u32 {
        self.next_lane()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_lane() as u64;
        let hi = self.next_lane() as u64;
        (hi << 32) | lo
    }
}

impl SeedableSource for Philox4x32 {
    fn seed_from_u64(seed: u64) -> Self {
        Self::with_key(SplitMix64::mix64(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_is_deterministic() {
        let a = philox4x32_block([1, 2, 3, 4], [5, 6]);
        let b = philox4x32_block([1, 2, 3, 4], [5, 6]);
        assert_eq!(a, b);
    }

    #[test]
    fn block_depends_on_every_counter_word() {
        let base = philox4x32_block([0, 0, 0, 0], [0, 0]);
        for lane in 0..4 {
            let mut ctr = [0u32; 4];
            ctr[lane] = 1;
            assert_ne!(philox4x32_block(ctr, [0, 0]), base, "lane {lane} ignored");
        }
    }

    #[test]
    fn block_depends_on_key() {
        let a = philox4x32_block([1, 2, 3, 4], [0, 0]);
        let b = philox4x32_block([1, 2, 3, 4], [1, 0]);
        let c = philox4x32_block([1, 2, 3, 4], [0, 1]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn sequential_outputs_cover_consecutive_blocks() {
        let mut g = Philox4x32::with_key(0xDEAD_BEEF);
        let first_block = philox4x32_block([0, 0, 0, 0], [0xDEAD_BEEF, 0]);
        let second_block = philox4x32_block([1, 0, 0, 0], [0xDEAD_BEEF, 0]);
        let got: Vec<u32> = (0..8).map(|_| g.next_lane()).collect();
        assert_eq!(&got[..4], &first_block);
        assert_eq!(&got[4..], &second_block);
    }

    #[test]
    fn counter_carry_propagates() {
        let mut g = Philox4x32::at(7, u32::MAX as u128);
        g.next_lane(); // consumes block at counter = u32::MAX
                       // After the refill the counter must have carried into word 1.
        assert_eq!(g.counter, [0, 1, 0, 0]);
    }

    #[test]
    fn substreams_do_not_collide() {
        let mut a = Philox4x32::for_substream(1, 0);
        let mut b = Philox4x32::for_substream(1, 1);
        let xs: Vec<u64> = (0..1000).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..1000).map(|_| b.next_u64()).collect();
        let overlap = xs.iter().filter(|x| ys.contains(x)).count();
        assert!(overlap < 2);
    }

    #[test]
    fn at_position_matches_sequential_reading() {
        // Reading from counter position k directly must equal skipping k
        // blocks sequentially.
        let key = 42;
        let mut seq = Philox4x32::with_key(key);
        for _ in 0..4 * 5 {
            seq.next_lane();
        }
        let mut jumped = Philox4x32::at(key, 5);
        for _ in 0..4 {
            assert_eq!(seq.next_lane(), jumped.next_lane());
        }
    }

    #[test]
    fn unit_interval_and_mean() {
        let mut g = Philox4x32::seed_from_u64(3);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
