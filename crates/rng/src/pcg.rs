//! Permuted congruential generators (O'Neill, 2014).
//!
//! [`Pcg32`] is the reference `pcg32` (XSH-RR output on a 64-bit LCG state)
//! and [`Pcg64`] is `pcg64` in its XSL-RR form (128-bit LCG state). Both take
//! a *stream* parameter, so a family of generators indexed by stream id gives
//! statistically independent sequences — a convenient way to give every PRAM
//! processor its own generator from one master seed.

use crate::splitmix64::SplitMix64;
use crate::traits::{RandomSource, SeedableSource};

const PCG32_MULT: u64 = 6_364_136_223_846_793_005;
const PCG64_MULT: u128 = 0x2360_ED05_1FC6_5DA4_4385_DF64_9FCC_F645;

/// The `pcg32` generator: 64-bit state, 32-bit output, selectable stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    /// Odd increment identifying the stream.
    inc: u64,
}

impl Pcg32 {
    /// Construct from an initial state and stream selector
    /// (reference `pcg32_srandom_r`).
    pub fn new(init_state: u64, init_seq: u64) -> Self {
        let mut pcg = Self {
            state: 0,
            inc: (init_seq << 1) | 1,
        };
        pcg.step();
        pcg.state = pcg.state.wrapping_add(init_state);
        pcg.step();
        pcg
    }

    #[inline]
    fn step(&mut self) {
        self.state = self.state.wrapping_mul(PCG32_MULT).wrapping_add(self.inc);
    }

    /// The next 32-bit output (reference `pcg32_random_r`).
    #[inline]
    pub fn next_u32_pcg(&mut self) -> u32 {
        let old = self.state;
        self.step();
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// The stream selector this generator was built with.
    pub fn stream(&self) -> u64 {
        self.inc >> 1
    }
}

impl RandomSource for Pcg32 {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.next_u32_pcg()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let hi = self.next_u32_pcg() as u64;
        let lo = self.next_u32_pcg() as u64;
        (hi << 32) | lo
    }
}

impl SeedableSource for Pcg32 {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self::new(sm.next_u64(), sm.next_u64())
    }
}

/// The `pcg64` (XSL-RR 128/64) generator: 128-bit state, 64-bit output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pcg64 {
    state: u128,
    inc: u128,
}

impl Pcg64 {
    /// Construct from an initial state and stream selector.
    pub fn new(init_state: u128, init_seq: u128) -> Self {
        let mut pcg = Self {
            state: 0,
            inc: (init_seq << 1) | 1,
        };
        pcg.step();
        pcg.state = pcg.state.wrapping_add(init_state);
        pcg.step();
        pcg
    }

    #[inline]
    fn step(&mut self) {
        self.state = self.state.wrapping_mul(PCG64_MULT).wrapping_add(self.inc);
    }
}

impl RandomSource for Pcg64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let old = self.state;
        self.step();
        let xored = (old >> 64) as u64 ^ old as u64;
        let rot = (old >> 122) as u32;
        xored.rotate_right(rot)
    }
}

impl SeedableSource for Pcg64 {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let state = ((sm.next_u64() as u128) << 64) | sm.next_u64() as u128;
        let seq = ((sm.next_u64() as u128) << 64) | sm.next_u64() as u128;
        Self::new(state, seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vector from the PCG reference distribution's
    /// `pcg32-global-demo` output: seed 42, stream 54.
    #[test]
    fn pcg32_reference_seed_42_seq_54() {
        let mut rng = Pcg32::new(42, 54);
        let expected: [u32; 6] = [
            0xA15C_02B7,
            0x7B47_F409,
            0xBA1D_3330,
            0x83D2_F293,
            0xBFA4_784B,
            0xCBED_606E,
        ];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(rng.next_u32_pcg(), e, "mismatch at output {i}");
        }
    }

    #[test]
    fn pcg32_streams_are_independent() {
        let mut a = Pcg32::new(42, 1);
        let mut b = Pcg32::new(42, 2);
        let matches = (0..1000)
            .filter(|_| a.next_u32_pcg() == b.next_u32_pcg())
            .count();
        assert!(matches < 3);
    }

    #[test]
    fn pcg32_stream_accessor_round_trips() {
        let rng = Pcg32::new(1, 77);
        assert_eq!(rng.stream(), 77);
    }

    #[test]
    fn pcg64_is_deterministic() {
        let mut a = Pcg64::seed_from_u64(5);
        let mut b = Pcg64::seed_from_u64(5);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn pcg64_streams_are_independent() {
        let mut a = Pcg64::new(99, 1);
        let mut b = Pcg64::new(99, 2);
        let matches = (0..1000).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(matches < 3);
    }

    #[test]
    fn pcg64_unit_interval() {
        let mut rng = Pcg64::seed_from_u64(11);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn pcg32_mean_is_plausible() {
        let mut rng = Pcg32::seed_from_u64(2);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
