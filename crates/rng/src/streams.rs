//! Construction of families of independent generators for parallel work.
//!
//! Parallel roulette wheel selection needs one random stream per logical
//! processor (PRAM model) or per worker thread (rayon execution). This module
//! provides [`StreamFamily`], which derives any number of independent
//! generators from a single master seed, and [`spawn_streams`], a convenience
//! for materialising the first `n` of them.
//!
//! Two derivation strategies are offered:
//!
//! * **Keyed** (default): stream `i` is seeded with `mix64(master ⊕ φ·i)`,
//!   which works for every [`SeedableSource`] and gives streams that are
//!   independent for all practical purposes.
//! * **Counter-based**: for [`Philox4x32`] the stream id is placed directly
//!   in the counter, giving *provably* non-overlapping streams.

use crate::philox::Philox4x32;
use crate::splitmix64::{SplitMix64, GOLDEN_GAMMA};
use crate::traits::SeedableSource;

/// A factory for independent generator streams derived from one master seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamFamily {
    master_seed: u64,
}

impl StreamFamily {
    /// Create a family rooted at `master_seed`.
    pub fn new(master_seed: u64) -> Self {
        Self { master_seed }
    }

    /// The master seed this family was created with.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Derive the 64-bit seed of stream `index`.
    ///
    /// Uses a SplitMix64 finalizer over `master ⊕ (index + 1)·φ`, so adjacent
    /// indices map to unrelated seeds and index 0 does not degenerate to the
    /// master seed itself.
    pub fn seed_for(&self, index: u64) -> u64 {
        SplitMix64::mix64(self.master_seed ^ index.wrapping_add(1).wrapping_mul(GOLDEN_GAMMA))
    }

    /// Construct the generator for stream `index`.
    pub fn stream<R: SeedableSource>(&self, index: u64) -> R {
        R::seed_from_u64(self.seed_for(index))
    }

    /// Construct a counter-based Philox stream for `index`
    /// (provably non-overlapping with every other index).
    pub fn philox_stream(&self, index: u64) -> Philox4x32 {
        Philox4x32::for_substream(SplitMix64::mix64(self.master_seed), index)
    }
}

/// Materialise the first `n` streams of a family as a vector of generators.
pub fn spawn_streams<R: SeedableSource>(master_seed: u64, n: usize) -> Vec<R> {
    let family = StreamFamily::new(master_seed);
    (0..n as u64).map(|i| family.stream(i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MersenneTwister64, RandomSource, Xoshiro256PlusPlus};
    use std::collections::HashSet;

    #[test]
    fn seeds_are_distinct_across_indices() {
        let family = StreamFamily::new(7);
        let seeds: HashSet<u64> = (0..10_000).map(|i| family.seed_for(i)).collect();
        assert_eq!(seeds.len(), 10_000);
    }

    #[test]
    fn seeds_differ_across_master_seeds() {
        let a = StreamFamily::new(1);
        let b = StreamFamily::new(2);
        let same = (0..1000)
            .filter(|&i| a.seed_for(i) == b.seed_for(i))
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn stream_zero_is_not_the_master_seed_itself() {
        let family = StreamFamily::new(12345);
        assert_ne!(family.seed_for(0), 12345);
    }

    #[test]
    fn spawn_streams_produces_independent_sequences() {
        let mut streams: Vec<Xoshiro256PlusPlus> = spawn_streams(99, 8);
        let outputs: Vec<Vec<u64>> = streams
            .iter_mut()
            .map(|s| (0..200).map(|_| s.next_u64()).collect())
            .collect();
        for i in 0..outputs.len() {
            for j in (i + 1)..outputs.len() {
                let overlap = outputs[i].iter().filter(|x| outputs[j].contains(x)).count();
                assert!(overlap < 2, "streams {i} and {j} overlap");
            }
        }
    }

    #[test]
    fn family_is_reproducible() {
        let family = StreamFamily::new(5);
        let mut a: MersenneTwister64 = family.stream(3);
        let mut b: MersenneTwister64 = family.stream(3);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn philox_streams_match_for_substream_construction() {
        let family = StreamFamily::new(21);
        let mut a = family.philox_stream(4);
        let mut b = Philox4x32::for_substream(SplitMix64::mix64(21), 4);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn per_stream_uniform_means_are_plausible() {
        let mut streams: Vec<MersenneTwister64> = spawn_streams(1234, 16);
        for (i, s) in streams.iter_mut().enumerate() {
            let mean = (0..20_000).map(|_| s.next_f64()).sum::<f64>() / 20_000.0;
            assert!((mean - 0.5).abs() < 0.02, "stream {i} mean {mean}");
        }
    }
}
