//! Core generator traits consumed by the rest of the workspace.
//!
//! The selection library, the PRAM simulator and the ACO application all take
//! `&mut dyn RandomSource` or a generic `R: RandomSource`, so any generator in
//! this crate (or a user-supplied one) can drive them.

use crate::uniform;

/// A source of uniformly distributed pseudo-random bits.
///
/// Implementors only have to provide [`next_u64`](RandomSource::next_u64);
/// every other method has a sound default in terms of it. The trait is
/// object-safe so heterogeneous code can hold `Box<dyn RandomSource>`.
pub trait RandomSource {
    /// Return the next 64 uniformly distributed pseudo-random bits.
    fn next_u64(&mut self) -> u64;

    /// Return the next 32 uniformly distributed pseudo-random bits.
    ///
    /// The default takes the high half of [`next_u64`](RandomSource::next_u64)
    /// because for some generator families (notably xoshiro) the high bits are
    /// of better quality than the low bits.
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Return a uniformly distributed `f64` in the half-open interval `[0, 1)`.
    ///
    /// Uses the 53-high-bit conversion (`uniform::f64_from_bits_53`), the same
    /// strategy as the Mersenne Twister reference `genrand_res53` and rand's
    /// `Standard` distribution: every representable value is a multiple of
    /// 2⁻⁵³ and `1.0` is never returned.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        uniform::f64_from_bits_53(self.next_u64())
    }

    /// Return a uniformly distributed `f64` in the open interval `(0, 1)`.
    ///
    /// Useful wherever a logarithm of the variate is taken (the logarithmic
    /// random bidding does `ln(u)`), because it can never produce `ln(0)`.
    #[inline]
    fn next_f64_open(&mut self) -> f64 {
        uniform::f64_open_open(self.next_u64())
    }

    /// Return a uniformly distributed integer in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method; unbiased for every
    /// `bound > 0`. Panics if `bound == 0`.
    #[inline]
    fn next_u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_u64_below requires a positive bound");
        uniform::u64_below(self, bound)
    }

    /// Fill `dest` with pseudo-random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RandomSource + ?Sized> RandomSource for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_f64(&mut self) -> f64 {
        (**self).next_f64()
    }
    #[inline]
    fn next_f64_open(&mut self) -> f64 {
        (**self).next_f64_open()
    }
}

impl<R: RandomSource + ?Sized> RandomSource for Box<R> {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_f64(&mut self) -> f64 {
        (**self).next_f64()
    }
    #[inline]
    fn next_f64_open(&mut self) -> f64 {
        (**self).next_f64_open()
    }
}

/// Generators that can be constructed deterministically from a 64-bit seed.
pub trait SeedableSource: Sized {
    /// Construct the generator from a 64-bit seed.
    ///
    /// Implementations must expand the seed so that low-entropy seeds (0, 1,
    /// 2, …) still yield well-mixed initial states; the conventional choice in
    /// this crate is a [`SplitMix64`](crate::SplitMix64) expansion, matching
    /// the recommendation of the xoshiro authors.
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SplitMix64::seed_from_u64(3);
        for len in 0..=17 {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0), "len {len} produced all zeros");
            }
        }
    }

    #[test]
    fn next_u64_below_respects_bound() {
        let mut rng = SplitMix64::seed_from_u64(9);
        for bound in [1u64, 2, 3, 7, 10, 1000, u64::MAX] {
            for _ in 0..200 {
                assert!(rng.next_u64_below(bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic]
    fn next_u64_below_zero_bound_panics() {
        let mut rng = SplitMix64::seed_from_u64(9);
        rng.next_u64_below(0);
    }

    #[test]
    fn next_u64_below_small_bound_is_roughly_uniform() {
        let mut rng = SplitMix64::seed_from_u64(11);
        let mut counts = [0usize; 5];
        let trials = 50_000;
        for _ in 0..trials {
            counts[rng.next_u64_below(5) as usize] += 1;
        }
        let expected = trials as f64 / 5.0;
        for (i, &c) in counts.iter().enumerate() {
            let rel = (c as f64 - expected).abs() / expected;
            assert!(rel < 0.05, "bucket {i} off by {rel}");
        }
    }

    #[test]
    fn trait_objects_are_usable() {
        let mut boxed: Box<dyn RandomSource> = Box::new(SplitMix64::seed_from_u64(5));
        let x = boxed.next_f64();
        assert!((0.0..1.0).contains(&x));
        let r: &mut dyn RandomSource = &mut *boxed;
        let y = r.next_f64_open();
        assert!(y > 0.0 && y < 1.0);
    }

    #[test]
    fn open_interval_never_returns_zero() {
        let mut rng = SplitMix64::seed_from_u64(1234);
        for _ in 0..100_000 {
            let x = rng.next_f64_open();
            assert!(x > 0.0 && x < 1.0);
        }
    }
}
