//! Exponential variates.
//!
//! The logarithmic random bidding computes `r_i = ln(u) / f_i`, which is the
//! negative of an `Exp(f_i)` variate. This module provides the inverse-CDF
//! sampler the paper implies (`−ln(u)`), a rate-parameterised sampler, and a
//! Ziggurat sampler as a faster alternative for the throughput benches, all
//! behind one [`ExponentialSampler`] enum so callers can ablate the choice.

use crate::traits::RandomSource;

/// Draw a standard exponential variate (rate 1) by inversion: `−ln(U)` with
/// `U` uniform on `(0, 1)`.
#[inline]
pub fn standard_exponential<R: RandomSource + ?Sized>(rng: &mut R) -> f64 {
    -rng.next_f64_open().ln()
}

/// Draw an exponential variate with the given `rate` (mean `1 / rate`).
///
/// Panics if `rate` is not strictly positive and finite.
#[inline]
pub fn exponential<R: RandomSource + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(
        rate > 0.0 && rate.is_finite(),
        "rate must be positive, got {rate}"
    );
    standard_exponential(rng) / rate
}

/// The raw logarithmic bid of the paper: `ln(U) / fitness`, a value in
/// `(−∞, 0)` for positive fitness and `−∞` for zero fitness.
///
/// This is the quantity each PRAM processor computes in step 1 of the
/// logarithmic-random-bidding algorithm; the processor with the **maximum**
/// bid is the selected one.
#[inline]
pub fn log_bid<R: RandomSource + ?Sized>(rng: &mut R, fitness: f64) -> f64 {
    debug_assert!(fitness >= 0.0, "fitness must be non-negative");
    if fitness == 0.0 {
        return f64::NEG_INFINITY;
    }
    rng.next_f64_open().ln() / fitness
}

// --- Ziggurat sampler -------------------------------------------------------

/// Number of Ziggurat layers.
const ZIG_LAYERS: usize = 256;
/// Tail cut point `r` such that the area of each layer equals `v`.
const ZIG_R: f64 = 7.697_117_470_131_05;
/// Common layer area.
const ZIG_V: f64 = 3.949_659_822_581_572e-3;

/// Pre-computed Ziggurat tables for the standard exponential distribution
/// (Marsaglia & Tsang, 2000).
///
/// `x[0] = v·eʳ` is the right edge of the base strip (which also owns the
/// tail beyond `r`), `x[1] = r`, and `x[i]` decreases to `x[256] = 0`.
/// `y[i] = exp(−x[i])` is the density at each abscissa.
struct ZigguratTables {
    x: [f64; ZIG_LAYERS + 1],
    y: [f64; ZIG_LAYERS + 1],
}

fn build_tables() -> ZigguratTables {
    let mut x = [0.0f64; ZIG_LAYERS + 1];
    let f = |t: f64| (-t).exp();
    x[0] = ZIG_V / f(ZIG_R);
    x[1] = ZIG_R;
    // Each strip i ≥ 1 has area v: x[i]·(f(x[i+1]) − f(x[i])) = v, so
    // x[i+1] = f⁻¹(f(x[i]) + v / x[i]).
    for i in 2..ZIG_LAYERS {
        x[i] = -(f(x[i - 1]) + ZIG_V / x[i - 1]).ln();
    }
    x[ZIG_LAYERS] = 0.0;
    let mut y = [0.0f64; ZIG_LAYERS + 1];
    for i in 0..=ZIG_LAYERS {
        y[i] = f(x[i]);
    }
    ZigguratTables { x, y }
}

thread_local! {
    static TABLES: ZigguratTables = build_tables();
}

/// Draw a standard exponential variate using the Ziggurat method.
///
/// Statistically identical to [`standard_exponential`] but faster on most
/// hardware because the common path avoids the `ln` call.
pub fn standard_exponential_ziggurat<R: RandomSource + ?Sized>(rng: &mut R) -> f64 {
    TABLES.with(|t| loop {
        let bits = rng.next_u64();
        // The layer index uses the low 8 bits; the uniform uses the top 52
        // bits, so the two are disjoint.
        let layer = (bits & 0xFF) as usize;
        let u = crate::uniform::f64_open_open(bits);
        let x = u * t.x[layer];
        // Fast accept: strictly inside the part of the strip that is fully
        // under the density curve.
        if x < t.x[layer + 1] {
            return x;
        }
        if layer == 0 {
            // Tail: the exponential tail beyond r is itself exponential.
            return ZIG_R + standard_exponential(rng);
        }
        // Wedge: accept with probability proportional to how far under the
        // density the point falls.
        let y = t.y[layer] + rng.next_f64() * (t.y[layer + 1] - t.y[layer]);
        if y < (-x).exp() {
            return x;
        }
    })
}

/// Selects which exponential sampling algorithm to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExponentialSampler {
    /// Inverse-CDF `−ln(U)`, as written in the paper.
    #[default]
    InverseCdf,
    /// Marsaglia–Tsang Ziggurat.
    Ziggurat,
}

impl ExponentialSampler {
    /// Draw one standard-exponential variate with this sampler.
    #[inline]
    pub fn sample<R: RandomSource + ?Sized>(self, rng: &mut R) -> f64 {
        match self {
            ExponentialSampler::InverseCdf => standard_exponential(rng),
            ExponentialSampler::Ziggurat => standard_exponential_ziggurat(rng),
        }
    }

    /// Draw an exponential variate with the given rate.
    #[inline]
    pub fn sample_rate<R: RandomSource + ?Sized>(self, rng: &mut R, rate: f64) -> f64 {
        assert!(rate > 0.0 && rate.is_finite());
        self.sample(rng) / rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SeedableSource, SplitMix64, Xoshiro256PlusPlus};

    fn mean_and_var(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn inverse_cdf_moments() {
        let mut rng = SplitMix64::seed_from_u64(1);
        let samples: Vec<f64> = (0..200_000)
            .map(|_| standard_exponential(&mut rng))
            .collect();
        let (mean, var) = mean_and_var(&samples);
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn ziggurat_moments() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let samples: Vec<f64> = (0..200_000)
            .map(|_| standard_exponential_ziggurat(&mut rng))
            .collect();
        let (mean, var) = mean_and_var(&samples);
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn ziggurat_and_inverse_cdf_agree_in_distribution() {
        // Compare empirical CDFs of both samplers at a few quantile points.
        let mut rng_a = SplitMix64::seed_from_u64(3);
        let mut rng_b = SplitMix64::seed_from_u64(4);
        let n = 100_000;
        let a: Vec<f64> = (0..n).map(|_| standard_exponential(&mut rng_a)).collect();
        let b: Vec<f64> = (0..n)
            .map(|_| standard_exponential_ziggurat(&mut rng_b))
            .collect();
        for q in [0.1, 0.5, 1.0, 2.0, 3.0] {
            let ca = a.iter().filter(|&&x| x <= q).count() as f64 / n as f64;
            let cb = b.iter().filter(|&&x| x <= q).count() as f64 / n as f64;
            let exact = 1.0 - (-q).exp();
            assert!(
                (ca - exact).abs() < 0.01,
                "inverse cdf at {q}: {ca} vs {exact}"
            );
            assert!(
                (cb - exact).abs() < 0.01,
                "ziggurat at {q}: {cb} vs {exact}"
            );
        }
    }

    #[test]
    fn rate_scaling() {
        let mut rng = SplitMix64::seed_from_u64(5);
        let rate = 4.0;
        let mean = (0..100_000)
            .map(|_| exponential(&mut rng, rate))
            .sum::<f64>()
            / 100_000.0;
        assert!((mean - 1.0 / rate).abs() < 0.01, "mean {mean}");
    }

    #[test]
    #[should_panic]
    fn zero_rate_panics() {
        let mut rng = SplitMix64::seed_from_u64(5);
        exponential(&mut rng, 0.0);
    }

    #[test]
    fn log_bid_zero_fitness_is_negative_infinity() {
        let mut rng = SplitMix64::seed_from_u64(6);
        assert_eq!(log_bid(&mut rng, 0.0), f64::NEG_INFINITY);
    }

    #[test]
    fn log_bid_is_always_negative_for_positive_fitness() {
        let mut rng = SplitMix64::seed_from_u64(7);
        for _ in 0..10_000 {
            let bid = log_bid(&mut rng, 2.5);
            assert!(bid < 0.0 && bid.is_finite());
        }
    }

    #[test]
    fn log_bid_scales_inversely_with_fitness() {
        // E[ln(U)/f] = −1/f; check the empirical mean tracks that.
        let mut rng = SplitMix64::seed_from_u64(8);
        for f in [0.5, 1.0, 2.0, 10.0] {
            let mean = (0..100_000).map(|_| log_bid(&mut rng, f)).sum::<f64>() / 100_000.0;
            assert!(
                (mean + 1.0 / f).abs() < 0.02,
                "fitness {f}: mean {mean}, expected {}",
                -1.0 / f
            );
        }
    }

    #[test]
    fn sampler_enum_dispatch() {
        let mut rng = SplitMix64::seed_from_u64(9);
        for sampler in [ExponentialSampler::InverseCdf, ExponentialSampler::Ziggurat] {
            let x = sampler.sample(&mut rng);
            assert!(x >= 0.0 && x.is_finite());
            let y = sampler.sample_rate(&mut rng, 3.0);
            assert!(y >= 0.0 && y.is_finite());
        }
    }

    #[test]
    fn samples_are_non_negative() {
        let mut rng = SplitMix64::seed_from_u64(10);
        for _ in 0..50_000 {
            assert!(standard_exponential(&mut rng) >= 0.0);
            assert!(standard_exponential_ziggurat(&mut rng) >= 0.0);
        }
    }
}
