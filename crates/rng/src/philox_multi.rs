//! Eight-way interleaved Philox4x32-10 uniform generation — the multi-stream
//! block fill under the fused multi-draw bid kernel in `lrb-core`.
//!
//! A fused selection computes [`MULTI_WIDTH`] independent draws in one pass
//! over the fitness array, which needs, for every index `k`, one open-open
//! uniform from each of eight Philox streams (stream `m` keyed by master
//! draw `m`). Producing those streams one at a time leaves the CPU
//! latency-bound on the ten-round Philox chain; producing them **eight at a
//! time** — the same round executed across eight independent key schedules —
//! turns the chain into straight-line data parallelism that vectorises
//! (AVX-512: one 8-lane register per counter word; AVX2: two 4-lane halves)
//! and pipelines even in scalar form.
//!
//! [`PhiloxMulti8::fill_uniforms`] writes an **interleaved** layout:
//! `out[k · 8 + m]` is the uniform of word `base_block · 2 + k` of stream
//! `m`. Row `k` is therefore contiguous — exactly the shape the fused
//! kernel's filter wants (one aligned 8-lane load per fitness index) and
//! exactly the shape one AVX-512 store produces per generated word row.
//!
//! ## Exactness contract
//!
//! Every tier produces **bit-identical** output: word `w` of stream `m` is
//! the `w`-th [`next_u64`](crate::RandomSource::next_u64) of
//! `Philox4x32::with_key(masters[m])`, converted by
//! [`f64_open_open`](fn@crate::uniform::f64_open_open). The SIMD tiers
//! convert
//! with `vcvtuqq2pd` (AVX-512) or the `2⁵² + k` exponent-bias trick (AVX2);
//! both compute the exact value `(k + 0.5) · 2⁻⁵²` — every intermediate is
//! representable, so no rounding ever differs from the scalar formula. The
//! tier is an implementation detail, never part of a stored stream layout.
//!
//! The active tier is detected once per process ([`simd_tier`]) and can be
//! overridden per generator ([`PhiloxMulti8::with_tier`]) for tests and
//! benches that pin a code path.

use crate::philox::PhiloxBlock;
use crate::uniform::f64_open_open;

/// Streams generated per fused fill (the fused bid kernel's register-block
/// width).
pub const MULTI_WIDTH: usize = 8;

/// Philox4x32 rounds (mirrors the sequential implementation).
const ROUNDS: usize = 10;

const PHILOX_W0: u32 = 0x9E37_79B9;
const PHILOX_W1: u32 = 0xBB67_AE85;

/// Which vector width the multi-stream fill executes with. Output is
/// bit-identical across tiers; only throughput differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdTier {
    /// 8 × 64-bit lanes per op (`avx512f` + `avx512dq`).
    Avx512,
    /// 4 × 64-bit lanes per op, two halves per row (`avx2`).
    Avx2,
    /// Portable scalar fallback (one [`PhiloxBlock`] per stream).
    Scalar,
}

/// The best [`SimdTier`] this host supports, detected once per process.
///
/// The `LRB_SIMD` environment variable (`avx512` / `avx2` / `scalar`)
/// caps the tier for benches and CI diagnostics, the same way
/// `LRB_THREADS` pins the thread budget; an unsupported or unrecognised
/// request falls back to detection. Output is bit-identical across tiers,
/// so the override can never change results, only throughput.
pub fn simd_tier() -> SimdTier {
    use std::sync::OnceLock;
    static TIER: OnceLock<SimdTier> = OnceLock::new();
    *TIER.get_or_init(|| {
        let detected = detect_tier();
        match std::env::var("LRB_SIMD").ok().as_deref() {
            Some("scalar") => SimdTier::Scalar,
            Some("avx2") if tier_supported(SimdTier::Avx2) => SimdTier::Avx2,
            Some("avx512") if tier_supported(SimdTier::Avx512) => SimdTier::Avx512,
            _ => detected,
        }
    })
}

fn detect_tier() -> SimdTier {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512dq") {
            return SimdTier::Avx512;
        }
        if is_x86_feature_detected!("avx2") {
            return SimdTier::Avx2;
        }
    }
    SimdTier::Scalar
}

/// Whether `tier` can execute on this host.
pub fn tier_supported(tier: SimdTier) -> bool {
    match tier {
        SimdTier::Scalar => true,
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx512 => {
            is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512dq")
        }
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => is_x86_feature_detected!("avx2"),
        #[cfg(not(target_arch = "x86_64"))]
        _ => false,
    }
}

/// An eight-stream Philox uniform generator with the round keys of all
/// eight streams expanded once at construction.
#[derive(Debug, Clone)]
pub struct PhiloxMulti8 {
    masters: [u64; MULTI_WIDTH],
    /// Round keys, lane-major per round: `k0[r][m]` is round `r`'s first
    /// key word of stream `m`, zero-extended to 64 bits so the SIMD tiers
    /// can load a full register per round.
    k0: [[u64; MULTI_WIDTH]; ROUNDS],
    k1: [[u64; MULTI_WIDTH]; ROUNDS],
    tier: SimdTier,
}

impl PhiloxMulti8 {
    /// A generator for eight streams keyed by `masters`, on the best tier
    /// this host supports.
    pub fn new(masters: [u64; MULTI_WIDTH]) -> Self {
        Self::with_tier(masters, simd_tier())
    }

    /// A generator pinned to an explicit tier (tests and benches comparing
    /// code paths). Panics if the host cannot execute `tier`.
    pub fn with_tier(masters: [u64; MULTI_WIDTH], tier: SimdTier) -> Self {
        assert!(
            tier_supported(tier),
            "tier {tier:?} is not supported on this host"
        );
        let mut k0 = [[0u64; MULTI_WIDTH]; ROUNDS];
        let mut k1 = [[0u64; MULTI_WIDTH]; ROUNDS];
        for (m, &master) in masters.iter().enumerate() {
            let mut lo = master as u32;
            let mut hi = (master >> 32) as u32;
            for r in 0..ROUNDS {
                k0[r][m] = lo as u64;
                k1[r][m] = hi as u64;
                lo = lo.wrapping_add(PHILOX_W0);
                hi = hi.wrapping_add(PHILOX_W1);
            }
        }
        Self {
            masters,
            k0,
            k1,
            tier,
        }
    }

    /// The tier this generator executes with.
    pub fn tier(&self) -> SimdTier {
        self.tier
    }

    /// The eight master keys.
    pub fn masters(&self) -> &[u64; MULTI_WIDTH] {
        &self.masters
    }

    /// Fill `out[k · 8 + m]` for `k in 0..rows` with the open-open uniform
    /// of word `2 · base_block + k` of stream `m`.
    ///
    /// `rows` must be even (whole Philox blocks; each block yields two
    /// words) and `out` must hold at least `rows · 8` values.
    pub fn fill_uniforms(&self, base_block: u64, rows: usize, out: &mut [f64]) {
        assert!(rows.is_multiple_of(2), "rows must cover whole blocks");
        assert!(out.len() >= rows * MULTI_WIDTH, "output buffer too small");
        match self.tier {
            #[cfg(target_arch = "x86_64")]
            SimdTier::Avx512 => simd::fill_avx512(self, base_block, rows, out),
            #[cfg(target_arch = "x86_64")]
            SimdTier::Avx2 => simd::fill_avx2(self, base_block, rows, out),
            _ => self.fill_scalar(base_block, rows, out),
        }
    }

    /// Portable reference fill: one [`PhiloxBlock`] per stream, written
    /// transposed into the interleaved layout.
    fn fill_scalar(&self, base_block: u64, rows: usize, out: &mut [f64]) {
        for (m, &master) in self.masters.iter().enumerate() {
            let mut stream = PhiloxBlock::at_block(master, base_block as u128);
            let mut k = 0;
            while k < rows {
                let words = stream.next_u64_pair();
                out[k * MULTI_WIDTH + m] = f64_open_open(words[0]);
                out[(k + 1) * MULTI_WIDTH + m] = f64_open_open(words[1]);
                k += 2;
            }
        }
    }
}

/// The vectorised fill tiers.
///
/// ## Safety argument (audited `unsafe`)
///
/// Only two kinds of `unsafe` appear here, both mechanical:
///
/// * **`#[target_feature]` entry calls** — `fill_avx512` / `fill_avx2` are
///   only reachable through [`PhiloxMulti8::fill_uniforms`], which
///   dispatches on a tier that [`tier_supported`] verified against
///   `is_x86_feature_detected!` at construction. The features are therefore
///   present whenever the functions run.
/// * **Unaligned vector loads/stores** — every pointer is derived from a
///   slice (or a fixed-size array) whose length was checked by the caller's
///   asserts (`out.len() >= rows · 8`, key arrays are exactly eight lanes),
///   and offsets stay strictly below those lengths by loop construction.
///
/// All arithmetic intrinsics are safe to call inside their
/// `#[target_feature]` context.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod simd {
    use super::{PhiloxMulti8, MULTI_WIDTH, ROUNDS};
    use std::arch::x86_64::*;

    const PHILOX_M0: u32 = 0xD251_1F53;
    const PHILOX_M1: u32 = 0xCD9E_8D57;

    /// `2⁻⁵²`, the open-open conversion scale.
    const OPEN_SCALE: f64 = 1.0 / 4_503_599_627_370_496.0;
    /// `2⁵² − 0.5`: subtracting it from `2⁵² + k` yields `k + 0.5` exactly
    /// (both operands and the result are representable, so the subtraction
    /// cannot round).
    const EXP_BIAS_MINUS_HALF: f64 = 4_503_599_627_370_496.0 - 0.5;

    /// Dispatch shim: the caller verified `avx512f`+`avx512dq` support.
    #[inline]
    pub(super) fn fill_avx512(gen: &PhiloxMulti8, base_block: u64, rows: usize, out: &mut [f64]) {
        // SAFETY: tier checked at construction (see module docs).
        unsafe { fill_avx512_impl(gen, base_block, rows, out) }
    }

    /// Dispatch shim: the caller verified `avx2` support.
    #[inline]
    pub(super) fn fill_avx2(gen: &PhiloxMulti8, base_block: u64, rows: usize, out: &mut [f64]) {
        // SAFETY: tier checked at construction (see module docs).
        unsafe { fill_avx2_impl(gen, base_block, rows, out) }
    }

    #[target_feature(enable = "avx512f,avx512dq")]
    fn fill_avx512_impl(gen: &PhiloxMulti8, base_block: u64, rows: usize, out: &mut [f64]) {
        let m0 = _mm512_set1_epi64(PHILOX_M0 as i64);
        let m1 = _mm512_set1_epi64(PHILOX_M1 as i64);
        let lo32 = _mm512_set1_epi64(0xFFFF_FFFFu64 as i64);
        let half = _mm512_set1_pd(0.5);
        let scale = _mm512_set1_pd(OPEN_SCALE);
        // Round keys, one 8-lane register per round per key word.
        let mut k0 = [_mm512_setzero_si512(); ROUNDS];
        let mut k1 = [_mm512_setzero_si512(); ROUNDS];
        for r in 0..ROUNDS {
            // SAFETY: gen.k0[r]/gen.k1[r] are [u64; 8] — exactly 512 bits.
            k0[r] = unsafe { _mm512_loadu_si512(gen.k0[r].as_ptr() as *const _) };
            k1[r] = unsafe { _mm512_loadu_si512(gen.k1[r].as_ptr() as *const _) };
        }
        for b in 0..rows / 2 {
            let ctr = base_block + b as u64;
            let mut c0 = _mm512_set1_epi64((ctr & 0xFFFF_FFFF) as i64);
            let mut c1 = _mm512_set1_epi64((ctr >> 32) as i64);
            let mut c2 = _mm512_setzero_si512();
            let mut c3 = _mm512_setzero_si512();
            for r in 0..ROUNDS {
                let p0 = _mm512_mul_epu32(c0, m0);
                let p1 = _mm512_mul_epu32(c2, m1);
                c0 = _mm512_xor_si512(_mm512_xor_si512(_mm512_srli_epi64(p1, 32), c1), k0[r]);
                c1 = _mm512_and_si512(p1, lo32);
                c2 = _mm512_xor_si512(_mm512_xor_si512(_mm512_srli_epi64(p0, 32), c3), k1[r]);
                c3 = _mm512_and_si512(p0, lo32);
            }
            // Word 0 is lanes (1, 0) of the block, word 1 lanes (3, 2) —
            // the `next_u64_pair` pairing.
            let w0 = _mm512_or_si512(_mm512_slli_epi64(c1, 32), c0);
            let w1 = _mm512_or_si512(_mm512_slli_epi64(c3, 32), c2);
            // u = ((w >> 12) as f64 + 0.5) · 2⁻⁵²; `vcvtuqq2pd` is exact
            // here because w >> 12 < 2⁵².
            let u0 = _mm512_mul_pd(
                _mm512_add_pd(_mm512_cvtepu64_pd(_mm512_srli_epi64(w0, 12)), half),
                scale,
            );
            let u1 = _mm512_mul_pd(
                _mm512_add_pd(_mm512_cvtepu64_pd(_mm512_srli_epi64(w1, 12)), half),
                scale,
            );
            // SAFETY: rows 2b and 2b+1 are < rows, and out.len() >= rows·8
            // was asserted by the caller.
            unsafe {
                _mm512_storeu_pd(out.as_mut_ptr().add(2 * b * MULTI_WIDTH), u0);
                _mm512_storeu_pd(out.as_mut_ptr().add((2 * b + 1) * MULTI_WIDTH), u1);
            }
        }
    }

    #[target_feature(enable = "avx2")]
    fn fill_avx2_impl(gen: &PhiloxMulti8, base_block: u64, rows: usize, out: &mut [f64]) {
        let m0 = _mm256_set1_epi64x(PHILOX_M0 as i64);
        let m1 = _mm256_set1_epi64x(PHILOX_M1 as i64);
        let lo32 = _mm256_set1_epi64x(0xFFFF_FFFFu64 as i64);
        let bias = _mm256_set1_epi64x(0x4330_0000_0000_0000u64 as i64); // 2⁵² as bits
        let bias_minus_half = _mm256_set1_pd(EXP_BIAS_MINUS_HALF);
        let scale = _mm256_set1_pd(OPEN_SCALE);
        // Two 4-lane halves per round key register.
        let mut k0 = [[_mm256_setzero_si256(); 2]; ROUNDS];
        let mut k1 = [[_mm256_setzero_si256(); 2]; ROUNDS];
        for r in 0..ROUNDS {
            for h in 0..2 {
                // SAFETY: gen.k0[r][4h..4h+4] is 4 u64 = 256 bits in-bounds.
                k0[r][h] = unsafe { _mm256_loadu_si256(gen.k0[r].as_ptr().add(4 * h) as *const _) };
                k1[r][h] = unsafe { _mm256_loadu_si256(gen.k1[r].as_ptr().add(4 * h) as *const _) };
            }
        }
        for b in 0..rows / 2 {
            let ctr = base_block + b as u64;
            let c0_init = _mm256_set1_epi64x((ctr & 0xFFFF_FFFF) as i64);
            let c1_init = _mm256_set1_epi64x((ctr >> 32) as i64);
            for h in 0..2 {
                let mut c0 = c0_init;
                let mut c1 = c1_init;
                let mut c2 = _mm256_setzero_si256();
                let mut c3 = _mm256_setzero_si256();
                for r in 0..ROUNDS {
                    let p0 = _mm256_mul_epu32(c0, m0);
                    let p1 = _mm256_mul_epu32(c2, m1);
                    c0 =
                        _mm256_xor_si256(_mm256_xor_si256(_mm256_srli_epi64(p1, 32), c1), k0[r][h]);
                    c1 = _mm256_and_si256(p1, lo32);
                    c2 =
                        _mm256_xor_si256(_mm256_xor_si256(_mm256_srli_epi64(p0, 32), c3), k1[r][h]);
                    c3 = _mm256_and_si256(p0, lo32);
                }
                let w0 = _mm256_or_si256(_mm256_slli_epi64(c1, 32), c0);
                let w1 = _mm256_or_si256(_mm256_slli_epi64(c3, 32), c2);
                // (2⁵² + k) − (2⁵² − 0.5) = k + 0.5, exactly (see consts).
                let u0 = _mm256_mul_pd(
                    _mm256_sub_pd(
                        _mm256_castsi256_pd(_mm256_or_si256(_mm256_srli_epi64(w0, 12), bias)),
                        bias_minus_half,
                    ),
                    scale,
                );
                let u1 = _mm256_mul_pd(
                    _mm256_sub_pd(
                        _mm256_castsi256_pd(_mm256_or_si256(_mm256_srli_epi64(w1, 12), bias)),
                        bias_minus_half,
                    ),
                    scale,
                );
                // SAFETY: rows 2b, 2b+1 < rows and half h covers lanes
                // 4h..4h+4 of the 8-wide row; out.len() >= rows·8.
                unsafe {
                    _mm256_storeu_pd(out.as_mut_ptr().add(2 * b * MULTI_WIDTH + 4 * h), u0);
                    _mm256_storeu_pd(out.as_mut_ptr().add((2 * b + 1) * MULTI_WIDTH + 4 * h), u1);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Philox4x32, RandomSource};

    fn masters() -> [u64; MULTI_WIDTH] {
        std::array::from_fn(|i| 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1) ^ 0xABCD)
    }

    fn available_tiers() -> Vec<SimdTier> {
        [SimdTier::Avx512, SimdTier::Avx2, SimdTier::Scalar]
            .into_iter()
            .filter(|&t| tier_supported(t))
            .collect()
    }

    #[test]
    fn every_tier_matches_the_sequential_philox_stream() {
        // The contract in one assertion: out[k·8 + m] is word k of the
        // sequential stream keyed by masters[m], converted open-open.
        let rows = 64;
        for tier in available_tiers() {
            let gen = PhiloxMulti8::with_tier(masters(), tier);
            assert_eq!(gen.tier(), tier);
            let mut out = vec![0.0f64; rows * MULTI_WIDTH];
            gen.fill_uniforms(0, rows, &mut out);
            for (m, &master) in gen.masters().iter().enumerate() {
                let mut seq = Philox4x32::with_key(master);
                for k in 0..rows {
                    let expect = crate::uniform::f64_open_open(seq.next_u64());
                    assert_eq!(
                        out[k * MULTI_WIDTH + m].to_bits(),
                        expect.to_bits(),
                        "tier {tier:?}, stream {m}, word {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn tiers_are_bit_identical_to_each_other() {
        let rows = 128;
        let tiers = available_tiers();
        let reference = {
            let gen = PhiloxMulti8::with_tier(masters(), SimdTier::Scalar);
            let mut out = vec![0.0f64; rows * MULTI_WIDTH];
            gen.fill_uniforms(33, rows, &mut out);
            out
        };
        for tier in tiers {
            let gen = PhiloxMulti8::with_tier(masters(), tier);
            let mut out = vec![0.0f64; rows * MULTI_WIDTH];
            gen.fill_uniforms(33, rows, &mut out);
            let same = out
                .iter()
                .zip(&reference)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "tier {tier:?} diverged from scalar");
        }
    }

    #[test]
    fn base_block_positions_the_stream() {
        // Filling from block b must equal skipping 2b words sequentially.
        let gen = PhiloxMulti8::new(masters());
        let rows = 16;
        let skip_blocks = 5u64;
        let mut out = vec![0.0f64; rows * MULTI_WIDTH];
        gen.fill_uniforms(skip_blocks, rows, &mut out);
        for (m, &master) in gen.masters().iter().enumerate() {
            let mut seq = Philox4x32::at(master, skip_blocks as u128);
            for k in 0..rows {
                let expect = crate::uniform::f64_open_open(seq.next_u64());
                assert_eq!(out[k * MULTI_WIDTH + m].to_bits(), expect.to_bits());
            }
        }
    }

    #[test]
    fn detected_tier_is_supported() {
        assert!(tier_supported(simd_tier()));
        assert!(tier_supported(SimdTier::Scalar));
    }

    #[test]
    #[should_panic]
    fn odd_row_counts_are_rejected() {
        let gen = PhiloxMulti8::new(masters());
        let mut out = vec![0.0f64; 3 * MULTI_WIDTH];
        gen.fill_uniforms(0, 3, &mut out);
    }

    #[test]
    #[should_panic]
    fn short_output_buffers_are_rejected() {
        let gen = PhiloxMulti8::new(masters());
        let mut out = vec![0.0f64; MULTI_WIDTH];
        gen.fill_uniforms(0, 4, &mut out);
    }

    #[test]
    fn uniforms_are_strictly_inside_the_unit_interval() {
        let gen = PhiloxMulti8::new(masters());
        let rows = 256;
        let mut out = vec![0.0f64; rows * MULTI_WIDTH];
        gen.fill_uniforms(0, rows, &mut out);
        for &u in &out {
            assert!(u > 0.0 && u < 1.0);
        }
    }
}
