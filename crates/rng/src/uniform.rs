//! Conversion of raw 64-bit words to uniform variates.
//!
//! Getting `u64 → f64 in [0, 1)` right matters for the logarithmic random
//! bidding: the algorithm computes `ln(rand())`, so the conversion must (a)
//! never produce exactly `1.0` (the closed end) and, for the `ln` path, never
//! produce exactly `0.0` either (which would give `-∞` and make a zero-fitness
//! and a tiny-fitness processor indistinguishable). The helpers here expose
//! both the standard half-open conversion and an open-interval conversion.

use crate::traits::RandomSource;

/// 2⁻⁵³, the spacing of the 53-bit uniform grid.
pub const F64_EPS_53: f64 = 1.0 / 9_007_199_254_740_992.0;

/// Convert the top 53 bits of `word` to an `f64` uniform on `[0, 1)`.
///
/// Every output is a multiple of 2⁻⁵³; the maximum value is `1 − 2⁻⁵³`.
#[inline]
pub fn f64_from_bits_53(word: u64) -> f64 {
    (word >> 11) as f64 * F64_EPS_53
}

/// Convert the top 52 bits of `word` to an `f64` uniform on the open interval
/// `(0, 1)`.
///
/// Uses the "add half a step" construction: `(k + 0.5) · 2⁻⁵²` for the 52-bit
/// integer `k`, so the smallest output is 2⁻⁵³ and the largest is `1 − 2⁻⁵³`.
/// This is the conversion used for logarithm arguments.
#[inline]
pub fn f64_open_open(word: u64) -> f64 {
    ((word >> 12) as f64 + 0.5) * (1.0 / 4_503_599_627_370_496.0)
}

/// Convert to an `f64` uniform on the half-open interval `(0, 1]`.
///
/// Occasionally useful when a variate will be used as a divisor.
#[inline]
pub fn f64_open_closed(word: u64) -> f64 {
    ((word >> 11) as f64 + 1.0) * F64_EPS_53
}

/// Draw a uniform integer in `[0, bound)` using Lemire's multiply-shift
/// rejection method (unbiased, at most a handful of retries in expectation).
pub fn u64_below<R: RandomSource + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Fast path for power-of-two bounds: mask the high bits.
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let low = m as u64;
        if low >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// Draw a uniform `f64` in `[low, high)`.
///
/// Panics if the range is empty or not finite.
pub fn f64_in_range<R: RandomSource + ?Sized>(rng: &mut R, low: f64, high: f64) -> f64 {
    assert!(
        low.is_finite() && high.is_finite() && low < high,
        "invalid range [{low}, {high})"
    );
    let x = low + (high - low) * rng.next_f64();
    // Floating-point rounding can land exactly on `high`; clamp back inside.
    if x >= high {
        high - (high - low) * F64_EPS_53
    } else {
        x
    }
}

/// Fisher–Yates shuffle of a slice using the supplied generator.
pub fn shuffle<T, R: RandomSource + ?Sized>(rng: &mut R, items: &mut [T]) {
    let n = items.len();
    if n < 2 {
        return;
    }
    for i in (1..n).rev() {
        let j = rng.next_u64_below(i as u64 + 1) as usize;
        items.swap(i, j);
    }
}

/// Choose a uniformly random element of a non-empty slice.
pub fn choose<'a, T, R: RandomSource + ?Sized>(rng: &mut R, items: &'a [T]) -> &'a T {
    assert!(!items.is_empty(), "cannot choose from an empty slice");
    &items[rng.next_u64_below(items.len() as u64) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SeedableSource, SplitMix64};
    use proptest::prelude::*;

    #[test]
    fn half_open_conversion_bounds() {
        assert_eq!(f64_from_bits_53(0), 0.0);
        assert_eq!(f64_from_bits_53(u64::MAX), 1.0 - F64_EPS_53);
        assert!(f64_from_bits_53(u64::MAX) < 1.0);
    }

    #[test]
    fn open_open_conversion_bounds() {
        assert_eq!(f64_open_open(0), F64_EPS_53);
        assert!(f64_open_open(u64::MAX) < 1.0);
        assert!(f64_open_open(u64::MAX) > 0.999_999_999);
    }

    #[test]
    fn open_closed_conversion_bounds() {
        assert!(f64_open_closed(0) > 0.0);
        assert_eq!(f64_open_closed(u64::MAX), 1.0);
    }

    #[test]
    fn range_sampling_stays_in_range() {
        let mut rng = SplitMix64::seed_from_u64(8);
        for _ in 0..10_000 {
            let x = f64_in_range(&mut rng, -3.0, 7.5);
            assert!((-3.0..7.5).contains(&x));
        }
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        let mut rng = SplitMix64::seed_from_u64(8);
        f64_in_range(&mut rng, 1.0, 1.0);
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let mut rng = SplitMix64::seed_from_u64(10);
        let mut v: Vec<u32> = (0..100).collect();
        shuffle(&mut rng, &mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn shuffle_handles_degenerate_lengths() {
        let mut rng = SplitMix64::seed_from_u64(10);
        let mut empty: Vec<u32> = vec![];
        shuffle(&mut rng, &mut empty);
        let mut one = vec![42];
        shuffle(&mut rng, &mut one);
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn shuffle_is_roughly_uniform_over_permutations() {
        // For 3 elements there are 6 permutations; each should appear ~1/6 of
        // the time over many shuffles.
        let mut rng = SplitMix64::seed_from_u64(77);
        let trials = 60_000;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..trials {
            let mut v = [0u8, 1, 2];
            shuffle(&mut rng, &mut v);
            *counts.entry(v).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 6);
        for (&perm, &c) in &counts {
            let frac = c as f64 / trials as f64;
            assert!(
                (frac - 1.0 / 6.0).abs() < 0.01,
                "permutation {perm:?} frequency {frac}"
            );
        }
    }

    #[test]
    fn choose_returns_members() {
        let mut rng = SplitMix64::seed_from_u64(3);
        let items = [10, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(choose(&mut rng, &items)));
        }
    }

    #[test]
    fn lemire_bound_one_always_returns_zero() {
        let mut rng = SplitMix64::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(u64_below(&mut rng, 1), 0);
        }
    }

    proptest! {
        #[test]
        fn prop_half_open_in_unit_interval(word: u64) {
            let x = f64_from_bits_53(word);
            prop_assert!((0.0..1.0).contains(&x));
        }

        #[test]
        fn prop_open_open_strictly_inside(word: u64) {
            let x = f64_open_open(word);
            prop_assert!(x > 0.0 && x < 1.0);
        }

        #[test]
        fn prop_u64_below_in_bounds(seed: u64, bound in 1u64..=u64::MAX) {
            let mut rng = SplitMix64::seed_from_u64(seed);
            let x = u64_below(&mut rng, bound);
            prop_assert!(x < bound);
        }

        #[test]
        fn prop_range_sampling(seed: u64, a in -1e6f64..1e6, width in 1e-3f64..1e6) {
            let mut rng = SplitMix64::seed_from_u64(seed);
            let x = f64_in_range(&mut rng, a, a + width);
            prop_assert!(x >= a && x < a + width);
        }
    }
}
