//! # lrb-rng — pseudo-random number generation substrate
//!
//! This crate provides every random-number facility needed by the
//! logarithmic-random-bidding reproduction, implemented from scratch so that
//! the experiments are bit-reproducible and carry no mandatory external
//! dependency:
//!
//! * [`MersenneTwister`] / [`MersenneTwister64`] — the generator used by the
//!   paper's own experiments (Matsumoto & Nishimura, 1998).
//! * [`SplitMix64`] — a tiny, high-quality 64-bit generator used for seeding
//!   and for spawning independent streams.
//! * [`Xoshiro256PlusPlus`] / [`Xoshiro256StarStar`] — fast jumpable
//!   generators suited to per-thread streams.
//! * [`Pcg32`] / [`Pcg64`] — permuted congruential generators with
//!   independent stream selection.
//! * [`Philox4x32`] — a counter-based generator in the Random123 family,
//!   ideal for "one stream per logical processor" PRAM-style experiments
//!   because stream `i` is obtained by setting a counter word, with no
//!   sequential seeding pass.
//! * Uniform `[0, 1)` conversion strategies ([`uniform`]), exponential
//!   sampling ([`exponential`]), and parallel stream construction
//!   ([`streams`]).
//!
//! The central abstraction is the [`RandomSource`] trait: a minimal,
//! object-safe interface (`next_u32` / `next_u64` / `next_f64`) that all
//! generators implement and that the selection library consumes.
//!
//! ## Quick example
//!
//! ```
//! use lrb_rng::{RandomSource, SeedableSource, MersenneTwister64};
//!
//! let mut rng = MersenneTwister64::seed_from_u64(42);
//! let u = rng.next_f64();
//! assert!((0.0..1.0).contains(&u));
//! ```

// `deny`, not `forbid`: the one module implementing the vectorised
// multi-stream Philox fill (`philox_multi::simd`) carries an audited
// `#[allow(unsafe_code)]` with its safety argument in the module docs —
// `#[target_feature]` dispatch guarded by runtime detection plus
// bounds-checked unaligned loads/stores; everything else stays safe Rust.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod exponential;
pub mod mt19937;
pub mod mt19937_64;
pub mod pcg;
pub mod philox;
pub mod philox_multi;
pub mod splitmix64;
pub mod streams;
pub mod traits;
pub mod uniform;
pub mod xoshiro;

#[cfg(feature = "rand-compat")]
pub mod rand_compat;

pub use exponential::{standard_exponential, ExponentialSampler};
pub use mt19937::MersenneTwister;
pub use mt19937_64::MersenneTwister64;
pub use pcg::{Pcg32, Pcg64};
pub use philox::{Philox4x32, PhiloxBlock};
pub use philox_multi::{simd_tier, PhiloxMulti8, SimdTier, MULTI_WIDTH};
pub use splitmix64::SplitMix64;
pub use streams::{spawn_streams, StreamFamily};
pub use traits::{RandomSource, SeedableSource};
pub use uniform::{f64_from_bits_53, f64_open_open, u64_below};
pub use xoshiro::{Xoshiro256PlusPlus, Xoshiro256StarStar};

/// The default generator recommended for new code in this workspace.
///
/// The paper's experiments use the Mersenne Twister; we keep that choice as
/// the default so that the reproduction matches the paper's configuration,
/// while the benches compare it against the faster alternatives.
pub type DefaultSource = MersenneTwister64;

/// Build the workspace-default generator from a 64-bit seed.
pub fn default_source(seed: u64) -> DefaultSource {
    MersenneTwister64::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_source_is_deterministic() {
        let mut a = default_source(7);
        let mut b = default_source(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn default_source_differs_across_seeds() {
        let mut a = default_source(1);
        let mut b = default_source(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "seeds 1 and 2 should produce different streams");
    }

    #[test]
    fn all_generators_produce_unit_interval_f64() {
        fn check<R: RandomSource>(mut r: R) {
            for _ in 0..1000 {
                let x = r.next_f64();
                assert!((0.0..1.0).contains(&x), "{x} out of [0,1)");
            }
        }
        check(MersenneTwister::seed_from_u64(1));
        check(MersenneTwister64::seed_from_u64(1));
        check(SplitMix64::seed_from_u64(1));
        check(Xoshiro256PlusPlus::seed_from_u64(1));
        check(Xoshiro256StarStar::seed_from_u64(1));
        check(Pcg32::seed_from_u64(1));
        check(Pcg64::seed_from_u64(1));
        check(Philox4x32::seed_from_u64(1));
    }
}
