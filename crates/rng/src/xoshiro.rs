//! xoshiro256++ and xoshiro256** (Blackman & Vigna, 2019).
//!
//! Fast general-purpose 256-bit-state generators with `jump()` /
//! `long_jump()` functions that advance the state by 2¹²⁸ / 2¹⁹² steps, which
//! lets us hand each worker thread its own provably non-overlapping
//! subsequence — the recommended way to build per-thread streams for the
//! rayon-parallel logarithmic random bidding.

use crate::splitmix64::SplitMix64;
use crate::traits::{RandomSource, SeedableSource};

/// Shared 256-bit xoshiro state and the linear-engine transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct XoshiroState {
    s: [u64; 4],
}

impl XoshiroState {
    fn from_u64(seed: u64) -> Self {
        // Seed expansion through SplitMix64, per the authors' recommendation.
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = sm.next_u64();
        }
        // An all-zero state is a fixed point of the engine; SplitMix64 cannot
        // produce four consecutive zeros, but guard anyway for direct state
        // construction paths.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    #[inline]
    fn advance(&mut self) {
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
    }

    fn jump_with(&mut self, table: [u64; 4]) {
        let mut acc = [0u64; 4];
        for word in table {
            for bit in 0..64 {
                if (word >> bit) & 1 != 0 {
                    for (a, s) in acc.iter_mut().zip(self.s.iter()) {
                        *a ^= s;
                    }
                }
                self.advance();
            }
        }
        self.s = acc;
    }

    /// Advance by 2¹²⁸ steps.
    fn jump(&mut self) {
        self.jump_with([
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_2618_E03F_C9AA,
            0x39AB_DC45_29B1_661C,
        ]);
    }

    /// Advance by 2¹⁹² steps.
    fn long_jump(&mut self) {
        self.jump_with([
            0x7674_3484_2F19_3BD7,
            0x8407_98E1_BAF1_5821,
            0xE998_3CC7_B1F1_1D6A,
            0x2720_95A8_D2E9_87DD,
        ]);
    }
}

/// The xoshiro256++ generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    state: XoshiroState,
}

impl Xoshiro256PlusPlus {
    /// Construct directly from a 256-bit state (must not be all zero).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s != [0, 0, 0, 0], "xoshiro state must not be all zero");
        Self {
            state: XoshiroState { s },
        }
    }

    /// Jump ahead by 2¹²⁸ outputs (for non-overlapping parallel streams).
    pub fn jump(&mut self) {
        self.state.jump();
    }

    /// Jump ahead by 2¹⁹² outputs (for distributed computations).
    pub fn long_jump(&mut self) {
        self.state.long_jump();
    }
}

impl RandomSource for Xoshiro256PlusPlus {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &self.state.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        self.state.advance();
        result
    }
}

impl SeedableSource for Xoshiro256PlusPlus {
    fn seed_from_u64(seed: u64) -> Self {
        Self {
            state: XoshiroState::from_u64(seed),
        }
    }
}

/// The xoshiro256** generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    state: XoshiroState,
}

impl Xoshiro256StarStar {
    /// Construct directly from a 256-bit state (must not be all zero).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s != [0, 0, 0, 0], "xoshiro state must not be all zero");
        Self {
            state: XoshiroState { s },
        }
    }

    /// Jump ahead by 2¹²⁸ outputs.
    pub fn jump(&mut self) {
        self.state.jump();
    }

    /// Jump ahead by 2¹⁹² outputs.
    pub fn long_jump(&mut self) {
        self.state.long_jump();
    }
}

impl RandomSource for Xoshiro256StarStar {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &self.state.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        self.state.advance();
        result
    }
}

impl SeedableSource for Xoshiro256StarStar {
    fn seed_from_u64(seed: u64) -> Self {
        Self {
            state: XoshiroState::from_u64(seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(123);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn plusplus_and_starstar_differ() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut b = Xoshiro256StarStar::seed_from_u64(1);
        let matches = (0..1000).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(matches < 3);
    }

    #[test]
    fn jump_produces_disjoint_prefixes() {
        let mut base = Xoshiro256PlusPlus::seed_from_u64(42);
        let mut jumped = base;
        jumped.jump();
        let a: Vec<u64> = (0..1000).map(|_| base.next_u64()).collect();
        let b: Vec<u64> = (0..1000).map(|_| jumped.next_u64()).collect();
        let overlap = a.iter().filter(|x| b.contains(x)).count();
        assert!(overlap < 2, "jumped stream overlaps the base stream");
    }

    #[test]
    fn jump_is_equivalent_for_copies() {
        let mut a = Xoshiro256StarStar::seed_from_u64(7);
        let mut b = a;
        a.jump();
        b.jump();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn long_jump_differs_from_jump() {
        let base = Xoshiro256PlusPlus::seed_from_u64(9);
        let mut j = base;
        let mut lj = base;
        j.jump();
        lj.long_jump();
        let matches = (0..100)
            .filter(|_| {
                let x = j.next_u64();
                let y = lj.next_u64();
                x == y
            })
            .count();
        assert!(matches < 2);
    }

    #[test]
    #[should_panic]
    fn all_zero_state_rejected() {
        Xoshiro256PlusPlus::from_state([0, 0, 0, 0]);
    }

    /// Reference vector from the xoshiro authors' test program: xoshiro256++
    /// with initial state {1, 2, 3, 4}.
    #[test]
    fn plusplus_reference_state_1234() {
        let mut rng = Xoshiro256PlusPlus::from_state([1, 2, 3, 4]);
        // First output: rotl(s0 + s3, 23) + s0 = rotl(5, 23) + 1 = 5·2²³ + 1.
        assert_eq!(rng.next_u64(), 5 * (1u64 << 23) + 1);
    }

    /// xoshiro256** with initial state {1, 2, 3, 4}: first output is
    /// rotl(s1·5, 7)·9 = rotl(10, 7)·9 = 1280·9 = 11520.
    #[test]
    fn starstar_reference_state_1234() {
        let mut rng = Xoshiro256StarStar::from_state([1, 2, 3, 4]);
        assert_eq!(rng.next_u64(), 11_520);
    }

    #[test]
    fn bit_balance() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2024);
        let n = 20_000;
        let mut ones = 0u64;
        for _ in 0..n {
            ones += rng.next_u64().count_ones() as u64;
        }
        let frac = ones as f64 / (n as f64 * 64.0);
        assert!((0.49..0.51).contains(&frac), "bit fraction {frac}");
    }
}
