//! SplitMix64: a tiny 64-bit generator used for seeding other generators and
//! for spawning independent streams.
//!
//! The algorithm is Vigna's public-domain `splitmix64.c`: a Weyl sequence with
//! increment `0x9E3779B97F4A7C15` (the golden-ratio constant) followed by a
//! variant of Stafford's "Mix13" finalizer. Every seed yields a full-period
//! (2⁶⁴) sequence, and distinct seeds yield statistically independent streams,
//! which is exactly what is needed when expanding a single user seed into the
//! larger state of MT19937 or xoshiro256.

use crate::traits::{RandomSource, SeedableSource};

/// Golden-ratio Weyl increment used by SplitMix64.
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 generator (Vigna, 2015).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator whose internal counter starts at `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The raw internal counter (useful for checkpointing).
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Apply the SplitMix64 output function to an arbitrary 64-bit value.
    ///
    /// This is a high-quality stateless mixer, handy for hashing seeds or
    /// deriving per-index keys (`mix64(seed ^ index)`).
    pub fn mix64(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl RandomSource for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        SplitMix64::mix64(self.state)
    }
}

impl SeedableSource for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        Self::new(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer test against Vigna's reference `splitmix64.c` with seed 0.
    #[test]
    fn reference_vector_seed_zero() {
        let mut rng = SplitMix64::new(0);
        let expected: [u64; 3] = [
            0xE220_A839_7B1D_CDAF,
            0x6E78_9E6A_A1B9_65F4,
            0x06C4_5D18_8009_454F,
        ];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(rng.next_u64(), e, "mismatch at index {i}");
        }
    }

    #[test]
    fn mix64_of_zero_is_zero() {
        // The finalizer maps 0 to 0; the generator avoids emitting it for
        // seed 0 because the Weyl increment is added before mixing.
        assert_eq!(SplitMix64::mix64(0), 0);
    }

    #[test]
    fn distinct_seeds_give_distinct_streams() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let matches = (0..1000).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn state_advances_by_gamma() {
        let mut rng = SplitMix64::new(100);
        let before = rng.state();
        rng.next_u64();
        assert_eq!(rng.state(), before.wrapping_add(GOLDEN_GAMMA));
    }

    #[test]
    fn clone_reproduces_stream() {
        let mut a = SplitMix64::new(77);
        a.next_u64();
        let mut b = a;
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn output_bits_look_balanced() {
        // Cheap sanity check: over many outputs every bit position should be
        // set roughly half the time.
        let mut rng = SplitMix64::new(42);
        let n = 20_000;
        let mut ones = [0u32; 64];
        for _ in 0..n {
            let x = rng.next_u64();
            for (bit, count) in ones.iter_mut().enumerate() {
                *count += ((x >> bit) & 1) as u32;
            }
        }
        for (bit, &count) in ones.iter().enumerate() {
            let frac = count as f64 / n as f64;
            assert!(
                (0.45..0.55).contains(&frac),
                "bit {bit} set fraction {frac}"
            );
        }
    }
}
