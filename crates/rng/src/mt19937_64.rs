//! MT19937-64: the 64-bit Mersenne Twister of Nishimura & Matsumoto (2004).
//!
//! Identical design to the 32-bit MT19937 (see [`crate::mt19937`]) but with a
//! 312-word 64-bit state, making it the natural choice when 53-bit doubles are
//! consumed one per output word. This is the workspace default generator.

use crate::splitmix64::SplitMix64;
use crate::traits::{RandomSource, SeedableSource};

const NN: usize = 312;
const MM: usize = 156;
const MATRIX_A: u64 = 0xB502_6F5A_A966_19E9;
const UPPER_MASK: u64 = 0xFFFF_FFFF_8000_0000;
const LOWER_MASK: u64 = 0x0000_0000_7FFF_FFFF;

/// The 64-bit Mersenne Twister generator (period 2^19937 − 1).
#[derive(Clone)]
pub struct MersenneTwister64 {
    state: [u64; NN],
    index: usize,
}

impl std::fmt::Debug for MersenneTwister64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MersenneTwister64")
            .field("index", &self.index)
            .finish_non_exhaustive()
    }
}

impl MersenneTwister64 {
    /// The scalar seed used by the reference implementation when none is given.
    pub const DEFAULT_SEED: u64 = 5489;

    /// Construct from a 64-bit scalar seed (reference `init_genrand64`).
    pub fn new(seed: u64) -> Self {
        let mut state = [0u64; NN];
        state[0] = seed;
        for i in 1..NN {
            state[i] = 6_364_136_223_846_793_005u64
                .wrapping_mul(state[i - 1] ^ (state[i - 1] >> 62))
                .wrapping_add(i as u64);
        }
        Self { state, index: NN }
    }

    /// Construct with the reference default seed (5489).
    pub fn default_seed() -> Self {
        Self::new(Self::DEFAULT_SEED)
    }

    /// Construct from an array seed (reference `init_by_array64`).
    pub fn from_seed_array(key: &[u64]) -> Self {
        let mut mt = Self::new(19_650_218);
        let mut i = 1usize;
        let mut j = 0usize;
        let mut k = NN.max(key.len());
        while k > 0 {
            mt.state[i] = (mt.state[i]
                ^ (mt.state[i - 1] ^ (mt.state[i - 1] >> 62))
                    .wrapping_mul(3_935_559_000_370_003_845))
            .wrapping_add(key[j])
            .wrapping_add(j as u64);
            i += 1;
            j += 1;
            if i >= NN {
                mt.state[0] = mt.state[NN - 1];
                i = 1;
            }
            if j >= key.len() {
                j = 0;
            }
            k -= 1;
        }
        k = NN - 1;
        while k > 0 {
            mt.state[i] = (mt.state[i]
                ^ (mt.state[i - 1] ^ (mt.state[i - 1] >> 62))
                    .wrapping_mul(2_862_933_555_777_941_757))
            .wrapping_sub(i as u64);
            i += 1;
            if i >= NN {
                mt.state[0] = mt.state[NN - 1];
                i = 1;
            }
            k -= 1;
        }
        mt.state[0] = 1u64 << 63;
        mt
    }

    fn generate_block(&mut self) {
        for i in 0..NN {
            let x = (self.state[i] & UPPER_MASK) | (self.state[(i + 1) % NN] & LOWER_MASK);
            let mut next = self.state[(i + MM) % NN] ^ (x >> 1);
            if x & 1 != 0 {
                next ^= MATRIX_A;
            }
            self.state[i] = next;
        }
        self.index = 0;
    }

    /// The next tempered 64-bit output (reference `genrand64_int64`).
    pub fn next_u64_mt(&mut self) -> u64 {
        if self.index >= NN {
            self.generate_block();
        }
        let mut x = self.state[self.index];
        self.index += 1;
        x ^= (x >> 29) & 0x5555_5555_5555_5555;
        x ^= (x << 17) & 0x71D6_7FFF_EDA6_0000;
        x ^= (x << 37) & 0xFFF7_EEE0_0000_0000;
        x ^= x >> 43;
        x
    }

    /// A 53-bit-resolution double in `[0, 1)` (reference `genrand64_res53`).
    pub fn next_res53(&mut self) -> f64 {
        (self.next_u64_mt() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }
}

impl RandomSource for MersenneTwister64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next_u64_mt()
    }
}

impl SeedableSource for MersenneTwister64 {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let key = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Self::from_seed_array(&key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference output of `genrand64_int64` after
    /// `init_by_array64({0x12345, 0x23456, 0x34567, 0x45678})`, from the
    /// mt19937-64 reference distribution's `mt19937-64.out`.
    #[test]
    fn reference_vector_array_seed() {
        let mut mt = MersenneTwister64::from_seed_array(&[0x12345, 0x23456, 0x34567, 0x45678]);
        let expected: [u64; 5] = [
            7_266_447_313_870_364_031,
            4_946_485_549_665_804_864,
            16_945_909_448_695_747_420,
            16_394_063_075_524_226_720,
            4_873_882_236_456_199_058,
        ];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(mt.next_u64_mt(), e, "mismatch at output {i}");
        }
    }

    /// C++11 defines `std::mt19937_64`'s 10000th output (1-indexed) from the
    /// default seed 5489 as 9981545732273789042.
    #[test]
    fn ten_thousandth_output_matches_cpp11() {
        let mut mt = MersenneTwister64::default_seed();
        let mut last = 0u64;
        for _ in 0..10_000 {
            last = mt.next_u64_mt();
        }
        assert_eq!(last, 9_981_545_732_273_789_042);
    }

    #[test]
    fn res53_matches_top_53_bits() {
        let mut a = MersenneTwister64::default_seed();
        let mut b = MersenneTwister64::default_seed();
        for _ in 0..1000 {
            let x = a.next_res53();
            let bits = b.next_u64_mt() >> 11;
            assert_eq!(x, bits as f64 / 9_007_199_254_740_992.0);
        }
    }

    #[test]
    fn default_trait_f64_is_in_unit_interval() {
        let mut mt = MersenneTwister64::default_seed();
        for _ in 0..10_000 {
            let x = mt.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn seed_from_u64_is_deterministic_and_seed_sensitive() {
        let mut a = MersenneTwister64::seed_from_u64(4);
        let mut b = MersenneTwister64::seed_from_u64(4);
        let mut c = MersenneTwister64::seed_from_u64(5);
        let mut diff = 0;
        for _ in 0..700 {
            let (x, y, z) = (a.next_u64_mt(), b.next_u64_mt(), c.next_u64_mt());
            assert_eq!(x, y);
            if x != z {
                diff += 1;
            }
        }
        assert!(diff > 690);
    }

    #[test]
    fn mean_and_variance_are_plausible() {
        let mut mt = MersenneTwister64::seed_from_u64(2024);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = mt.next_f64();
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.003, "variance {var}");
    }
}
