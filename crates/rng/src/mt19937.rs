//! MT19937: the 32-bit Mersenne Twister of Matsumoto & Nishimura (1998).
//!
//! The paper's experiments use the Mersenne Twister as the `rand()` primitive,
//! so this crate carries a faithful from-scratch implementation of the
//! reference `mt19937ar.c`: same state size (624 words), same tempering, same
//! `init_genrand` scalar seeding and `init_by_array` array seeding, validated
//! against the reference output for the default seed.

use crate::splitmix64::SplitMix64;
use crate::traits::{RandomSource, SeedableSource};

const N: usize = 624;
const M: usize = 397;
const MATRIX_A: u32 = 0x9908_B0DF;
const UPPER_MASK: u32 = 0x8000_0000;
const LOWER_MASK: u32 = 0x7FFF_FFFF;

/// The 32-bit Mersenne Twister generator (period 2^19937 − 1).
#[derive(Clone)]
pub struct MersenneTwister {
    state: [u32; N],
    index: usize,
}

impl std::fmt::Debug for MersenneTwister {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MersenneTwister")
            .field("index", &self.index)
            .finish_non_exhaustive()
    }
}

impl MersenneTwister {
    /// The scalar seed used by the reference implementation when none is given.
    pub const DEFAULT_SEED: u32 = 5489;

    /// Construct from a 32-bit scalar seed (reference `init_genrand`).
    pub fn new(seed: u32) -> Self {
        let mut state = [0u32; N];
        state[0] = seed;
        for i in 1..N {
            state[i] = 1_812_433_253u32
                .wrapping_mul(state[i - 1] ^ (state[i - 1] >> 30))
                .wrapping_add(i as u32);
        }
        Self { state, index: N }
    }

    /// Construct with the reference default seed (5489).
    pub fn default_seed() -> Self {
        Self::new(Self::DEFAULT_SEED)
    }

    /// Construct from an array seed (reference `init_by_array`).
    pub fn from_seed_array(key: &[u32]) -> Self {
        let mut mt = Self::new(19_650_218);
        let mut i = 1usize;
        let mut j = 0usize;
        let mut k = N.max(key.len());
        while k > 0 {
            mt.state[i] = (mt.state[i]
                ^ (mt.state[i - 1] ^ (mt.state[i - 1] >> 30)).wrapping_mul(1_664_525))
            .wrapping_add(key[j])
            .wrapping_add(j as u32);
            i += 1;
            j += 1;
            if i >= N {
                mt.state[0] = mt.state[N - 1];
                i = 1;
            }
            if j >= key.len() {
                j = 0;
            }
            k -= 1;
        }
        k = N - 1;
        while k > 0 {
            mt.state[i] = (mt.state[i]
                ^ (mt.state[i - 1] ^ (mt.state[i - 1] >> 30)).wrapping_mul(1_566_083_941))
            .wrapping_sub(i as u32);
            i += 1;
            if i >= N {
                mt.state[0] = mt.state[N - 1];
                i = 1;
            }
            k -= 1;
        }
        mt.state[0] = 0x8000_0000;
        mt
    }

    fn generate_block(&mut self) {
        for i in 0..N {
            let y = (self.state[i] & UPPER_MASK) | (self.state[(i + 1) % N] & LOWER_MASK);
            let mut next = self.state[(i + M) % N] ^ (y >> 1);
            if y & 1 != 0 {
                next ^= MATRIX_A;
            }
            self.state[i] = next;
        }
        self.index = 0;
    }

    /// The next tempered 32-bit output (reference `genrand_int32`).
    pub fn next_u32_mt(&mut self) -> u32 {
        if self.index >= N {
            self.generate_block();
        }
        let mut y = self.state[self.index];
        self.index += 1;
        y ^= y >> 11;
        y ^= (y << 7) & 0x9D2C_5680;
        y ^= (y << 15) & 0xEFC6_0000;
        y ^= y >> 18;
        y
    }

    /// A 53-bit-resolution double in `[0, 1)` (reference `genrand_res53`).
    ///
    /// Combines two 32-bit outputs exactly as the reference code does:
    /// `(a·2²⁶ + b) / 2⁵³` with `a` the top 27 bits of the first output and
    /// `b` the top 26 bits of the second.
    pub fn next_res53(&mut self) -> f64 {
        let a = (self.next_u32_mt() >> 5) as f64; // 27 bits
        let b = (self.next_u32_mt() >> 6) as f64; // 26 bits
        (a * 67_108_864.0 + b) * (1.0 / 9_007_199_254_740_992.0)
    }
}

impl RandomSource for MersenneTwister {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.next_u32_mt()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        // Two tempered 32-bit words; high word drawn first so that the
        // sequence of u64s is a deterministic function of the reference
        // 32-bit stream.
        let hi = self.next_u32_mt() as u64;
        let lo = self.next_u32_mt() as u64;
        (hi << 32) | lo
    }

    fn next_f64(&mut self) -> f64 {
        self.next_res53()
    }
}

impl SeedableSource for MersenneTwister {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the 64-bit seed into a 4-word key through SplitMix64 so that
        // nearby u64 seeds produce unrelated MT states.
        let mut sm = SplitMix64::new(seed);
        let k0 = sm.next_u64();
        let k1 = sm.next_u64();
        let key = [k0 as u32, (k0 >> 32) as u32, k1 as u32, (k1 >> 32) as u32];
        Self::from_seed_array(&key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference output of `genrand_int32` after `init_genrand(5489)`.
    /// These values are the de-facto standard test vector for MT19937 and are
    /// reproduced by every faithful implementation (C reference, C++11
    /// `std::mt19937`, NumPy's legacy RandomState core, …).
    #[test]
    fn reference_vector_default_seed() {
        let mut mt = MersenneTwister::default_seed();
        let expected: [u32; 10] = [
            3_499_211_612,
            581_869_302,
            3_890_346_734,
            3_586_334_585,
            545_404_204,
            4_161_255_391,
            3_922_919_429,
            949_333_985,
            2_715_962_298,
            1_323_567_403,
        ];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(mt.next_u32_mt(), e, "mismatch at output {i}");
        }
    }

    /// C++11 defines `std::mt19937`'s 10000th output (1-indexed) from the
    /// default seed as 4123659995; checking it exercises many full block
    /// regenerations.
    #[test]
    fn ten_thousandth_output_matches_cpp11() {
        let mut mt = MersenneTwister::default_seed();
        let mut last = 0u32;
        for _ in 0..10_000 {
            last = mt.next_u32_mt();
        }
        assert_eq!(last, 4_123_659_995);
    }

    #[test]
    fn res53_is_in_unit_interval_and_has_53_bit_grid() {
        let mut mt = MersenneTwister::default_seed();
        for _ in 0..10_000 {
            let x = mt.next_res53();
            assert!((0.0..1.0).contains(&x));
            let scaled = x * 9_007_199_254_740_992.0;
            assert_eq!(scaled, scaled.trunc(), "value not on the 2^-53 grid");
        }
    }

    #[test]
    fn scalar_seeds_differ() {
        let mut a = MersenneTwister::new(1);
        let mut b = MersenneTwister::new(2);
        let matches = (0..1000)
            .filter(|_| a.next_u32_mt() == b.next_u32_mt())
            .count();
        assert!(matches < 3);
    }

    #[test]
    fn array_seeding_differs_from_scalar_seeding() {
        let mut a = MersenneTwister::new(0x123);
        let mut b = MersenneTwister::from_seed_array(&[0x123]);
        let matches = (0..100)
            .filter(|_| a.next_u32_mt() == b.next_u32_mt())
            .count();
        assert!(matches < 3);
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = MersenneTwister::seed_from_u64(99);
        let mut b = MersenneTwister::seed_from_u64(99);
        for _ in 0..640 {
            assert_eq!(a.next_u32_mt(), b.next_u32_mt());
        }
    }

    #[test]
    fn mean_of_outputs_is_near_half() {
        let mut mt = MersenneTwister::default_seed();
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| mt.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn empty_like_small_key_array_is_accepted() {
        let mut mt = MersenneTwister::from_seed_array(&[42]);
        // Just exercise it; a single-word key must still mix the whole state.
        let first = mt.next_u32_mt();
        let mut mt2 = MersenneTwister::from_seed_array(&[43]);
        assert_ne!(first, mt2.next_u32_mt());
    }
}
