//! Optional bridge to the `rand` crate (feature `rand-compat`).
//!
//! Downstream users who already have `rand`-based code can wrap any
//! [`RandomSource`] in [`RandAdapter`] to obtain a `rand::RngCore`, or wrap an
//! existing `rand` generator in [`SourceAdapter`] to drive this workspace's
//! selection algorithms with it.

use crate::traits::RandomSource;
use rand::RngCore;

/// Expose a [`RandomSource`] as a `rand::RngCore`.
#[derive(Debug, Clone)]
pub struct RandAdapter<R>(pub R);

impl<R: RandomSource> RngCore for RandAdapter<R> {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.0.fill_bytes(dest);
        Ok(())
    }
}

/// Expose a `rand::RngCore` as a [`RandomSource`].
#[derive(Debug, Clone)]
pub struct SourceAdapter<R>(pub R);

impl<R: RngCore> RandomSource for SourceAdapter<R> {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SeedableSource, SplitMix64};
    use rand::Rng;

    #[test]
    fn rand_adapter_produces_same_u64_stream() {
        let mut direct = SplitMix64::seed_from_u64(1);
        let mut adapted = RandAdapter(SplitMix64::seed_from_u64(1));
        for _ in 0..100 {
            assert_eq!(direct.next_u64(), adapted.next_u64());
        }
    }

    #[test]
    fn rand_adapter_supports_gen_range() {
        let mut adapted = RandAdapter(SplitMix64::seed_from_u64(2));
        for _ in 0..1000 {
            let x: u32 = adapted.gen_range(0..10);
            assert!(x < 10);
        }
    }

    #[test]
    fn source_adapter_round_trip() {
        let inner = RandAdapter(SplitMix64::seed_from_u64(3));
        let mut wrapped = SourceAdapter(inner);
        let x = wrapped.next_f64();
        assert!((0.0..1.0).contains(&x));
    }
}
