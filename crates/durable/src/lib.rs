//! Durability for the selection engine: a write-ahead log of coalesced
//! publish batches, checkpointed weight snapshots, and crash recovery.
//!
//! Every mutation the engine publishes flows through one canonical unit —
//! the drained coalesced batch `(version, scale, overrides)` (see
//! `lrb-engine`'s publish path). This crate logs exactly that unit:
//!
//! * [`wal`] — CRC32-framed, length-prefixed [`WalRecord`]s appended under
//!   an fsync policy ([`FsyncPolicy::Always`] / [`FsyncPolicy::EveryN`] /
//!   [`FsyncPolicy::Off`]), plus a replay routine that stops at the first
//!   torn or corrupt record and reports where to truncate.
//! * [`checkpoint`] — a versioned serialization of a snapshot's full
//!   weight vector, written atomically (tmp + fsync + rename) so a crash
//!   mid-checkpoint never damages the previous one.
//! * [`store`] — [`DurableStore`] ties both together over a directory:
//!   recovery loads the newest valid checkpoint, replays the WAL suffix
//!   in strict version order, and truncates any torn tail. Because the
//!   replay applies the *same* scale-fold and override-assignment the
//!   engine's publish applied, the recovered weight vector is
//!   **bit-identical** to the pre-crash one at the recovered version.
//! * [`fault`] — a deterministic fault-injection layer ([`FaultyFile`])
//!   that wraps any [`StorageFile`] and injects short writes, torn
//!   tails, fsync errors and bit flips at seeded offsets, so recovery
//!   can be property-tested against every corruption the real world
//!   produces.
//!
//! # Record grammar
//!
//! ```text
//! wal        := record*
//! record     := len:u32le crc:u32le payload            (crc = CRC32/IEEE of payload)
//! payload    := kind:u8 version:u64le scale:f64bits count:u32le entry*
//! entry      := index:u64le weight:f64bits
//! checkpoint := magic:u32le crc:u32le version:u64le count:u64le weight:f64bits*
//! ```
//!
//! # Recovery invariants
//!
//! 1. Recovery never panics on arbitrary bytes; it yields the state of
//!    some *valid prefix* of the published versions.
//! 2. A torn tail (short header or payload) is truncated; a CRC-failed
//!    record stops replay there (everything after it is unreachable).
//! 3. Replayed versions are strictly contiguous from the checkpoint; a
//!    version gap stops replay.
//! 4. The recovered weight vector is bit-identical to the published one
//!    at the recovered version (same fold order, same `f64` bit patterns).
//!
//! [`Durability::Off`] carries no state and costs the publish path one
//! branch on a `None` — the zero-overhead default.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod crc;
pub mod fault;
pub mod storage;
pub mod store;
pub mod wal;

use std::path::PathBuf;

pub use crc::crc32;
pub use fault::{FaultKind, FaultPlan, FaultyFile};
pub use storage::{MemFile, StorageFile};
pub use store::{Append, DurableStore, Recovery};
pub use wal::{replay_with, ReplayStep, ReplaySummary, Wal, WalRecord};

/// When appended WAL records reach the disk platter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every append: no published version is ever lost,
    /// at the price of one disk flush per publish.
    Always,
    /// `fdatasync` once every N appends: bounds the loss window to the
    /// last N publishes while amortising the flush.
    EveryN(u32),
    /// Never sync explicitly; the OS page cache decides. Fastest, loses
    /// up to the whole cache on power failure (not on process crash —
    /// a SIGKILL'd process's written pages still reach disk).
    Off,
}

/// Where and how a [`DurableStore`] persists (see [`Durability::Wal`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalOptions {
    /// Directory holding the WAL and its checkpoints (created on open).
    pub dir: PathBuf,
    /// When appends are flushed to stable storage.
    pub fsync: FsyncPolicy,
    /// Records appended between checkpoints (`0` = only the genesis
    /// checkpoint). Each checkpoint rewrites the full weight vector and
    /// truncates the WAL, so the cadence trades recovery time (long WAL
    /// suffix) against publish-path checkpoint stalls.
    pub checkpoint_every: u64,
}

impl WalOptions {
    /// Options rooted at `dir` with the default policy: fsync every 32
    /// appends, checkpoint every 1024 records.
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            fsync: FsyncPolicy::EveryN(32),
            checkpoint_every: 1024,
        }
    }
}

/// An engine's durability mode.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Durability {
    /// No persistence. The publish path carries a single branch on an
    /// absent store — zero measurable overhead (gated by `durable_quick`).
    #[default]
    Off,
    /// Write-ahead log plus periodic checkpoints under
    /// [`WalOptions::dir`]; reopening an engine over the same directory
    /// recovers the last persisted version.
    Wal(WalOptions),
}

impl Durability {
    /// The durability mode a sharded service hands shard `shard`: `Off`
    /// stays `Off`, `Wal` descends into the per-shard subdirectory
    /// `shard-<n>` so each shard owns an independent WAL.
    pub fn for_shard(&self, shard: usize) -> Durability {
        match self {
            Durability::Off => Durability::Off,
            Durability::Wal(options) => Durability::Wal(WalOptions {
                dir: options.dir.join(format!("shard-{shard}")),
                ..options.clone()
            }),
        }
    }
}
