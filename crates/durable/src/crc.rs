//! CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the frame
//! checksum for WAL records and checkpoints. Table-driven, one byte per
//! step; the WAL frames are tens of bytes, so throughput is irrelevant
//! next to correctness and zero dependencies.

/// The 256-entry lookup table for the reflected IEEE polynomial.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC32/IEEE of `bytes` (init `!0`, final xor `!0` — the common zlib
/// variant).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_check() {
        // The canonical CRC32 check value: crc32(b"123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let a = b"the quick brown fox".to_vec();
        let mut b = a.clone();
        b[7] ^= 0x10;
        assert_ne!(crc32(&a), crc32(&b));
    }
}
