//! Checkpoints: a versioned, CRC-framed serialization of a snapshot's
//! full weight vector.
//!
//! A checkpoint subsumes every WAL record at or below its version, so
//! writing one lets the store truncate the log. The blob is written to a
//! temporary file, synced, then renamed into place — the rename is the
//! commit point, so a crash mid-checkpoint leaves the previous
//! checkpoint untouched and the WAL still authoritative.

use crate::crc::crc32;

/// `"LRBC"` little-endian — the checkpoint file magic.
pub const CHECKPOINT_MAGIC: u32 = 0x4342_524C;

/// Blob prefix: magic (u32) + crc (u32) + version (u64) + count (u64).
const PREFIX_BYTES: usize = 4 + 4 + 8 + 8;
/// Ceiling on the category count a decoder will allocate for.
const MAX_CATEGORIES: u64 = 1 << 32;

/// Serialize `(version, weights)` as one checkpoint blob. The CRC covers
/// everything after the CRC field (version, count, weight bits).
pub fn encode_checkpoint(version: u64, weights: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(PREFIX_BYTES + 8 * weights.len());
    out.extend_from_slice(&CHECKPOINT_MAGIC.to_le_bytes());
    out.extend_from_slice(&[0u8; 4]); // CRC back-patched below.
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(weights.len() as u64).to_le_bytes());
    for &weight in weights {
        out.extend_from_slice(&weight.to_bits().to_le_bytes());
    }
    let crc = crc32(&out[8..]);
    out[4..8].copy_from_slice(&crc.to_le_bytes());
    out
}

/// Decode a checkpoint blob; `None` when the magic, CRC or framing is
/// wrong (a corrupt checkpoint is simply not a checkpoint — recovery
/// falls back to an older one).
pub fn decode_checkpoint(bytes: &[u8]) -> Option<(u64, Vec<f64>)> {
    if bytes.len() < PREFIX_BYTES {
        return None;
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().ok()?);
    if magic != CHECKPOINT_MAGIC {
        return None;
    }
    let crc_expected = u32::from_le_bytes(bytes[4..8].try_into().ok()?);
    if crc32(&bytes[8..]) != crc_expected {
        return None;
    }
    let version = u64::from_le_bytes(bytes[8..16].try_into().ok()?);
    let count = u64::from_le_bytes(bytes[16..24].try_into().ok()?);
    if count > MAX_CATEGORIES || bytes.len() != PREFIX_BYTES + 8 * count as usize {
        return None;
    }
    let mut weights = Vec::with_capacity(count as usize);
    let mut at = PREFIX_BYTES;
    for _ in 0..count {
        let bits = u64::from_le_bytes(bytes[at..at + 8].try_into().ok()?);
        weights.push(f64::from_bits(bits));
        at += 8;
    }
    Some((version, weights))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_bits() {
        let weights = vec![0.1 + 0.2, 1.0, f64::MIN_POSITIVE, 1e300];
        let blob = encode_checkpoint(42, &weights);
        let (version, decoded) = decode_checkpoint(&blob).unwrap();
        assert_eq!(version, 42);
        assert_eq!(decoded.len(), weights.len());
        for (a, b) in decoded.iter().zip(&weights) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn empty_weights_roundtrip() {
        let blob = encode_checkpoint(7, &[]);
        assert_eq!(decode_checkpoint(&blob), Some((7, Vec::new())));
    }

    #[test]
    fn any_flipped_bit_is_rejected() {
        let blob = encode_checkpoint(3, &[1.0, 2.0, 3.0]);
        for byte in 0..blob.len() {
            let mut damaged = blob.clone();
            damaged[byte] ^= 0x01;
            assert!(
                decode_checkpoint(&damaged).is_none(),
                "flip at byte {byte} went undetected"
            );
        }
    }

    #[test]
    fn truncation_is_rejected() {
        let blob = encode_checkpoint(3, &[1.0, 2.0]);
        for keep in 0..blob.len() {
            assert!(decode_checkpoint(&blob[..keep]).is_none());
        }
    }
}
