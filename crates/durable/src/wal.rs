//! The write-ahead log: framed records of coalesced publish batches.
//!
//! One [`WalRecord`] is exactly what the engine's publish drains from its
//! coalescing queue — `(version, scale, overrides)` — serialized as a
//! length-prefixed, CRC32-framed record (grammar in the crate docs).
//! [`Wal`] appends records under an [`FsyncPolicy`]; [`replay_with`]
//! reads them back, stopping at the first torn or corrupt frame and
//! reporting the byte offset a recovering store should truncate to.

use std::io::{self, Read, SeekFrom};
use std::time::Instant;

use crate::crc::crc32;
use crate::storage::StorageFile;
use crate::FsyncPolicy;

/// Frame header: payload length (u32) + payload CRC32 (u32).
const HEADER_BYTES: usize = 8;
/// Payload prefix: kind (u8) + version (u64) + scale bits (u64) + count (u32).
const PAYLOAD_PREFIX_BYTES: usize = 1 + 8 + 8 + 4;
/// Bytes per override entry: index (u64) + weight bits (u64).
const ENTRY_BYTES: usize = 16;
/// The only record kind so far: one coalesced publish batch.
const KIND_BATCH: u8 = 1;
/// Ceiling on a single record's payload — anything larger is treated as
/// frame corruption rather than allocated on faith (a batch over ~4M
/// overrides does not exist; `MAX_BATCH` upstream is 2^16).
const MAX_PAYLOAD_BYTES: u32 = 1 << 26;

/// One logged publish: the drained coalesced batch that produced
/// snapshot `version`.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Snapshot version the batch produced.
    pub version: u64,
    /// Multiplicative scale folded into every weight before the
    /// overrides were applied (`1.0` = no fold, bit-preserved).
    pub scale: f64,
    /// Per-category overrides, in drain order (sorted by index).
    pub overrides: Vec<(usize, f64)>,
}

impl WalRecord {
    /// Encoded size of this record on the wire, header included.
    pub fn frame_bytes(&self) -> usize {
        HEADER_BYTES + PAYLOAD_PREFIX_BYTES + ENTRY_BYTES * self.overrides.len()
    }

    /// Append the full frame (header + payload) to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let payload_len = PAYLOAD_PREFIX_BYTES + ENTRY_BYTES * self.overrides.len();
        let payload_start = out.len() + HEADER_BYTES;
        out.reserve(HEADER_BYTES + payload_len);
        out.extend_from_slice(&(payload_len as u32).to_le_bytes());
        out.extend_from_slice(&[0u8; 4]); // CRC back-patched below.
        out.push(KIND_BATCH);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&self.scale.to_bits().to_le_bytes());
        out.extend_from_slice(&(self.overrides.len() as u32).to_le_bytes());
        for &(index, weight) in &self.overrides {
            out.extend_from_slice(&(index as u64).to_le_bytes());
            out.extend_from_slice(&weight.to_bits().to_le_bytes());
        }
        let crc = crc32(&out[payload_start..]);
        out[payload_start - 4..payload_start].copy_from_slice(&crc.to_le_bytes());
    }

    /// Decode one payload (header already verified). `None` on any
    /// structural mismatch.
    fn decode_payload(payload: &[u8]) -> Option<Self> {
        if payload.len() < PAYLOAD_PREFIX_BYTES || payload[0] != KIND_BATCH {
            return None;
        }
        let version = u64::from_le_bytes(payload[1..9].try_into().ok()?);
        let scale = f64::from_bits(u64::from_le_bytes(payload[9..17].try_into().ok()?));
        let count = u32::from_le_bytes(payload[17..21].try_into().ok()?) as usize;
        if payload.len() != PAYLOAD_PREFIX_BYTES + ENTRY_BYTES * count {
            return None;
        }
        let mut overrides = Vec::with_capacity(count);
        let mut at = PAYLOAD_PREFIX_BYTES;
        for _ in 0..count {
            let index = u64::from_le_bytes(payload[at..at + 8].try_into().ok()?);
            let weight = f64::from_bits(u64::from_le_bytes(
                payload[at + 8..at + 16].try_into().ok()?,
            ));
            overrides.push((index as usize, weight));
            at += ENTRY_BYTES;
        }
        Some(Self {
            version,
            scale,
            overrides,
        })
    }
}

/// Outcome of one [`Wal::append`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalAppend {
    /// Frame bytes written.
    pub bytes: u64,
    /// Whether this append flushed to stable storage, and how long the
    /// flush took (`None` when the policy skipped it).
    pub sync_ns: Option<u64>,
}

/// An append-only record log over any [`StorageFile`].
///
/// The writer tracks the byte length of the valid record prefix itself;
/// a failed append (including a failed policy flush) rolls the file back
/// to that length, so the log never retains a frame for a publish that
/// reported failure — the invariant recovery's "valid prefix" guarantee
/// rests on.
#[derive(Debug)]
pub struct Wal<F: StorageFile> {
    file: F,
    len: u64,
    fsync: FsyncPolicy,
    unsynced: u32,
    frame: Vec<u8>,
}

impl<F: StorageFile> Wal<F> {
    /// Take over `file`, whose first `len` bytes are known-valid records
    /// (0 for a fresh log; recovery's `valid_bytes` after a replay).
    pub fn new(file: F, len: u64, fsync: FsyncPolicy) -> Self {
        Self {
            file,
            len,
            fsync,
            unsynced: 0,
            frame: Vec::new(),
        }
    }

    /// Bytes of valid records in the log.
    pub fn bytes(&self) -> u64 {
        self.len
    }

    /// The wrapped file (tests inspect injected damage).
    pub fn file_mut(&mut self) -> &mut F {
        &mut self.file
    }

    /// Append one record and apply the fsync policy. On **any** failure
    /// the log is rolled back to its pre-append length (best effort) and
    /// the error returned — the caller must treat the publish as failed.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<WalAppend> {
        self.frame.clear();
        record.encode_into(&mut self.frame);
        let result = self.append_frame(record);
        if result.is_err() {
            // Roll back: a half-written or unsynced frame must not
            // survive as a "valid" record for a publish that failed.
            let _ = self.file.set_len(self.len);
            self.unsynced = 0;
        }
        result
    }

    fn append_frame(&mut self, _record: &WalRecord) -> io::Result<WalAppend> {
        self.file.seek(SeekFrom::Start(self.len))?;
        self.file.write_all(&self.frame)?;
        self.unsynced = self.unsynced.saturating_add(1);
        let must_sync = match self.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.unsynced >= n.max(1),
            FsyncPolicy::Off => false,
        };
        let sync_ns = if must_sync {
            let started = Instant::now();
            self.file.sync()?;
            self.unsynced = 0;
            Some(started.elapsed().as_nanos().min(u64::MAX as u128) as u64)
        } else {
            None
        };
        self.len += self.frame.len() as u64;
        Ok(WalAppend {
            bytes: self.frame.len() as u64,
            sync_ns,
        })
    }

    /// Force a flush regardless of policy.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync()?;
        self.unsynced = 0;
        Ok(())
    }

    /// Truncate the log to empty (after a checkpoint subsumed it).
    pub fn reset(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.len = 0;
        self.unsynced = 0;
        Ok(())
    }
}

/// What a replay visitor tells the reader to do with a decoded record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayStep {
    /// Apply the record; it counts toward the valid prefix.
    Apply,
    /// Structurally valid but already covered (e.g. at or below the
    /// checkpoint version); keep its bytes, do not apply.
    Skip,
    /// Stop replay *before* this record (e.g. a version gap); its bytes
    /// are part of the truncated tail.
    Stop,
}

/// Outcome of a [`replay_with`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplaySummary {
    /// Records the visitor applied.
    pub applied: u64,
    /// Records the visitor skipped (valid but subsumed).
    pub skipped: u64,
    /// Byte length of the valid record prefix — what the file should be
    /// truncated to.
    pub valid_bytes: u64,
    /// Bytes past the valid prefix (torn tail, corrupt frame, or
    /// everything after a visitor `Stop`).
    pub truncated_bytes: u64,
    /// `true` when replay consumed the file exactly to EOF with no
    /// damage and no early stop.
    pub clean: bool,
}

/// Replay a WAL from byte 0, handing each structurally valid,
/// CRC-verified record to `visit` in file order.
///
/// Stops — and reports the tail as truncated — at the first torn frame
/// (short header or payload), CRC mismatch, malformed payload, or
/// visitor [`ReplayStep::Stop`]. Read errors also stop the scan rather
/// than propagate: recovery's contract is "never panic, never refuse —
/// yield the longest provably valid prefix".
pub fn replay_with<F: StorageFile>(
    file: &mut F,
    mut visit: impl FnMut(&WalRecord) -> ReplayStep,
) -> io::Result<ReplaySummary> {
    let total = file.byte_len()?;
    file.seek(SeekFrom::Start(0))?;
    let mut summary = ReplaySummary::default();
    let mut offset = 0u64;
    let mut header = [0u8; HEADER_BYTES];
    let mut payload = Vec::new();
    loop {
        if offset == total {
            summary.clean = true;
            break;
        }
        if read_exact_or_eof(file, &mut header) != Ok(true) {
            break; // torn header (or read error): truncate from here
        }
        let payload_len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        let crc_expected = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if payload_len > MAX_PAYLOAD_BYTES {
            break; // corrupt length — don't allocate on faith
        }
        payload.resize(payload_len as usize, 0);
        if read_exact_or_eof(file, &mut payload) != Ok(true) {
            break; // torn payload
        }
        if crc32(&payload) != crc_expected {
            break; // CRC-failed record stops replay
        }
        let Some(record) = WalRecord::decode_payload(&payload) else {
            break; // structurally malformed despite a passing CRC
        };
        match visit(&record) {
            ReplayStep::Apply => summary.applied += 1,
            ReplayStep::Skip => summary.skipped += 1,
            ReplayStep::Stop => break,
        }
        offset += (HEADER_BYTES + payload_len as usize) as u64;
        summary.valid_bytes = offset;
    }
    summary.truncated_bytes = total.saturating_sub(summary.valid_bytes);
    Ok(summary)
}

/// `Ok(true)` when `buf` was filled, `Ok(false)` on clean-or-short EOF,
/// `Err` only for seek-level failures (read errors map to `Ok(false)` —
/// see [`replay_with`]).
fn read_exact_or_eof<F: Read>(file: &mut F, buf: &mut [u8]) -> Result<bool, ()> {
    let mut filled = 0;
    while filled < buf.len() {
        match file.read(&mut buf[filled..]) {
            Ok(0) => return Ok(false),
            Ok(n) => filled += n,
            Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Ok(false),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemFile;

    fn record(version: u64) -> WalRecord {
        WalRecord {
            version,
            scale: 0.5 + version as f64,
            overrides: vec![(version as usize, 2.0 * version as f64), (7, 0.25)],
        }
    }

    fn collect(file: &mut MemFile) -> (Vec<WalRecord>, ReplaySummary) {
        let mut seen = Vec::new();
        let summary = replay_with(file, |r| {
            seen.push(r.clone());
            ReplayStep::Apply
        })
        .unwrap();
        (seen, summary)
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut wal = Wal::new(MemFile::new(), 0, FsyncPolicy::Off);
        for v in 1..=5 {
            wal.append(&record(v)).unwrap();
        }
        let (seen, summary) = collect(wal.file_mut());
        assert_eq!(seen, (1..=5).map(record).collect::<Vec<_>>());
        assert!(summary.clean);
        assert_eq!(summary.applied, 5);
        assert_eq!(summary.truncated_bytes, 0);
    }

    #[test]
    fn scale_bits_survive_roundtrip() {
        let mut wal = Wal::new(MemFile::new(), 0, FsyncPolicy::Off);
        let original = WalRecord {
            version: 1,
            scale: 0.1 + 0.2, // a value with an inexact binary tail
            overrides: vec![(3, f64::MIN_POSITIVE)],
        };
        wal.append(&original).unwrap();
        let (seen, _) = collect(wal.file_mut());
        assert_eq!(seen[0].scale.to_bits(), original.scale.to_bits());
        assert_eq!(
            seen[0].overrides[0].1.to_bits(),
            original.overrides[0].1.to_bits()
        );
    }

    #[test]
    fn torn_tail_is_truncated() {
        let mut wal = Wal::new(MemFile::new(), 0, FsyncPolicy::Off);
        wal.append(&record(1)).unwrap();
        wal.append(&record(2)).unwrap();
        let full = wal.bytes();
        let tear_at = full - 5;
        wal.file_mut().set_len(tear_at).unwrap();
        let (seen, summary) = collect(wal.file_mut());
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].version, 1);
        assert!(!summary.clean);
        assert_eq!(summary.valid_bytes + summary.truncated_bytes, tear_at);
    }

    #[test]
    fn crc_failure_stops_replay() {
        let mut wal = Wal::new(MemFile::new(), 0, FsyncPolicy::Off);
        wal.append(&record(1)).unwrap();
        let second_starts = wal.bytes() as usize;
        wal.append(&record(2)).unwrap();
        wal.append(&record(3)).unwrap();
        // Flip one payload bit inside record 2.
        wal.file_mut().contents_mut()[second_starts + HEADER_BYTES + 3] ^= 0x40;
        let (seen, summary) = collect(wal.file_mut());
        assert_eq!(seen.len(), 1);
        assert_eq!(summary.valid_bytes, second_starts as u64);
        assert!(summary.truncated_bytes > 0);
    }

    #[test]
    fn visitor_stop_truncates_the_rest() {
        let mut wal = Wal::new(MemFile::new(), 0, FsyncPolicy::Off);
        for v in 1..=4 {
            wal.append(&record(v)).unwrap();
        }
        let summary = replay_with(wal.file_mut(), |r| {
            if r.version >= 3 {
                ReplayStep::Stop
            } else {
                ReplayStep::Apply
            }
        })
        .unwrap();
        assert_eq!(summary.applied, 2);
        assert!(!summary.clean);
        assert!(summary.truncated_bytes > 0);
    }

    #[test]
    fn failed_append_rolls_back() {
        use crate::fault::{FaultKind, FaultPlan, FaultyFile};
        let faulty = FaultyFile::new(
            MemFile::new(),
            FaultPlan::single(1, FaultKind::TornWrite),
            11,
        );
        let mut wal = Wal::new(faulty, 0, FsyncPolicy::Off);
        wal.append(&record(1)).unwrap();
        let before = wal.bytes();
        assert!(wal.append(&record(2)).is_err());
        assert_eq!(wal.bytes(), before);
        assert_eq!(wal.file_mut().inner().contents().len() as u64, before);
        // The log keeps working after a rolled-back failure.
        wal.append(&record(2)).unwrap();
        let mut clean = wal.file_mut().inner().clone();
        let (seen, summary) = collect(&mut clean);
        assert_eq!(seen.len(), 2);
        assert!(summary.clean);
    }

    #[test]
    fn fsync_policy_every_n_counts_appends() {
        let mut wal = Wal::new(MemFile::new(), 0, FsyncPolicy::EveryN(3));
        let synced: Vec<bool> = (1..=6)
            .map(|v| wal.append(&record(v)).unwrap().sync_ns.is_some())
            .collect();
        assert_eq!(synced, vec![false, false, true, false, false, true]);
    }

    #[test]
    fn empty_log_replays_clean() {
        let mut file = MemFile::new();
        let (seen, summary) = collect(&mut file);
        assert!(seen.is_empty());
        assert!(summary.clean);
    }
}
