//! [`DurableStore`]: the directory-backed WAL + checkpoint pair an
//! engine persists through, and the recovery routine that rebuilds the
//! last persisted `(version, weights)` from it.
//!
//! Directory layout:
//!
//! ```text
//! <dir>/wal.log               append-only record log (see crate docs)
//! <dir>/checkpoint-<v>.ckpt   full weight vector at version v
//! <dir>/checkpoint.tmp        in-flight checkpoint (ignored by recovery)
//! ```
//!
//! Opening a fresh directory writes a genesis checkpoint at version 0 so
//! recovery always has a floor. Opening an existing one recovers: newest
//! valid checkpoint, WAL suffix replayed in strict version order with the
//! same scale-fold/override semantics the engine's publish used, torn
//! tail truncated. The two newest checkpoints are retained; older ones
//! are pruned after each new checkpoint commits.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use crate::checkpoint::{decode_checkpoint, encode_checkpoint};
use crate::wal::{replay_with, ReplayStep, Wal, WalRecord};
use crate::WalOptions;

/// Checkpoint generations kept on disk (the newest this many).
const CHECKPOINTS_KEPT: usize = 2;

/// What [`DurableStore::open`] recovered from an existing directory.
#[derive(Debug, Clone, PartialEq)]
pub struct Recovery {
    /// Version of the recovered state (checkpoint version + applied
    /// records).
    pub version: u64,
    /// The recovered weight vector, bit-identical to the one published
    /// at `version`.
    pub weights: Vec<f64>,
    /// Version of the checkpoint replay started from.
    pub checkpoint_version: u64,
    /// WAL records replayed on top of the checkpoint.
    pub replayed: u64,
    /// Bytes discarded from the WAL tail (torn frame, CRC failure or
    /// version gap).
    pub truncated_bytes: u64,
}

/// Outcome of one [`DurableStore::append`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Append {
    /// Frame bytes appended to the WAL.
    pub bytes: u64,
    /// Flush duration when the fsync policy flushed this append.
    pub sync_ns: Option<u64>,
}

/// A directory-backed durability store: one WAL, checkpoint rotation,
/// recovery-on-open.
#[derive(Debug)]
pub struct DurableStore {
    dir: PathBuf,
    wal: Wal<File>,
    checkpoint_every: u64,
    appended_since_checkpoint: u64,
    last_version: u64,
    checkpoint_version: u64,
}

impl DurableStore {
    /// Open (creating if absent) the store under `options.dir`.
    ///
    /// Returns the store plus `Some(Recovery)` when the directory held a
    /// previous incarnation's state, `None` when it was fresh — in which
    /// case a genesis checkpoint of `initial` at version 0 is written so
    /// a crash before the first publish still recovers.
    pub fn open(options: &WalOptions, initial: &[f64]) -> io::Result<(Self, Option<Recovery>)> {
        fs::create_dir_all(&options.dir)?;
        let checkpoints = list_checkpoints(&options.dir)?;
        let recovered = if checkpoints.is_empty() {
            write_checkpoint_file(&options.dir, 0, initial)?;
            None
        } else {
            Some(recover(&options.dir, &checkpoints)?)
        };
        let wal_path = options.dir.join("wal.log");
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&wal_path)?;
        let (valid_bytes, checkpoint_version, last_version) = match &recovered {
            Some(recovery) => (
                // recover() already truncated the file to the valid prefix.
                file.metadata()?.len(),
                recovery.checkpoint_version,
                recovery.version,
            ),
            None => (0, 0, 0),
        };
        let wal = Wal::new(file, valid_bytes, options.fsync);
        Ok((
            Self {
                dir: options.dir.clone(),
                wal,
                checkpoint_every: options.checkpoint_every,
                appended_since_checkpoint: 0,
                last_version,
                checkpoint_version,
            },
            recovered,
        ))
    }

    /// Log one drained batch. Rolls the WAL back and errors if the frame
    /// (or its policy flush) cannot be persisted — the caller must fail
    /// the publish so memory and log stay in step.
    pub fn append(
        &mut self,
        version: u64,
        scale: f64,
        overrides: &[(usize, f64)],
    ) -> io::Result<Append> {
        let record = WalRecord {
            version,
            scale,
            overrides: overrides.to_vec(),
        };
        let outcome = self.wal.append(&record)?;
        self.last_version = version;
        self.appended_since_checkpoint += 1;
        Ok(Append {
            bytes: outcome.bytes,
            sync_ns: outcome.sync_ns,
        })
    }

    /// Whether the checkpoint cadence is due (`checkpoint_every` records
    /// appended since the last one).
    pub fn should_checkpoint(&self) -> bool {
        self.checkpoint_every > 0 && self.appended_since_checkpoint >= self.checkpoint_every
    }

    /// Write a checkpoint of `weights` at `version`, truncate the WAL it
    /// subsumes, prune old generations. Returns the blob size in bytes.
    ///
    /// Failure here is *non-fatal* for the caller: the WAL already holds
    /// every record up to `version`, so durability is unaffected — only
    /// recovery time grows until a later checkpoint succeeds.
    pub fn checkpoint(&mut self, version: u64, weights: &[f64]) -> io::Result<u64> {
        let bytes = write_checkpoint_file(&self.dir, version, weights)?;
        // The rename above is the commit point; from here the WAL records
        // at or below `version` are subsumed and the log can restart.
        self.wal.reset()?;
        self.checkpoint_version = version;
        self.appended_since_checkpoint = 0;
        prune_checkpoints(&self.dir);
        Ok(bytes)
    }

    /// Bytes of valid records currently in the WAL.
    pub fn wal_bytes(&self) -> u64 {
        self.wal.bytes()
    }

    /// The last version appended (or recovered).
    pub fn last_version(&self) -> u64 {
        self.last_version
    }

    /// The version of the newest committed checkpoint.
    pub fn checkpoint_version(&self) -> u64 {
        self.checkpoint_version
    }

    /// Force-flush the WAL regardless of policy (shutdown hook).
    pub fn sync(&mut self) -> io::Result<()> {
        self.wal.sync()
    }
}

/// Apply one WAL record to a weight vector exactly the way the engine's
/// publish folds its drained batch: multiply everything by `scale` (only
/// when it differs from `1.0` — the same guard publish uses, preserving
/// bit-identity), then assign the overrides.
pub fn apply_record(weights: &mut [f64], record: &WalRecord) {
    if record.scale != 1.0 {
        for w in weights.iter_mut() {
            *w *= record.scale;
        }
    }
    for &(index, weight) in &record.overrides {
        weights[index] = weight;
    }
}

fn recover(dir: &Path, checkpoints: &[(u64, PathBuf)]) -> io::Result<Recovery> {
    // Newest checkpoint that actually decodes wins; a corrupt newest one
    // falls back to its predecessor (whose WAL suffix may be gone — the
    // recovered prefix is then just shorter, never wrong).
    let mut base = None;
    for (_, path) in checkpoints.iter().rev() {
        let mut blob = Vec::new();
        if File::open(path)
            .and_then(|mut f| f.read_to_end(&mut blob))
            .is_err()
        {
            continue;
        }
        if let Some((version, weights)) = decode_checkpoint(&blob) {
            base = Some((version, weights));
            break;
        }
    }
    let Some((checkpoint_version, mut weights)) = base else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "no checkpoint in the durability directory decodes",
        ));
    };
    let wal_path = dir.join("wal.log");
    let mut applied_version = checkpoint_version;
    let mut summary = Default::default();
    if wal_path.exists() {
        let mut file = OpenOptions::new().read(true).write(true).open(&wal_path)?;
        summary = replay_with(&mut file, |record| {
            if record.version <= applied_version {
                // Subsumed by the checkpoint (a crash between checkpoint
                // commit and WAL truncation leaves these behind).
                return ReplayStep::Skip;
            }
            if record.version != applied_version + 1
                || record.overrides.iter().any(|&(i, _)| i >= weights.len())
            {
                // A version gap or out-of-range index means the log no
                // longer matches this state; stop at the last good record.
                return ReplayStep::Stop;
            }
            apply_record(&mut weights, record);
            applied_version = record.version;
            ReplayStep::Apply
        })?;
        file.set_len(summary.valid_bytes)?;
    }
    Ok(Recovery {
        version: applied_version,
        weights,
        checkpoint_version,
        replayed: summary.applied,
        truncated_bytes: summary.truncated_bytes,
    })
}

/// `checkpoint-<version>.ckpt` files under `dir`, sorted by version.
fn list_checkpoints(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut found = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(version) = name
            .strip_prefix("checkpoint-")
            .and_then(|rest| rest.strip_suffix(".ckpt"))
            .and_then(|v| v.parse::<u64>().ok())
        {
            found.push((version, entry.path()));
        }
    }
    found.sort_by_key(|&(version, _)| version);
    Ok(found)
}

/// Write `(version, weights)` atomically: tmp + fsync + rename, then a
/// best-effort directory sync so the rename itself is durable.
fn write_checkpoint_file(dir: &Path, version: u64, weights: &[f64]) -> io::Result<u64> {
    let blob = encode_checkpoint(version, weights);
    let tmp = dir.join("checkpoint.tmp");
    {
        let mut file = File::create(&tmp)?;
        file.write_all(&blob)?;
        file.sync_all()?;
    }
    fs::rename(&tmp, dir.join(format!("checkpoint-{version}.ckpt")))?;
    if let Ok(dir_handle) = File::open(dir) {
        let _ = dir_handle.sync_all();
    }
    Ok(blob.len() as u64)
}

/// Best-effort removal of all but the newest [`CHECKPOINTS_KEPT`]
/// checkpoint files.
fn prune_checkpoints(dir: &Path) {
    let Ok(mut checkpoints) = list_checkpoints(dir) else {
        return;
    };
    if checkpoints.len() <= CHECKPOINTS_KEPT {
        return;
    }
    checkpoints.truncate(checkpoints.len() - CHECKPOINTS_KEPT);
    for (_, path) in checkpoints {
        let _ = fs::remove_file(path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FsyncPolicy;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("lrb-durable-test-{tag}-{}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            Self(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn options(dir: &TempDir) -> WalOptions {
        WalOptions {
            dir: dir.0.clone(),
            fsync: FsyncPolicy::Off,
            checkpoint_every: 0,
        }
    }

    #[test]
    fn fresh_open_writes_genesis_and_recovers_nothing() {
        let dir = TempDir::new("genesis");
        let (store, recovered) = DurableStore::open(&options(&dir), &[1.0, 2.0]).unwrap();
        assert!(recovered.is_none());
        assert_eq!(store.last_version(), 0);
        drop(store);
        // Reopen with different "initial" weights: the genesis checkpoint
        // wins, proving recovery is authoritative.
        let (_, recovered) = DurableStore::open(&options(&dir), &[9.0, 9.0]).unwrap();
        let recovery = recovered.unwrap();
        assert_eq!(recovery.version, 0);
        assert_eq!(recovery.weights, vec![1.0, 2.0]);
    }

    #[test]
    fn append_reopen_replays_in_order() {
        let dir = TempDir::new("replay");
        let mut weights = vec![1.0, 2.0, 3.0];
        let (mut store, _) = DurableStore::open(&options(&dir), &weights).unwrap();
        // v1: override; v2: scale fold + override (mirrors a publish).
        store.append(1, 1.0, &[(0, 5.0)]).unwrap();
        apply_record(
            &mut weights,
            &WalRecord {
                version: 1,
                scale: 1.0,
                overrides: vec![(0, 5.0)],
            },
        );
        store.append(2, 0.5, &[(2, 8.0)]).unwrap();
        apply_record(
            &mut weights,
            &WalRecord {
                version: 2,
                scale: 0.5,
                overrides: vec![(2, 8.0)],
            },
        );
        drop(store);
        let (store, recovered) = DurableStore::open(&options(&dir), &[0.0; 3]).unwrap();
        let recovery = recovered.unwrap();
        assert_eq!(recovery.version, 2);
        assert_eq!(recovery.replayed, 2);
        assert_eq!(recovery.truncated_bytes, 0);
        for (a, b) in recovery.weights.iter().zip(&weights) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(store.last_version(), 2);
    }

    #[test]
    fn checkpoint_truncates_wal_and_survives_reopen() {
        let dir = TempDir::new("checkpoint");
        let (mut store, _) = DurableStore::open(&options(&dir), &[1.0, 1.0]).unwrap();
        store.append(1, 1.0, &[(0, 3.0)]).unwrap();
        store.append(2, 1.0, &[(1, 4.0)]).unwrap();
        assert!(store.wal_bytes() > 0);
        store.checkpoint(2, &[3.0, 4.0]).unwrap();
        assert_eq!(store.wal_bytes(), 0);
        store.append(3, 1.0, &[(0, 7.0)]).unwrap();
        drop(store);
        let (_, recovered) = DurableStore::open(&options(&dir), &[0.0; 2]).unwrap();
        let recovery = recovered.unwrap();
        assert_eq!(recovery.checkpoint_version, 2);
        assert_eq!(recovery.version, 3);
        assert_eq!(recovery.weights, vec![7.0, 4.0]);
    }

    #[test]
    fn torn_tail_recovers_the_prefix() {
        let dir = TempDir::new("torn");
        let (mut store, _) = DurableStore::open(&options(&dir), &[1.0]).unwrap();
        for v in 1..=3 {
            store.append(v, 1.0, &[(0, v as f64)]).unwrap();
        }
        drop(store);
        // Tear 3 bytes off the log tail.
        let wal_path = dir.0.join("wal.log");
        let len = fs::metadata(&wal_path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&wal_path)
            .unwrap()
            .set_len(len - 3)
            .unwrap();
        let (store, recovered) = DurableStore::open(&options(&dir), &[0.0]).unwrap();
        let recovery = recovered.unwrap();
        assert_eq!(recovery.version, 2);
        assert_eq!(recovery.weights, vec![2.0]);
        assert!(recovery.truncated_bytes > 0);
        // The truncated tail is gone for good: the next append lands at
        // the valid prefix and a further reopen sees version 3 again.
        let mut store = store;
        store.append(3, 1.0, &[(0, 30.0)]).unwrap();
        drop(store);
        let (_, recovered) = DurableStore::open(&options(&dir), &[0.0]).unwrap();
        assert_eq!(recovered.unwrap().version, 3);
    }

    #[test]
    fn corrupt_newest_checkpoint_falls_back() {
        let dir = TempDir::new("fallback");
        let (mut store, _) = DurableStore::open(&options(&dir), &[1.0, 1.0]).unwrap();
        store.append(1, 1.0, &[(0, 2.0)]).unwrap();
        store.checkpoint(1, &[2.0, 1.0]).unwrap();
        drop(store);
        // Damage the newest checkpoint; genesis (version 0) must win.
        let newest = dir.0.join("checkpoint-1.ckpt");
        let mut blob = fs::read(&newest).unwrap();
        blob[10] ^= 0xFF;
        fs::write(&newest, blob).unwrap();
        let (_, recovered) = DurableStore::open(&options(&dir), &[0.0; 2]).unwrap();
        let recovery = recovered.unwrap();
        assert_eq!(recovery.checkpoint_version, 0);
        // The WAL was truncated at checkpoint time, so the fallback can
        // only see version 0 — a shorter valid prefix, never a wrong one.
        assert_eq!(recovery.version, 0);
        assert_eq!(recovery.weights, vec![1.0, 1.0]);
    }

    #[test]
    fn cadence_counts_appends() {
        let dir = TempDir::new("cadence");
        let opts = WalOptions {
            checkpoint_every: 2,
            ..options(&dir)
        };
        let (mut store, _) = DurableStore::open(&opts, &[1.0]).unwrap();
        store.append(1, 1.0, &[(0, 2.0)]).unwrap();
        assert!(!store.should_checkpoint());
        store.append(2, 1.0, &[(0, 3.0)]).unwrap();
        assert!(store.should_checkpoint());
        store.checkpoint(2, &[3.0]).unwrap();
        assert!(!store.should_checkpoint());
    }

    #[test]
    fn old_checkpoints_are_pruned() {
        let dir = TempDir::new("prune");
        let opts = options(&dir);
        let (mut store, _) = DurableStore::open(&opts, &[1.0]).unwrap();
        for v in 1..=4u64 {
            store.append(v, 1.0, &[(0, v as f64)]).unwrap();
            store.checkpoint(v, &[v as f64]).unwrap();
        }
        let kept = list_checkpoints(&dir.0).unwrap();
        assert_eq!(kept.len(), CHECKPOINTS_KEPT);
        assert_eq!(kept.last().unwrap().0, 4);
    }
}
