//! The storage abstraction the WAL and checkpoints write through.
//!
//! [`StorageFile`] is the minimal file surface durability needs — byte
//! I/O, seek, explicit sync, truncate. `std::fs::File` implements it for
//! production; [`MemFile`] is a deterministic in-memory stand-in for
//! tests, and [`FaultyFile`](crate::fault::FaultyFile) wraps either to
//! inject corruption.

use std::io::{self, Read, Seek, SeekFrom, Write};

/// A file-like byte store the durability layer can write through.
pub trait StorageFile: Read + Write + Seek {
    /// Flush written bytes to stable storage (`fdatasync` semantics).
    fn sync(&mut self) -> io::Result<()>;

    /// Truncate (or zero-extend) to exactly `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;

    /// Current length in bytes. The cursor position is preserved.
    fn byte_len(&mut self) -> io::Result<u64> {
        let here = self.stream_position()?;
        let end = self.seek(SeekFrom::End(0))?;
        self.seek(SeekFrom::Start(here))?;
        Ok(end)
    }
}

impl StorageFile for std::fs::File {
    fn sync(&mut self) -> io::Result<()> {
        self.sync_data()
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        std::fs::File::set_len(self, len)
    }

    fn byte_len(&mut self) -> io::Result<u64> {
        Ok(self.metadata()?.len())
    }
}

/// An in-memory [`StorageFile`]: a growable byte vector with a cursor.
/// Deterministic and instant — the substrate for recovery proptests.
#[derive(Debug, Clone, Default)]
pub struct MemFile {
    bytes: Vec<u8>,
    pos: u64,
}

impl MemFile {
    /// An empty file.
    pub fn new() -> Self {
        Self::default()
    }

    /// A file pre-loaded with `bytes`, cursor at the start.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        Self { bytes, pos: 0 }
    }

    /// The current contents. (Named to dodge `Read::bytes`, which would
    /// shadow a `bytes()` inherent on by-value receivers.)
    pub fn contents(&self) -> &[u8] {
        &self.bytes
    }

    /// Mutable access to the raw contents (tests corrupt bytes directly).
    pub fn contents_mut(&mut self) -> &mut Vec<u8> {
        &mut self.bytes
    }
}

impl Read for MemFile {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let start = (self.pos as usize).min(self.bytes.len());
        let n = buf.len().min(self.bytes.len() - start);
        buf[..n].copy_from_slice(&self.bytes[start..start + n]);
        self.pos += n as u64;
        Ok(n)
    }
}

impl Write for MemFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let start = self.pos as usize;
        if start > self.bytes.len() {
            self.bytes.resize(start, 0);
        }
        let overlap = (self.bytes.len() - start).min(buf.len());
        self.bytes[start..start + overlap].copy_from_slice(&buf[..overlap]);
        self.bytes.extend_from_slice(&buf[overlap..]);
        self.pos += buf.len() as u64;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Seek for MemFile {
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        let target = match pos {
            SeekFrom::Start(offset) => offset as i64,
            SeekFrom::End(offset) => self.bytes.len() as i64 + offset,
            SeekFrom::Current(offset) => self.pos as i64 + offset,
        };
        if target < 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "seek before byte 0",
            ));
        }
        self.pos = target as u64;
        Ok(self.pos)
    }
}

impl StorageFile for MemFile {
    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.bytes.resize(len as usize, 0);
        Ok(())
    }

    fn byte_len(&mut self) -> io::Result<u64> {
        Ok(self.bytes.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut file = MemFile::new();
        file.write_all(b"hello").unwrap();
        file.seek(SeekFrom::Start(0)).unwrap();
        let mut out = Vec::new();
        file.read_to_end(&mut out).unwrap();
        assert_eq!(out, b"hello");
    }

    #[test]
    fn overwrite_in_place() {
        let mut file = MemFile::from_bytes(b"abcdef".to_vec());
        file.seek(SeekFrom::Start(2)).unwrap();
        file.write_all(b"XYZW").unwrap();
        assert_eq!(file.contents(), b"abXYZW");
    }

    #[test]
    fn set_len_truncates_and_extends() {
        let mut file = MemFile::from_bytes(b"abcdef".to_vec());
        file.set_len(3).unwrap();
        assert_eq!(file.contents(), b"abc");
        file.set_len(5).unwrap();
        assert_eq!(file.contents(), b"abc\0\0");
        assert_eq!(file.byte_len().unwrap(), 5);
    }
}
