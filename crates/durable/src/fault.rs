//! Deterministic fault injection for the durability layer.
//!
//! [`FaultyFile`] wraps any [`StorageFile`] and perturbs its write/sync
//! operations according to a seeded [`FaultPlan`]: short writes (the
//! kernel accepted fewer bytes), torn writes (a crash mid-`write` left a
//! prefix on disk and the operation failed), fsync errors, and silent
//! single-bit flips. Two files built from the same seed inject the same
//! faults at the same operations — recovery proptests replay a schedule
//! exactly.

use std::collections::BTreeMap;
use std::io::{self, Read, Seek, SeekFrom, Write};

use lrb_rng::{RandomSource, SplitMix64};

use crate::storage::StorageFile;

/// One kind of injected storage fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The write accepts only a prefix of the buffer and reports the
    /// short count — a well-behaved caller's `write_all` loop retries.
    ShortWrite,
    /// A seeded prefix of the buffer reaches the file, then the write
    /// fails — the torn-tail shape a crash mid-append leaves behind.
    TornWrite,
    /// The next `sync` call fails (the write-back error an `fsync` can
    /// surface).
    SyncError,
    /// The buffer is written in full but with one seeded bit flipped —
    /// silent media corruption the CRC must catch.
    BitFlip,
}

/// A deterministic schedule mapping operation indices (each `write` or
/// `sync` call counts one) to faults.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: BTreeMap<u64, FaultKind>,
}

impl FaultPlan {
    /// No faults — the wrapper becomes a transparent pass-through.
    pub fn none() -> Self {
        Self::default()
    }

    /// A single fault at operation `at_op`.
    pub fn single(at_op: u64, kind: FaultKind) -> Self {
        let mut faults = BTreeMap::new();
        faults.insert(at_op, kind);
        Self { faults }
    }

    /// A seeded random schedule: over the first `horizon` operations,
    /// roughly `per_mille`/1000 of them fault, with the kind drawn
    /// uniformly. Identical `(seed, horizon, per_mille)` always produce
    /// the identical schedule.
    pub fn seeded(seed: u64, horizon: u64, per_mille: u32) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut faults = BTreeMap::new();
        for op in 0..horizon {
            if rng.next_u64() % 1000 < u64::from(per_mille) {
                let kind = match rng.next_u64() % 4 {
                    0 => FaultKind::ShortWrite,
                    1 => FaultKind::TornWrite,
                    2 => FaultKind::SyncError,
                    _ => FaultKind::BitFlip,
                };
                faults.insert(op, kind);
            }
        }
        Self { faults }
    }

    /// Faults in the schedule.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    fn at(&self, op: u64) -> Option<FaultKind> {
        self.faults.get(&op).copied()
    }
}

/// A [`StorageFile`] wrapper that injects the faults of a [`FaultPlan`].
///
/// Reads, seeks and truncates pass through untouched — corruption is a
/// *write-side* phenomenon; the recovery reader must survive whatever the
/// faulty writer left behind.
#[derive(Debug)]
pub struct FaultyFile<F: StorageFile> {
    inner: F,
    plan: FaultPlan,
    rng: SplitMix64,
    op: u64,
    injected: u64,
}

impl<F: StorageFile> FaultyFile<F> {
    /// Wrap `inner`, injecting `plan` (offsets drawn from `seed`).
    pub fn new(inner: F, plan: FaultPlan, seed: u64) -> Self {
        Self {
            inner,
            plan,
            rng: SplitMix64::new(seed),
            op: 0,
            injected: 0,
        }
    }

    /// The wrapped file.
    pub fn inner(&self) -> &F {
        &self.inner
    }

    /// Unwrap, discarding the fault state.
    pub fn into_inner(self) -> F {
        self.inner
    }

    /// Faults actually injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Write/sync operations observed so far.
    pub fn operations(&self) -> u64 {
        self.op
    }

    fn next_op(&mut self) -> Option<FaultKind> {
        let fault = self.plan.at(self.op);
        self.op += 1;
        if fault.is_some() {
            self.injected += 1;
        }
        fault
    }
}

impl<F: StorageFile> Read for FaultyFile<F> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.inner.read(buf)
    }
}

impl<F: StorageFile> Write for FaultyFile<F> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.next_op() {
            None | Some(FaultKind::SyncError) => self.inner.write(buf),
            Some(FaultKind::ShortWrite) => {
                let keep = (buf.len() / 2).max(1).min(buf.len());
                self.inner.write(&buf[..keep])
            }
            Some(FaultKind::TornWrite) => {
                let keep = if buf.is_empty() {
                    0
                } else {
                    (self.rng.next_u64() % buf.len() as u64) as usize
                };
                self.inner.write_all(&buf[..keep])?;
                Err(io::Error::other(
                    "injected torn write after a partial prefix",
                ))
            }
            Some(FaultKind::BitFlip) => {
                if buf.is_empty() {
                    return self.inner.write(buf);
                }
                let mut corrupted = buf.to_vec();
                let bit = self.rng.next_u64() % (corrupted.len() as u64 * 8);
                corrupted[(bit / 8) as usize] ^= 1 << (bit % 8);
                self.inner.write_all(&corrupted)?;
                Ok(buf.len())
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl<F: StorageFile> Seek for FaultyFile<F> {
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        self.inner.seek(pos)
    }
}

impl<F: StorageFile> StorageFile for FaultyFile<F> {
    fn sync(&mut self) -> io::Result<()> {
        match self.next_op() {
            Some(FaultKind::SyncError) => Err(io::Error::other("injected fsync error")),
            _ => self.inner.sync(),
        }
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.inner.set_len(len)
    }

    fn byte_len(&mut self) -> io::Result<u64> {
        self.inner.byte_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemFile;

    #[test]
    fn pass_through_without_faults() {
        let mut file = FaultyFile::new(MemFile::new(), FaultPlan::none(), 1);
        file.write_all(b"hello").unwrap();
        assert_eq!(file.inner().contents(), b"hello");
        assert_eq!(file.injected(), 0);
    }

    #[test]
    fn torn_write_leaves_a_prefix_and_errors() {
        let mut file = FaultyFile::new(
            MemFile::new(),
            FaultPlan::single(0, FaultKind::TornWrite),
            7,
        );
        let err = file.write_all(b"0123456789").unwrap_err();
        assert!(err.to_string().contains("torn"));
        assert!(file.inner().contents().len() < 10);
        assert!(b"0123456789".starts_with(file.inner().contents()));
    }

    #[test]
    fn bit_flip_corrupts_exactly_one_bit() {
        let mut file = FaultyFile::new(MemFile::new(), FaultPlan::single(0, FaultKind::BitFlip), 9);
        file.write_all(b"abcdefgh").unwrap();
        let differing_bits: u32 = file
            .inner()
            .contents()
            .iter()
            .zip(b"abcdefgh")
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(differing_bits, 1);
    }

    #[test]
    fn sync_error_fires_on_sync() {
        let mut file = FaultyFile::new(
            MemFile::new(),
            FaultPlan::single(1, FaultKind::SyncError),
            3,
        );
        file.write_all(b"x").unwrap();
        assert!(file.sync().is_err());
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        let a = FaultPlan::seeded(42, 1000, 50);
        let b = FaultPlan::seeded(42, 1000, 50);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert!(!a.is_empty());
    }
}
