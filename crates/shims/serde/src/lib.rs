//! An offline, API-compatible shim for the subset of [serde] this workspace
//! uses: `#[derive(Serialize, Deserialize)]` on plain structs with named
//! fields, round-tripped through JSON by the sibling `serde_json` shim.
//!
//! Unlike real serde, which is format-agnostic via visitor-based
//! serializers, this shim serialises into an owned JSON-like [`Value`] tree.
//! That is exactly what the workspace needs (pretty-printed experiment
//! reports and their round-trip tests) and keeps the derive macro small
//! enough to hand-write without `syn`/`quote` (no network access).
//!
//! [serde]: https://docs.rs/serde

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (stored as `f64`; integers up to 2^53 round-trip exactly).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a field of an object value.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::new(format!("missing field `{name}`"))),
            other => Err(Error::new(format!(
                "expected object with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// The value's JSON type name (for error messages).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    fn as_number(&self) -> Result<f64, Error> {
        match self {
            Value::Number(x) => Ok(*x),
            other => Err(Error::new(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }
}

/// Serialisation/deserialisation error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Create an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// A type that can be serialised into a [`Value`].
pub trait Serialize {
    /// Convert `self` into an owned JSON value.
    fn serialize(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`].
///
/// The lifetime parameter exists for signature compatibility with real
/// serde's `for<'de> Deserialize<'de>` bounds; the shim always deserialises
/// from an owned tree.
pub trait Deserialize<'de>: Sized {
    /// Reconstruct a value from a JSON tree.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

macro_rules! impl_serde_for_number {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                Ok(value.as_number()? as $t)
            }
        }
    )*};
}

impl_serde_for_number!(f64, f32, u64, u32, u16, u8, i64, i32, i16, i8, usize, isize);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::new(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize(other)?)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert_eq!(u64::deserialize(&42u64.serialize()).unwrap(), 42);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        let s = "hi".to_string();
        assert_eq!(String::deserialize(&s.serialize()).unwrap(), "hi");
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::deserialize(&v.serialize()).unwrap(), v);
    }

    #[test]
    fn field_lookup_reports_missing_fields() {
        let obj = Value::Object(vec![("a".into(), Value::Number(1.0))]);
        assert!(obj.field("a").is_ok());
        assert!(obj.field("b").unwrap_err().to_string().contains("missing"));
        assert!(Value::Null.field("a").is_err());
    }
}
