//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! serde shim.
//!
//! Supports exactly what this workspace derives on: non-generic structs with
//! named fields (any visibility, any attributes). No `syn`/`quote` — the
//! struct name and field names are extracted by walking the raw
//! `TokenStream`, and the impls are emitted as source text.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct StructShape {
    name: String,
    fields: Vec<String>,
}

/// Parse `struct Name { fields... }` out of a derive input stream.
///
/// Panics (surfacing as a compile error) on enums, tuple structs or generic
/// structs, which this shim does not support.
fn parse_struct(input: TokenStream) -> StructShape {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes (`#[...]`) and visibility up to the `struct` keyword.
    let mut name = None;
    while let Some(token) = tokens.next() {
        if let TokenTree::Ident(ident) = &token {
            let text = ident.to_string();
            if text == "enum" || text == "union" {
                panic!("serde shim derive supports only structs, found `{text}`");
            }
            if text == "struct" {
                match tokens.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    other => panic!("expected struct name, found {other:?}"),
                }
                break;
            }
        }
    }
    let name = name.expect("no `struct` keyword in derive input");

    // The next token must be the brace group with the named fields; a `<`
    // would mean generics, a parenthesis a tuple struct.
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                break group.stream();
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde shim derive does not support generic structs");
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                panic!("serde shim derive does not support tuple structs");
            }
            Some(_) => continue,
            None => panic!("struct `{name}` has no body"),
        }
    };

    // Walk the fields: skip attributes and visibility, take the identifier
    // before each top-level `:`, then skip the type up to the next top-level
    // comma (angle-bracket depth tracked so `Vec<(u64, f64)>` parses).
    let mut fields = Vec::new();
    let mut body_tokens = body.into_iter().peekable();
    'fields: loop {
        // Skip leading attributes on the field.
        loop {
            match body_tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    body_tokens.next();
                    body_tokens.next(); // the `[...]` group
                }
                _ => break,
            }
        }
        // Field name: the identifier immediately before `:` (skipping `pub`
        // and `pub(...)`).
        let field = loop {
            match body_tokens.next() {
                Some(TokenTree::Ident(ident)) => {
                    let text = ident.to_string();
                    if text == "pub" {
                        if let Some(TokenTree::Group(_)) = body_tokens.peek() {
                            body_tokens.next(); // `pub(crate)` and friends
                        }
                        continue;
                    }
                    break text;
                }
                Some(other) => panic!("unexpected token in struct body: {other}"),
                None => break 'fields,
            }
        };
        fields.push(field);
        match body_tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field name, found {other:?}"),
        }
        // Skip the type up to the next comma at angle-bracket depth 0.
        let mut depth = 0i32;
        loop {
            match body_tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => break,
                Some(_) => {}
                None => break 'fields,
            }
        }
    }

    StructShape { name, fields }
}

/// Derive the shim's `serde::Serialize` for a named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_struct(input);
    let pushes: String = shape
        .fields
        .iter()
        .map(|f| {
            format!(
                "entries.push(({f:?}.to_string(), ::serde::Serialize::serialize(&self.{f})));\n"
            )
        })
        .collect();
    let name = &shape.name;
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{\n\
                 let mut entries: Vec<(String, ::serde::Value)> = Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(entries)\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derive the shim's `serde::Deserialize` for a named-field struct.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_struct(input);
    let field_inits: String = shape
        .fields
        .iter()
        .map(|f| format!("{f}: ::serde::Deserialize::deserialize(value.field({f:?})?)?,\n"))
        .collect();
    let name = &shape.name;
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 Ok(Self {{ {field_inits} }})\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
