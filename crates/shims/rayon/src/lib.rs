//! An offline, API-compatible shim for the subset of [rayon] this workspace
//! uses.
//!
//! The build environment has no network access, so the real `rayon` cannot be
//! fetched from crates.io. This crate implements the same surface — parallel
//! iterators over slices, vectors and ranges with `map` / `filter` /
//! `enumerate` / `reduce` / `try_reduce` / `collect`, plus a
//! [`ThreadPoolBuilder`] whose `num_threads` is honoured — on top of
//! `std::thread::scope`.
//!
//! Semantics match rayon where the workspace depends on them:
//!
//! * item order is preserved through every combinator, so `collect` returns
//!   the same vector a sequential iterator would;
//! * `reduce` assumes an associative operator (as rayon does) and combines
//!   per-chunk partials left-to-right, so results are deterministic for
//!   associative, order-insensitive operators (all uses in this workspace);
//! * closures must be `Sync` and items `Send`, mirroring rayon's bounds.
//!
//! Work is only fanned out across threads when an iterator stage has at least
//! [`PARALLEL_THRESHOLD`] items; below that, thread-spawn overhead dominates
//! and the stage runs inline. `ThreadPoolBuilder::num_threads(1)` forces
//! fully sequential execution.
//!
//! [rayon]: https://docs.rs/rayon

use std::cell::Cell;

/// Minimum number of items per stage before threads are spawned.
pub const PARALLEL_THRESHOLD: usize = 1024;

thread_local! {
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

fn configured_threads() -> usize {
    THREAD_OVERRIDE.with(|o| o.get()).unwrap_or_else(|| {
        // `LRB_THREADS` pins the default thread budget process-wide (the CI
        // matrix runs the suite at 1, 2 and 8 threads with it); an explicit
        // `ThreadPool::install` still wins over the environment.
        if let Some(env_threads) = std::env::var("LRB_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            return env_threads;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// The number of threads parallel stages may use on this thread.
pub fn current_num_threads() -> usize {
    configured_threads()
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
///
/// The shim has no persistent pool; the builder records the thread budget and
/// [`ThreadPool::install`] applies it for the duration of a closure, which is
/// exactly how the workspace's reproducibility tests vary the thread count.
#[derive(Debug, Default, Clone)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

/// Error type returned by [`ThreadPoolBuilder::build`] (never constructed).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Create a builder with the default thread budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the number of threads stages run under `install` may use.
    /// `0` means "use the default" (as in rayon).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Build the (virtual) pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A virtual thread pool: a scoped thread-count override.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: Option<usize>,
}

impl ThreadPool {
    /// Run `op` with this pool's thread budget applied to every parallel
    /// stage reached from the current thread.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let previous = THREAD_OVERRIDE.with(|o| o.replace(self.num_threads));
        let result = op();
        THREAD_OVERRIDE.with(|o| o.set(previous));
        result
    }

    /// The pool's thread budget.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads.unwrap_or_else(configured_threads)
    }
}

/// Split `items` into at most `parts` contiguous chunks, preserving order.
fn split_chunks<T>(mut items: Vec<T>, parts: usize) -> Vec<Vec<T>> {
    let n = items.len();
    let parts = parts.clamp(1, n.max(1));
    let chunk = n.div_ceil(parts);
    let mut out = Vec::with_capacity(parts);
    while items.len() > chunk {
        let tail = items.split_off(chunk);
        out.push(items);
        items = tail;
    }
    out.push(items);
    out
}

fn parallel_map<T: Send, R: Send, F: Fn(T) -> R + Sync>(
    items: Vec<T>,
    f: &F,
    min_len: usize,
) -> Vec<R> {
    let threads = configured_threads();
    if threads <= 1 || items.len() < min_len.max(2) {
        return items.into_iter().map(f).collect();
    }
    let chunks = split_chunks(items, threads);
    let nested: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    nested.into_iter().flatten().collect()
}

fn parallel_fold<T: Send, A: Send>(
    items: Vec<T>,
    identity: &(impl Fn() -> A + Sync),
    fold: &(impl Fn(A, T) -> A + Sync),
    combine: impl Fn(A, A) -> A,
    min_len: usize,
) -> A {
    let threads = configured_threads();
    if threads <= 1 || items.len() < min_len.max(2) {
        return items.into_iter().fold(identity(), fold);
    }
    let chunks = split_chunks(items, threads);
    let partials: Vec<A> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().fold(identity(), fold)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    partials.into_iter().fold(identity(), combine)
}

/// A materialised parallel iterator: combinators apply eagerly, fanning the
/// work out across scoped threads when the stage is large enough.
pub struct ParIter<T> {
    items: Vec<T>,
    /// Stage size below which work runs inline (see [`PARALLEL_THRESHOLD`]).
    min_len: usize,
}

impl<T: Send> ParIter<T> {
    /// Override the stage size below which work runs inline, mirroring
    /// rayon's `IndexedParallelIterator::with_min_len`. The default
    /// ([`PARALLEL_THRESHOLD`]) assumes cheap per-item work; stages with
    /// expensive items (whole tour constructions, batch chunks) should
    /// lower it — `with_min_len(1)` forces fan-out whenever more than one
    /// item and one thread are available.
    pub fn with_min_len(mut self, min_len: usize) -> ParIter<T> {
        self.min_len = min_len;
        self
    }

    /// Apply `f` to every item (in parallel for large stages).
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParIter<R> {
        let min_len = self.min_len;
        ParIter {
            items: parallel_map(self.items, &f, min_len),
            min_len,
        }
    }

    /// Keep the items satisfying `predicate`, preserving order.
    pub fn filter<F: Fn(&T) -> bool + Sync>(self, predicate: F) -> ParIter<T> {
        let items = self.items.into_iter().filter(|t| predicate(t)).collect();
        ParIter {
            items,
            min_len: self.min_len,
        }
    }

    /// Pair every item with its index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        let items = self.items.into_iter().enumerate().collect();
        ParIter {
            items,
            min_len: self.min_len,
        }
    }

    /// Reduce with an associative operator, as `rayon`'s `reduce`.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T + Sync,
        OP: Fn(T, T) -> T + Sync,
    {
        let min_len = self.min_len;
        parallel_fold(self.items, &identity, &|a, t| op(a, t), &op, min_len)
    }

    /// Execute `f` on every item for its side effects.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        let min_len = self.min_len;
        parallel_map(self.items, &|t| f(t), min_len);
    }

    /// Collect into any [`FromParallelIterator`] target (order preserved).
    pub fn collect<C: FromParallelIterator<T>>(self) -> C {
        C::from_par_iter_items(self.items)
    }

    /// Number of items in the stage.
    pub fn count(self) -> usize {
        self.items.len()
    }
}

impl<U: Send, E: Send> ParIter<Result<U, E>> {
    /// Short-circuiting reduce over `Result` items, as `rayon`'s
    /// `try_reduce`: the first `Err` wins, otherwise partials are combined
    /// with `op`.
    pub fn try_reduce<ID, OP>(self, identity: ID, op: OP) -> Result<U, E>
    where
        ID: Fn() -> U + Sync,
        OP: Fn(U, U) -> Result<U, E> + Sync,
    {
        let mut acc = identity();
        for item in self.items {
            acc = op(acc, item?)?;
        }
        Ok(acc)
    }
}

/// Conversion from a materialised parallel stage, mirroring rayon's
/// `FromParallelIterator`.
pub trait FromParallelIterator<T>: Sized {
    /// Build the collection from the stage's items (already in order).
    fn from_par_iter_items(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter_items(items: Vec<T>) -> Self {
        items
    }
}

impl<T, E> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
    fn from_par_iter_items(items: Vec<Result<T, E>>) -> Self {
        items.into_iter().collect()
    }
}

/// Types convertible into a [`ParIter`], mirroring rayon's
/// `IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Item type of the resulting stage.
    type Item: Send;
    /// Convert into a parallel stage.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter {
            items: self,
            min_len: PARALLEL_THRESHOLD,
        }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
            min_len: PARALLEL_THRESHOLD,
        }
    }
}

impl IntoParallelIterator for std::ops::Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
            min_len: PARALLEL_THRESHOLD,
        }
    }
}

/// Borrowing conversions, mirroring rayon's `IntoParallelRefIterator`
/// (`par_iter`) and `ParallelSlice` (`par_chunks`).
pub trait ParallelSliceExt<T: Sync> {
    /// Parallel iterator over `&T` items.
    fn par_iter(&self) -> ParIter<&T>;
    /// Parallel iterator over `chunk_size`-sized sub-slices.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSliceExt<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
            min_len: PARALLEL_THRESHOLD,
        }
    }

    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks(chunk_size).collect(),
            min_len: PARALLEL_THRESHOLD,
        }
    }
}

impl<T: Sync> ParallelSliceExt<T> for Vec<T> {
    fn par_iter(&self) -> ParIter<&T> {
        self.as_slice().par_iter()
    }

    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        self.as_slice().par_chunks(chunk_size)
    }
}

/// Mutable chunking, mirroring rayon's `ParallelSliceMut`
/// (`par_chunks_mut`). The sub-slices are disjoint, so handing one to each
/// worker thread is safe without any locking — exactly what a batch driver
/// filling one output buffer needs.
pub trait ParallelSliceMutExt<T: Send> {
    /// Parallel iterator over disjoint `chunk_size`-sized mutable sub-slices.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMutExt<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
            min_len: PARALLEL_THRESHOLD,
        }
    }
}

impl<T: Send> ParallelSliceMutExt<T> for Vec<T> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        self.as_mut_slice().par_chunks_mut(chunk_size)
    }
}

/// The rayon prelude: everything call sites need in scope.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, ParallelSliceExt, ParallelSliceMutExt,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..10_000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 10_000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == 2 * i));
    }

    #[test]
    fn reduce_matches_sequential_fold() {
        let values: Vec<f64> = (0..5_000).map(|i| i as f64).collect();
        let par_sum = values.par_iter().map(|&x| x).reduce(|| 0.0, |a, b| a + b);
        let seq_sum: f64 = values.iter().sum();
        assert!((par_sum - seq_sum).abs() < 1e-6);
    }

    #[test]
    fn try_reduce_short_circuits_on_err() {
        let r: Result<u64, &'static str> = (0..100u64)
            .into_par_iter()
            .map(|i| if i == 57 { Err("boom") } else { Ok(i) })
            .try_reduce(|| 0, |a, b| Ok(a + b));
        assert_eq!(r, Err("boom"));
    }

    #[test]
    fn collect_into_result_vec() {
        let ok: Result<Vec<u64>, ()> = (0..10u64).into_par_iter().map(Ok).collect();
        assert_eq!(ok.unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_covers_every_element() {
        let values: Vec<f64> = (0..4_321).map(|i| i as f64).collect();
        let sums: Vec<f64> = values.par_chunks(100).map(|c| c.iter().sum()).collect();
        assert_eq!(sums.len(), 44);
        let total: f64 = sums.iter().sum();
        assert_eq!(total, values.iter().sum::<f64>());
    }

    #[test]
    fn par_chunks_mut_fills_disjoint_sub_slices() {
        let mut out = vec![0usize; 4_321];
        out.par_chunks_mut(100).enumerate().for_each(|(c, slice)| {
            for (i, slot) in slice.iter_mut().enumerate() {
                *slot = c * 100 + i;
            }
        });
        assert!(out.iter().enumerate().all(|(i, &x)| x == i));
    }

    #[test]
    fn enumerate_filter_pipeline() {
        let values = vec![0.0, 1.0, 0.0, 2.0];
        let picked: Vec<usize> = values
            .par_iter()
            .enumerate()
            .filter(|&(_, &v)| v > 0.0)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(picked, vec![1, 3]);
    }

    #[test]
    fn with_min_len_fans_out_small_expensive_stages() {
        // 8 items is far below the default threshold; with_min_len(1) must
        // still produce the same ordered result through the threaded path.
        let expensive = |i: u64| -> u64 {
            let mut acc = i;
            for _ in 0..1_000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            acc
        };
        let fanned: Vec<u64> = (0..8u64)
            .into_par_iter()
            .with_min_len(1)
            .map(expensive)
            .collect();
        let inline: Vec<u64> = (0..8u64).map(expensive).collect();
        assert_eq!(fanned, inline);
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        pool.install(|| assert_eq!(current_num_threads(), 3));
    }

    #[test]
    fn lrb_threads_env_sets_the_default_but_loses_to_install() {
        // Save and restore any pre-existing value (the CI matrix sets
        // LRB_THREADS job-wide; other tests must keep seeing it). The
        // assertions use `install`-scoped or thread-local-free reads, so the
        // brief global mutation cannot fail concurrent tests — their
        // parallel stages are order-preserving at every thread count.
        let previous = std::env::var("LRB_THREADS").ok();
        std::env::set_var("LRB_THREADS", "5");
        assert_eq!(current_num_threads(), 5);
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.install(|| assert_eq!(current_num_threads(), 2));
        std::env::set_var("LRB_THREADS", "not-a-number");
        assert!(current_num_threads() >= 1, "garbage values fall through");
        match previous {
            Some(value) => std::env::set_var("LRB_THREADS", value),
            None => std::env::remove_var("LRB_THREADS"),
        }
    }

    #[test]
    fn results_are_identical_across_thread_counts() {
        let run = |threads: usize| -> Vec<u64> {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| {
                (0..50_000u64)
                    .into_par_iter()
                    .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                    .collect()
            })
        };
        let one = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(one, run(threads));
        }
    }
}
