//! An offline shim for the subset of [serde_json] this workspace uses:
//! [`to_string_pretty`] and [`from_str`], backed by the serde shim's owned
//! [`Value`] tree and a small recursive-descent JSON parser.
//!
//! Numbers print with Rust's shortest-round-trip `f64` formatting, so
//! pretty-printed reports parse back to bit-identical values and the
//! workspace's `to_json` determinism tests hold.
//!
//! [serde_json]: https://docs.rs/serde_json

pub use serde::{Error, Value};

/// Serialise a value as pretty-printed JSON (2-space indent, like
/// `serde_json::to_string_pretty`).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), 0, &mut out);
    Ok(out)
}

/// Serialise a value as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    to_string_pretty(value)
}

/// Parse a JSON document into any shim-`Deserialize` type.
pub fn from_str<T: for<'de> serde::Deserialize<'de>>(input: &str) -> Result<T, Error> {
    let value = parse_value_complete(input)?;
    T::deserialize(&value)
}

/// Parse a JSON document into a raw [`Value`] tree.
pub fn from_str_value(input: &str) -> Result<Value, Error> {
    parse_value_complete(input)
}

fn write_value(value: &Value, indent: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(x) => write_number(*x, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                push_indent(indent + 1, out);
                write_value(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            push_indent(indent, out);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (key, item)) in entries.iter().enumerate() {
                push_indent(indent + 1, out);
                write_string(key, out);
                out.push_str(": ");
                write_value(item, indent + 1, out);
                if i + 1 < entries.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            push_indent(indent, out);
            out.push('}');
        }
    }
}

fn push_indent(indent: usize, out: &mut String) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(x: f64, out: &mut String) {
    if x.is_finite() {
        if x == x.trunc() && x.abs() < 9.0e15 {
            // Integral values print without a fractional part, like
            // serde_json's integer types.
            out.push_str(&format!("{}", x as i64));
        } else {
            // `{:?}` is Rust's shortest representation that round-trips.
            out.push_str(&format!("{x:?}"));
        }
    } else {
        // JSON has no NaN/Inf; serde_json errors here, we emit null.
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(input: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_literal(&mut self, literal: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode scalar"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    let c = rest.chars().next().expect("peeked a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips_through_pretty_text() {
        let value = Value::Object(vec![
            ("name".into(), Value::String("table \"I\"".into())),
            ("trials".into(), Value::Number(1000.0)),
            (
                "freqs".into(),
                Value::Array(vec![Value::Number(0.25), Value::Number(0.75)]),
            ),
            ("exact".into(), Value::Bool(true)),
            ("note".into(), Value::Null),
            ("empty".into(), Value::Array(vec![])),
        ]);
        let mut text = String::new();
        write_value(&value, 0, &mut text);
        let parsed = from_str_value(&text).unwrap();
        assert_eq!(parsed, value);
    }

    #[test]
    fn integers_print_without_fraction() {
        let mut out = String::new();
        write_number(1000.0, &mut out);
        assert_eq!(out, "1000");
        out.clear();
        write_number(0.005025, &mut out);
        assert_eq!(out.parse::<f64>().unwrap(), 0.005025);
    }

    #[test]
    fn tiny_and_huge_floats_round_trip() {
        for x in [1.6e-32, 5e-324, 1.7976931348623157e308, -0.0, 123456.789] {
            let mut out = String::new();
            write_number(x, &mut out);
            let back = from_str_value(&out).unwrap();
            assert_eq!(back, Value::Number(x), "{x} printed as {out}");
        }
    }

    #[test]
    fn malformed_documents_error() {
        assert!(from_str_value("{").is_err());
        assert!(from_str_value("[1, 2,]").is_err());
        assert!(from_str_value("nul").is_err());
        assert!(from_str_value("1 2").is_err());
        assert!(from_str_value("\"abc").is_err());
    }

    #[test]
    fn unicode_escapes_parse() {
        let v = from_str_value("\"\\u0041\\n\\\"\"").unwrap();
        assert_eq!(v, Value::String("A\n\"".into()));
    }
}
