//! An offline shim for the subset of [proptest] this workspace uses.
//!
//! Supports the `proptest! { #[test] fn name(x in strategy, y: Type) {...} }`
//! macro with range strategies (`0.0f64..5.0`, `1usize..64`),
//! `proptest::collection::vec(strategy, size)` and plain-typed parameters
//! (`seed: u64`), plus `prop_assert!`, `prop_assert_eq!` and `prop_assume!`.
//!
//! Each property runs for a fixed number of cases (default 64, override with
//! the `PROPTEST_CASES` environment variable) driven by a deterministic
//! SplitMix64 generator, so failures are reproducible. There is no shrinking:
//! a failing case reports its assertion message directly.
//!
//! [proptest]: https://docs.rs/proptest

/// The deterministic generator driving every property run.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Create the generator for one property function.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 pseudo-random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        // Multiply-shift; bias is irrelevant for test-case generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Number of cases each property runs (`PROPTEST_CASES` env override).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.next_f64() * (self.end() - self.start())
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128).max(1) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128 - *self.start() as i128 + 1).max(1) as u64;
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

/// Types with a default whole-domain strategy (the `name: Type` parameter
/// form of the `proptest!` macro).
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u64, u32, u16, u8, usize, i64, i32, i16, i8, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric values spanning many magnitudes.
        rng.next_f64() * 2e6 - 1e6
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A length specification: fixed or ranged.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            Self { min: len, max: len }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(range: std::ops::Range<usize>) -> Self {
            assert!(range.end > range.start, "empty size range");
            Self {
                min: range.start,
                max: range.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(range: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                min: *range.start(),
                max: *range.end(),
            }
        }
    }

    /// Strategy producing vectors of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Create a vector strategy (`proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len =
                self.size.min + rng.below((self.size.max - self.size.min + 1) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The macro-facing prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Strategy,
        TestRng,
    };
}

/// Define property tests. See the crate docs for the supported forms.
#[macro_export]
macro_rules! proptest {
    // Entry: a sequence of test functions.
    ($($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block)*) => {
        $($crate::proptest!(@one $(#[$meta])* fn $name($($params)*) $body);)*
    };

    (@one $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block) => {
        $(#[$meta])*
        fn $name() {
            // Seed per property name so cases differ across properties but
            // are stable across runs.
            let mut __seed: u64 = 0xcbf2_9ce4_8422_2325;
            for b in stringify!($name).bytes() {
                __seed = (__seed ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut __rng = $crate::TestRng::new(__seed);
            for __case in 0..$crate::cases() {
                let _ = __case;
                $crate::proptest!(@bind __rng, $($params)*);
                $body
            }
        }
    };

    // Parameter binding: `name in strategy` and `name: Type` forms,
    // tt-munched left to right, with or without a trailing comma.
    (@bind $rng:ident $(,)?) => {};
    (@bind $rng:ident, $name:ident in $strategy:expr) => {
        let $name = $crate::Strategy::generate(&$strategy, &mut $rng);
    };
    (@bind $rng:ident, $name:ident in $strategy:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::generate(&$strategy, &mut $rng);
        $crate::proptest!(@bind $rng, $($rest)*);
    };
    (@bind $rng:ident, $name:ident : $ty:ty) => {
        let $name = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
    };
    (@bind $rng:ident, $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
        $crate::proptest!(@bind $rng, $($rest)*);
    };
}

/// Assert inside a property (no shrinking in the shim — plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when a precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let x = (0.5f64..2.5).generate(&mut rng);
            assert!((0.5..2.5).contains(&x));
            let n = (3usize..10).generate(&mut rng);
            assert!((3..10).contains(&n));
        }
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let v = crate::collection::vec(0.0f64..1.0, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            let fixed = crate::collection::vec(0u64..9, 4).generate(&mut rng);
            assert_eq!(fixed.len(), 4);
        }
    }

    proptest! {
        #[test]
        fn macro_binds_both_param_forms(
            values in crate::collection::vec(0.0f64..10.0, 1..50),
            seed: u64,
        ) {
            prop_assume!(!values.is_empty());
            prop_assert!(values.iter().all(|v| (0.0..10.0).contains(v)));
            let _ = seed;
            prop_assert_eq!(values.len(), values.len());
        }

        #[test]
        fn macro_supports_multiple_functions(x in 0usize..5) {
            prop_assert!(x < 5);
        }
    }
}
