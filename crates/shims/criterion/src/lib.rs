//! An offline shim for the subset of [criterion] this workspace uses.
//!
//! Provides `Criterion`, benchmark groups with `sample_size` /
//! `warm_up_time` / `measurement_time`, `bench_function` /
//! `bench_with_input`, `BenchmarkId`, `black_box` and the
//! `criterion_group!` / `criterion_main!` macros. Timing is a straightforward
//! monotonic-clock loop: warm up, then run batches until the measurement
//! budget is spent, and report the mean and best time per iteration.
//!
//! Set `LRB_BENCH_QUICK=1` to shrink warm-up and measurement budgets ~10×
//! (used by CI smoke runs).
//!
//! [criterion]: https://docs.rs/criterion

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimiser from deleting a benchmarked computation.
#[inline]
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Measurement abstraction (only wall-clock time in the shim).
pub mod measurement {
    /// Marker trait mirroring criterion's `Measurement`.
    pub trait Measurement {}

    /// Wall-clock time measurement.
    #[derive(Debug, Default, Clone, Copy)]
    pub struct WallTime;

    impl Measurement for WallTime {}
}

/// The benchmark harness handle.
#[derive(Debug)]
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            quick: std::env::var("LRB_BENCH_QUICK")
                .map(|v| v != "0")
                .unwrap_or(false),
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        let name = name.into();
        println!("\ngroup: {name}");
        BenchmarkGroup {
            _criterion: self,
            quick: self.quick,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            _marker: std::marker::PhantomData,
        }
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Combine a function name and a parameter display into one id.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Conversion into a [`BenchmarkId`], so `bench_function` accepts both
/// string literals and explicit ids (as in criterion).
pub trait IntoBenchmarkId {
    /// Convert into an id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// A group of related benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a, M: measurement::Measurement> {
    _criterion: &'a Criterion,
    quick: bool,
    warm_up: Duration,
    measurement: Duration,
    _marker: std::marker::PhantomData<M>,
}

impl<M: measurement::Measurement> BenchmarkGroup<'_, M> {
    /// Accepted for compatibility; the shim sizes samples by time budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set the warm-up budget.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Set the measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Accepted for compatibility; throughput is not reported by the shim.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmark a closure.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into_benchmark_id();
        let mut bencher = Bencher::new(self.budget());
        f(&mut bencher);
        bencher.report(&id.label);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut bencher = Bencher::new(self.budget());
        f(&mut bencher, input);
        bencher.report(&id.label);
        self
    }

    /// Close the group.
    pub fn finish(self) {}

    fn budget(&self) -> (Duration, Duration) {
        if self.quick {
            (self.warm_up / 10, self.measurement / 10)
        } else {
            (self.warm_up, self.measurement)
        }
    }
}

/// Throughput hints (accepted, not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Runs the measured closure and records per-iteration timings.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    mean_ns: f64,
    best_ns: f64,
    iterations: u64,
}

impl Bencher {
    fn new((warm_up, measurement): (Duration, Duration)) -> Self {
        Self {
            warm_up,
            measurement,
            mean_ns: f64::NAN,
            best_ns: f64::NAN,
            iterations: 0,
        }
    }

    /// Measure `f`, called repeatedly inside timing batches.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up: also estimates the per-iteration cost to size batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000_000 {
                break;
            }
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(0.5);

        // Batches of ~1ms so Instant overhead stays negligible.
        let batch = ((1_000_000.0 / est_ns).ceil() as u64).clamp(1, 1 << 24);
        let mut total = Duration::ZERO;
        let mut iterations: u64 = 0;
        let mut best_ns = f64::INFINITY;
        while total < self.measurement {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            total += elapsed;
            iterations += batch;
            let per_iter = elapsed.as_nanos() as f64 / batch as f64;
            if per_iter < best_ns {
                best_ns = per_iter;
            }
        }
        self.mean_ns = total.as_nanos() as f64 / iterations as f64;
        self.best_ns = best_ns;
        self.iterations = iterations;
    }

    fn report(&self, label: &str) {
        if self.iterations == 0 {
            println!("  {label:<48} (no measurement)");
        } else {
            println!(
                "  {label:<48} mean {:>12}  best {:>12}  ({} iters)",
                format_ns(self.mean_ns),
                format_ns(self.best_ns),
                self.iterations
            );
        }
    }

    /// Mean nanoseconds per iteration of the last `iter` call.
    pub fn mean_ns(&self) -> f64 {
        self.mean_ns
    }
}

/// Render a nanosecond quantity with a human-friendly unit.
pub fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Bundle benchmark functions into one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` for one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        std::env::set_var("LRB_BENCH_QUICK", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.warm_up_time(Duration::from_millis(5));
        group.measurement_time(Duration::from_millis(10));
        let mut x = 0u64;
        group.bench_function("incr", |b| b.iter(|| x = x.wrapping_add(1)));
        group.bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &v| {
            b.iter(|| v * v)
        });
        group.finish();
        assert!(x > 0);
    }

    #[test]
    fn format_ns_picks_sane_units() {
        assert!(format_ns(12.0).contains("ns"));
        assert!(format_ns(12_000.0).contains("µs"));
        assert!(format_ns(12_000_000.0).contains("ms"));
    }
}
