//! A small undirected graph type for the vertex-coloring application.

use lrb_rng::{RandomSource, SeedableSource, Xoshiro256PlusPlus};

/// An undirected simple graph stored as adjacency lists plus an adjacency
/// matrix for O(1) edge queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    adjacency: Vec<Vec<usize>>,
    matrix: Vec<bool>,
}

impl Graph {
    /// An empty graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a graph needs at least one vertex");
        Self {
            n,
            adjacency: vec![Vec::new(); n],
            matrix: vec![false; n * n],
        }
    }

    /// Add an undirected edge; self-loops and duplicate edges are ignored.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        assert!(a < self.n && b < self.n, "edge ({a},{b}) out of range");
        if a == b || self.matrix[a * self.n + b] {
            return;
        }
        self.matrix[a * self.n + b] = true;
        self.matrix[b * self.n + a] = true;
        self.adjacency[a].push(b);
        self.adjacency[b].push(a);
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph has zero vertices (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Whether vertices `a` and `b` are adjacent.
    #[inline]
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.matrix[a * self.n + b]
    }

    /// Neighbours of vertex `v`.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adjacency[v]
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.adjacency[v].len()
    }

    /// Maximum degree over all vertices.
    pub fn max_degree(&self) -> usize {
        (0..self.n).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// The cycle graph `C_n`.
    pub fn cycle(n: usize) -> Self {
        assert!(n >= 3);
        let mut g = Self::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n);
        }
        g
    }

    /// The complete graph `K_n`.
    pub fn complete(n: usize) -> Self {
        let mut g = Self::new(n);
        for a in 0..n {
            for b in (a + 1)..n {
                g.add_edge(a, b);
            }
        }
        g
    }

    /// An Erdős–Rényi random graph `G(n, p)`.
    pub fn random(n: usize, p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let mut g = Self::new(n);
        for a in 0..n {
            for b in (a + 1)..n {
                if rng.next_f64() < p {
                    g.add_edge(a, b);
                }
            }
        }
        g
    }

    /// The Petersen graph (10 vertices, 15 edges, chromatic number 3) — a
    /// classic fixture for coloring tests.
    pub fn petersen() -> Self {
        let mut g = Self::new(10);
        // Outer 5-cycle, inner 5-star, and the spokes.
        for i in 0..5 {
            g.add_edge(i, (i + 1) % 5);
            g.add_edge(5 + i, 5 + (i + 2) % 5);
            g.add_edge(i, 5 + i);
        }
        g
    }

    /// Validate a proper coloring: adjacent vertices get different colors.
    pub fn is_proper_coloring(&self, colors: &[usize]) -> bool {
        if colors.len() != self.n {
            return false;
        }
        for a in 0..self.n {
            for &b in &self.adjacency[a] {
                if colors[a] == colors[b] {
                    return false;
                }
            }
        }
        true
    }

    /// Number of distinct colors used by a coloring.
    pub fn colors_used(colors: &[usize]) -> usize {
        let mut sorted: Vec<usize> = colors.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        sorted.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_are_undirected_and_deduplicated() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(2, 2);
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(2, 2));
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.neighbors(1), &[0]);
    }

    #[test]
    fn cycle_and_complete_graph_shapes() {
        let c = Graph::cycle(6);
        assert_eq!(c.edge_count(), 6);
        assert_eq!(c.max_degree(), 2);
        let k = Graph::complete(5);
        assert_eq!(k.edge_count(), 10);
        assert_eq!(k.max_degree(), 4);
    }

    #[test]
    fn petersen_graph_shape() {
        let p = Graph::petersen();
        assert_eq!(p.len(), 10);
        assert_eq!(p.edge_count(), 15);
        assert_eq!(p.max_degree(), 3);
        assert!((0..10).all(|v| p.degree(v) == 3), "Petersen is 3-regular");
    }

    #[test]
    fn random_graph_edge_density_tracks_p() {
        let g = Graph::random(100, 0.3, 1);
        let possible = 100 * 99 / 2;
        let density = g.edge_count() as f64 / possible as f64;
        assert!((density - 0.3).abs() < 0.05, "density {density}");
        // Reproducibility.
        assert_eq!(Graph::random(100, 0.3, 1), g);
    }

    #[test]
    fn proper_coloring_validation() {
        let g = Graph::cycle(4);
        assert!(g.is_proper_coloring(&[0, 1, 0, 1]));
        assert!(!g.is_proper_coloring(&[0, 0, 1, 1]));
        assert!(!g.is_proper_coloring(&[0, 1, 0]));
        assert_eq!(Graph::colors_used(&[0, 1, 0, 1]), 2);
        assert_eq!(Graph::colors_used(&[2, 2, 2]), 1);
    }

    #[test]
    fn odd_cycle_needs_three_colors() {
        let g = Graph::cycle(5);
        // No proper 2-coloring exists; a 3-coloring does.
        assert!(!g.is_proper_coloring(&[0, 1, 0, 1, 0]));
        assert!(g.is_proper_coloring(&[0, 1, 0, 1, 2]));
    }

    #[test]
    #[should_panic]
    fn out_of_range_edge_panics() {
        let mut g = Graph::new(3);
        g.add_edge(0, 3);
    }
}
