//! Tour construction by a single ant.
//!
//! At each step the ant sits in a city and must choose the next city among
//! the unvisited ones. Each candidate city `j` gets a desirability
//! `τ(current, j)^α · η(current, j)^β` where `τ` is the pheromone trail and
//! `η = 1 / distance` the heuristic visibility; visited cities get fitness
//! **zero**. The next city is then drawn by roulette wheel selection over
//! this fitness vector — this is precisely the workload the paper's
//! logarithmic random bidding targets: of the `n` fitness values only the
//! `k` unvisited ones are non-zero, and `k` shrinks to 1 as the tour grows.

use lrb_core::{Fitness, SelectionError, Selector};
use lrb_rng::RandomSource;

use crate::desirability::DesirabilityTables;
use crate::pheromone::PheromoneMatrix;
use crate::tsp::{Tour, TspInstance};

/// Construction parameters shared by all ants of a colony.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AntParams {
    /// Pheromone exponent `α`.
    pub alpha: f64,
    /// Heuristic (visibility) exponent `β`.
    pub beta: f64,
    /// Ant Colony System pseudo-random-proportional parameter `q₀ ∈ [0, 1]`:
    /// with probability `q₀` the ant exploits (takes the arg-max
    /// desirability) and otherwise explores with the roulette wheel
    /// selection. `0` (the default) is the pure Ant System rule the paper
    /// assumes; values around `0.9` reproduce the greedy ACS behaviour.
    pub q0: f64,
}

impl Default for AntParams {
    fn default() -> Self {
        // The classic Ant System defaults (Dorigo & Gambardella).
        Self {
            alpha: 1.0,
            beta: 2.0,
            q0: 0.0,
        }
    }
}

impl AntParams {
    /// Desirability of moving from `from` to `to`.
    pub fn desirability(
        &self,
        instance: &TspInstance,
        pheromone: &PheromoneMatrix,
        from: usize,
        to: usize,
    ) -> f64 {
        let distance = instance.distance(from, to).max(1e-12);
        let visibility = 1.0 / distance;
        pheromone.get(from, to).powf(self.alpha) * visibility.powf(self.beta)
    }
}

/// Construct one complete tour starting from `start`, choosing every next
/// city with the supplied roulette wheel `selector`.
///
/// Returns the finished tour. The per-step fitness vector has length `n`
/// (one slot per city) with zeros for visited cities, so the selector sees
/// exactly the sparse vectors the paper describes.
pub fn construct_tour(
    instance: &TspInstance,
    pheromone: &PheromoneMatrix,
    params: &AntParams,
    selector: &dyn Selector,
    start: usize,
    rng: &mut dyn RandomSource,
) -> Result<Tour, SelectionError> {
    let n = instance.len();
    assert_eq!(
        pheromone.len(),
        n,
        "pheromone matrix and instance disagree on the city count"
    );
    assert!(start < n, "start city {start} out of range");

    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut current = start;
    visited[current] = true;
    order.push(current);

    assert!(
        (0.0..=1.0).contains(&params.q0),
        "q0 must lie in [0, 1], got {}",
        params.q0
    );
    let mut fitness_buf = vec![0.0; n];
    for _ in 1..n {
        for (j, slot) in fitness_buf.iter_mut().enumerate() {
            *slot = if visited[j] {
                0.0
            } else {
                params.desirability(instance, pheromone, current, j)
            };
        }
        // ACS pseudo-random proportional rule: exploit with probability q0,
        // otherwise fall through to the roulette wheel selection.
        let next = if params.q0 > 0.0 && rng.next_f64() < params.q0 {
            fitness_buf
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite desirabilities"))
                .map(|(j, _)| j)
                .expect("non-empty fitness vector")
        } else {
            let fitness = Fitness::new(fitness_buf.clone())?;
            selector.select(&fitness, rng)?
        };
        debug_assert!(!visited[next], "selector returned a visited city");
        visited[next] = true;
        order.push(next);
        current = next;
    }

    let length = instance.tour_length(&order);
    Ok(Tour { order, length })
}

/// Construct one complete tour using shared [`DesirabilityTables`] instead
/// of re-deriving the desirability vector at every step.
///
/// This is the dynamic-selection fast path: the tables are built (and
/// incrementally maintained) once per colony iteration, each step draws the
/// next city in `O(log n)` expected work through the row Fenwick trees, and
/// no per-step allocation or `Fitness` validation happens at all. The
/// selection probabilities are identical to [`construct_tour`] with an exact
/// selector: both draw city `j` with probability
/// `w_j / Σ_{u unvisited} w_u`.
///
/// # Example
///
/// ```
/// use lrb_aco::{construct_tour_dynamic, AntParams, DesirabilityTables, PheromoneMatrix, TspInstance};
/// use lrb_rng::{MersenneTwister64, SeedableSource};
///
/// let instance = TspInstance::random_euclidean(15, 3);
/// let pheromone = PheromoneMatrix::new(15, 1.0);
/// let params = AntParams::default();
/// let tables = DesirabilityTables::new(&instance, &pheromone, &params);
/// let mut rng = MersenneTwister64::seed_from_u64(1);
/// let tour = construct_tour_dynamic(&instance, &tables, &params, 0, &mut rng).unwrap();
/// assert!(tour.is_valid(15));
/// ```
pub fn construct_tour_dynamic(
    instance: &TspInstance,
    tables: &DesirabilityTables,
    params: &AntParams,
    start: usize,
    rng: &mut dyn RandomSource,
) -> Result<Tour, SelectionError> {
    let n = instance.len();
    assert_eq!(
        tables.len(),
        n,
        "desirability tables and instance disagree on the city count"
    );
    assert!(start < n, "start city {start} out of range");
    assert!(
        (0.0..=1.0).contains(&params.q0),
        "q0 must lie in [0, 1], got {}",
        params.q0
    );

    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    // The unvisited set as a swap-removable list plus an index-position map,
    // so removals are O(1) and the exact fallback scan is O(k).
    let mut unvisited: Vec<usize> = (0..n).filter(|&j| j != start).collect();
    let mut position: Vec<usize> = vec![usize::MAX; n];
    for (slot, &city) in unvisited.iter().enumerate() {
        position[city] = slot;
    }
    let mut current = start;
    visited[current] = true;
    order.push(current);

    for _ in 1..n {
        let next = if params.q0 > 0.0 && rng.next_f64() < params.q0 {
            tables
                .best_unvisited(current, &unvisited)
                .expect("unvisited cities remain")
        } else {
            tables.next_city(current, &visited, &unvisited, rng)?
        };
        debug_assert!(!visited[next], "drew a visited city");
        visited[next] = true;
        // Swap-remove `next` from the unvisited list.
        let slot = position[next];
        let moved = *unvisited.last().expect("unvisited cities remain");
        unvisited.swap_remove(slot);
        if slot < unvisited.len() {
            position[moved] = slot;
        }
        position[next] = usize::MAX;
        order.push(next);
        current = next;
    }

    let length = instance.tour_length(&order);
    Ok(Tour { order, length })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrb_core::parallel::{IndependentRouletteSelector, LogBiddingSelector};
    use lrb_core::sequential::LinearScanSelector;
    use lrb_rng::{MersenneTwister64, SeedableSource};

    fn setup(n: usize, seed: u64) -> (TspInstance, PheromoneMatrix) {
        let instance = TspInstance::random_euclidean(n, seed);
        let pheromone = PheromoneMatrix::new(n, 1.0);
        (instance, pheromone)
    }

    #[test]
    fn constructed_tours_are_valid_permutations() {
        let (instance, pheromone) = setup(30, 1);
        let mut rng = MersenneTwister64::seed_from_u64(1);
        for selector in [
            &LinearScanSelector as &dyn Selector,
            &LogBiddingSelector::default(),
            &IndependentRouletteSelector,
        ] {
            let tour = construct_tour(
                &instance,
                &pheromone,
                &AntParams::default(),
                selector,
                0,
                &mut rng,
            )
            .unwrap();
            assert!(
                tour.is_valid(30),
                "{} built an invalid tour",
                selector.name()
            );
            assert!(tour.length > 0.0);
            assert_eq!(tour.order[0], 0);
        }
    }

    #[test]
    fn different_start_cities_are_respected() {
        let (instance, pheromone) = setup(12, 2);
        let mut rng = MersenneTwister64::seed_from_u64(2);
        for start in [0usize, 5, 11] {
            let tour = construct_tour(
                &instance,
                &pheromone,
                &AntParams::default(),
                &LogBiddingSelector::default(),
                start,
                &mut rng,
            )
            .unwrap();
            assert_eq!(tour.order[0], start);
            assert!(tour.is_valid(12));
        }
    }

    #[test]
    fn heavy_pheromone_trail_steers_the_ant() {
        // Put overwhelming pheromone on the circle order of a circle
        // instance; with α high and exact selection the ant should follow it
        // almost always, recovering (near-)optimal tours.
        let n = 10;
        let instance = TspInstance::circle(n, 1.0);
        let mut pheromone = PheromoneMatrix::new(n, 1e-6);
        let circle_order: Vec<usize> = (0..n).collect();
        pheromone.deposit_tour(&circle_order, 10.0);
        let params = AntParams {
            alpha: 3.0,
            beta: 1.0,
            ..AntParams::default()
        };
        let mut rng = MersenneTwister64::seed_from_u64(3);
        let optimum = TspInstance::circle_optimum(n, 1.0);
        let mut hits = 0;
        for _ in 0..50 {
            let tour = construct_tour(
                &instance,
                &pheromone,
                &params,
                &LogBiddingSelector::default(),
                0,
                &mut rng,
            )
            .unwrap();
            if (tour.length - optimum).abs() < 1e-9 {
                hits += 1;
            }
        }
        assert!(
            hits > 40,
            "ant followed the marked trail only {hits}/50 times"
        );
    }

    #[test]
    fn high_beta_prefers_short_edges() {
        // With β large and uniform pheromone the construction approaches the
        // greedy nearest-neighbour tour, so its length should be comparable.
        let (instance, pheromone) = setup(40, 4);
        let params = AntParams {
            alpha: 0.0,
            beta: 8.0,
            ..AntParams::default()
        };
        let mut rng = MersenneTwister64::seed_from_u64(4);
        let nn = instance.nearest_neighbor_tour(0);
        let tour = construct_tour(
            &instance,
            &pheromone,
            &params,
            &LogBiddingSelector::default(),
            0,
            &mut rng,
        )
        .unwrap();
        assert!(
            tour.length < nn.length * 1.5,
            "greedy-ish construction {} much worse than nearest neighbour {}",
            tour.length,
            nn.length
        );
    }

    #[test]
    fn desirability_is_monotone_in_pheromone_and_inverse_distance() {
        let (instance, mut pheromone) = setup(5, 5);
        let params = AntParams::default();
        let base = params.desirability(&instance, &pheromone, 0, 1);
        pheromone.deposit_edge(0, 1, 5.0);
        let boosted = params.desirability(&instance, &pheromone, 0, 1);
        assert!(boosted > base);
    }

    #[test]
    fn full_exploitation_is_deterministic_and_greedy() {
        // q0 = 1 turns every step into an arg-max of desirability: with
        // uniform pheromone this is exactly the nearest-neighbour tour.
        let (instance, pheromone) = setup(25, 8);
        let params = AntParams {
            alpha: 1.0,
            beta: 1.0,
            q0: 1.0,
        };
        let mut rng_a = MersenneTwister64::seed_from_u64(1);
        let mut rng_b = MersenneTwister64::seed_from_u64(999);
        let a = construct_tour(
            &instance,
            &pheromone,
            &params,
            &LogBiddingSelector::default(),
            0,
            &mut rng_a,
        )
        .unwrap();
        let b = construct_tour(
            &instance,
            &pheromone,
            &params,
            &LogBiddingSelector::default(),
            0,
            &mut rng_b,
        )
        .unwrap();
        assert_eq!(
            a.order, b.order,
            "pure exploitation must not depend on the RNG"
        );
        let nn = instance.nearest_neighbor_tour(0);
        assert_eq!(a.order, nn.order);
    }

    #[test]
    fn intermediate_q0_still_builds_valid_tours() {
        let (instance, pheromone) = setup(20, 9);
        let params = AntParams {
            alpha: 1.0,
            beta: 2.0,
            q0: 0.9,
        };
        let mut rng = MersenneTwister64::seed_from_u64(5);
        for _ in 0..20 {
            let tour = construct_tour(
                &instance,
                &pheromone,
                &params,
                &LogBiddingSelector::default(),
                3,
                &mut rng,
            )
            .unwrap();
            assert!(tour.is_valid(20));
        }
    }

    #[test]
    #[should_panic]
    fn q0_outside_the_unit_interval_panics() {
        let (instance, pheromone) = setup(5, 10);
        let params = AntParams {
            alpha: 1.0,
            beta: 1.0,
            q0: 1.5,
        };
        let mut rng = MersenneTwister64::seed_from_u64(1);
        let _ = construct_tour(
            &instance,
            &pheromone,
            &params,
            &LogBiddingSelector::default(),
            0,
            &mut rng,
        );
    }

    #[test]
    fn dynamic_construction_builds_valid_tours() {
        let (instance, pheromone) = setup(30, 21);
        let params = AntParams::default();
        let tables = DesirabilityTables::new(&instance, &pheromone, &params);
        let mut rng = MersenneTwister64::seed_from_u64(1);
        for start in [0usize, 7, 29] {
            let tour =
                construct_tour_dynamic(&instance, &tables, &params, start, &mut rng).unwrap();
            assert!(tour.is_valid(30));
            assert_eq!(tour.order[0], start);
        }
    }

    #[test]
    fn dynamic_first_step_matches_the_selector_path_in_distribution() {
        // For a fixed pheromone state the first step is a pure roulette
        // selection over n − 1 cities; the dynamic path must follow the same
        // distribution as the exact one-shot selectors.
        let (instance, pheromone) = setup(12, 22);
        let params = AntParams::default();
        let tables = DesirabilityTables::new(&instance, &pheromone, &params);
        let trials = 30_000;

        let mut dynamic_counts = [0usize; 12];
        let mut rng = MersenneTwister64::seed_from_u64(5);
        for _ in 0..trials {
            let tour = construct_tour_dynamic(&instance, &tables, &params, 0, &mut rng).unwrap();
            dynamic_counts[tour.order[1]] += 1;
        }

        let mut selector_counts = [0usize; 12];
        let mut rng = MersenneTwister64::seed_from_u64(6);
        for _ in 0..trials {
            let tour = construct_tour(
                &instance,
                &pheromone,
                &params,
                &LinearScanSelector,
                0,
                &mut rng,
            )
            .unwrap();
            selector_counts[tour.order[1]] += 1;
        }

        let max_gap = dynamic_counts
            .iter()
            .zip(&selector_counts)
            .map(|(&a, &b)| ((a as f64 - b as f64) / trials as f64).abs())
            .fold(0.0, f64::max);
        assert!(max_gap < 0.015, "paths disagree by {max_gap}");
    }

    #[test]
    fn dynamic_full_exploitation_matches_nearest_neighbour() {
        let (instance, pheromone) = setup(25, 23);
        let params = AntParams {
            alpha: 1.0,
            beta: 1.0,
            q0: 1.0,
        };
        let tables = DesirabilityTables::new(&instance, &pheromone, &params);
        let mut rng = MersenneTwister64::seed_from_u64(1);
        let tour = construct_tour_dynamic(&instance, &tables, &params, 0, &mut rng).unwrap();
        let nn = instance.nearest_neighbor_tour(0);
        assert_eq!(tour.order, nn.order);
    }

    #[test]
    fn three_city_instance_works() {
        let instance = TspInstance::from_coords(vec![(0.0, 0.0), (1.0, 0.0), (0.0, 1.0)]);
        let pheromone = PheromoneMatrix::new(3, 1.0);
        let mut rng = MersenneTwister64::seed_from_u64(6);
        let tour = construct_tour(
            &instance,
            &pheromone,
            &AntParams::default(),
            &LinearScanSelector,
            0,
            &mut rng,
        )
        .unwrap();
        assert!(tour.is_valid(3));
        // All 3-city tours have the same length.
        assert!((tour.length - (1.0 + 1.0 + 2f64.sqrt())).abs() < 1e-12);
    }
}
