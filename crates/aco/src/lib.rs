//! # lrb-aco — ant colony optimization on top of the selection library
//!
//! The paper motivates the logarithmic random bidding with ant colony
//! optimization (ACO): when an ant constructs a TSP tour, the next city is
//! chosen by roulette wheel selection over the unvisited cities, and the
//! already-visited cities have fitness zero — exactly the "many zero fitness
//! values, small `k`" regime in which the `O(log k)` algorithm shines. This
//! crate builds that application end-to-end:
//!
//! * [`tsp`] — TSP instances (random Euclidean, circle and grid generators
//!   with known structure), tours, and tour-length evaluation.
//! * [`pheromone`] — the pheromone matrix with evaporation, deposit and
//!   MAX-MIN clamping.
//! * [`ant`] — tour construction: desirability `τ^α · η^β`, next-city choice
//!   through any [`lrb_core::Selector`], zero fitness for visited cities.
//! * [`desirability`] — shared per-city Fenwick rows (`lrb-dynamic`) that
//!   absorb pheromone updates incrementally (`O(1)` evaporation via scale
//!   factors, `O(log n)` per deposited edge), powering the
//!   [`ConstructionBackend::DynamicFenwick`] fast path.
//! * [`colony`] — the Ant System and MAX-MIN Ant System loops, with ants run
//!   in parallel via rayon (one reproducible random stream per ant).
//! * [`local_search`] — 2-opt improvement.
//! * [`graph`] / [`coloring`] — the vertex-coloring ACO the paper cites as a
//!   second application of roulette wheel selection.
//!
//! Swapping the selection strategy (exact logarithmic bidding vs the biased
//! independent roulette) is a one-line change in [`colony::ColonyParams`],
//! which is how the integration tests and benches quantify the end-to-end
//! effect of selection bias on solution quality.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ant;
pub mod colony;
pub mod coloring;
pub mod desirability;
pub mod graph;
pub mod local_search;
pub mod pheromone;
pub mod tsp;

pub use ant::{construct_tour, construct_tour_dynamic, AntParams};
pub use colony::{Colony, ColonyParams, ColonyVariant, ConstructionBackend, IterationStats};
pub use desirability::DesirabilityTables;
pub use graph::Graph;
pub use pheromone::PheromoneMatrix;
pub use tsp::{Tour, TspInstance};
