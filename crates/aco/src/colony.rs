//! The colony loop: Ant System (AS) and MAX-MIN Ant System (MMAS).
//!
//! Each iteration, `ants` tours are constructed (in parallel via rayon, one
//! reproducible random stream per ant), pheromone evaporates, and deposits
//! reinforce good tours — all ants in AS, only the iteration/global best in
//! MMAS, with trail clamping. The roulette wheel selection strategy used
//! inside the tour construction is a parameter, which is how the experiments
//! compare the exact logarithmic bidding against the biased independent
//! roulette end to end.

use lrb_core::{SelectionError, Selector};
use lrb_rng::{RandomSource, StreamFamily, Xoshiro256PlusPlus};
use rayon::prelude::*;

use crate::ant::{construct_tour, construct_tour_dynamic, AntParams};
use crate::desirability::DesirabilityTables;
use crate::local_search::two_opt;
use crate::pheromone::PheromoneMatrix;
use crate::tsp::{Tour, TspInstance};

/// Which pheromone-update rule the colony uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ColonyVariant {
    /// Classic Ant System: every ant deposits `Q / length` on its tour.
    #[default]
    AntSystem,
    /// MAX-MIN Ant System: only the best tour deposits, trails are clamped to
    /// `[τ_min, τ_max]` derived from the best tour length.
    MaxMin,
}

/// How each ant turns desirabilities into next-city choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConstructionBackend {
    /// Re-derive the desirability vector at every step and run the
    /// configured one-shot [`Selector`] over it (the paper's setting, and
    /// the path that lets experiments swap in the biased independent
    /// roulette).
    #[default]
    OneShotSelector,
    /// Shared per-city Fenwick rows ([`DesirabilityTables`]) maintained
    /// incrementally across iterations: pheromone updates cost `O(log n)`
    /// per touched edge instead of triggering a full per-ant re-derivation,
    /// and each construction step draws in `O(log n)` expected time. The
    /// selection distribution is identical to `OneShotSelector` with an
    /// exact selector.
    DynamicFenwick,
}

/// Colony configuration.
#[derive(Debug, Clone, Copy)]
pub struct ColonyParams {
    /// Number of ants per iteration.
    pub ants: usize,
    /// Construction parameters (α, β).
    pub ant_params: AntParams,
    /// Pheromone evaporation rate ρ.
    pub evaporation: f64,
    /// Deposit scale Q (AS deposits `Q / length`).
    pub deposit: f64,
    /// Update rule.
    pub variant: ColonyVariant,
    /// Whether to polish each constructed tour with 2-opt local search.
    pub local_search: bool,
    /// How ants draw their next city (one-shot selector vs dynamic Fenwick
    /// tables).
    pub construction: ConstructionBackend,
}

impl Default for ColonyParams {
    fn default() -> Self {
        Self {
            ants: 16,
            ant_params: AntParams::default(),
            evaporation: 0.1,
            deposit: 1.0,
            variant: ColonyVariant::AntSystem,
            local_search: false,
            construction: ConstructionBackend::OneShotSelector,
        }
    }
}

/// Statistics of one colony iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationStats {
    /// Iteration index (0-based).
    pub iteration: usize,
    /// Length of the best tour found in this iteration.
    pub iteration_best: f64,
    /// Length of the best tour found so far.
    pub global_best: f64,
    /// Mean tour length over this iteration's ants.
    pub mean_length: f64,
}

/// An ant colony bound to one TSP instance and one selection strategy.
pub struct Colony<'a> {
    instance: &'a TspInstance,
    selector: &'a dyn Selector,
    params: ColonyParams,
    pheromone: PheromoneMatrix,
    /// Incrementally maintained desirability rows
    /// (`ConstructionBackend::DynamicFenwick` only).
    tables: Option<DesirabilityTables>,
    streams: StreamFamily,
    best: Option<Tour>,
    iteration: usize,
}

impl<'a> Colony<'a> {
    /// Create a colony. `seed` drives every random decision (ant streams and
    /// start cities), so a `(seed, selector, params)` triple is fully
    /// reproducible.
    pub fn new(
        instance: &'a TspInstance,
        selector: &'a dyn Selector,
        params: ColonyParams,
        seed: u64,
    ) -> Self {
        assert!(params.ants >= 1, "a colony needs at least one ant");
        let n = instance.len();
        // AS initialises trails to a moderate constant; MMAS to the upper
        // bound derived from the nearest-neighbour tour.
        let pheromone = match params.variant {
            ColonyVariant::AntSystem => PheromoneMatrix::new(n, 1.0),
            ColonyVariant::MaxMin => {
                let nn = instance.nearest_neighbor_tour(0);
                let tau_max = 1.0 / (params.evaporation.max(1e-9) * nn.length);
                let tau_min = tau_max / (2.0 * n as f64);
                PheromoneMatrix::with_bounds(n, tau_min, tau_max)
            }
        };
        let tables = match params.construction {
            ConstructionBackend::OneShotSelector => None,
            ConstructionBackend::DynamicFenwick => Some(DesirabilityTables::new(
                instance,
                &pheromone,
                &params.ant_params,
            )),
        };
        Self {
            instance,
            selector,
            params,
            pheromone,
            tables,
            streams: StreamFamily::new(seed),
            best: Option::None,
            iteration: 0,
        }
    }

    /// The best tour found so far, if any iteration has run.
    pub fn best_tour(&self) -> Option<&Tour> {
        self.best.as_ref()
    }

    /// The pheromone matrix (for inspection and tests).
    pub fn pheromone(&self) -> &PheromoneMatrix {
        &self.pheromone
    }

    /// Run one iteration: construct all ant tours, update the pheromone, and
    /// return the iteration statistics.
    pub fn run_iteration(&mut self) -> Result<IterationStats, SelectionError> {
        let n = self.instance.len();
        let iteration = self.iteration;
        let instance = self.instance;
        let pheromone = &self.pheromone;
        let params = &self.params;
        let selector = self.selector;
        let streams = &self.streams;

        // Construct tours in parallel: ant `a` of iteration `t` owns stream
        // `t·ants + a`, so results do not depend on the thread schedule. The
        // dynamic tables are read-only during this phase and shared by all
        // ants.
        let tables = self.tables.as_ref();
        // Each item is a whole tour construction — expensive enough that the
        // fan-out is worth it even for a handful of ants.
        let tours: Result<Vec<Tour>, SelectionError> = (0..params.ants)
            .into_par_iter()
            .with_min_len(1)
            .map(|ant| {
                let stream_id = (iteration * params.ants + ant) as u64;
                let mut rng: Xoshiro256PlusPlus = streams.stream(stream_id);
                let start = (rng.next_u64() % n as u64) as usize;
                let mut tour = match tables {
                    Some(tables) => construct_tour_dynamic(
                        instance,
                        tables,
                        &params.ant_params,
                        start,
                        &mut rng,
                    )?,
                    None => construct_tour(
                        instance,
                        pheromone,
                        &params.ant_params,
                        selector,
                        start,
                        &mut rng,
                    )?,
                };
                if params.local_search {
                    tour = two_opt(instance, &tour, 2 * n);
                }
                Ok(tour)
            })
            .collect();
        let tours = tours?;

        // Iteration statistics.
        let mean_length = tours.iter().map(|t| t.length).sum::<f64>() / tours.len() as f64;
        let iteration_best = tours
            .iter()
            .min_by(|a, b| a.length.partial_cmp(&b.length).expect("finite lengths"))
            .expect("at least one ant")
            .clone();

        // Update the global best.
        let improved = self
            .best
            .as_ref()
            .is_none_or(|b| iteration_best.length < b.length);
        if improved {
            self.best = Some(iteration_best.clone());
        }
        let global_best = self.best.as_ref().expect("best set above").clone();

        // Pheromone update, mirrored into the dynamic tables where they
        // exist: Ant System evaporation is a pure scaling (absorbed into the
        // per-row scale factors in O(n)) and each deposited edge is an
        // O(log n) Fenwick refresh — no full rebuild. MMAS re-clamps the
        // whole matrix, so its tables are reloaded once per iteration.
        self.pheromone.evaporate(self.params.evaporation);
        match self.params.variant {
            ColonyVariant::AntSystem => {
                if let Some(tables) = &mut self.tables {
                    tables.evaporate(self.params.evaporation);
                }
                for tour in &tours {
                    self.pheromone
                        .deposit_tour(&tour.order, self.params.deposit / tour.length);
                }
                if let Some(tables) = &mut self.tables {
                    for tour in &tours {
                        tables.refresh_tour_edges(&self.pheromone, &tour.order);
                    }
                }
            }
            ColonyVariant::MaxMin => {
                // Re-derive the clamping bounds from the global best, then let
                // only the global-best tour deposit.
                let tau_max = 1.0 / (self.params.evaporation.max(1e-9) * global_best.length);
                let tau_min = tau_max / (2.0 * n as f64);
                self.pheromone.set_bounds(tau_min, tau_max);
                self.pheromone
                    .deposit_tour(&global_best.order, self.params.deposit / global_best.length);
                if let Some(tables) = &mut self.tables {
                    tables.reload(&self.pheromone);
                }
            }
        }

        self.iteration += 1;
        Ok(IterationStats {
            iteration,
            iteration_best: iteration_best.length,
            global_best: global_best.length,
            mean_length,
        })
    }

    /// Run `iterations` iterations and return the per-iteration statistics.
    pub fn run(&mut self, iterations: usize) -> Result<Vec<IterationStats>, SelectionError> {
        (0..iterations).map(|_| self.run_iteration()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrb_core::parallel::{IndependentRouletteSelector, LogBiddingSelector};

    #[test]
    fn colony_improves_over_random_tours_on_a_circle() {
        let instance = TspInstance::circle(20, 1.0);
        let selector = LogBiddingSelector::default();
        let mut colony = Colony::new(&instance, &selector, ColonyParams::default(), 1);
        let stats = colony.run(30).unwrap();
        let optimum = TspInstance::circle_optimum(20, 1.0);
        let best = colony.best_tour().unwrap();
        assert!(best.is_valid(20));
        // The colony should get within 30% of the optimum on this easy
        // instance, and must improve monotonically in its global best.
        assert!(
            best.length < optimum * 1.3,
            "best {} vs optimum {optimum}",
            best.length
        );
        for w in stats.windows(2) {
            assert!(w[1].global_best <= w[0].global_best + 1e-12);
        }
    }

    #[test]
    fn global_best_is_never_worse_than_iteration_best() {
        let instance = TspInstance::random_euclidean(25, 3);
        let selector = LogBiddingSelector::default();
        let mut colony = Colony::new(&instance, &selector, ColonyParams::default(), 2);
        for _ in 0..10 {
            let s = colony.run_iteration().unwrap();
            assert!(s.global_best <= s.iteration_best + 1e-12);
            assert!(s.iteration_best <= s.mean_length + 1e-12);
        }
    }

    #[test]
    fn colonies_are_reproducible_for_a_fixed_seed() {
        let instance = TspInstance::random_euclidean(15, 4);
        let selector = LogBiddingSelector::default();
        let run = |seed: u64| {
            let mut colony = Colony::new(&instance, &selector, ColonyParams::default(), seed);
            colony.run(5).unwrap().last().unwrap().global_best
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn mmas_keeps_trails_within_bounds() {
        let instance = TspInstance::random_euclidean(12, 5);
        let selector = LogBiddingSelector::default();
        let params = ColonyParams {
            variant: ColonyVariant::MaxMin,
            ..ColonyParams::default()
        };
        let mut colony = Colony::new(&instance, &selector, params, 3);
        colony.run(10).unwrap();
        let (min, max) = colony.pheromone().bounds();
        assert!(colony.pheromone().max_value() <= max + 1e-12);
        assert!(colony.pheromone().min_off_diagonal() >= min - 1e-12);
        assert!(min > 0.0 && max > min);
    }

    #[test]
    fn local_search_variant_produces_no_worse_tours() {
        let instance = TspInstance::random_euclidean(20, 6);
        let selector = LogBiddingSelector::default();
        let base = {
            let mut c = Colony::new(&instance, &selector, ColonyParams::default(), 11);
            c.run(8).unwrap().last().unwrap().global_best
        };
        let polished = {
            let params = ColonyParams {
                local_search: true,
                ..ColonyParams::default()
            };
            let mut c = Colony::new(&instance, &selector, params, 11);
            c.run(8).unwrap().last().unwrap().global_best
        };
        assert!(
            polished <= base + 1e-9,
            "2-opt made things worse: {polished} vs {base}"
        );
    }

    #[test]
    fn independent_roulette_also_runs_but_is_flagged_inexact() {
        // End-to-end sanity: the biased selector still yields valid tours;
        // quality comparison is exercised in the integration tests.
        let instance = TspInstance::random_euclidean(15, 7);
        let selector = IndependentRouletteSelector;
        let mut colony = Colony::new(&instance, &selector, ColonyParams::default(), 4);
        colony.run(5).unwrap();
        assert!(colony.best_tour().unwrap().is_valid(15));
        assert!(!selector.is_exact());
    }

    #[test]
    fn dynamic_backend_improves_over_random_tours_on_a_circle() {
        let instance = TspInstance::circle(20, 1.0);
        let selector = LogBiddingSelector::default();
        let params = ColonyParams {
            construction: ConstructionBackend::DynamicFenwick,
            ..ColonyParams::default()
        };
        let mut colony = Colony::new(&instance, &selector, params, 1);
        let stats = colony.run(30).unwrap();
        let optimum = TspInstance::circle_optimum(20, 1.0);
        let best = colony.best_tour().unwrap();
        assert!(best.is_valid(20));
        assert!(
            best.length < optimum * 1.3,
            "best {} vs optimum {optimum}",
            best.length
        );
        for w in stats.windows(2) {
            assert!(w[1].global_best <= w[0].global_best + 1e-12);
        }
    }

    #[test]
    fn dynamic_backend_is_reproducible_and_works_for_both_variants() {
        let instance = TspInstance::random_euclidean(18, 12);
        let selector = LogBiddingSelector::default();
        for variant in [ColonyVariant::AntSystem, ColonyVariant::MaxMin] {
            let params = ColonyParams {
                variant,
                construction: ConstructionBackend::DynamicFenwick,
                ..ColonyParams::default()
            };
            let run = |seed: u64| {
                let mut colony = Colony::new(&instance, &selector, params, seed);
                colony.run(8).unwrap().last().unwrap().global_best
            };
            assert_eq!(run(5), run(5), "{variant:?} not reproducible");
            let mut colony = Colony::new(&instance, &selector, params, 5);
            colony.run(8).unwrap();
            assert!(colony.best_tour().unwrap().is_valid(18), "{variant:?}");
        }
    }

    #[test]
    fn dynamic_backend_matches_selector_backend_quality() {
        // Same instance, same budget: the dynamic construction follows the
        // same distribution as the exact selectors, so the tour quality must
        // land in the same range (not bitwise: the RNG consumption differs).
        let instance = TspInstance::random_euclidean(30, 14);
        let selector = LogBiddingSelector::default();
        let quality = |construction: ConstructionBackend| {
            let params = ColonyParams {
                construction,
                ..ColonyParams::default()
            };
            let mut colony = Colony::new(&instance, &selector, params, 9);
            colony.run(20).unwrap().last().unwrap().global_best
        };
        let one_shot = quality(ConstructionBackend::OneShotSelector);
        let dynamic = quality(ConstructionBackend::DynamicFenwick);
        assert!(
            (dynamic - one_shot).abs() / one_shot < 0.15,
            "one-shot {one_shot} vs dynamic {dynamic}"
        );
    }

    #[test]
    #[should_panic]
    fn zero_ants_is_rejected() {
        let instance = TspInstance::random_euclidean(10, 8);
        let selector = LogBiddingSelector::default();
        let params = ColonyParams {
            ants: 0,
            ..ColonyParams::default()
        };
        let _ = Colony::new(&instance, &selector, params, 1);
    }
}
