//! Shared desirability tables backed by `lrb-dynamic` Fenwick samplers: the
//! dynamic-selection fast path for tour construction.
//!
//! The classic construction ([`construct_tour`](crate::ant::construct_tour))
//! re-derives the full desirability vector `τ(c, j)^α · η(c, j)^β` from
//! scratch at **every step of every ant** — `O(n)` work plus a vector
//! allocation per step, `O(ants · n²)` per colony iteration — even though
//! within one iteration the pheromone matrix never changes. These tables
//! turn that around:
//!
//! * One [`FenwickSampler`] per *current city* row, built once and then
//!   **updated in place** as the pheromone changes: evaporation multiplies a
//!   whole row by a constant, which is absorbed into a per-row scale factor
//!   in `O(1)`, and a deposit touches one edge, which is an `O(log n)`
//!   Fenwick update — pheromone updates no longer trigger full rebuilds.
//! * During construction the rows are immutable and shared by every ant, so
//!   the rayon ants read them concurrently. The visited-city filter is
//!   applied per ant by rejection sampling (exact: conditioning a roulette
//!   wheel on the accepted subset preserves the relative probabilities),
//!   with an `O(k)` exact fallback over the unvisited list once the visited
//!   mass dominates.
//!
//! The MAX-MIN variant clamps every trail after each update, which breaks
//! the pure-scaling structure; colonies running MMAS call
//! [`DesirabilityTables::reload`] once per iteration instead — still `ants×`
//! cheaper than the per-ant re-derivation.

use lrb_core::{DynamicSampler, SelectionError};
use lrb_dynamic::FenwickSampler;
use lrb_rng::RandomSource;

use crate::ant::AntParams;
use crate::pheromone::PheromoneMatrix;
use crate::tsp::TspInstance;

/// Rejection-sampling attempts before falling back to the exact `O(k)` scan
/// over the unvisited list.
///
/// The cardinality gate below (`4·k ≥ n`) only bounds how many cities are
/// unvisited, not how much *mass* they carry: a converged colony can pile
/// well over 99% of a row's desirability onto already-visited neighbours,
/// making the acceptance rate tiny even early in a tour. A small cap bounds
/// that worst case at four wasted `O(log n)` descents before the exact
/// fallback, while the common high-acceptance case still succeeds on the
/// first draw.
const MAX_REJECTIONS: usize = 4;

/// When a scale factor decays below this, the row is renormalised so tree
/// entries stay within `f64` range over arbitrarily long runs.
const MIN_SCALE: f64 = 1e-120;

/// Per-city Fenwick rows over `τ^α · η^β`, maintained incrementally.
#[derive(Debug, Clone)]
pub struct DesirabilityTables {
    /// Row `c` holds the desirability of moving from `c` to each city
    /// (diagonal forced to zero), divided by `scales[c]`.
    rows: Vec<FenwickSampler>,
    /// Row scale factors: `true weight = tree weight · scale`.
    scales: Vec<f64>,
    /// Precomputed `η(c, j)^β` (distances never change).
    visibility_pow: Vec<f64>,
    alpha: f64,
    n: usize,
}

impl DesirabilityTables {
    /// Build the tables for an instance, a pheromone state and construction
    /// parameters (`α`, `β`).
    ///
    /// # Example
    ///
    /// ```
    /// use lrb_aco::{AntParams, DesirabilityTables, PheromoneMatrix, TspInstance};
    ///
    /// let instance = TspInstance::random_euclidean(10, 1);
    /// let pheromone = PheromoneMatrix::new(10, 1.0);
    /// let tables = DesirabilityTables::new(&instance, &pheromone, &AntParams::default());
    /// assert_eq!(tables.len(), 10);
    /// assert_eq!(tables.weight(3, 3), 0.0); // staying put is never desirable
    /// assert!(tables.weight(3, 4) > 0.0);
    /// ```
    pub fn new(instance: &TspInstance, pheromone: &PheromoneMatrix, params: &AntParams) -> Self {
        let n = instance.len();
        assert_eq!(pheromone.len(), n, "pheromone matrix and instance disagree");
        let mut visibility_pow = vec![0.0; n * n];
        for c in 0..n {
            for j in 0..n {
                if c != j {
                    let distance = instance.distance(c, j).max(1e-12);
                    visibility_pow[c * n + j] = (1.0 / distance).powf(params.beta);
                }
            }
        }
        let mut tables = Self {
            rows: Vec::with_capacity(n),
            scales: vec![1.0; n],
            visibility_pow,
            alpha: params.alpha,
            n,
        };
        for c in 0..n {
            let weights = tables.true_row(c, pheromone);
            tables
                .rows
                .push(FenwickSampler::from_weights(weights).expect("n >= 2 validated rows"));
        }
        tables
    }

    /// Number of cities.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the tables cover zero cities (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The current desirability of moving from `current` to `to`
    /// (zero on the diagonal).
    pub fn weight(&self, current: usize, to: usize) -> f64 {
        self.rows[current].weight(to) * self.scales[current]
    }

    /// The full desirability row as stored (scaled tree weights).
    fn true_row(&self, c: usize, pheromone: &PheromoneMatrix) -> Vec<f64> {
        (0..self.n)
            .map(|j| {
                if j == c {
                    0.0
                } else {
                    pheromone.get(c, j).powf(self.alpha) * self.visibility_pow[c * self.n + j]
                }
            })
            .collect()
    }

    /// Absorb a whole-matrix evaporation `τ ← (1 − rate)·τ` in `O(n)` total:
    /// each row's scale factor is multiplied by `(1 − rate)^α`.
    ///
    /// Only valid while the pheromone matrix applies no clamping (the Ant
    /// System case); MMAS colonies use [`reload`](Self::reload).
    pub fn evaporate(&mut self, rate: f64) {
        assert!((0.0..=1.0).contains(&rate));
        let factor = (1.0 - rate).powf(self.alpha);
        for c in 0..self.n {
            self.scales[c] *= factor;
            if self.scales[c] < MIN_SCALE {
                self.renormalise_row(c);
            }
        }
    }

    /// Fold a decayed scale factor back into the tree weights.
    fn renormalise_row(&mut self, c: usize) {
        let scale = self.scales[c];
        let weights: Vec<f64> = self.rows[c].weights().iter().map(|w| w * scale).collect();
        self.rows[c]
            .reload(&weights)
            .expect("scaled weights stay finite and non-negative");
        self.scales[c] = 1.0;
    }

    /// Re-read the trails along a deposited tour's edges — `O(log n)` per
    /// touched edge, both directions of each edge.
    ///
    /// Reading the *current* matrix value makes the refresh idempotent, so
    /// overlapping deposits from several ants are handled by refreshing each
    /// tour in turn.
    pub fn refresh_tour_edges(&mut self, pheromone: &PheromoneMatrix, order: &[usize]) {
        if order.len() < 2 {
            return;
        }
        for w in order.windows(2) {
            self.refresh_edge(pheromone, w[0], w[1]);
        }
        let first = order[0];
        let last = *order.last().expect("len checked above");
        self.refresh_edge(pheromone, last, first);
    }

    /// Re-read one (symmetric) edge from the pheromone matrix.
    pub fn refresh_edge(&mut self, pheromone: &PheromoneMatrix, a: usize, b: usize) {
        if a == b {
            return;
        }
        for (row, col) in [(a, b), (b, a)] {
            let true_weight =
                pheromone.get(row, col).powf(self.alpha) * self.visibility_pow[row * self.n + col];
            self.rows[row]
                .update(col, true_weight / self.scales[row])
                .expect("desirabilities are finite and non-negative");
        }
    }

    /// Rebuild every row from the matrix (`O(n²)`): required after MMAS
    /// re-clamping, where evaporation is no longer a pure scaling.
    pub fn reload(&mut self, pheromone: &PheromoneMatrix) {
        for c in 0..self.n {
            self.scales[c] = 1.0;
            let weights = self.true_row(c, pheromone);
            self.rows[c]
                .reload(&weights)
                .expect("desirabilities are finite and non-negative");
        }
    }

    /// Draw the next city for an ant at `current`, conditioned on the
    /// unvisited set — exact roulette wheel probabilities
    /// `w_j / Σ_{u unvisited} w_u`.
    ///
    /// Strategy: rejection-sample the shared row (`O(log n)` per attempt,
    /// exact by conditioning) while the unvisited mass is likely to
    /// dominate, then fall back to an exact `O(k)` scan over `unvisited`.
    pub fn next_city(
        &self,
        current: usize,
        visited: &[bool],
        unvisited: &[usize],
        rng: &mut dyn RandomSource,
    ) -> Result<usize, SelectionError> {
        debug_assert_eq!(visited.len(), self.n);
        let k = unvisited.len();
        if k == 0 {
            return Err(SelectionError::AllZeroFitness);
        }
        // Rejection sampling pays while the acceptance rate is decent; once
        // most cities are visited (k ≪ n) the exact fallback is cheaper.
        if 4 * k >= self.n {
            // First attempt alone: in the common high-acceptance case it
            // succeeds immediately and nothing else is paid.
            let candidate = self.rows[current].sample(rng)?;
            if !visited[candidate] {
                return Ok(candidate);
            }
            // Rejected: draw the remaining attempts as one burst through the
            // batch primitive, which hoists the row's O(log n) total-weight
            // read out of the per-attempt loop. Scanning the buffer in order
            // is distribution-identical to sequential rejection attempts
            // (each entry is an independent draw from the same row).
            let mut burst = [0usize; MAX_REJECTIONS - 1];
            self.rows[current].sample_into(rng, &mut burst)?;
            if let Some(&candidate) = burst.iter().find(|&&c| !visited[c]) {
                return Ok(candidate);
            }
        }
        // Exact conditional draw over the unvisited list (tree weights share
        // the row scale, which cancels in the normalisation).
        let row = &self.rows[current];
        let total: f64 = unvisited.iter().map(|&j| row.weight(j)).sum();
        if total <= 0.0 {
            return Err(SelectionError::AllZeroFitness);
        }
        let mut r = rng.next_f64() * total;
        let mut last_positive = None;
        for &j in unvisited {
            let w = row.weight(j);
            if w <= 0.0 {
                continue;
            }
            if r < w {
                return Ok(j);
            }
            last_positive = Some(j);
            r -= w;
        }
        last_positive.ok_or(SelectionError::AllZeroFitness)
    }

    /// The unvisited city with the highest desirability from `current`
    /// (the ACS `q₀` exploitation step), `O(k)`.
    pub fn best_unvisited(&self, current: usize, unvisited: &[usize]) -> Option<usize> {
        let row = &self.rows[current];
        unvisited.iter().copied().max_by(|&a, &b| {
            row.weight(a)
                .partial_cmp(&row.weight(b))
                .expect("finite desirabilities")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrb_rng::{MersenneTwister64, SeedableSource};

    fn setup(n: usize, seed: u64) -> (TspInstance, PheromoneMatrix, AntParams) {
        (
            TspInstance::random_euclidean(n, seed),
            PheromoneMatrix::new(n, 1.0),
            AntParams::default(),
        )
    }

    #[test]
    fn tables_match_the_direct_desirability_formula() {
        let (instance, pheromone, params) = setup(12, 1);
        let tables = DesirabilityTables::new(&instance, &pheromone, &params);
        for c in 0..12 {
            assert_eq!(tables.weight(c, c), 0.0);
            for j in 0..12 {
                if j == c {
                    continue;
                }
                let direct = params.desirability(&instance, &pheromone, c, j);
                let tabled = tables.weight(c, j);
                assert!(
                    (direct - tabled).abs() <= 1e-12 * direct.max(1.0),
                    "({c},{j}): {tabled} vs {direct}"
                );
            }
        }
    }

    #[test]
    fn evaporate_plus_refresh_tracks_the_matrix_exactly() {
        let (instance, mut pheromone, params) = setup(10, 2);
        let mut tables = DesirabilityTables::new(&instance, &pheromone, &params);

        for round in 0..50 {
            pheromone.evaporate(0.1);
            tables.evaporate(0.1);
            let order: Vec<usize> = (0..10).map(|i| (i * 3 + round) % 10).collect();
            // The synthetic "tour" visits some cities twice and that's fine:
            // refresh reads the final matrix state.
            pheromone.deposit_tour(&order, 0.25);
            tables.refresh_tour_edges(&pheromone, &order);
        }

        for c in 0..10 {
            for j in 0..10 {
                if j == c {
                    continue;
                }
                let direct = params.desirability(&instance, &pheromone, c, j);
                let tabled = tables.weight(c, j);
                assert!(
                    (direct - tabled).abs() <= 1e-9 * direct.max(1.0),
                    "({c},{j}): {tabled} vs {direct}"
                );
            }
        }
    }

    #[test]
    fn long_evaporation_runs_renormalise_without_drift() {
        let (instance, mut pheromone, params) = setup(6, 3);
        let mut tables = DesirabilityTables::new(&instance, &pheromone, &params);
        // 0.9^9000 ≈ 1e-412 underflows f64; the scale-factor renormalisation
        // must keep the tables finite and accurate.
        for _ in 0..9_000 {
            pheromone.evaporate(0.1);
            tables.evaporate(0.1);
            // Keep the matrix itself from underflowing entirely.
            if pheromone.max_value() < 1e-3 {
                let order: Vec<usize> = (0..6).collect();
                pheromone.deposit_tour(&order, 1.0);
                tables.refresh_tour_edges(&pheromone, &order);
            }
        }
        for c in 0..6 {
            for j in 0..6 {
                if j == c {
                    continue;
                }
                let direct = params.desirability(&instance, &pheromone, c, j);
                let tabled = tables.weight(c, j);
                assert!(tabled.is_finite());
                assert!(
                    (direct - tabled).abs() <= 1e-6 * direct.max(1e-12),
                    "({c},{j}): {tabled} vs {direct}"
                );
            }
        }
    }

    #[test]
    fn reload_resyncs_after_clamped_updates() {
        let (instance, mut pheromone, params) = setup(8, 4);
        let mut tables = DesirabilityTables::new(&instance, &pheromone, &params);
        pheromone.set_bounds(0.05, 0.5); // clamps every value: scaling breaks
        pheromone.evaporate(0.5);
        tables.reload(&pheromone);
        for c in 0..8 {
            for j in 0..8 {
                if j == c {
                    continue;
                }
                let direct = params.desirability(&instance, &pheromone, c, j);
                assert!((direct - tables.weight(c, j)).abs() <= 1e-12 * direct.max(1.0));
            }
        }
    }

    #[test]
    fn next_city_distribution_matches_the_conditional_roulette() {
        let (instance, pheromone, params) = setup(9, 5);
        let tables = DesirabilityTables::new(&instance, &pheromone, &params);
        let mut visited = vec![false; 9];
        for dead in [0usize, 3, 4] {
            visited[dead] = true;
        }
        let unvisited: Vec<usize> = (0..9).filter(|&j| !visited[j]).collect();
        let current = 0;

        let total: f64 = unvisited.iter().map(|&j| tables.weight(current, j)).sum();
        let mut rng = MersenneTwister64::seed_from_u64(7);
        let trials = 60_000;
        let mut counts = [0u64; 9];
        for _ in 0..trials {
            let next = tables
                .next_city(current, &visited, &unvisited, &mut rng)
                .unwrap();
            assert!(!visited[next], "drew a visited city");
            counts[next] += 1;
        }
        for &j in &unvisited {
            let freq = counts[j] as f64 / trials as f64;
            let target = tables.weight(current, j) / total;
            assert!((freq - target).abs() < 0.01, "city {j}: {freq} vs {target}");
        }
    }

    #[test]
    fn next_city_uses_the_exact_path_when_few_cities_remain() {
        let (instance, pheromone, params) = setup(30, 6);
        let tables = DesirabilityTables::new(&instance, &pheromone, &params);
        let mut visited = vec![true; 30];
        visited[17] = false;
        visited[21] = false;
        let unvisited = vec![17usize, 21];
        let mut rng = MersenneTwister64::seed_from_u64(8);
        for _ in 0..200 {
            let next = tables.next_city(5, &visited, &unvisited, &mut rng).unwrap();
            assert!(next == 17 || next == 21);
        }
    }

    #[test]
    fn exhausted_unvisited_list_reports_all_zero() {
        let (instance, pheromone, params) = setup(5, 7);
        let tables = DesirabilityTables::new(&instance, &pheromone, &params);
        let visited = vec![true; 5];
        let mut rng = MersenneTwister64::seed_from_u64(9);
        assert_eq!(
            tables.next_city(2, &visited, &[], &mut rng),
            Err(SelectionError::AllZeroFitness)
        );
    }

    #[test]
    fn best_unvisited_is_the_argmax() {
        let (instance, pheromone, params) = setup(10, 8);
        let tables = DesirabilityTables::new(&instance, &pheromone, &params);
        let unvisited: Vec<usize> = (1..10).collect();
        let best = tables.best_unvisited(0, &unvisited).unwrap();
        let brute = unvisited
            .iter()
            .copied()
            .max_by(|&a, &b| {
                tables
                    .weight(0, a)
                    .partial_cmp(&tables.weight(0, b))
                    .unwrap()
            })
            .unwrap();
        assert_eq!(best, brute);
        assert!(tables.best_unvisited(0, &[]).is_none());
    }
}
