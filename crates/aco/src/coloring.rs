//! Ant-colony vertex coloring — the second application of roulette wheel
//! selection the paper cites (Murooka, Ito & Nakano, 2016).
//!
//! Each ant colors the vertices in descending-degree order. For every vertex
//! it builds a fitness vector over the candidate colors: colors already used
//! by a colored neighbour get fitness **zero** (the sparse-fitness pattern
//! again), the rest are weighted by a per-(vertex, color) pheromone trail and
//! a "prefer already-popular colors" heuristic that drives the total color
//! count down. The color is then drawn with any [`Selector`]. The best
//! coloring of each iteration reinforces its (vertex, color) choices.

use lrb_core::{Fitness, SelectionError, Selector};
use lrb_rng::{StreamFamily, Xoshiro256PlusPlus};

use crate::graph::Graph;

/// Parameters of the coloring colony.
#[derive(Debug, Clone, Copy)]
pub struct ColoringParams {
    /// Number of ants per iteration.
    pub ants: usize,
    /// Pheromone exponent.
    pub alpha: f64,
    /// Heuristic (color popularity) exponent.
    pub beta: f64,
    /// Pheromone evaporation rate.
    pub evaporation: f64,
    /// Number of candidate colors; `None` uses `max_degree + 1`, which always
    /// admits a proper coloring.
    pub max_colors: Option<usize>,
}

impl Default for ColoringParams {
    fn default() -> Self {
        Self {
            ants: 8,
            alpha: 1.0,
            beta: 2.0,
            evaporation: 0.2,
            max_colors: None,
        }
    }
}

/// A proper coloring and its color count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColoringResult {
    /// Color assigned to each vertex.
    pub colors: Vec<usize>,
    /// Number of distinct colors used.
    pub colors_used: usize,
}

/// Greedy (Welsh–Powell style) coloring in descending-degree order: the
/// baseline the ACO must at least match.
pub fn greedy_coloring(graph: &Graph) -> ColoringResult {
    let order = degree_order(graph);
    let n = graph.len();
    let mut colors = vec![usize::MAX; n];
    for &v in &order {
        let mut used: Vec<bool> = vec![false; n];
        for &u in graph.neighbors(v) {
            if colors[u] != usize::MAX {
                used[colors[u]] = true;
            }
        }
        colors[v] = (0..n).find(|&c| !used[c]).expect("n colors always suffice");
    }
    let colors_used = Graph::colors_used(&colors);
    ColoringResult {
        colors,
        colors_used,
    }
}

fn degree_order(graph: &Graph) -> Vec<usize> {
    let mut order: Vec<usize> = (0..graph.len()).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(graph.degree(v)));
    order
}

/// The ant-colony coloring solver.
pub struct ColoringColony<'a> {
    graph: &'a Graph,
    selector: &'a dyn Selector,
    params: ColoringParams,
    max_colors: usize,
    /// Pheromone trail per (vertex, color), row-major.
    pheromone: Vec<f64>,
    streams: StreamFamily,
    best: Option<ColoringResult>,
    iteration: usize,
}

impl<'a> ColoringColony<'a> {
    /// Create a coloring colony over `graph` using the given selection
    /// strategy; `seed` makes the run reproducible.
    pub fn new(
        graph: &'a Graph,
        selector: &'a dyn Selector,
        params: ColoringParams,
        seed: u64,
    ) -> Self {
        assert!(params.ants >= 1);
        let max_colors = params.max_colors.unwrap_or(graph.max_degree() + 1).max(1);
        // Seed the incumbent with the greedy coloring so the colony's best can
        // only match or improve on the classical baseline, and so its first
        // pheromone reinforcement already points at a proper coloring.
        let greedy = greedy_coloring(graph);
        let best = (greedy.colors_used <= max_colors).then_some(greedy);
        Self {
            graph,
            selector,
            params,
            max_colors,
            pheromone: vec![1.0; graph.len() * max_colors],
            streams: StreamFamily::new(seed),
            best,
            iteration: 0,
        }
    }

    /// The best proper coloring found so far.
    pub fn best(&self) -> Option<&ColoringResult> {
        self.best.as_ref()
    }

    fn tau(&self, vertex: usize, color: usize) -> f64 {
        self.pheromone[vertex * self.max_colors + color]
    }

    fn construct_coloring(
        &self,
        rng: &mut dyn lrb_rng::RandomSource,
    ) -> Result<ColoringResult, SelectionError> {
        let n = self.graph.len();
        let order = degree_order(self.graph);
        let mut colors = vec![usize::MAX; n];
        let mut color_usage = vec![0usize; self.max_colors];

        for &v in &order {
            let mut forbidden = vec![false; self.max_colors];
            for &u in self.graph.neighbors(v) {
                if colors[u] != usize::MAX {
                    forbidden[colors[u]] = true;
                }
            }
            let fitness_values: Vec<f64> = (0..self.max_colors)
                .map(|c| {
                    if forbidden[c] {
                        0.0
                    } else {
                        let popularity = 1.0 + color_usage[c] as f64;
                        self.tau(v, c).powf(self.params.alpha) * popularity.powf(self.params.beta)
                    }
                })
                .collect();
            let fitness = Fitness::new(fitness_values)?;
            let color = self.selector.select(&fitness, rng)?;
            colors[v] = color;
            color_usage[color] += 1;
        }

        debug_assert!(self.graph.is_proper_coloring(&colors));
        let colors_used = Graph::colors_used(&colors);
        Ok(ColoringResult {
            colors,
            colors_used,
        })
    }

    /// Run one iteration (all ants + pheromone update); returns the best
    /// color count seen so far.
    pub fn run_iteration(&mut self) -> Result<usize, SelectionError> {
        let mut iteration_best: Option<ColoringResult> = None;
        for ant in 0..self.params.ants {
            let stream_id = (self.iteration * self.params.ants + ant) as u64;
            let mut rng: Xoshiro256PlusPlus = self.streams.stream(stream_id);
            let result = self.construct_coloring(&mut rng)?;
            if iteration_best
                .as_ref()
                .is_none_or(|b| result.colors_used < b.colors_used)
            {
                iteration_best = Some(result);
            }
        }
        let iteration_best = iteration_best.expect("at least one ant ran");

        if self
            .best
            .as_ref()
            .is_none_or(|b| iteration_best.colors_used < b.colors_used)
        {
            self.best = Some(iteration_best);
        }
        let best = self.best.as_ref().expect("set above");

        // Evaporate, then reinforce the global best coloring.
        let keep = 1.0 - self.params.evaporation;
        for tau in &mut self.pheromone {
            *tau = (*tau * keep).max(1e-6);
        }
        let reward = 1.0 / best.colors_used as f64;
        for (v, &c) in best.colors.iter().enumerate() {
            self.pheromone[v * self.max_colors + c] += reward;
        }

        self.iteration += 1;
        Ok(best.colors_used)
    }

    /// Run `iterations` iterations and return the best coloring found.
    pub fn run(&mut self, iterations: usize) -> Result<ColoringResult, SelectionError> {
        for _ in 0..iterations {
            self.run_iteration()?;
        }
        Ok(self.best.clone().expect("at least one iteration ran"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrb_core::parallel::LogBiddingSelector;
    use lrb_core::sequential::LinearScanSelector;

    #[test]
    fn greedy_coloring_is_proper_and_bounded_by_max_degree_plus_one() {
        for graph in [
            Graph::cycle(7),
            Graph::complete(6),
            Graph::petersen(),
            Graph::random(60, 0.2, 1),
        ] {
            let result = greedy_coloring(&graph);
            assert!(graph.is_proper_coloring(&result.colors));
            assert!(result.colors_used <= graph.max_degree() + 1);
        }
    }

    #[test]
    fn greedy_coloring_known_chromatic_numbers() {
        assert_eq!(greedy_coloring(&Graph::complete(5)).colors_used, 5);
        assert_eq!(greedy_coloring(&Graph::cycle(6)).colors_used, 2);
        let odd = greedy_coloring(&Graph::cycle(7));
        assert!(odd.colors_used >= 3);
    }

    #[test]
    fn aco_coloring_is_always_proper() {
        let graph = Graph::random(40, 0.25, 2);
        let selector = LogBiddingSelector::default();
        let mut colony = ColoringColony::new(&graph, &selector, ColoringParams::default(), 1);
        let result = colony.run(10).unwrap();
        assert!(graph.is_proper_coloring(&result.colors));
        assert_eq!(result.colors_used, Graph::colors_used(&result.colors));
    }

    #[test]
    fn aco_matches_or_beats_greedy_on_small_graphs() {
        for (graph, seed) in [
            (Graph::petersen(), 3u64),
            (Graph::cycle(9), 4),
            (Graph::random(30, 0.2, 5), 5),
        ] {
            let greedy = greedy_coloring(&graph);
            let selector = LogBiddingSelector::default();
            let mut colony =
                ColoringColony::new(&graph, &selector, ColoringParams::default(), seed);
            let aco = colony.run(20).unwrap();
            assert!(
                aco.colors_used <= greedy.colors_used,
                "ACO used {} colors, greedy {}",
                aco.colors_used,
                greedy.colors_used
            );
        }
    }

    #[test]
    fn petersen_graph_is_three_colored() {
        // χ(Petersen) = 3; the colony should find a 3-coloring quickly.
        let graph = Graph::petersen();
        let selector = LogBiddingSelector::default();
        let mut colony = ColoringColony::new(&graph, &selector, ColoringParams::default(), 7);
        let result = colony.run(30).unwrap();
        assert!(graph.is_proper_coloring(&result.colors));
        assert_eq!(result.colors_used, 3, "expected a 3-coloring of Petersen");
    }

    #[test]
    fn complete_graph_needs_exactly_n_colors() {
        let graph = Graph::complete(6);
        let selector = LinearScanSelector;
        let mut colony = ColoringColony::new(&graph, &selector, ColoringParams::default(), 8);
        let result = colony.run(5).unwrap();
        assert_eq!(result.colors_used, 6);
    }

    #[test]
    fn best_color_count_is_monotone_over_iterations() {
        let graph = Graph::random(50, 0.3, 9);
        let selector = LogBiddingSelector::default();
        let mut colony = ColoringColony::new(&graph, &selector, ColoringParams::default(), 10);
        let mut previous = usize::MAX;
        for _ in 0..15 {
            let best = colony.run_iteration().unwrap();
            assert!(best <= previous);
            previous = best;
        }
    }

    #[test]
    fn runs_are_reproducible_for_a_fixed_seed() {
        let graph = Graph::random(25, 0.3, 11);
        let selector = LogBiddingSelector::default();
        let run = |seed| {
            let mut colony =
                ColoringColony::new(&graph, &selector, ColoringParams::default(), seed);
            colony.run(5).unwrap()
        };
        assert_eq!(run(42), run(42));
    }
}
