//! The pheromone matrix shared by all ants.

/// A symmetric matrix of pheromone trail intensities over city pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct PheromoneMatrix {
    n: usize,
    values: Vec<f64>,
    min: f64,
    max: f64,
}

impl PheromoneMatrix {
    /// Create an `n × n` matrix with every trail set to `initial`.
    pub fn new(n: usize, initial: f64) -> Self {
        assert!(n >= 2, "a pheromone matrix needs at least 2 nodes");
        assert!(
            initial.is_finite() && initial > 0.0,
            "initial pheromone must be positive"
        );
        Self {
            n,
            values: vec![initial; n * n],
            min: 0.0,
            max: f64::INFINITY,
        }
    }

    /// Create a matrix with MAX-MIN clamping bounds `[min, max]`, initialised
    /// to `max` (the MMAS convention).
    pub fn with_bounds(n: usize, min: f64, max: f64) -> Self {
        assert!(min >= 0.0 && max > min && max.is_finite());
        let mut m = Self::new(n, max);
        m.min = min;
        m.max = max;
        m
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix has zero nodes (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The trail intensity on edge `(a, b)`.
    #[inline]
    pub fn get(&self, a: usize, b: usize) -> f64 {
        self.values[a * self.n + b]
    }

    /// The clamping bounds `(min, max)`.
    pub fn bounds(&self) -> (f64, f64) {
        (self.min, self.max)
    }

    fn set_sym(&mut self, a: usize, b: usize, value: f64) {
        let v = value.clamp(self.min, self.max);
        self.values[a * self.n + b] = v;
        self.values[b * self.n + a] = v;
    }

    /// Multiply every trail by `1 − rate` (evaporation), respecting the
    /// clamping bounds.
    pub fn evaporate(&mut self, rate: f64) {
        assert!(
            (0.0..=1.0).contains(&rate),
            "evaporation rate must be in [0, 1]"
        );
        let keep = 1.0 - rate;
        let (min, max) = (self.min, self.max);
        for v in &mut self.values {
            *v = (*v * keep).clamp(min, max);
        }
    }

    /// Deposit `amount` of pheromone on every edge of the closed tour
    /// `order`, symmetrically.
    pub fn deposit_tour(&mut self, order: &[usize], amount: f64) {
        assert!(amount >= 0.0 && amount.is_finite());
        if order.len() < 2 {
            return;
        }
        for w in order.windows(2) {
            let updated = self.get(w[0], w[1]) + amount;
            self.set_sym(w[0], w[1], updated);
        }
        let first = order[0];
        let last = *order.last().unwrap();
        let updated = self.get(last, first) + amount;
        self.set_sym(last, first, updated);
    }

    /// Deposit on a single edge (used by the vertex-coloring variant).
    pub fn deposit_edge(&mut self, a: usize, b: usize, amount: f64) {
        assert!(amount >= 0.0 && amount.is_finite());
        let updated = self.get(a, b) + amount;
        self.set_sym(a, b, updated);
    }

    /// Update the MAX-MIN bounds (MMAS re-derives them whenever a new best
    /// tour is found) and re-clamp the matrix.
    pub fn set_bounds(&mut self, min: f64, max: f64) {
        assert!(min >= 0.0 && max > min && max.is_finite());
        self.min = min;
        self.max = max;
        for v in &mut self.values {
            *v = v.clamp(min, max);
        }
    }

    /// The largest trail value currently in the matrix.
    pub fn max_value(&self) -> f64 {
        self.values.iter().cloned().fold(0.0, f64::max)
    }

    /// The smallest off-diagonal trail value currently in the matrix.
    pub fn min_off_diagonal(&self) -> f64 {
        let mut min = f64::INFINITY;
        for a in 0..self.n {
            for b in 0..self.n {
                if a != b {
                    min = min.min(self.get(a, b));
                }
            }
        }
        min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = PheromoneMatrix::new(4, 0.5);
        assert_eq!(m.len(), 4);
        for a in 0..4 {
            for b in 0..4 {
                assert_eq!(m.get(a, b), 0.5);
            }
        }
    }

    #[test]
    fn evaporation_scales_every_trail() {
        let mut m = PheromoneMatrix::new(3, 1.0);
        m.evaporate(0.1);
        for a in 0..3 {
            for b in 0..3 {
                assert!((m.get(a, b) - 0.9).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn deposit_tour_is_symmetric_and_covers_the_closing_edge() {
        let mut m = PheromoneMatrix::new(4, 1.0);
        m.deposit_tour(&[0, 1, 2, 3], 0.5);
        for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            assert!((m.get(a, b) - 1.5).abs() < 1e-12, "edge ({a},{b})");
            assert!((m.get(b, a) - 1.5).abs() < 1e-12, "edge ({b},{a})");
        }
        // Non-tour edges untouched.
        assert!((m.get(0, 2) - 1.0).abs() < 1e-12);
        assert!((m.get(1, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bounds_clamp_deposits_and_evaporation() {
        let mut m = PheromoneMatrix::with_bounds(3, 0.2, 2.0);
        assert_eq!(m.get(0, 1), 2.0, "MMAS initialises at the upper bound");
        m.deposit_edge(0, 1, 100.0);
        assert_eq!(m.get(0, 1), 2.0, "deposit must not exceed the upper bound");
        for _ in 0..200 {
            m.evaporate(0.5);
        }
        assert!(
            (m.get(0, 1) - 0.2).abs() < 1e-12,
            "evaporation must not undershoot the lower bound"
        );
    }

    #[test]
    fn set_bounds_reclamps_existing_values() {
        let mut m = PheromoneMatrix::new(3, 5.0);
        m.set_bounds(1.0, 2.0);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.bounds(), (1.0, 2.0));
    }

    #[test]
    fn max_and_min_trackers() {
        let mut m = PheromoneMatrix::new(3, 1.0);
        m.deposit_edge(0, 2, 3.0);
        assert_eq!(m.max_value(), 4.0);
        assert_eq!(m.min_off_diagonal(), 1.0);
    }

    #[test]
    #[should_panic]
    fn invalid_evaporation_rate_panics() {
        let mut m = PheromoneMatrix::new(3, 1.0);
        m.evaporate(1.5);
    }

    #[test]
    #[should_panic]
    fn non_positive_initial_pheromone_panics() {
        PheromoneMatrix::new(3, 0.0);
    }
}
