//! 2-opt local search: repeatedly reverse tour segments while doing so
//! shortens the tour.

use crate::tsp::{Tour, TspInstance};

/// Improve `tour` by first-improvement 2-opt moves, up to `max_passes`
/// full sweeps (each sweep is `O(n²)`), returning the improved tour.
///
/// The result is never longer than the input; if no improving move exists the
/// input is returned unchanged (apart from being recomputed into a fresh
/// `Tour` value).
pub fn two_opt(instance: &TspInstance, tour: &Tour, max_passes: usize) -> Tour {
    let n = tour.order.len();
    let mut order = tour.order.clone();
    if n < 4 {
        return Tour {
            length: instance.tour_length(&order),
            order,
        };
    }

    for _ in 0..max_passes {
        let mut improved = false;
        for i in 0..n - 1 {
            for j in i + 2..n {
                // Skip the pair that shares the closing edge.
                if i == 0 && j == n - 1 {
                    continue;
                }
                let a = order[i];
                let b = order[i + 1];
                let c = order[j];
                let d = order[(j + 1) % n];
                let current = instance.distance(a, b) + instance.distance(c, d);
                let proposed = instance.distance(a, c) + instance.distance(b, d);
                if proposed + 1e-12 < current {
                    order[i + 1..=j].reverse();
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }

    let length = instance.tour_length(&order);
    Tour { order, length }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrb_rng::{MersenneTwister64, RandomSource, SeedableSource};

    #[test]
    fn never_lengthens_a_tour() {
        let instance = TspInstance::random_euclidean(30, 1);
        let mut rng = MersenneTwister64::seed_from_u64(1);
        for _ in 0..20 {
            let tour = instance.random_tour(&mut rng);
            let improved = two_opt(&instance, &tour, 50);
            assert!(improved.length <= tour.length + 1e-9);
            assert!(improved.is_valid(30));
        }
    }

    #[test]
    fn untangles_a_circle_tour() {
        // Random permutations of a circle instance are heavily crossed; 2-opt
        // should recover the optimum (or get very close) because the circle's
        // optimal tour is 2-opt-optimal.
        let n = 16;
        let instance = TspInstance::circle(n, 1.0);
        let optimum = TspInstance::circle_optimum(n, 1.0);
        let mut rng = MersenneTwister64::seed_from_u64(2);
        let mut hits = 0;
        for _ in 0..10 {
            let tour = instance.random_tour(&mut rng);
            let improved = two_opt(&instance, &tour, 200);
            if improved.length < optimum * 1.05 {
                hits += 1;
            }
        }
        assert!(
            hits >= 8,
            "2-opt recovered a near-optimal circle only {hits}/10 times"
        );
    }

    #[test]
    fn already_optimal_tour_is_unchanged_in_length() {
        let n = 10;
        let instance = TspInstance::circle(n, 2.0);
        let tour = Tour {
            order: (0..n).collect(),
            length: instance.tour_length(&(0..n).collect::<Vec<_>>()),
        };
        let improved = two_opt(&instance, &tour, 100);
        assert!((improved.length - tour.length).abs() < 1e-9);
    }

    #[test]
    fn small_tours_are_returned_as_is() {
        let instance = TspInstance::from_coords(vec![(0.0, 0.0), (1.0, 0.0), (0.0, 1.0)]);
        let tour = Tour {
            order: vec![2, 0, 1],
            length: instance.tour_length(&[2, 0, 1]),
        };
        let improved = two_opt(&instance, &tour, 10);
        assert_eq!(improved.order, vec![2, 0, 1]);
    }

    #[test]
    fn zero_passes_only_recomputes_the_length() {
        let instance = TspInstance::random_euclidean(12, 3);
        let mut rng = MersenneTwister64::seed_from_u64(3);
        let mut order: Vec<usize> = (0..12).collect();
        lrb_rng::uniform::shuffle(&mut rng, &mut order);
        let tour = Tour {
            length: instance.tour_length(&order),
            order,
        };
        let out = two_opt(&instance, &tour, 0);
        assert_eq!(out.order, tour.order);
        assert!((out.length - tour.length).abs() < 1e-12);
    }

    #[test]
    fn respects_the_pass_budget() {
        // With a single pass the result is valid and no worse; with many
        // passes it is at least as good as with one.
        let instance = TspInstance::random_euclidean(40, 4);
        let mut rng = MersenneTwister64::seed_from_u64(4);
        let tour = instance.random_tour(&mut rng);
        let one = two_opt(&instance, &tour, 1);
        let many = two_opt(&instance, &tour, 100);
        assert!(one.length <= tour.length + 1e-9);
        assert!(many.length <= one.length + 1e-9);
    }

    // Silence the unused-import warning for RandomSource which is needed by
    // random_tour's signature resolution in older compilers.
    #[allow(dead_code)]
    fn _uses_random_source<R: RandomSource>(_r: R) {}
}
