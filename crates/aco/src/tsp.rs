//! Traveling salesman problem instances and tours.

use lrb_rng::{uniform, RandomSource, SeedableSource, Xoshiro256PlusPlus};

/// A symmetric Euclidean TSP instance: city coordinates plus a precomputed
/// distance matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct TspInstance {
    coords: Vec<(f64, f64)>,
    distances: Vec<f64>,
}

impl TspInstance {
    /// Build an instance from explicit city coordinates.
    ///
    /// Panics if fewer than 3 cities are given (a tour needs at least 3).
    pub fn from_coords(coords: Vec<(f64, f64)>) -> Self {
        assert!(coords.len() >= 3, "a TSP instance needs at least 3 cities");
        let n = coords.len();
        let mut distances = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let dx = coords[i].0 - coords[j].0;
                let dy = coords[i].1 - coords[j].1;
                distances[i * n + j] = (dx * dx + dy * dy).sqrt();
            }
        }
        Self { coords, distances }
    }

    /// `n` cities placed uniformly at random in the unit square.
    pub fn random_euclidean(n: usize, seed: u64) -> Self {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let coords = (0..n).map(|_| (rng.next_f64(), rng.next_f64())).collect();
        Self::from_coords(coords)
    }

    /// `n` cities evenly spaced on a circle of radius `radius`.
    ///
    /// The optimal tour is the circle order, with length
    /// `2·n·radius·sin(π/n)` — a convenient known optimum for tests.
    pub fn circle(n: usize, radius: f64) -> Self {
        let coords = (0..n)
            .map(|i| {
                let angle = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
                (radius * angle.cos(), radius * angle.sin())
            })
            .collect();
        Self::from_coords(coords)
    }

    /// A `width × height` grid of cities with unit spacing.
    pub fn grid(width: usize, height: usize) -> Self {
        assert!(width * height >= 3);
        let coords = (0..width * height)
            .map(|i| ((i % width) as f64, (i / width) as f64))
            .collect();
        Self::from_coords(coords)
    }

    /// Length of the optimal tour of a [`circle`](TspInstance::circle)
    /// instance with the given parameters.
    pub fn circle_optimum(n: usize, radius: f64) -> f64 {
        2.0 * n as f64 * radius * (std::f64::consts::PI / n as f64).sin()
    }

    /// Number of cities.
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    /// Whether the instance has no cities (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// City coordinates.
    pub fn coords(&self) -> &[(f64, f64)] {
        &self.coords
    }

    /// Distance between cities `a` and `b`.
    #[inline]
    pub fn distance(&self, a: usize, b: usize) -> f64 {
        self.distances[a * self.coords.len() + b]
    }

    /// Length of a closed tour visiting the given city order.
    pub fn tour_length(&self, order: &[usize]) -> f64 {
        if order.len() < 2 {
            return 0.0;
        }
        let mut total = 0.0;
        for w in order.windows(2) {
            total += self.distance(w[0], w[1]);
        }
        total + self.distance(*order.last().unwrap(), order[0])
    }

    /// The greedy nearest-neighbour tour starting at `start` — the standard
    /// construction baseline (and the tour MMAS uses to set its initial
    /// pheromone level).
    pub fn nearest_neighbor_tour(&self, start: usize) -> Tour {
        let n = self.len();
        assert!(start < n);
        let mut visited = vec![false; n];
        let mut order = Vec::with_capacity(n);
        let mut current = start;
        visited[current] = true;
        order.push(current);
        for _ in 1..n {
            let mut best = usize::MAX;
            let mut best_dist = f64::INFINITY;
            for (next, seen) in visited.iter().enumerate() {
                if !seen && self.distance(current, next) < best_dist {
                    best_dist = self.distance(current, next);
                    best = next;
                }
            }
            visited[best] = true;
            order.push(best);
            current = best;
        }
        let length = self.tour_length(&order);
        Tour { order, length }
    }

    /// A uniformly random tour (for baselines and tests).
    pub fn random_tour(&self, rng: &mut dyn RandomSource) -> Tour {
        let mut order: Vec<usize> = (0..self.len()).collect();
        uniform::shuffle(rng, &mut order);
        let length = self.tour_length(&order);
        Tour { order, length }
    }
}

/// A closed tour: a permutation of the cities and its length.
#[derive(Debug, Clone, PartialEq)]
pub struct Tour {
    /// Visit order (a permutation of `0..n`).
    pub order: Vec<usize>,
    /// Total length of the closed tour.
    pub length: f64,
}

impl Tour {
    /// Validate that the tour visits every city of an `n`-city instance
    /// exactly once.
    pub fn is_valid(&self, n: usize) -> bool {
        if self.order.len() != n {
            return false;
        }
        let mut seen = vec![false; n];
        for &city in &self.order {
            if city >= n || seen[city] {
                return false;
            }
            seen[city] = true;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrb_rng::MersenneTwister64;

    #[test]
    fn distance_matrix_is_symmetric_with_zero_diagonal() {
        let inst = TspInstance::random_euclidean(20, 1);
        for i in 0..20 {
            assert_eq!(inst.distance(i, i), 0.0);
            for j in 0..20 {
                assert!((inst.distance(i, j) - inst.distance(j, i)).abs() < 1e-12);
                assert!(inst.distance(i, j) >= 0.0);
            }
        }
    }

    #[test]
    fn triangle_inequality_holds_for_euclidean_instances() {
        let inst = TspInstance::random_euclidean(15, 2);
        for a in 0..15 {
            for b in 0..15 {
                for c in 0..15 {
                    assert!(
                        inst.distance(a, c) <= inst.distance(a, b) + inst.distance(b, c) + 1e-9
                    );
                }
            }
        }
    }

    #[test]
    fn circle_optimum_formula_matches_the_circle_order_tour() {
        let n = 12;
        let inst = TspInstance::circle(n, 5.0);
        let order: Vec<usize> = (0..n).collect();
        let length = inst.tour_length(&order);
        assert!((length - TspInstance::circle_optimum(n, 5.0)).abs() < 1e-9);
    }

    #[test]
    fn any_permutation_of_a_circle_is_at_least_the_optimum() {
        let n = 8;
        let inst = TspInstance::circle(n, 1.0);
        let opt = TspInstance::circle_optimum(n, 1.0);
        let mut rng = MersenneTwister64::default_seed();
        for _ in 0..200 {
            let tour = inst.random_tour(&mut rng);
            assert!(tour.length >= opt - 1e-9);
        }
    }

    #[test]
    fn tour_length_is_rotation_invariant() {
        let inst = TspInstance::random_euclidean(10, 3);
        let order: Vec<usize> = (0..10).collect();
        let rotated: Vec<usize> = (0..10).map(|i| (i + 3) % 10).collect();
        assert!((inst.tour_length(&order) - inst.tour_length(&rotated)).abs() < 1e-9);
    }

    #[test]
    fn nearest_neighbor_tour_is_valid_and_beats_random_on_average() {
        let inst = TspInstance::random_euclidean(50, 4);
        let nn = inst.nearest_neighbor_tour(0);
        assert!(nn.is_valid(50));
        let mut rng = MersenneTwister64::default_seed();
        let random_avg: f64 = (0..20)
            .map(|_| inst.random_tour(&mut rng).length)
            .sum::<f64>()
            / 20.0;
        assert!(
            nn.length < random_avg,
            "nn {} vs random {random_avg}",
            nn.length
        );
    }

    #[test]
    fn grid_instance_has_expected_size_and_spacing() {
        let inst = TspInstance::grid(4, 3);
        assert_eq!(inst.len(), 12);
        assert!((inst.distance(0, 1) - 1.0).abs() < 1e-12);
        assert!((inst.distance(0, 4) - 1.0).abs() < 1e-12);
        assert!((inst.distance(0, 5) - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn random_tour_is_a_permutation() {
        let inst = TspInstance::random_euclidean(30, 5);
        let mut rng = MersenneTwister64::default_seed();
        let tour = inst.random_tour(&mut rng);
        assert!(tour.is_valid(30));
    }

    #[test]
    fn tour_validation_catches_bad_tours() {
        let good = Tour {
            order: vec![0, 1, 2],
            length: 0.0,
        };
        assert!(good.is_valid(3));
        let repeated = Tour {
            order: vec![0, 1, 1],
            length: 0.0,
        };
        assert!(!repeated.is_valid(3));
        let short = Tour {
            order: vec![0, 1],
            length: 0.0,
        };
        assert!(!short.is_valid(3));
        let out_of_range = Tour {
            order: vec![0, 1, 3],
            length: 0.0,
        };
        assert!(!out_of_range.is_valid(3));
    }

    #[test]
    #[should_panic]
    fn too_few_cities_panics() {
        TspInstance::from_coords(vec![(0.0, 0.0), (1.0, 1.0)]);
    }

    #[test]
    fn random_instances_are_reproducible_by_seed() {
        let a = TspInstance::random_euclidean(10, 7);
        let b = TspInstance::random_euclidean(10, 7);
        let c = TspInstance::random_euclidean(10, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
