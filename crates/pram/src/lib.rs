//! # lrb-pram — a synchronous PRAM simulator
//!
//! The paper analyses the logarithmic random bidding on the **CRCW-PRAM**
//! model: `n` synchronous processors sharing a memory, where simultaneous
//! writes to one cell are resolved by letting a *randomly chosen* writer
//! succeed. Its cost claims (expected `O(log k)` iterations, `O(1)` shared
//! memory) are statements about that model, not about any particular
//! hardware. This crate therefore provides a faithful, instrumented simulator
//! of the model so those quantities can be measured directly:
//!
//! * [`Pram`] — the machine: a vector of local processor states, a shared
//!   memory of [`Word`]s, an [`AccessMode`] (EREW / CREW / CRCW) that checks
//!   the model's access rules, and a [`WritePolicy`] that resolves write
//!   conflicts (Arbitrary, Priority, Common, or combining Max/Sum).
//! * [`machine::StepOutcome`] / [`trace::CostReport`] — per-step and
//!   whole-run accounting: steps executed, reads, writes, conflicts, and the
//!   highest shared-memory address touched (= memory footprint).
//! * [`algorithms`] — the textbook building blocks the paper refers to
//!   (tree reduction, prefix sums, broadcast) plus the paper's own
//!   constant-memory CRCW maximum-finding loop ([`mod@algorithms::bid_max`]) and
//!   the complete prefix-sum-based roulette wheel selection.
//!
//! ## Example: one synchronous step
//!
//! ```
//! use lrb_pram::{AccessMode, Pram, WritePolicy, WriteRequest};
//!
//! // Four processors concurrently write their id into cell 0 (CRCW).
//! let mut pram: Pram<()> = Pram::new(4, 1, AccessMode::Crcw, WritePolicy::Arbitrary, 42);
//! let outcome = pram
//!     .step(|pid, _local, _mem| vec![WriteRequest::new(0, pid as f64)])
//!     .unwrap();
//! assert_eq!(outcome.write_conflicts, 1); // one conflicting cell
//! let winner = pram.memory()[0];
//! assert!((0.0..4.0).contains(&winner));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod error;
pub mod machine;
pub mod memory;
pub mod trace;

pub use error::PramError;
pub use machine::{AccessMode, Pram, StepOutcome, WritePolicy};
pub use memory::{MemoryView, Word, WriteRequest};
pub use trace::CostReport;
