//! Classic PRAM algorithms expressed as programs for the [`crate::Pram`]
//! machine, plus the paper's constant-memory CRCW maximum-finding loop and
//! the two exact parallel roulette-wheel-selection procedures built on them.
//!
//! Every routine returns both its *result* and a [`crate::CostReport`], so
//! callers can compare algorithms in the PRAM cost model (steps, memory
//! footprint, conflicts) exactly as the paper does.

pub mod bid_max;
pub mod broadcast;
pub mod compaction;
pub mod constant_time_max;
pub mod prefix_sum;
pub mod reduce;
pub mod roulette;

pub use bid_max::{bid_max, BidMaxOutcome};
pub use broadcast::{broadcast_crew, broadcast_erew, BroadcastResult};
pub use compaction::{compact_non_zero, CompactionResult};
pub use constant_time_max::{constant_time_max, ConstantTimeMaxOutcome};
pub use prefix_sum::{prefix_sums_blelloch, prefix_sums_hillis_steele, PrefixSumResult};
pub use reduce::{reduce_max, reduce_sum, ReduceResult};
pub use roulette::{log_bidding_selection, prefix_sum_selection, PramSelection};
