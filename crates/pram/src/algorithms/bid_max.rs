//! The paper's constant-memory CRCW maximum finder (Section III).
//!
//! Every processor holds a bid `r_i`. Shared memory consists of two cells:
//! `s` (the current champion bid) and `output` (the index of the champion).
//! Each processor repeatedly executes `while s < r_i { s ← r_i }`; write
//! conflicts are resolved arbitrarily, so each iteration installs the bid of
//! one uniformly random *active* processor (a processor is active while its
//! bid still exceeds `s`). When the loop quiesces, `s` holds the maximum bid
//! and a final step writes the winning index into `output`.
//!
//! The paper proves the expected number of while-loop iterations is
//! `O(log k)`, where `k` is the number of processors whose fitness (and hence
//! bid) is non-trivial; [`BidMaxOutcome::while_iterations`] reports the exact
//! count for each run so the Theorem 1 experiment can measure the constant.
//!
//! One detail differs from the paper's prose: the paper says `s` is
//! "initialized to zero", but the logarithmic bids are all negative, so a
//! zero initial value would terminate the loop immediately. We initialise `s`
//! to `−∞`, which is the value the proof implicitly assumes (any value below
//! every admissible bid behaves identically).

use crate::error::PramError;
use crate::machine::{AccessMode, Pram, WritePolicy};
use crate::memory::{Word, WriteRequest};
use crate::trace::CostReport;

/// Shared-memory layout used by the algorithm.
const CELL_S: usize = 0;
const CELL_OUTPUT: usize = 1;
/// Total shared cells — the paper's `O(1)`.
pub const SHARED_CELLS: usize = 2;

/// Outcome of the constant-memory CRCW maximum finder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BidMaxOutcome {
    /// Index of the processor holding the maximum bid.
    pub winner: usize,
    /// The maximum bid value.
    pub max_bid: Word,
    /// Number of while-loop iterations in which at least one processor wrote
    /// (the quantity bounded by Theorem 1).
    pub while_iterations: usize,
    /// Full PRAM cost, including the final quiescence check and the output
    /// step.
    pub cost: CostReport,
}

/// Per-processor local state: its bid.
#[derive(Debug, Clone, Copy, Default)]
struct Local {
    bid: Word,
}

/// Run the paper's maximum-finding loop over `bids` on a CRCW-PRAM with an
/// arbitrary (seeded-random) write-conflict policy.
///
/// Returns `Ok(None)` when every bid is `−∞` (i.e. every fitness value was
/// zero), in which case no processor ever becomes active and no winner
/// exists. Bids must not be NaN.
pub fn bid_max(bids: &[Word], seed: u64) -> Result<Option<BidMaxOutcome>, PramError> {
    if bids.is_empty() {
        return Ok(None);
    }
    assert!(
        bids.iter().all(|b| !b.is_nan()),
        "bids must not contain NaN"
    );
    if bids.iter().all(|&b| b == f64::NEG_INFINITY) {
        return Ok(None);
    }

    let locals: Vec<Local> = bids.iter().map(|&bid| Local { bid }).collect();
    let mut pram = Pram::with_locals(
        locals,
        SHARED_CELLS,
        AccessMode::Crcw,
        WritePolicy::Arbitrary,
        seed,
    );
    pram.memory_mut()[CELL_S] = f64::NEG_INFINITY;
    pram.memory_mut()[CELL_OUTPUT] = -1.0;

    // The while loop: each step, every processor whose bid still beats `s`
    // attempts to install it. The step in which nobody writes is the
    // barrier/termination check, not an iteration of the loop body.
    let mut while_iterations = 0usize;
    loop {
        let outcome = pram.step(|_, local, mem| {
            let s = mem.read(CELL_S);
            if s < local.bid {
                vec![WriteRequest::new(CELL_S, local.bid)]
            } else {
                vec![]
            }
        })?;
        if outcome.active_writers == 0 {
            break;
        }
        while_iterations += 1;
        if while_iterations > bids.len() + 64 {
            // The loop strictly increases `s`, so it can never exceed the
            // number of distinct bids; this is a safety net only.
            return Err(PramError::StepLimitExceeded {
                limit: bids.len() + 64,
            });
        }
    }

    // Final step: the processor whose bid equals `s` announces its index.
    pram.step(|pid, local, mem| {
        let s = mem.read(CELL_S);
        if s == local.bid {
            vec![WriteRequest::new(CELL_OUTPUT, pid as Word)]
        } else {
            vec![]
        }
    })?;

    let winner = pram.memory()[CELL_OUTPUT];
    debug_assert!(winner >= 0.0, "no processor matched the maximum bid");
    Ok(Some(BidMaxOutcome {
        winner: winner as usize,
        max_bid: pram.memory()[CELL_S],
        while_iterations,
        cost: pram.total_cost(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn finds_the_maximum_and_its_index() {
        let bids = [-3.0, -0.5, -7.0, -1.0];
        let out = bid_max(&bids, 1).unwrap().unwrap();
        assert_eq!(out.winner, 1);
        assert_eq!(out.max_bid, -0.5);
    }

    #[test]
    fn works_with_positive_bids_too() {
        let bids = [1.0, 5.0, 3.0];
        let out = bid_max(&bids, 2).unwrap().unwrap();
        assert_eq!(out.winner, 1);
        assert_eq!(out.max_bid, 5.0);
    }

    #[test]
    fn single_processor() {
        let out = bid_max(&[-2.5], 3).unwrap().unwrap();
        assert_eq!(out.winner, 0);
        assert_eq!(out.while_iterations, 1);
    }

    #[test]
    fn empty_input_and_all_inactive_input() {
        assert_eq!(bid_max(&[], 1).unwrap(), None);
        assert_eq!(
            bid_max(&[f64::NEG_INFINITY, f64::NEG_INFINITY], 1).unwrap(),
            None
        );
    }

    #[test]
    fn zero_fitness_processors_never_win() {
        // −∞ bids model zero-fitness processors; the winner must be among the
        // finite bids even when they are tiny.
        let mut bids = vec![f64::NEG_INFINITY; 50];
        bids[17] = -1e9;
        bids[33] = -2e9;
        for seed in 0..20 {
            let out = bid_max(&bids, seed).unwrap().unwrap();
            assert_eq!(out.winner, 17);
        }
    }

    #[test]
    fn shared_memory_footprint_is_constant() {
        for n in [2usize, 16, 256, 4096] {
            let bids: Vec<Word> = (0..n).map(|i| -((i + 1) as f64)).collect();
            let out = bid_max(&bids, 7).unwrap().unwrap();
            assert_eq!(out.cost.memory_footprint, SHARED_CELLS, "n={n}");
            assert_eq!(out.winner, 0);
        }
    }

    #[test]
    fn iterations_never_exceed_number_of_distinct_bids() {
        // s strictly increases, so the count of while iterations is at most
        // the number of active processors.
        let bids: Vec<Word> = (0..64).map(|i| -(i as f64) - 1.0).collect();
        for seed in 0..10 {
            let out = bid_max(&bids, seed).unwrap().unwrap();
            assert!(out.while_iterations <= 64);
            assert!(out.while_iterations >= 1);
        }
    }

    #[test]
    fn expected_iterations_grow_slowly_with_k() {
        // Empirical check of the O(log k) behaviour: with k = 256 active
        // processors the mean iteration count over seeds should be well below
        // k and in the ballpark of log2(k) = 8 (the paper's bound is
        // 2·⌈log₂ k⌉ = 16 plus lower-order terms).
        let k = 256usize;
        let bids: Vec<Word> = (0..k).map(|i| -1.0 - (i as f64) / k as f64).collect();
        let trials = 50;
        let total: usize = (0..trials)
            .map(|seed| bid_max(&bids, seed).unwrap().unwrap().while_iterations)
            .sum();
        let mean = total as f64 / trials as f64;
        assert!(
            mean < 20.0,
            "mean iterations {mean} looks super-logarithmic"
        );
        assert!(mean > 2.0, "mean iterations {mean} looks implausibly small");
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let bids: Vec<Word> = (0..32).map(|i| -((i * 7 % 13) as f64) - 0.5).collect();
        let a = bid_max(&bids, 11).unwrap().unwrap();
        let b = bid_max(&bids, 11).unwrap().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn nan_bids_are_rejected() {
        let _ = bid_max(&[0.0, f64::NAN], 1);
    }

    proptest! {
        #[test]
        fn prop_winner_holds_the_maximum(
            bids in proptest::collection::vec(-1e6f64..-1e-6, 1..100),
            seed: u64,
        ) {
            let out = bid_max(&bids, seed).unwrap().unwrap();
            let max = bids.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert_eq!(out.max_bid, max);
            prop_assert_eq!(bids[out.winner], max);
        }

        #[test]
        fn prop_constant_memory(
            bids in proptest::collection::vec(-1e3f64..-1e-3, 1..200),
            seed: u64,
        ) {
            let out = bid_max(&bids, seed).unwrap().unwrap();
            prop_assert_eq!(out.cost.memory_footprint, SHARED_CELLS);
        }
    }
}
