//! Complete parallel roulette-wheel-selection procedures expressed in the
//! PRAM cost model.
//!
//! Two *exact* algorithms are provided, matching the two the paper analyses:
//!
//! * [`prefix_sum_selection`] — the prefix-sum-based algorithm: `O(log n)`
//!   steps and `O(n)` shared memory on the EREW-PRAM.
//! * [`log_bidding_selection`] — the paper's logarithmic random bidding:
//!   expected `O(log k)` steps and `O(1)` shared memory on the CRCW-PRAM,
//!   where `k` is the number of non-zero fitness values.
//!
//! Both return which processor was selected together with the measured PRAM
//! cost, so the Theorem 1 experiment can tabulate steps and memory for the
//! same fitness vectors.

use lrb_rng::{exponential::log_bid, RandomSource, StreamFamily, Xoshiro256PlusPlus};

use crate::algorithms::bid_max::{bid_max, SHARED_CELLS};
use crate::algorithms::prefix_sum::prefix_sums_blelloch;
use crate::error::PramError;
use crate::machine::{AccessMode, Pram, WritePolicy};
use crate::memory::{Word, WriteRequest};
use crate::trace::CostReport;

/// The outcome of a PRAM roulette wheel selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PramSelection {
    /// Index of the selected processor, or `None` if every fitness was zero.
    pub selected: Option<usize>,
    /// Number of while-loop iterations (log-bidding only; 0 for prefix-sum).
    pub while_iterations: usize,
    /// Total PRAM cost of the selection.
    pub cost: CostReport,
}

/// Prefix-sum-based parallel roulette wheel selection (EREW, `O(log n)` time,
/// `O(n)` shared memory).
///
/// Steps, following the paper's Section I description:
/// 1. compute all prefix sums `p_i` (work-efficient Blelloch scan),
/// 2. processor 0 draws `R = rand() · p_{n−1}`,
/// 3. the threshold `R` is broadcast (EREW doubling) and the unique processor
///    with `p_{i−1} ≤ R < p_i` writes its index into the output cell.
pub fn prefix_sum_selection<R: RandomSource + ?Sized>(
    fitness: &[f64],
    rng: &mut R,
) -> Result<PramSelection, PramError> {
    let n = fitness.len();
    if n == 0 || fitness.iter().all(|&f| f == 0.0) {
        return Ok(PramSelection {
            selected: None,
            while_iterations: 0,
            cost: CostReport::default(),
        });
    }
    assert!(
        fitness.iter().all(|&f| f.is_finite() && f >= 0.0),
        "fitness values must be finite and non-negative"
    );

    // Phase 1: prefix sums on the EREW machine.
    let scan = prefix_sums_blelloch(fitness)?;
    let mut cost = scan.cost;
    let prefix = scan.prefix;
    let total = *prefix.last().expect("non-empty fitness");

    // Phase 2+3 run on a fresh machine whose memory holds the prefix sums in
    // cells [0..n), the broadcast tree in [n..2n), and the output in cell 2n.
    let mut pram: Pram<PrefixLocal> = Pram::with_locals(
        vec![PrefixLocal::default(); n],
        2 * n + 1,
        AccessMode::Erew,
        WritePolicy::Priority,
        0,
    );
    pram.memory_mut()[..n].copy_from_slice(&prefix);
    pram.memory_mut()[2 * n] = -1.0;

    // Processor 0 draws R and stores it at the root of the broadcast tree.
    // The random draw itself is local computation; only the write costs.
    let r_value = rng.next_f64() * total;
    pram.step(|pid, _, _| {
        if pid == 0 {
            vec![WriteRequest::new(n, r_value)]
        } else {
            vec![]
        }
    })?;

    // EREW broadcast of R through cells [n..2n).
    let mut have = 1usize;
    while have < n {
        let h = have;
        pram.step(|pid, _, mem| {
            if pid < h && pid + h < n {
                let v = mem.read(n + pid);
                vec![WriteRequest::new(n + pid + h, v)]
            } else {
                vec![]
            }
        })?;
        have *= 2;
    }

    // Each processor reads its own copy of R and its own prefix sum.
    pram.step(|pid, local, mem| {
        local.r = mem.read(n + pid);
        local.p_i = mem.read(pid);
        vec![]
    })?;

    // Each processor (except 0) reads its left neighbour's prefix sum; this
    // is a different cell per processor, so the step stays exclusive-read.
    pram.step(|pid, local, mem| {
        local.p_prev = if pid == 0 { 0.0 } else { mem.read(pid - 1) };
        vec![]
    })?;

    // The unique winner announces its index.
    pram.step(|pid, local, _| {
        if local.p_prev <= local.r && local.r < local.p_i {
            vec![WriteRequest::new(2 * n, pid as Word)]
        } else {
            vec![]
        }
    })?;

    cost.absorb(&pram.total_cost());
    let raw = pram.memory()[2 * n];
    let selected = if raw >= 0.0 {
        Some(raw as usize)
    } else {
        // R can only fail to land in a slot through floating-point rounding at
        // the extreme right edge; attribute the draw to the last non-zero slot.
        fitness.iter().rposition(|&f| f > 0.0)
    };
    Ok(PramSelection {
        selected,
        while_iterations: 0,
        cost,
    })
}

#[derive(Debug, Clone, Copy, Default)]
struct PrefixLocal {
    r: Word,
    p_i: Word,
    p_prev: Word,
}

/// The paper's logarithmic random bidding selection on the CRCW-PRAM:
/// each processor draws `r_i = ln(u_i) / f_i` from its own random stream and
/// the constant-memory CRCW maximum loop picks the arg-max.
///
/// `master_seed` derives both the per-processor bid streams and the
/// write-conflict randomness, so a run is fully reproducible.
pub fn log_bidding_selection(
    fitness: &[f64],
    master_seed: u64,
) -> Result<PramSelection, PramError> {
    if fitness.is_empty() {
        return Ok(PramSelection {
            selected: None,
            while_iterations: 0,
            cost: CostReport::default(),
        });
    }
    assert!(
        fitness.iter().all(|&f| f.is_finite() && f >= 0.0),
        "fitness values must be finite and non-negative"
    );

    // Step 1 (local): every processor computes its bid from its own stream.
    let family = StreamFamily::new(master_seed);
    let bids: Vec<Word> = fitness
        .iter()
        .enumerate()
        .map(|(i, &f)| {
            let mut stream: Xoshiro256PlusPlus = family.stream(i as u64);
            log_bid(&mut stream, f)
        })
        .collect();

    // Step 2 (shared): the CRCW maximum loop.
    match bid_max(&bids, family.seed_for(u64::MAX))? {
        None => Ok(PramSelection {
            selected: None,
            while_iterations: 0,
            cost: CostReport::default(),
        }),
        Some(outcome) => Ok(PramSelection {
            selected: Some(outcome.winner),
            while_iterations: outcome.while_iterations,
            cost: outcome.cost,
        }),
    }
}

/// Convenience: assert that a log-bidding selection used only the constant
/// number of shared cells. Exposed for tests and the Theorem 1 harness.
pub fn log_bidding_memory_is_constant(selection: &PramSelection) -> bool {
    selection.cost.memory_footprint <= SHARED_CELLS
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrb_rng::{MersenneTwister64, SeedableSource};

    fn empirical_distribution(
        fitness: &[f64],
        trials: usize,
        mut select: impl FnMut(u64) -> Option<usize>,
    ) -> Vec<f64> {
        let mut counts = vec![0usize; fitness.len()];
        for t in 0..trials {
            if let Some(i) = select(t as u64) {
                counts[i] += 1;
            }
        }
        counts.iter().map(|&c| c as f64 / trials as f64).collect()
    }

    #[test]
    fn prefix_sum_selection_matches_target_probabilities() {
        let fitness = [1.0, 2.0, 3.0, 4.0];
        let total: f64 = fitness.iter().sum();
        let mut rng = MersenneTwister64::seed_from_u64(7);
        let trials = 40_000;
        let mut counts = vec![0usize; fitness.len()];
        for _ in 0..trials {
            let sel = prefix_sum_selection(&fitness, &mut rng).unwrap();
            counts[sel.selected.unwrap()] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let got = c as f64 / trials as f64;
            let want = fitness[i] / total;
            assert!(
                (got - want).abs() < 0.01,
                "index {i}: got {got}, want {want}"
            );
        }
    }

    #[test]
    fn log_bidding_selection_matches_target_probabilities() {
        let fitness = [1.0, 2.0, 3.0, 4.0];
        let total: f64 = fitness.iter().sum();
        let trials = 40_000;
        let probs = empirical_distribution(&fitness, trials, |seed| {
            log_bidding_selection(&fitness, seed).unwrap().selected
        });
        for (i, &got) in probs.iter().enumerate() {
            let want = fitness[i] / total;
            assert!(
                (got - want).abs() < 0.01,
                "index {i}: got {got}, want {want}"
            );
        }
    }

    #[test]
    fn zero_fitness_is_never_selected_by_either_algorithm() {
        let fitness = [0.0, 3.0, 0.0, 2.0];
        let mut rng = MersenneTwister64::seed_from_u64(1);
        for seed in 0..2000u64 {
            let a = prefix_sum_selection(&fitness, &mut rng)
                .unwrap()
                .selected
                .unwrap();
            let b = log_bidding_selection(&fitness, seed)
                .unwrap()
                .selected
                .unwrap();
            assert!(fitness[a] > 0.0);
            assert!(fitness[b] > 0.0);
        }
    }

    #[test]
    fn all_zero_fitness_selects_nothing() {
        let fitness = [0.0, 0.0, 0.0];
        let mut rng = MersenneTwister64::seed_from_u64(1);
        assert_eq!(
            prefix_sum_selection(&fitness, &mut rng).unwrap().selected,
            None
        );
        assert_eq!(log_bidding_selection(&fitness, 3).unwrap().selected, None);
    }

    #[test]
    fn empty_fitness_selects_nothing() {
        let mut rng = MersenneTwister64::seed_from_u64(1);
        assert_eq!(prefix_sum_selection(&[], &mut rng).unwrap().selected, None);
        assert_eq!(log_bidding_selection(&[], 3).unwrap().selected, None);
    }

    #[test]
    fn log_bidding_uses_constant_memory_and_prefix_sum_uses_linear() {
        let n = 64usize;
        let fitness: Vec<f64> = (0..n).map(|i| (i % 7) as f64 + 1.0).collect();
        let mut rng = MersenneTwister64::seed_from_u64(2);

        let lb = log_bidding_selection(&fitness, 5).unwrap();
        assert!(log_bidding_memory_is_constant(&lb));

        let ps = prefix_sum_selection(&fitness, &mut rng).unwrap();
        assert!(
            ps.cost.memory_footprint >= n,
            "prefix-sum selection must use Ω(n) cells, used {}",
            ps.cost.memory_footprint
        );
    }

    #[test]
    fn log_bidding_iterations_shrink_when_k_is_small() {
        // n = 1024 processors but only 4 non-zero fitness values: the while
        // loop should finish in a handful of iterations.
        let n = 1024usize;
        let mut fitness = vec![0.0; n];
        for i in [10usize, 200, 600, 1000] {
            fitness[i] = 1.0;
        }
        let mut max_iters = 0usize;
        for seed in 0..50 {
            let sel = log_bidding_selection(&fitness, seed).unwrap();
            max_iters = max_iters.max(sel.while_iterations);
        }
        assert!(max_iters <= 4, "k=4 but saw {max_iters} iterations");
    }

    #[test]
    fn prefix_sum_single_positive_entry_is_always_selected() {
        let fitness = [0.0, 0.0, 5.0, 0.0];
        let mut rng = MersenneTwister64::seed_from_u64(3);
        for _ in 0..200 {
            let sel = prefix_sum_selection(&fitness, &mut rng).unwrap();
            assert_eq!(sel.selected, Some(2));
        }
    }

    #[test]
    fn selections_are_reproducible_for_fixed_seeds() {
        let fitness = [0.5, 1.5, 2.5];
        let a = log_bidding_selection(&fitness, 42).unwrap();
        let b = log_bidding_selection(&fitness, 42).unwrap();
        assert_eq!(a, b);
    }
}
