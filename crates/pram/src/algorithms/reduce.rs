//! Tree reduction on the EREW-PRAM: `O(log n)` steps, `O(n)` shared memory.
//!
//! This is the "obvious" parallel maximum the paper contrasts its
//! constant-memory CRCW loop against: imagine a binary tree with `n` leaves;
//! every internal node takes the max (or sum) of its two children, level by
//! level, so the root holds the result after `⌈log₂ n⌉` synchronous steps.

use crate::error::PramError;
use crate::machine::{AccessMode, Pram, WritePolicy};
use crate::memory::{Word, WriteRequest};
use crate::trace::CostReport;

/// Result of a tree reduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReduceResult {
    /// The reduced value (max or sum of the inputs).
    pub value: Word,
    /// PRAM cost of the reduction.
    pub cost: CostReport,
}

fn tree_reduce(
    values: &[Word],
    op: fn(Word, Word) -> Word,
    identity: Word,
) -> Result<ReduceResult, PramError> {
    if values.is_empty() {
        return Ok(ReduceResult {
            value: identity,
            cost: CostReport::default(),
        });
    }
    let n = values.len();
    let mut pram: Pram<()> = Pram::new(n, n, AccessMode::Erew, WritePolicy::Priority, 0);
    pram.memory_mut().copy_from_slice(values);

    let mut stride = 1usize;
    while stride < n {
        let s = stride;
        pram.step(|pid, _, mem| {
            // Processor `pid` combines cells pid and pid+stride when it sits
            // at the left child of a live pair; all pairs are disjoint, so the
            // accesses are exclusive.
            if pid % (2 * s) == 0 && pid + s < n {
                let left = mem.read(pid);
                let right = mem.read(pid + s);
                vec![WriteRequest::new(pid, op(left, right))]
            } else {
                vec![]
            }
        })?;
        stride *= 2;
    }

    Ok(ReduceResult {
        value: pram.memory()[0],
        cost: pram.total_cost(),
    })
}

/// Maximum of `values` by EREW tree reduction.
pub fn reduce_max(values: &[Word]) -> Result<ReduceResult, PramError> {
    tree_reduce(values, f64::max, f64::NEG_INFINITY)
}

/// Sum of `values` by EREW tree reduction.
pub fn reduce_sum(values: &[Word]) -> Result<ReduceResult, PramError> {
    tree_reduce(values, |a, b| a + b, 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn max_of_small_vector() {
        let r = reduce_max(&[3.0, 9.0, 1.0, 4.0, 1.0, 5.0]).unwrap();
        assert_eq!(r.value, 9.0);
    }

    #[test]
    fn sum_of_small_vector() {
        let r = reduce_sum(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(r.value, 10.0);
    }

    #[test]
    fn single_element() {
        assert_eq!(reduce_max(&[7.5]).unwrap().value, 7.5);
        assert_eq!(reduce_sum(&[7.5]).unwrap().value, 7.5);
        assert_eq!(reduce_max(&[7.5]).unwrap().cost.steps, 0);
    }

    #[test]
    fn empty_input_returns_identity() {
        assert_eq!(reduce_max(&[]).unwrap().value, f64::NEG_INFINITY);
        assert_eq!(reduce_sum(&[]).unwrap().value, 0.0);
    }

    #[test]
    fn non_power_of_two_lengths() {
        for n in [2usize, 3, 5, 7, 13, 100, 255] {
            let values: Vec<Word> = (0..n).map(|i| (i * 7 % 23) as f64).collect();
            let expect_max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let expect_sum: f64 = values.iter().sum();
            assert_eq!(reduce_max(&values).unwrap().value, expect_max, "n={n}");
            assert!(
                (reduce_sum(&values).unwrap().value - expect_sum).abs() < 1e-9,
                "n={n}"
            );
        }
    }

    #[test]
    fn step_count_is_logarithmic() {
        for n in [2usize, 4, 16, 64, 1000, 1024] {
            let values = vec![1.0; n];
            let r = reduce_sum(&values).unwrap();
            let expected_steps = (n as f64).log2().ceil() as usize;
            assert_eq!(r.cost.steps, expected_steps, "n={n}");
            assert_eq!(r.value, n as f64);
        }
    }

    #[test]
    fn memory_footprint_is_linear_not_more() {
        let n = 300;
        let values = vec![2.0; n];
        let r = reduce_max(&values).unwrap();
        assert!(r.cost.memory_footprint <= n);
    }

    #[test]
    fn erew_accesses_never_conflict() {
        let values: Vec<Word> = (0..129).map(|i| i as f64).collect();
        let r = reduce_max(&values).unwrap();
        assert_eq!(r.cost.write_conflicts, 0);
        assert_eq!(r.cost.read_conflicts, 0);
        assert_eq!(r.value, 128.0);
    }

    proptest! {
        #[test]
        fn prop_matches_sequential_max(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let expect = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let got = reduce_max(&values).unwrap().value;
            prop_assert_eq!(got, expect);
        }

        #[test]
        fn prop_matches_sequential_sum(values in proptest::collection::vec(-1e3f64..1e3, 1..200)) {
            let expect: f64 = values.iter().sum();
            let got = reduce_sum(&values).unwrap().value;
            // Different association order: allow floating error.
            prop_assert!((got - expect).abs() < 1e-6);
        }
    }
}
