//! The classic `O(1)`-time CRCW maximum with `n²` processors — the textbook
//! alternative to the paper's constant-memory loop.
//!
//! Every pair `(i, j)` is checked simultaneously: processor `(i, j)` writes
//! "i is not the maximum" when `values[j] > values[i]` (or when `j < i` and
//! the values tie, to break ties deterministically). A second step lets the
//! single surviving index announce itself. The price for the two-step runtime
//! is `Θ(n²)` processors and `Θ(n)` shared memory — exactly the trade-off the
//! paper's logarithmic random bidding avoids (it needs only `n` processors and
//! `O(1)` memory, at the cost of `O(log k)` expected steps). The ablation
//! bench compares all three maximum-finding strategies.

use crate::error::PramError;
use crate::machine::{AccessMode, Pram, WritePolicy};
use crate::memory::{Word, WriteRequest};
use crate::trace::CostReport;

/// Result of the constant-time maximum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantTimeMaxOutcome {
    /// Index of the maximum value (ties broken towards the smaller index).
    pub winner: usize,
    /// The maximum value.
    pub max_value: Word,
    /// PRAM cost (always 2 steps; `n + 1` shared cells; `n²` processors).
    pub cost: CostReport,
}

/// Find the arg-max of `values` in two CRCW steps using `n²` processors.
///
/// Returns `None` for an empty input. NaN values are rejected.
pub fn constant_time_max(values: &[Word]) -> Result<Option<ConstantTimeMaxOutcome>, PramError> {
    if values.is_empty() {
        return Ok(None);
    }
    assert!(
        values.iter().all(|v| !v.is_nan()),
        "values must not contain NaN"
    );
    let n = values.len();
    // Shared memory layout: cells [0..n) are the "defeated" flags, cell n is
    // the announced winner index.
    let mut pram: Pram<()> = Pram::new(n * n, n + 1, AccessMode::Crcw, WritePolicy::Common, 0);
    pram.memory_mut()[n] = -1.0;

    // Step 1: every ordered pair (i, j) with i ≠ j marks the loser.
    pram.step(|pid, _, _| {
        let i = pid / n;
        let j = pid % n;
        if i == j {
            return vec![];
        }
        let i_loses = values[j] > values[i] || (values[j] == values[i] && j < i);
        if i_loses {
            // All writers to cell i agree on the value 1.0, so the Common
            // policy is satisfied.
            vec![WriteRequest::new(i, 1.0)]
        } else {
            vec![]
        }
    })?;

    // Step 2: the unique undefeated index announces itself. Only the diagonal
    // processors (i, i) participate, so the write is exclusive.
    pram.step(|pid, _, mem| {
        let i = pid / n;
        let j = pid % n;
        if i != j {
            return vec![];
        }
        if mem.read(i) == 0.0 {
            vec![WriteRequest::new(n, i as Word)]
        } else {
            vec![]
        }
    })?;

    let winner = pram.memory()[n];
    debug_assert!(winner >= 0.0, "exactly one index must remain undefeated");
    let winner = winner as usize;
    Ok(Some(ConstantTimeMaxOutcome {
        winner,
        max_value: values[winner],
        cost: pram.total_cost(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn finds_the_maximum_in_exactly_two_steps() {
        let values = [3.0, 9.5, -2.0, 9.0];
        let out = constant_time_max(&values).unwrap().unwrap();
        assert_eq!(out.winner, 1);
        assert_eq!(out.max_value, 9.5);
        assert_eq!(out.cost.steps, 2);
    }

    #[test]
    fn ties_break_towards_the_smaller_index() {
        let values = [1.0, 7.0, 7.0, 3.0];
        let out = constant_time_max(&values).unwrap().unwrap();
        assert_eq!(out.winner, 1);
    }

    #[test]
    fn single_element_and_empty_inputs() {
        assert_eq!(constant_time_max(&[]).unwrap(), None);
        let out = constant_time_max(&[4.25]).unwrap().unwrap();
        assert_eq!(out.winner, 0);
        assert_eq!(out.max_value, 4.25);
    }

    #[test]
    fn memory_footprint_is_linear_not_constant() {
        let n = 32;
        let values: Vec<Word> = (0..n).map(|i| (i % 7) as f64).collect();
        let out = constant_time_max(&values).unwrap().unwrap();
        assert_eq!(out.cost.memory_footprint, n + 1);
        // This is the contrast with the paper's bid_max, which uses 2 cells.
    }

    #[test]
    fn negative_infinity_entries_lose() {
        let values = [f64::NEG_INFINITY, -5.0, f64::NEG_INFINITY];
        let out = constant_time_max(&values).unwrap().unwrap();
        assert_eq!(out.winner, 1);
    }

    #[test]
    fn works_with_common_write_policy_without_conflict_errors() {
        // Many processors write "defeated" to the same cell with the same
        // value; the Common CRCW policy must accept that.
        let values: Vec<Word> = (0..20).map(|i| ((i * 13) % 17) as f64).collect();
        let out = constant_time_max(&values).unwrap().unwrap();
        let expected = values
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(b.0.cmp(&a.0)))
            .unwrap()
            .0;
        assert_eq!(out.winner, expected);
    }

    proptest! {
        #[test]
        fn prop_matches_sequential_argmax(values in proptest::collection::vec(-1e6f64..1e6, 1..40)) {
            let out = constant_time_max(&values).unwrap().unwrap();
            let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert_eq!(out.max_value, max);
            prop_assert_eq!(values[out.winner], max);
            prop_assert_eq!(out.cost.steps, 2);
        }
    }
}
