//! Parallel array compaction: gather the indices with non-zero fitness into a
//! dense prefix of shared memory.
//!
//! This is the *other* classical way to exploit sparsity (`k ≪ n`): first
//! compact the `k` live indices in `O(log n)` EREW steps with a prefix sum,
//! then run any selection algorithm on the dense length-`k` array. The
//! paper's logarithmic random bidding avoids the compaction entirely — its
//! while-loop simply never hears from the zero-fitness processors — which is
//! why its cost is `O(log k)` with `O(1)` memory while compaction pays
//! `O(log n)` time and `O(n)` memory before the selection even starts. The
//! `zero_fitness_handling` ablation bench quantifies the difference.

use crate::algorithms::prefix_sum::prefix_sums_blelloch;
use crate::error::PramError;
use crate::machine::{AccessMode, Pram, WritePolicy};
use crate::memory::{Word, WriteRequest};
use crate::trace::CostReport;

/// Result of a compaction.
#[derive(Debug, Clone, PartialEq)]
pub struct CompactionResult {
    /// The original indices of the non-zero entries, in ascending order.
    pub live_indices: Vec<usize>,
    /// PRAM cost of the compaction (scan + scatter).
    pub cost: CostReport,
}

/// Compact the indices of the strictly positive entries of `values` to the
/// front of a fresh array, preserving order.
pub fn compact_non_zero(values: &[Word]) -> Result<CompactionResult, PramError> {
    if values.is_empty() {
        return Ok(CompactionResult {
            live_indices: vec![],
            cost: CostReport::default(),
        });
    }
    assert!(
        values.iter().all(|v| v.is_finite() && *v >= 0.0),
        "values must be finite and non-negative"
    );
    let n = values.len();

    // Phase 1: prefix sums over the 0/1 liveness flags give each live index
    // its destination slot (EREW, O(log n) steps, O(n) cells).
    let flags: Vec<Word> = values
        .iter()
        .map(|&v| if v > 0.0 { 1.0 } else { 0.0 })
        .collect();
    let scan = prefix_sums_blelloch(&flags)?;
    let mut cost = scan.cost;
    let destinations = scan.prefix;
    let live_count = *destinations.last().expect("non-empty input") as usize;

    // Phase 2: one scatter step — live processor i writes its index into its
    // destination cell. Destinations are unique, so the step is EREW-clean.
    let mut pram: Pram<()> = Pram::new(n, n.max(1), AccessMode::Erew, WritePolicy::Priority, 0);
    pram.memory_mut().iter_mut().for_each(|c| *c = -1.0);
    pram.step(|pid, _, _| {
        if flags[pid] > 0.0 {
            let slot = destinations[pid] as usize - 1;
            vec![WriteRequest::new(slot, pid as Word)]
        } else {
            vec![]
        }
    })?;
    cost.absorb(&pram.total_cost());

    let live_indices = pram.memory()[..live_count]
        .iter()
        .map(|&w| w as usize)
        .collect();
    Ok(CompactionResult { live_indices, cost })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn compacts_a_mixed_vector_in_order() {
        let values = [0.0, 2.0, 0.0, 0.0, 5.0, 1.0, 0.0];
        let result = compact_non_zero(&values).unwrap();
        assert_eq!(result.live_indices, vec![1, 4, 5]);
    }

    #[test]
    fn all_zero_and_all_live_edges() {
        assert!(compact_non_zero(&[0.0, 0.0])
            .unwrap()
            .live_indices
            .is_empty());
        assert_eq!(
            compact_non_zero(&[1.0, 2.0, 3.0]).unwrap().live_indices,
            vec![0, 1, 2]
        );
        assert!(compact_non_zero(&[]).unwrap().live_indices.is_empty());
    }

    #[test]
    fn cost_scales_with_n_not_k() {
        // Even with a single live element the compaction pays the full
        // O(log n) scan — the contrast with bid_max's O(log k).
        let mut values = vec![0.0; 1024];
        values[777] = 1.0;
        let result = compact_non_zero(&values).unwrap();
        assert_eq!(result.live_indices, vec![777]);
        assert!(result.cost.steps >= 20, "steps {}", result.cost.steps);
        assert!(result.cost.memory_footprint >= 1024);
    }

    #[test]
    fn scatter_step_is_erew_clean() {
        let values = [0.0, 1.0, 1.0, 0.0, 1.0];
        let result = compact_non_zero(&values).unwrap();
        assert_eq!(result.cost.write_conflicts, 0);
        assert_eq!(result.cost.read_conflicts, 0);
    }

    proptest! {
        #[test]
        fn prop_matches_sequential_filter(values in proptest::collection::vec(0.0f64..5.0, 0..200)) {
            let expected: Vec<usize> = values
                .iter()
                .enumerate()
                .filter_map(|(i, &v)| (v > 0.0).then_some(i))
                .collect();
            let result = compact_non_zero(&values).unwrap();
            prop_assert_eq!(result.live_indices, expected);
        }
    }
}
