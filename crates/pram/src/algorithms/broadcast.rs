//! Broadcasting one value to all processors.
//!
//! The prefix-sum-based selection needs the random threshold `R` known to all
//! processors. Under CREW/CRCW this is a single concurrent read; under EREW
//! it takes `⌈log₂ n⌉` doubling steps.

use crate::error::PramError;
use crate::machine::{AccessMode, Pram, WritePolicy};
use crate::memory::{Word, WriteRequest};
use crate::trace::CostReport;

/// Result of a broadcast.
#[derive(Debug, Clone, PartialEq)]
pub struct BroadcastResult {
    /// The value as received by every processor, in processor order.
    pub received: Vec<Word>,
    /// PRAM cost of the broadcast.
    pub cost: CostReport,
}

/// Broadcast `value` to `processors` processors with one concurrent read
/// (CREW-PRAM, 1 step, 1 shared cell).
pub fn broadcast_crew(value: Word, processors: usize) -> Result<BroadcastResult, PramError> {
    if processors == 0 {
        return Ok(BroadcastResult {
            received: vec![],
            cost: CostReport::default(),
        });
    }
    let mut pram: Pram<Word> = Pram::new(processors, 1, AccessMode::Crew, WritePolicy::Priority, 0);
    pram.memory_mut()[0] = value;
    pram.step(|_, local, mem| {
        *local = mem.read(0);
        vec![]
    })?;
    Ok(BroadcastResult {
        received: pram.locals().to_vec(),
        cost: pram.total_cost(),
    })
}

/// Broadcast `value` to `processors` processors by recursive doubling
/// (EREW-PRAM, `⌈log₂ n⌉` copy steps plus one local read step, `n` cells).
pub fn broadcast_erew(value: Word, processors: usize) -> Result<BroadcastResult, PramError> {
    if processors == 0 {
        return Ok(BroadcastResult {
            received: vec![],
            cost: CostReport::default(),
        });
    }
    let n = processors;
    let mut pram: Pram<Word> = Pram::new(n, n, AccessMode::Erew, WritePolicy::Priority, 0);
    pram.memory_mut()[0] = value;

    // Doubling: after round r, cells 0..2^(r+1) hold the value.
    let mut have = 1usize;
    while have < n {
        let h = have;
        pram.step(|pid, _, mem| {
            if pid < h && pid + h < n {
                let v = mem.read(pid);
                vec![WriteRequest::new(pid + h, v)]
            } else {
                vec![]
            }
        })?;
        have *= 2;
    }

    // Every processor reads its own cell into its local state.
    pram.step(|pid, local, mem| {
        *local = mem.read(pid);
        vec![]
    })?;

    Ok(BroadcastResult {
        received: pram.locals().to_vec(),
        cost: pram.total_cost(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crew_broadcast_reaches_everyone_in_one_step() {
        let r = broadcast_crew(3.25, 16).unwrap();
        assert_eq!(r.received, vec![3.25; 16]);
        assert_eq!(r.cost.steps, 1);
        assert_eq!(r.cost.memory_footprint, 1);
    }

    #[test]
    fn erew_broadcast_reaches_everyone() {
        for n in [1usize, 2, 3, 5, 8, 17, 100] {
            let r = broadcast_erew(-1.5, n).unwrap();
            assert_eq!(r.received, vec![-1.5; n], "n={n}");
            assert_eq!(r.cost.read_conflicts, 0, "n={n}");
            assert_eq!(r.cost.write_conflicts, 0, "n={n}");
        }
    }

    #[test]
    fn erew_broadcast_step_count_is_logarithmic() {
        let r = broadcast_erew(1.0, 1024).unwrap();
        // 10 doubling steps + 1 local read step.
        assert_eq!(r.cost.steps, 11);
    }

    #[test]
    fn zero_processors_is_trivial() {
        assert!(broadcast_crew(1.0, 0).unwrap().received.is_empty());
        assert!(broadcast_erew(1.0, 0).unwrap().received.is_empty());
    }

    #[test]
    fn single_processor_broadcast() {
        let r = broadcast_erew(9.0, 1).unwrap();
        assert_eq!(r.received, vec![9.0]);
    }

    #[test]
    fn crew_read_conflicts_are_counted_but_allowed() {
        let r = broadcast_crew(1.0, 8).unwrap();
        assert_eq!(r.cost.read_conflicts, 1);
    }
}
