//! Parallel prefix sums (scans) on the PRAM.
//!
//! The prefix-sum-based roulette wheel selection needs all prefix sums
//! `p_i = f_0 + … + f_i`. Two classic algorithms are provided:
//!
//! * [`prefix_sums_hillis_steele`] — `⌈log₂ n⌉` steps, `O(n log n)` work,
//!   needs concurrent reads (CREW).
//! * [`prefix_sums_blelloch`] — `O(log n)` steps, `O(n)` work, exclusive
//!   reads and writes only (EREW); this is the variant the paper's
//!   `O(log n)`-time EREW claim refers to.

use crate::error::PramError;
use crate::machine::{AccessMode, Pram, WritePolicy};
use crate::memory::{Word, WriteRequest};
use crate::trace::CostReport;

/// Result of a parallel scan.
#[derive(Debug, Clone, PartialEq)]
pub struct PrefixSumResult {
    /// Inclusive prefix sums: `prefix[i] = values[0] + … + values[i]`.
    pub prefix: Vec<Word>,
    /// PRAM cost of the scan.
    pub cost: CostReport,
}

/// Inclusive scan by the Hillis–Steele doubling algorithm (CREW-PRAM).
pub fn prefix_sums_hillis_steele(values: &[Word]) -> Result<PrefixSumResult, PramError> {
    let n = values.len();
    if n == 0 {
        return Ok(PrefixSumResult {
            prefix: vec![],
            cost: CostReport::default(),
        });
    }
    // Double buffer: cells [cur..cur+n) hold the current partial sums,
    // [next..next+n) receive the updated ones; the roles swap every round.
    let mut pram: Pram<()> = Pram::new(n, 2 * n, AccessMode::Crew, WritePolicy::Priority, 0);
    pram.memory_mut()[..n].copy_from_slice(values);

    let mut cur = 0usize;
    let mut next = n;
    let mut d = 1usize;
    while d < n {
        let (c, x, dd) = (cur, next, d);
        pram.step(|pid, _, mem| {
            let own = mem.read(c + pid);
            let new = if pid >= dd {
                own + mem.read(c + pid - dd)
            } else {
                own
            };
            vec![WriteRequest::new(x + pid, new)]
        })?;
        std::mem::swap(&mut cur, &mut next);
        d *= 2;
    }

    let prefix = pram.memory()[cur..cur + n].to_vec();
    Ok(PrefixSumResult {
        prefix,
        cost: pram.total_cost(),
    })
}

/// Inclusive scan by the work-efficient Blelloch algorithm (EREW-PRAM).
///
/// The input is padded to the next power of two internally; the scratch copy
/// of the original values costs one extra parallel step, and the final
/// inclusive fix-up one more, so the step count is `2⌈log₂ n⌉ + O(1)`.
pub fn prefix_sums_blelloch(values: &[Word]) -> Result<PrefixSumResult, PramError> {
    let n = values.len();
    if n == 0 {
        return Ok(PrefixSumResult {
            prefix: vec![],
            cost: CostReport::default(),
        });
    }
    let m = n.next_power_of_two();
    // Layout: cells [0..m) — scan workspace, [m..2m) — pristine copy of the
    // inputs, [2m..3m) — the inclusive result.
    let mut pram: Pram<()> = Pram::new(m, 3 * m, AccessMode::Erew, WritePolicy::Priority, 0);
    {
        let mem = pram.memory_mut();
        mem[..n].copy_from_slice(values);
        mem[m..m + n].copy_from_slice(values);
    }

    // Up-sweep: build the reduction tree in place.
    let mut d = 1usize;
    while d < m {
        let dd = d;
        pram.step(|pid, _, mem| {
            if (pid + 1) % (2 * dd) == 0 {
                let right = mem.read(pid);
                let left = mem.read(pid - dd);
                vec![WriteRequest::new(pid, left + right)]
            } else {
                vec![]
            }
        })?;
        d *= 2;
    }

    // Clear the root (processor m−1 does it alone).
    pram.step(|pid, _, _| {
        if pid == m - 1 {
            vec![WriteRequest::new(m - 1, 0.0)]
        } else {
            vec![]
        }
    })?;

    // Down-sweep: propagate the exclusive sums back down the tree.
    let mut d = m / 2;
    while d >= 1 {
        let dd = d;
        pram.step(|pid, _, mem| {
            if (pid + 1) % (2 * dd) == 0 {
                let right = mem.read(pid);
                let left = mem.read(pid - dd);
                vec![
                    WriteRequest::new(pid - dd, right),
                    WriteRequest::new(pid, left + right),
                ]
            } else {
                vec![]
            }
        })?;
        if d == 1 {
            break;
        }
        d /= 2;
    }

    // Inclusive fix-up: prefix[i] = exclusive[i] + original[i].
    pram.step(|pid, _, mem| {
        let exclusive = mem.read(pid);
        let original = mem.read(m + pid);
        vec![WriteRequest::new(2 * m + pid, exclusive + original)]
    })?;

    let prefix = pram.memory()[2 * m..2 * m + n].to_vec();
    Ok(PrefixSumResult {
        prefix,
        cost: pram.total_cost(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sequential_prefix(values: &[Word]) -> Vec<Word> {
        let mut out = Vec::with_capacity(values.len());
        let mut acc = 0.0;
        for &v in values {
            acc += v;
            out.push(acc);
        }
        out
    }

    fn assert_close(a: &[Word], b: &[Word]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() < 1e-9 * (1.0 + y.abs()),
                "index {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn hillis_steele_small_example() {
        let r = prefix_sums_hillis_steele(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_close(&r.prefix, &[1.0, 3.0, 6.0, 10.0]);
    }

    #[test]
    fn blelloch_small_example() {
        let r = prefix_sums_blelloch(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_close(&r.prefix, &[1.0, 3.0, 6.0, 10.0]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert!(prefix_sums_hillis_steele(&[]).unwrap().prefix.is_empty());
        assert!(prefix_sums_blelloch(&[]).unwrap().prefix.is_empty());
        assert_eq!(prefix_sums_hillis_steele(&[5.0]).unwrap().prefix, vec![5.0]);
        assert_eq!(prefix_sums_blelloch(&[5.0]).unwrap().prefix, vec![5.0]);
    }

    #[test]
    fn non_power_of_two_lengths() {
        for n in [3usize, 5, 6, 7, 9, 31, 33, 100] {
            let values: Vec<Word> = (0..n).map(|i| (i % 5) as f64 + 0.5).collect();
            let expect = sequential_prefix(&values);
            assert_close(&prefix_sums_hillis_steele(&values).unwrap().prefix, &expect);
            assert_close(&prefix_sums_blelloch(&values).unwrap().prefix, &expect);
        }
    }

    #[test]
    fn hillis_steele_step_count_is_log_n() {
        let n = 1024;
        let values = vec![1.0; n];
        let r = prefix_sums_hillis_steele(&values).unwrap();
        assert_eq!(r.cost.steps, 10);
    }

    #[test]
    fn blelloch_step_count_is_about_two_log_n() {
        let n = 1024;
        let values = vec![1.0; n];
        let r = prefix_sums_blelloch(&values).unwrap();
        // up-sweep (10) + clear (1) + down-sweep (10) + fix-up (1)
        assert_eq!(r.cost.steps, 22);
    }

    #[test]
    fn blelloch_is_erew_clean() {
        let values: Vec<Word> = (0..200).map(|i| i as f64).collect();
        let r = prefix_sums_blelloch(&values).unwrap();
        assert_eq!(r.cost.read_conflicts, 0);
        assert_eq!(r.cost.write_conflicts, 0);
    }

    #[test]
    fn hillis_steele_uses_concurrent_reads_but_no_write_conflicts() {
        let values: Vec<Word> = (0..64).map(|i| i as f64).collect();
        let r = prefix_sums_hillis_steele(&values).unwrap();
        assert!(
            r.cost.read_conflicts > 0,
            "doubling scan should share reads"
        );
        assert_eq!(r.cost.write_conflicts, 0);
    }

    #[test]
    fn memory_footprint_is_linear() {
        let n = 100;
        let values = vec![1.0; n];
        let hs = prefix_sums_hillis_steele(&values).unwrap();
        assert!(hs.cost.memory_footprint <= 2 * n);
        let bl = prefix_sums_blelloch(&values).unwrap();
        assert!(bl.cost.memory_footprint <= 3 * n.next_power_of_two());
    }

    #[test]
    fn last_prefix_equals_total() {
        let values = [0.5, 0.25, 3.25, 1.0, 7.0];
        let total: f64 = values.iter().sum();
        let r = prefix_sums_blelloch(&values).unwrap();
        assert!((r.prefix.last().unwrap() - total).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_both_match_sequential(values in proptest::collection::vec(0.0f64..100.0, 1..150)) {
            let expect = sequential_prefix(&values);
            let hs = prefix_sums_hillis_steele(&values).unwrap();
            let bl = prefix_sums_blelloch(&values).unwrap();
            for (i, &e) in expect.iter().enumerate() {
                prop_assert!((hs.prefix[i] - e).abs() < 1e-6);
                prop_assert!((bl.prefix[i] - e).abs() < 1e-6);
            }
        }

        #[test]
        fn prop_prefix_is_monotone_for_non_negative_inputs(
            values in proptest::collection::vec(0.0f64..10.0, 1..100)
        ) {
            let bl = prefix_sums_blelloch(&values).unwrap();
            for w in bl.prefix.windows(2) {
                prop_assert!(w[1] >= w[0] - 1e-12);
            }
        }
    }
}
