//! The synchronous PRAM machine.
//!
//! A [`Pram`] holds `n` processor-local states and a shared memory of
//! [`Word`]s. A program is expressed as a sequence of *steps*: in each step
//! every processor receives a read-only view of the shared memory as it was
//! at the start of the step plus mutable access to its own local state, and
//! returns the write requests it wants to perform. The machine then checks
//! the access rules of the configured [`AccessMode`], resolves write
//! conflicts with the configured [`WritePolicy`], applies the surviving
//! writes, and reports the step's cost.
//!
//! This mirrors the textbook synchronous PRAM: all reads of a step happen
//! before all writes of that step, and the result of concurrent writes is
//! governed by the machine's conflict-resolution rule. The paper assumes the
//! *Arbitrary* rule ("a randomly selected one among the multiple memory write
//! operations succeeds"), which is [`WritePolicy::Arbitrary`] here.

use std::cell::RefCell;
use std::collections::HashMap;

use lrb_rng::{RandomSource, SeedableSource, Xoshiro256PlusPlus};

use crate::error::PramError;
use crate::memory::{MemoryView, Word, WriteRequest};
use crate::trace::CostReport;

/// Which simultaneous accesses the model permits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessMode {
    /// Exclusive read, exclusive write: at most one processor may touch a
    /// given cell per step, whether reading or writing.
    Erew,
    /// Concurrent read, exclusive write.
    Crew,
    /// Concurrent read, concurrent write (conflicts resolved by the
    /// [`WritePolicy`]). This is the model the paper uses.
    Crcw,
}

/// How concurrent writes to one cell are resolved under CRCW.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePolicy {
    /// A uniformly random writer succeeds (the paper's model).
    Arbitrary,
    /// The writer with the smallest processor id succeeds.
    Priority,
    /// All writers must agree on the value; disagreement is an error.
    Common,
    /// The maximum of the written values is stored (combining CRCW).
    MaxCombining,
    /// The sum of the written values is stored (combining CRCW).
    SumCombining,
}

/// Cost and bookkeeping information for a single step.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StepOutcome {
    /// Shared-memory reads issued by all processors this step.
    pub reads: usize,
    /// Write requests issued by all processors this step.
    pub writes: usize,
    /// Cells written by more than one processor this step.
    pub write_conflicts: usize,
    /// Cells read by more than one processor this step.
    pub read_conflicts: usize,
    /// Number of processors that issued at least one write this step.
    pub active_writers: usize,
    /// Highest address touched this step plus one.
    pub memory_footprint: usize,
}

impl StepOutcome {
    fn as_cost(&self) -> CostReport {
        CostReport {
            steps: 1,
            reads: self.reads,
            writes: self.writes,
            write_conflicts: self.write_conflicts,
            read_conflicts: self.read_conflicts,
            memory_footprint: self.memory_footprint,
        }
    }
}

/// The default guard against non-terminating programs.
pub const DEFAULT_STEP_LIMIT: usize = 1_000_000;

/// A synchronous PRAM with processor-local state of type `L`.
pub struct Pram<L> {
    memory: Vec<Word>,
    locals: Vec<L>,
    mode: AccessMode,
    policy: WritePolicy,
    rng: Xoshiro256PlusPlus,
    total: CostReport,
    step_limit: usize,
}

impl<L: Default + Clone> Pram<L> {
    /// Create a machine with `processors` processors (default-initialised
    /// local state), `memory_cells` shared cells initialised to `0.0`, the
    /// given access mode and write policy, and a seed for the arbitrary
    /// conflict-resolution randomness.
    pub fn new(
        processors: usize,
        memory_cells: usize,
        mode: AccessMode,
        policy: WritePolicy,
        seed: u64,
    ) -> Self {
        Self::with_locals(
            vec![L::default(); processors],
            memory_cells,
            mode,
            policy,
            seed,
        )
    }
}

impl<L> Pram<L> {
    /// Create a machine from explicit per-processor local states.
    pub fn with_locals(
        locals: Vec<L>,
        memory_cells: usize,
        mode: AccessMode,
        policy: WritePolicy,
        seed: u64,
    ) -> Self {
        Self {
            memory: vec![0.0; memory_cells],
            locals,
            mode,
            policy,
            rng: Xoshiro256PlusPlus::seed_from_u64(seed),
            total: CostReport::default(),
            step_limit: DEFAULT_STEP_LIMIT,
        }
    }

    /// Number of processors.
    pub fn processors(&self) -> usize {
        self.locals.len()
    }

    /// The shared memory contents.
    pub fn memory(&self) -> &[Word] {
        &self.memory
    }

    /// Mutable access to the shared memory (for initialising inputs before a
    /// program runs; does not count towards the cost report).
    pub fn memory_mut(&mut self) -> &mut [Word] {
        &mut self.memory
    }

    /// The per-processor local states.
    pub fn locals(&self) -> &[L] {
        &self.locals
    }

    /// Mutable access to the per-processor local states.
    pub fn locals_mut(&mut self) -> &mut [L] {
        &mut self.locals
    }

    /// Accumulated cost since construction (or the last
    /// [`reset_cost`](Pram::reset_cost)).
    pub fn total_cost(&self) -> CostReport {
        self.total
    }

    /// Reset the accumulated cost report to zero.
    pub fn reset_cost(&mut self) {
        self.total = CostReport::default();
    }

    /// Override the step limit used by
    /// [`run_until_quiescent`](Pram::run_until_quiescent).
    pub fn set_step_limit(&mut self, limit: usize) {
        self.step_limit = limit;
    }

    /// Execute one synchronous step.
    ///
    /// `program` is called once per processor with `(processor id, local
    /// state, memory view)` and returns that processor's write requests. The
    /// requests of all processors are then checked and applied together.
    pub fn step<F>(&mut self, mut program: F) -> Result<StepOutcome, PramError>
    where
        F: FnMut(usize, &mut L, &MemoryView<'_>) -> Vec<WriteRequest>,
    {
        if self.locals.is_empty() {
            return Err(PramError::NoProcessors);
        }

        let memory = &self.memory;
        let mut outcome = StepOutcome::default();
        // Distinct readers / writer lists per cell for conflict checking.
        let mut readers_per_cell: HashMap<usize, usize> = HashMap::new();
        let mut writes_per_cell: HashMap<usize, Vec<(usize, Word)>> = HashMap::new();

        for (pid, local) in self.locals.iter_mut().enumerate() {
            let reads = RefCell::new(Vec::new());
            let view = MemoryView::new(memory, &reads);
            let requests = program(pid, local, &view);

            let mut read_list = reads.into_inner();
            outcome.reads += read_list.len();
            // One processor touching a cell several times in a step counts as
            // a single access for conflict purposes.
            read_list.sort_unstable();
            read_list.dedup();
            for addr in read_list {
                *readers_per_cell.entry(addr).or_insert(0) += 1;
                outcome.memory_footprint = outcome.memory_footprint.max(addr + 1);
            }

            if !requests.is_empty() {
                outcome.active_writers += 1;
            }
            for req in requests {
                if req.address >= memory.len() {
                    return Err(PramError::AddressOutOfBounds {
                        address: req.address,
                        memory_size: memory.len(),
                    });
                }
                outcome.writes += 1;
                outcome.memory_footprint = outcome.memory_footprint.max(req.address + 1);
                writes_per_cell
                    .entry(req.address)
                    .or_default()
                    .push((pid, req.value));
            }
        }

        // Access-rule checks.
        for (&addr, &readers) in &readers_per_cell {
            if readers > 1 {
                outcome.read_conflicts += 1;
                if self.mode == AccessMode::Erew {
                    return Err(PramError::ConcurrentRead {
                        address: addr,
                        readers,
                    });
                }
            }
        }
        for (&addr, writers) in &writes_per_cell {
            if writers.len() > 1 {
                outcome.write_conflicts += 1;
                if self.mode != AccessMode::Crcw {
                    return Err(PramError::ConcurrentWrite {
                        address: addr,
                        writers: writers.len(),
                    });
                }
            }
        }

        // Conflict resolution and memory update.
        // Sort addresses so the winner choice consumes randomness in a
        // deterministic order, keeping runs reproducible for a given seed.
        let mut addresses: Vec<usize> = writes_per_cell.keys().copied().collect();
        addresses.sort_unstable();
        for addr in addresses {
            let writers = &writes_per_cell[&addr];
            let value = match self.policy {
                WritePolicy::Arbitrary => {
                    let pick = if writers.len() == 1 {
                        0
                    } else {
                        self.rng.next_u64_below(writers.len() as u64) as usize
                    };
                    writers[pick].1
                }
                WritePolicy::Priority => {
                    writers
                        .iter()
                        .min_by_key(|(pid, _)| *pid)
                        .expect("non-empty writer list")
                        .1
                }
                WritePolicy::Common => {
                    let first = writers[0].1;
                    if writers
                        .iter()
                        .any(|&(_, v)| v != first && !(v.is_nan() && first.is_nan()))
                    {
                        return Err(PramError::CommonWriteDisagreement { address: addr });
                    }
                    first
                }
                WritePolicy::MaxCombining => writers
                    .iter()
                    .map(|&(_, v)| v)
                    .fold(f64::NEG_INFINITY, f64::max),
                WritePolicy::SumCombining => writers.iter().map(|&(_, v)| v).sum(),
            };
            self.memory[addr] = value;
        }

        self.total.absorb(&outcome.as_cost());
        Ok(outcome)
    }

    /// Repeatedly execute `program` steps until it reports no write requests
    /// from any processor, returning the number of steps taken.
    ///
    /// This is the shape of the paper's `while s < r_i do s ← r_i` loop: the
    /// loop terminates exactly when no processor is still "active". The
    /// machine's step limit guards against programs that never quiesce.
    pub fn run_until_quiescent<F>(&mut self, mut program: F) -> Result<usize, PramError>
    where
        F: FnMut(usize, &mut L, &MemoryView<'_>) -> Vec<WriteRequest>,
    {
        let mut steps = 0;
        loop {
            if steps >= self.step_limit {
                return Err(PramError::StepLimitExceeded {
                    limit: self.step_limit,
                });
            }
            let outcome = self.step(&mut program)?;
            steps += 1;
            if outcome.active_writers == 0 {
                return Ok(steps);
            }
        }
    }
}

impl<L> std::fmt::Debug for Pram<L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pram")
            .field("processors", &self.locals.len())
            .field("memory_cells", &self.memory.len())
            .field("mode", &self.mode)
            .field("policy", &self.policy)
            .field("total", &self.total)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn writers_pram(policy: WritePolicy) -> Pram<()> {
        Pram::new(8, 4, AccessMode::Crcw, policy, 1)
    }

    #[test]
    fn zero_processors_is_an_error() {
        let mut pram: Pram<()> =
            Pram::with_locals(vec![], 1, AccessMode::Crcw, WritePolicy::Arbitrary, 1);
        assert_eq!(
            pram.step(|_, _, _| vec![]).unwrap_err(),
            PramError::NoProcessors
        );
    }

    #[test]
    fn priority_policy_lowest_pid_wins() {
        let mut pram = writers_pram(WritePolicy::Priority);
        pram.step(|pid, _, _| vec![WriteRequest::new(0, pid as f64 + 10.0)])
            .unwrap();
        assert_eq!(pram.memory()[0], 10.0);
    }

    #[test]
    fn arbitrary_policy_picks_one_of_the_written_values() {
        let mut pram = writers_pram(WritePolicy::Arbitrary);
        pram.step(|pid, _, _| vec![WriteRequest::new(0, pid as f64)])
            .unwrap();
        let v = pram.memory()[0];
        assert!(v.fract() == 0.0 && (0.0..8.0).contains(&v));
    }

    #[test]
    fn arbitrary_policy_is_not_always_priority() {
        // Over many seeds the arbitrary winner should not always be processor
        // 0; this distinguishes Arbitrary from Priority behaviourally.
        let mut non_zero_wins = 0;
        for seed in 0..50 {
            let mut pram: Pram<()> =
                Pram::new(8, 1, AccessMode::Crcw, WritePolicy::Arbitrary, seed);
            pram.step(|pid, _, _| vec![WriteRequest::new(0, pid as f64)])
                .unwrap();
            if pram.memory()[0] != 0.0 {
                non_zero_wins += 1;
            }
        }
        assert!(non_zero_wins > 20, "arbitrary winner looks deterministic");
    }

    #[test]
    fn arbitrary_winner_distribution_is_roughly_uniform() {
        let mut counts = [0usize; 4];
        for seed in 0..4000 {
            let mut pram: Pram<()> =
                Pram::new(4, 1, AccessMode::Crcw, WritePolicy::Arbitrary, seed);
            pram.step(|pid, _, _| vec![WriteRequest::new(0, pid as f64)])
                .unwrap();
            counts[pram.memory()[0] as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let frac = c as f64 / 4000.0;
            assert!(
                (frac - 0.25).abs() < 0.05,
                "processor {i} wins with frequency {frac}"
            );
        }
    }

    #[test]
    fn common_policy_accepts_agreement_and_rejects_disagreement() {
        let mut pram = writers_pram(WritePolicy::Common);
        pram.step(|_, _, _| vec![WriteRequest::new(1, 3.5)])
            .unwrap();
        assert_eq!(pram.memory()[1], 3.5);

        let err = pram
            .step(|pid, _, _| vec![WriteRequest::new(1, pid as f64)])
            .unwrap_err();
        assert_eq!(err, PramError::CommonWriteDisagreement { address: 1 });
    }

    #[test]
    fn max_combining_stores_the_maximum() {
        let mut pram = writers_pram(WritePolicy::MaxCombining);
        pram.step(|pid, _, _| vec![WriteRequest::new(0, pid as f64)])
            .unwrap();
        assert_eq!(pram.memory()[0], 7.0);
    }

    #[test]
    fn sum_combining_stores_the_sum() {
        let mut pram = writers_pram(WritePolicy::SumCombining);
        pram.step(|_, _, _| vec![WriteRequest::new(0, 1.0)])
            .unwrap();
        assert_eq!(pram.memory()[0], 8.0);
    }

    #[test]
    fn erew_rejects_concurrent_reads() {
        let mut pram: Pram<()> = Pram::new(2, 2, AccessMode::Erew, WritePolicy::Priority, 1);
        let err = pram
            .step(|_, _, mem| {
                mem.read(0);
                vec![]
            })
            .unwrap_err();
        assert!(matches!(
            err,
            PramError::ConcurrentRead {
                address: 0,
                readers: 2
            }
        ));
    }

    #[test]
    fn erew_allows_disjoint_access() {
        let mut pram: Pram<()> = Pram::new(4, 4, AccessMode::Erew, WritePolicy::Priority, 1);
        let outcome = pram
            .step(|pid, _, mem| {
                let v = mem.read(pid);
                vec![WriteRequest::new(pid, v + 1.0)]
            })
            .unwrap();
        assert_eq!(outcome.write_conflicts, 0);
        assert_eq!(pram.memory(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn crew_allows_concurrent_reads_but_not_writes() {
        let mut pram: Pram<()> = Pram::new(4, 2, AccessMode::Crew, WritePolicy::Priority, 1);
        // Concurrent read is fine.
        pram.step(|_, _, mem| {
            mem.read(0);
            vec![]
        })
        .unwrap();
        // Concurrent write is not.
        let err = pram
            .step(|_, _, _| vec![WriteRequest::new(1, 2.0)])
            .unwrap_err();
        assert!(matches!(
            err,
            PramError::ConcurrentWrite {
                address: 1,
                writers: 4
            }
        ));
    }

    #[test]
    fn out_of_bounds_write_is_reported() {
        let mut pram: Pram<()> = Pram::new(1, 2, AccessMode::Crcw, WritePolicy::Arbitrary, 1);
        let err = pram
            .step(|_, _, _| vec![WriteRequest::new(5, 1.0)])
            .unwrap_err();
        assert_eq!(
            err,
            PramError::AddressOutOfBounds {
                address: 5,
                memory_size: 2
            }
        );
    }

    #[test]
    fn reads_observe_start_of_step_values() {
        // Synchronous semantics: every processor reads the value from before
        // the step, even though another processor writes the cell this step.
        let mut pram: Pram<f64> = Pram::new(2, 1, AccessMode::Crcw, WritePolicy::Priority, 1);
        pram.memory_mut()[0] = 42.0;
        pram.step(|pid, local, mem| {
            *local = mem.read(0);
            if pid == 1 {
                vec![WriteRequest::new(0, 7.0)]
            } else {
                vec![]
            }
        })
        .unwrap();
        assert_eq!(pram.locals(), &[42.0, 42.0]);
        assert_eq!(pram.memory()[0], 7.0);
    }

    #[test]
    fn cost_accumulates_across_steps() {
        let mut pram: Pram<()> = Pram::new(4, 4, AccessMode::Crcw, WritePolicy::Arbitrary, 1);
        for _ in 0..3 {
            pram.step(|pid, _, mem| {
                mem.read(pid);
                vec![WriteRequest::new(0, pid as f64)]
            })
            .unwrap();
        }
        let total = pram.total_cost();
        assert_eq!(total.steps, 3);
        assert_eq!(total.reads, 12);
        assert_eq!(total.writes, 12);
        assert_eq!(total.write_conflicts, 3);
        assert_eq!(total.memory_footprint, 4);
        pram.reset_cost();
        assert_eq!(pram.total_cost(), CostReport::default());
    }

    #[test]
    fn run_until_quiescent_counts_steps() {
        // Each processor writes once in the step equal to its id, then stops.
        let mut pram: Pram<usize> = Pram::new(3, 1, AccessMode::Crcw, WritePolicy::Arbitrary, 1);
        let steps = pram
            .run_until_quiescent(|pid, counter, _| {
                let step = *counter;
                *counter += 1;
                if step < pid {
                    vec![WriteRequest::new(0, pid as f64)]
                } else {
                    vec![]
                }
            })
            .unwrap();
        // Processor 2 writes in steps 0 and 1, so step 2 is the first
        // quiescent one: 3 steps in total.
        assert_eq!(steps, 3);
    }

    #[test]
    fn run_until_quiescent_honours_step_limit() {
        let mut pram: Pram<()> = Pram::new(1, 1, AccessMode::Crcw, WritePolicy::Arbitrary, 1);
        pram.set_step_limit(10);
        let err = pram
            .run_until_quiescent(|_, _, _| vec![WriteRequest::new(0, 1.0)])
            .unwrap_err();
        assert_eq!(err, PramError::StepLimitExceeded { limit: 10 });
    }

    #[test]
    fn same_seed_same_arbitrary_winners() {
        let run = |seed: u64| -> Vec<f64> {
            let mut pram: Pram<()> =
                Pram::new(16, 1, AccessMode::Crcw, WritePolicy::Arbitrary, seed);
            (0..20)
                .map(|_| {
                    pram.step(|pid, _, _| vec![WriteRequest::new(0, pid as f64)])
                        .unwrap();
                    pram.memory()[0]
                })
                .collect()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn debug_format_mentions_processor_count() {
        let pram: Pram<()> = Pram::new(5, 2, AccessMode::Crcw, WritePolicy::Arbitrary, 1);
        let s = format!("{pram:?}");
        assert!(s.contains('5'));
    }
}
