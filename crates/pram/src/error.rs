//! Error type for PRAM model violations and malformed programs.

use std::fmt;

/// Errors raised by the PRAM simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum PramError {
    /// Two or more processors read the same cell in one step under EREW.
    ConcurrentRead {
        /// The shared-memory address that was read concurrently.
        address: usize,
        /// How many processors read it in the offending step.
        readers: usize,
    },
    /// Two or more processors wrote the same cell in one step under EREW or CREW.
    ConcurrentWrite {
        /// The shared-memory address that was written concurrently.
        address: usize,
        /// How many processors wrote it in the offending step.
        writers: usize,
    },
    /// Under the Common CRCW policy, concurrent writers disagreed on the value.
    CommonWriteDisagreement {
        /// The shared-memory address in question.
        address: usize,
    },
    /// A processor addressed a cell outside the shared memory.
    AddressOutOfBounds {
        /// The offending address.
        address: usize,
        /// The size of the shared memory.
        memory_size: usize,
    },
    /// A program exceeded the configured step limit (guards against
    /// non-terminating while-loops in user programs).
    StepLimitExceeded {
        /// The limit that was hit.
        limit: usize,
    },
    /// The program was asked to run on zero processors.
    NoProcessors,
}

impl fmt::Display for PramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PramError::ConcurrentRead { address, readers } => write!(
                f,
                "EREW violation: {readers} processors read cell {address} in one step"
            ),
            PramError::ConcurrentWrite { address, writers } => write!(
                f,
                "exclusive-write violation: {writers} processors wrote cell {address} in one step"
            ),
            PramError::CommonWriteDisagreement { address } => write!(
                f,
                "Common CRCW violation: concurrent writers to cell {address} disagreed on the value"
            ),
            PramError::AddressOutOfBounds {
                address,
                memory_size,
            } => write!(
                f,
                "address {address} is outside the shared memory of {memory_size} cells"
            ),
            PramError::StepLimitExceeded { limit } => {
                write!(f, "program exceeded the step limit of {limit}")
            }
            PramError::NoProcessors => write!(f, "a PRAM needs at least one processor"),
        }
    }
}

impl std::error::Error for PramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_the_address() {
        let e = PramError::ConcurrentRead {
            address: 7,
            readers: 3,
        };
        assert!(e.to_string().contains('7'));
        let e = PramError::ConcurrentWrite {
            address: 9,
            writers: 2,
        };
        assert!(e.to_string().contains('9'));
        let e = PramError::AddressOutOfBounds {
            address: 100,
            memory_size: 10,
        };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn error_trait_object_works() {
        let e: Box<dyn std::error::Error> = Box::new(PramError::NoProcessors);
        assert!(!e.to_string().is_empty());
    }

    #[test]
    fn equality() {
        assert_eq!(
            PramError::StepLimitExceeded { limit: 5 },
            PramError::StepLimitExceeded { limit: 5 }
        );
        assert_ne!(
            PramError::StepLimitExceeded { limit: 5 },
            PramError::StepLimitExceeded { limit: 6 }
        );
    }
}
