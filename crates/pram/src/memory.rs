//! Shared-memory cells, read views and write requests.

use std::cell::RefCell;

/// The value stored in one shared-memory cell.
///
/// The algorithms in this workspace only need real-valued cells (bids, prefix
/// sums) and small integers (processor indices), which `f64` represents
/// exactly up to 2⁵³, so a single word type keeps the machine simple.
pub type Word = f64;

/// A request by one processor to write `value` into shared cell `address`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WriteRequest {
    /// Target shared-memory address.
    pub address: usize,
    /// Value to store.
    pub value: Word,
}

impl WriteRequest {
    /// Convenience constructor.
    pub fn new(address: usize, value: Word) -> Self {
        Self { address, value }
    }
}

/// A read-only, read-tracking view of the shared memory handed to each
/// processor during a step.
///
/// All reads in a step observe the memory as it was at the *start* of the
/// step (synchronous PRAM semantics); the addresses read are recorded so the
/// machine can enforce EREW rules and count read traffic.
pub struct MemoryView<'a> {
    cells: &'a [Word],
    reads: &'a RefCell<Vec<usize>>,
}

impl<'a> MemoryView<'a> {
    pub(crate) fn new(cells: &'a [Word], reads: &'a RefCell<Vec<usize>>) -> Self {
        Self { cells, reads }
    }

    /// Read the cell at `address`, recording the access.
    ///
    /// Panics if the address is out of bounds; the machine validates the
    /// memory size up front, so an out-of-bounds read is a program bug.
    pub fn read(&self, address: usize) -> Word {
        assert!(
            address < self.cells.len(),
            "read of cell {address} outside shared memory of {} cells",
            self.cells.len()
        );
        self.reads.borrow_mut().push(address);
        self.cells[address]
    }

    /// Number of cells in the shared memory.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the shared memory has zero cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Peek at a cell *without* recording the access.
    ///
    /// Only intended for assertions and debugging; algorithm implementations
    /// must use [`read`](MemoryView::read) so the access accounting stays
    /// faithful to the model.
    pub fn peek(&self, address: usize) -> Word {
        self.cells[address]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_are_recorded() {
        let cells = vec![1.0, 2.0, 3.0];
        let reads = RefCell::new(Vec::new());
        let view = MemoryView::new(&cells, &reads);
        assert_eq!(view.read(0), 1.0);
        assert_eq!(view.read(2), 3.0);
        assert_eq!(view.read(2), 3.0);
        assert_eq!(*reads.borrow(), vec![0, 2, 2]);
    }

    #[test]
    fn peek_is_not_recorded() {
        let cells = vec![5.0];
        let reads = RefCell::new(Vec::new());
        let view = MemoryView::new(&cells, &reads);
        assert_eq!(view.peek(0), 5.0);
        assert!(reads.borrow().is_empty());
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_read_panics() {
        let cells = vec![1.0];
        let reads = RefCell::new(Vec::new());
        let view = MemoryView::new(&cells, &reads);
        view.read(1);
    }

    #[test]
    fn len_and_is_empty() {
        let cells: Vec<Word> = vec![];
        let reads = RefCell::new(Vec::new());
        let view = MemoryView::new(&cells, &reads);
        assert_eq!(view.len(), 0);
        assert!(view.is_empty());
    }

    #[test]
    fn write_request_constructor() {
        let w = WriteRequest::new(3, 1.5);
        assert_eq!(w.address, 3);
        assert_eq!(w.value, 1.5);
    }
}
