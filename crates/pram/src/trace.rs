//! Cost accounting for PRAM programs.
//!
//! The paper's claims are *cost-model* claims: the logarithmic random bidding
//! takes expected `O(log k)` steps and `O(1)` shared memory on the
//! CRCW-PRAM. [`CostReport`] captures exactly those quantities for a program
//! run on the simulator, so the Theorem 1 experiment can print and check
//! them.

/// Aggregate cost of a PRAM program run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostReport {
    /// Number of synchronous steps executed.
    pub steps: usize,
    /// Total shared-memory read operations issued across all processors.
    pub reads: usize,
    /// Total shared-memory write requests issued across all processors.
    pub writes: usize,
    /// Number of (cell, step) pairs in which more than one processor wrote.
    pub write_conflicts: usize,
    /// Number of (cell, step) pairs in which more than one processor read.
    pub read_conflicts: usize,
    /// Highest shared-memory address touched plus one (0 if none touched).
    ///
    /// This is the measured shared-memory footprint of the program: the
    /// constant-memory CRCW algorithms of the paper must keep it `O(1)`
    /// regardless of the processor count.
    pub memory_footprint: usize,
}

impl CostReport {
    /// Merge the outcome of one more step into the running totals.
    pub fn absorb(&mut self, other: &CostReport) {
        self.steps += other.steps;
        self.reads += other.reads;
        self.writes += other.writes;
        self.write_conflicts += other.write_conflicts;
        self.read_conflicts += other.read_conflicts;
        self.memory_footprint = self.memory_footprint.max(other.memory_footprint);
    }
}

impl std::fmt::Display for CostReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "steps={} reads={} writes={} write_conflicts={} read_conflicts={} memory={}",
            self.steps,
            self.reads,
            self.writes,
            self.write_conflicts,
            self.read_conflicts,
            self.memory_footprint
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_all_zero() {
        let r = CostReport::default();
        assert_eq!(r.steps, 0);
        assert_eq!(r.reads, 0);
        assert_eq!(r.writes, 0);
        assert_eq!(r.memory_footprint, 0);
    }

    #[test]
    fn absorb_adds_counts_and_maxes_memory() {
        let mut a = CostReport {
            steps: 2,
            reads: 10,
            writes: 5,
            write_conflicts: 1,
            read_conflicts: 0,
            memory_footprint: 4,
        };
        let b = CostReport {
            steps: 3,
            reads: 7,
            writes: 2,
            write_conflicts: 0,
            read_conflicts: 2,
            memory_footprint: 2,
        };
        a.absorb(&b);
        assert_eq!(a.steps, 5);
        assert_eq!(a.reads, 17);
        assert_eq!(a.writes, 7);
        assert_eq!(a.write_conflicts, 1);
        assert_eq!(a.read_conflicts, 2);
        assert_eq!(a.memory_footprint, 4);
    }

    #[test]
    fn display_contains_all_fields() {
        let r = CostReport {
            steps: 1,
            reads: 2,
            writes: 3,
            write_conflicts: 4,
            read_conflicts: 5,
            memory_footprint: 6,
        };
        let s = r.to_string();
        for needle in [
            "steps=1",
            "reads=2",
            "writes=3",
            "write_conflicts=4",
            "read_conflicts=5",
            "memory=6",
        ] {
            assert!(s.contains(needle), "missing {needle} in {s}");
        }
    }
}
