//! Batch selection: run many independent selections of the same fitness
//! vector at once, parallelised over the *trials* with rayon.
//!
//! The probability experiments (Tables I and II) and Monte-Carlo users need
//! millions of independent selections from one fitness vector. Parallelising
//! over trials is embarrassingly parallel and keeps each individual selection
//! identical to the one-shot API: trial `t` gets its own counter-based Philox
//! stream derived from one master seed, so the batch result is a
//! deterministic function of `(fitness, selector, master_seed, trials)` and
//! does not depend on the rayon schedule.

use lrb_rng::Philox4x32;
use rayon::prelude::*;

use crate::error::SelectionError;
use crate::fitness::Fitness;
use crate::traits::Selector;

/// Counts of how often each index was selected in a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchCounts {
    counts: Vec<u64>,
    trials: u64,
}

impl BatchCounts {
    /// Raw per-index counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of trials in the batch.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Empirical frequencies.
    pub fn frequencies(&self) -> Vec<f64> {
        self.counts
            .iter()
            .map(|&c| c as f64 / self.trials as f64)
            .collect()
    }

    fn merge(mut self, other: BatchCounts) -> BatchCounts {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.trials += other.trials;
        self
    }
}

/// Run `trials` independent selections of `fitness` with `selector`,
/// parallelised over trials, and return the per-index counts.
///
/// Fails fast with the selector's error if the fitness vector is degenerate
/// (empty support).
pub fn batch_select_counts(
    selector: &dyn Selector,
    fitness: &Fitness,
    trials: u64,
    master_seed: u64,
) -> Result<BatchCounts, SelectionError> {
    if fitness.is_all_zero() {
        return Err(SelectionError::AllZeroFitness);
    }
    let chunk: u64 = 4_096;
    let chunks: Vec<(u64, u64)> = (0..trials)
        .step_by(chunk as usize)
        .map(|start| (start, (start + chunk).min(trials)))
        .collect();

    let empty = || BatchCounts {
        counts: vec![0; fitness.len()],
        trials: 0,
    };

    let result = chunks
        .par_iter()
        .map(|&(start, end)| {
            let mut local = empty();
            for trial in start..end {
                // One provably independent stream per trial.
                let mut rng = Philox4x32::for_substream(master_seed, trial);
                let index = selector.select(fitness, &mut rng)?;
                local.counts[index] += 1;
                local.trials += 1;
            }
            Ok(local)
        })
        .try_reduce(empty, |a, b| Ok(a.merge(b)))?;

    Ok(result)
}

/// Run `trials` independent selections and return the selected indices in
/// trial order (useful when the caller needs the raw sequence, e.g. to feed a
/// downstream simulation).
pub fn batch_select_indices(
    selector: &dyn Selector,
    fitness: &Fitness,
    trials: u64,
    master_seed: u64,
) -> Result<Vec<usize>, SelectionError> {
    if fitness.is_all_zero() {
        return Err(SelectionError::AllZeroFitness);
    }
    (0..trials)
        .into_par_iter()
        .map(|trial| {
            let mut rng = Philox4x32::for_substream(master_seed, trial);
            selector.select(fitness, &mut rng)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::{IndependentRouletteSelector, LogBiddingSelector};
    use crate::sequential::LinearScanSelector;

    #[test]
    fn counts_sum_to_the_trial_budget() {
        let fitness = Fitness::table1();
        let batch =
            batch_select_counts(&LogBiddingSelector::default(), &fitness, 10_000, 1).unwrap();
        assert_eq!(batch.trials(), 10_000);
        assert_eq!(batch.counts().iter().sum::<u64>(), 10_000);
        assert_eq!(batch.counts()[0], 0, "zero-fitness index never selected");
    }

    #[test]
    fn frequencies_match_the_exact_distribution_for_exact_selectors() {
        let fitness = Fitness::new(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let batch =
            batch_select_counts(&LogBiddingSelector::default(), &fitness, 100_000, 2).unwrap();
        let freqs = batch.frequencies();
        for (i, target) in fitness.probabilities().iter().enumerate() {
            assert!(
                (freqs[i] - target).abs() < 0.006,
                "index {i}: {} vs {target}",
                freqs[i]
            );
        }
    }

    #[test]
    fn batch_results_are_independent_of_the_rayon_schedule() {
        // Deterministic by construction: same master seed → same counts.
        let fitness = Fitness::new(vec![2.0, 1.0, 4.0]).unwrap();
        let a = batch_select_counts(&LinearScanSelector, &fitness, 20_000, 3).unwrap();
        let b = batch_select_counts(&LinearScanSelector, &fitness, 20_000, 3).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn indices_and_counts_agree() {
        let fitness = Fitness::new(vec![1.0, 1.0, 2.0]).unwrap();
        let selector = IndependentRouletteSelector;
        let indices = batch_select_indices(&selector, &fitness, 5_000, 4).unwrap();
        let counts = batch_select_counts(&selector, &fitness, 5_000, 4).unwrap();
        let mut recount = vec![0u64; fitness.len()];
        for &i in &indices {
            recount[i] += 1;
        }
        assert_eq!(recount, counts.counts());
    }

    #[test]
    fn all_zero_fitness_is_rejected() {
        let fitness = Fitness::new(vec![0.0, 0.0]).unwrap();
        assert!(batch_select_counts(&LinearScanSelector, &fitness, 10, 5).is_err());
        assert!(batch_select_indices(&LinearScanSelector, &fitness, 10, 5).is_err());
    }

    #[test]
    fn zero_trials_is_a_valid_empty_batch() {
        let fitness = Fitness::new(vec![1.0]).unwrap();
        let batch = batch_select_counts(&LinearScanSelector, &fitness, 0, 6).unwrap();
        assert_eq!(batch.trials(), 0);
        assert_eq!(batch.counts(), &[0]);
        assert!(batch_select_indices(&LinearScanSelector, &fitness, 0, 6)
            .unwrap()
            .is_empty());
    }
}
