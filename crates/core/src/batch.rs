//! The shared deterministic batch kernel: run many independent draws at
//! once, parallelised over disjoint chunks of one output buffer.
//!
//! The probability experiments (Tables I and II), the dynamic samplers'
//! batch APIs and the `lrb-engine` snapshot readers all need millions of
//! independent selections from one frozen state. They all reuse the one
//! [`BatchDriver`] here: the output buffer is split into fixed-size chunks,
//! chunk `c` draws from its own counter-based Philox substream
//! `for_substream(master_seed, c)`, and a caller-supplied closure fills each
//! chunk through the buffer primitives ([`Selector::select_into`],
//! `sample_into`). Chunk boundaries depend only on the driver's configured
//! chunk size — never on the rayon schedule or thread count — so a batch is
//! a pure function of `(state, master_seed, trials, chunk_size)`, while each
//! chunk amortises the sampler's per-call setup across its whole sub-slice.

use lrb_rng::Philox4x32;
use rayon::prelude::*;

use crate::error::SelectionError;
use crate::fitness::Fitness;
use crate::traits::Selector;

/// Default trials per substream chunk: large enough to amortise per-chunk
/// setup (one Philox construction, one prefix-table build), small enough
/// that realistic batches produce many chunks to fan out over.
pub const DEFAULT_CHUNK_SIZE: u64 = 1024;

/// The deterministic Philox-substream batch driver shared by `lrb-core`,
/// `lrb-dynamic` and `lrb-engine`.
///
/// # Example
///
/// ```
/// use lrb_core::batch::BatchDriver;
/// use lrb_core::sequential::LinearScanSelector;
/// use lrb_core::{Fitness, Selector};
///
/// let fitness = Fitness::new(vec![1.0, 0.0, 3.0]).unwrap();
/// let driver = BatchDriver::new();
/// let a = driver
///     .drive_indices(7, 10_000, |rng, out| {
///         LinearScanSelector.select_into(&fitness, rng, out)
///     })
///     .unwrap();
/// let b = driver
///     .drive_indices(7, 10_000, |rng, out| {
///         LinearScanSelector.select_into(&fitness, rng, out)
///     })
///     .unwrap();
/// assert_eq!(a, b); // same master seed → identical draws, any thread count
/// assert!(a.iter().all(|&i| i != 1)); // zero-weight index never drawn
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchDriver {
    chunk_size: u64,
}

impl Default for BatchDriver {
    fn default() -> Self {
        Self {
            chunk_size: DEFAULT_CHUNK_SIZE,
        }
    }
}

impl BatchDriver {
    /// A driver with the [`DEFAULT_CHUNK_SIZE`].
    pub fn new() -> Self {
        Self::default()
    }

    /// A driver with an explicit chunk size (must be positive). The chunk
    /// size is part of the determinism contract: changing it changes which
    /// substream serves which trial, so results are reproducible per
    /// `(master_seed, chunk_size)` pair.
    pub fn with_chunk_size(chunk_size: u64) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        Self { chunk_size }
    }

    /// Trials served per substream chunk.
    pub fn chunk_size(&self) -> u64 {
        self.chunk_size
    }

    /// Fill `out` deterministically: the chunk covering
    /// `out[c·chunk_size .. (c+1)·chunk_size]` is filled by `fill` with a
    /// fresh Philox substream `(master_seed, c)`. Chunks run rayon-parallel;
    /// the first error aborts the batch.
    pub fn drive_into<E, F>(&self, master_seed: u64, out: &mut [usize], fill: F) -> Result<(), E>
    where
        E: Send,
        F: Fn(&mut Philox4x32, &mut [usize]) -> Result<(), E> + Sync,
    {
        out.par_chunks_mut(self.chunk_size as usize)
            .with_min_len(1)
            .enumerate()
            .map(|(chunk, slice)| {
                let mut rng = Philox4x32::for_substream(master_seed, chunk as u64);
                fill(&mut rng, slice)
            })
            .collect::<Result<Vec<()>, E>>()?;
        Ok(())
    }

    /// Run `trials` draws and return the selected indices in trial order.
    pub fn drive_indices<E, F>(
        &self,
        master_seed: u64,
        trials: u64,
        fill: F,
    ) -> Result<Vec<usize>, E>
    where
        E: Send,
        F: Fn(&mut Philox4x32, &mut [usize]) -> Result<(), E> + Sync,
    {
        let mut out = vec![0usize; trials as usize];
        self.drive_into(master_seed, &mut out, fill)?;
        Ok(out)
    }

    /// Run `trials` draws over `categories` indices and tabulate them into
    /// per-index counts.
    ///
    /// Counting happens chunk-locally (each chunk fills a transient
    /// chunk-sized buffer and tabulates it immediately; partial counts are
    /// merged), so memory stays `O(chunks · categories)` instead of
    /// materialising every trial index — the Tables I/II regime is millions
    /// of trials over tens of categories.
    pub fn drive_counts<E, F>(
        &self,
        master_seed: u64,
        trials: u64,
        categories: usize,
        fill: F,
    ) -> Result<Vec<u64>, E>
    where
        E: Send,
        F: Fn(&mut Philox4x32, &mut [usize]) -> Result<(), E> + Sync,
    {
        let chunk_size = self.chunk_size as usize;
        let chunk_count = (trials as usize).div_ceil(chunk_size.max(1));
        (0..chunk_count)
            .into_par_iter()
            .with_min_len(1)
            .map(|chunk| {
                let start = chunk * chunk_size;
                let len = chunk_size.min(trials as usize - start);
                let mut buffer = vec![0usize; len];
                let mut rng = Philox4x32::for_substream(master_seed, chunk as u64);
                fill(&mut rng, &mut buffer)?;
                let mut local = vec![0u64; categories];
                for index in buffer {
                    local[index] += 1;
                }
                Ok(local)
            })
            .try_reduce(
                || vec![0u64; categories],
                |mut acc, local| {
                    for (a, b) in acc.iter_mut().zip(&local) {
                        *a += b;
                    }
                    Ok(acc)
                },
            )
    }
}

/// Counts of how often each index was selected in a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchCounts {
    counts: Vec<u64>,
    trials: u64,
}

impl BatchCounts {
    /// Raw per-index counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of trials in the batch.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Empirical frequencies.
    pub fn frequencies(&self) -> Vec<f64> {
        self.counts
            .iter()
            .map(|&c| c as f64 / self.trials as f64)
            .collect()
    }
}

/// Run `trials` independent selections of `fitness` with `selector` through
/// the shared [`BatchDriver`] and return the per-index counts.
///
/// Fails fast with the selector's error if the fitness vector is degenerate
/// (empty support).
pub fn batch_select_counts(
    selector: &dyn Selector,
    fitness: &Fitness,
    trials: u64,
    master_seed: u64,
) -> Result<BatchCounts, SelectionError> {
    if fitness.is_all_zero() {
        return Err(SelectionError::AllZeroFitness);
    }
    let counts =
        BatchDriver::new().drive_counts(master_seed, trials, fitness.len(), |rng, out| {
            selector.select_into(fitness, rng, out)
        })?;
    Ok(BatchCounts { counts, trials })
}

/// Run `trials` independent selections and return the selected indices in
/// trial order (useful when the caller needs the raw sequence, e.g. to feed a
/// downstream simulation).
pub fn batch_select_indices(
    selector: &dyn Selector,
    fitness: &Fitness,
    trials: u64,
    master_seed: u64,
) -> Result<Vec<usize>, SelectionError> {
    if fitness.is_all_zero() {
        return Err(SelectionError::AllZeroFitness);
    }
    BatchDriver::new().drive_indices(master_seed, trials, |rng, out| {
        selector.select_into(fitness, rng, out)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::{IndependentRouletteSelector, LogBiddingSelector};
    use crate::sequential::LinearScanSelector;

    #[test]
    fn counts_sum_to_the_trial_budget() {
        let fitness = Fitness::table1();
        let batch =
            batch_select_counts(&LogBiddingSelector::default(), &fitness, 10_000, 1).unwrap();
        assert_eq!(batch.trials(), 10_000);
        assert_eq!(batch.counts().iter().sum::<u64>(), 10_000);
        assert_eq!(batch.counts()[0], 0, "zero-fitness index never selected");
    }

    #[test]
    fn frequencies_match_the_exact_distribution_for_exact_selectors() {
        let fitness = Fitness::new(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let batch =
            batch_select_counts(&LogBiddingSelector::default(), &fitness, 100_000, 2).unwrap();
        let freqs = batch.frequencies();
        for (i, target) in fitness.probabilities().iter().enumerate() {
            assert!(
                (freqs[i] - target).abs() < 0.006,
                "index {i}: {} vs {target}",
                freqs[i]
            );
        }
    }

    #[test]
    fn batch_results_are_independent_of_the_rayon_schedule() {
        // Deterministic by construction: same master seed → same counts.
        let fitness = Fitness::new(vec![2.0, 1.0, 4.0]).unwrap();
        let a = batch_select_counts(&LinearScanSelector, &fitness, 20_000, 3).unwrap();
        let b = batch_select_counts(&LinearScanSelector, &fitness, 20_000, 3).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn thread_count_overrides_do_not_change_the_batch() {
        let fitness = Fitness::new(vec![1.0, 3.0, 2.0, 0.5]).unwrap();
        let reference = batch_select_indices(&LinearScanSelector, &fitness, 30_000, 8).unwrap();
        for threads in [1usize, 2, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let indices = pool
                .install(|| batch_select_indices(&LinearScanSelector, &fitness, 30_000, 8))
                .unwrap();
            assert_eq!(indices, reference, "{threads} threads diverged");
        }
    }

    #[test]
    fn indices_and_counts_agree() {
        let fitness = Fitness::new(vec![1.0, 1.0, 2.0]).unwrap();
        let selector = IndependentRouletteSelector;
        let indices = batch_select_indices(&selector, &fitness, 5_000, 4).unwrap();
        let counts = batch_select_counts(&selector, &fitness, 5_000, 4).unwrap();
        let mut recount = vec![0u64; fitness.len()];
        for &i in &indices {
            recount[i] += 1;
        }
        assert_eq!(recount, counts.counts());
    }

    #[test]
    fn all_zero_fitness_is_rejected() {
        let fitness = Fitness::new(vec![0.0, 0.0]).unwrap();
        assert!(batch_select_counts(&LinearScanSelector, &fitness, 10, 5).is_err());
        assert!(batch_select_indices(&LinearScanSelector, &fitness, 10, 5).is_err());
    }

    #[test]
    fn zero_trials_is_a_valid_empty_batch() {
        let fitness = Fitness::new(vec![1.0]).unwrap();
        let batch = batch_select_counts(&LinearScanSelector, &fitness, 0, 6).unwrap();
        assert_eq!(batch.trials(), 0);
        assert_eq!(batch.counts(), &[0]);
        assert!(batch_select_indices(&LinearScanSelector, &fitness, 0, 6)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn chunk_size_is_part_of_the_determinism_contract() {
        // Same seed, same chunk size → identical; a different chunk size
        // reassigns substreams and is allowed to differ.
        let fitness = Fitness::new(vec![1.0, 2.0, 3.0]).unwrap();
        let fill = |rng: &mut lrb_rng::Philox4x32, out: &mut [usize]| {
            LinearScanSelector.select_into(&fitness, rng, out)
        };
        let small = BatchDriver::with_chunk_size(64);
        let a = small.drive_indices(9, 10_000, fill).unwrap();
        let b = small.drive_indices(9, 10_000, fill).unwrap();
        assert_eq!(a, b);
        assert_eq!(small.chunk_size(), 64);
        let big = BatchDriver::with_chunk_size(4096);
        let c = big.drive_indices(9, 10_000, fill).unwrap();
        assert_ne!(a, c, "different chunk sizes should reassign substreams");
    }

    #[test]
    fn drive_into_fills_exactly_the_buffer_it_is_given() {
        let fitness = Fitness::new(vec![0.0, 5.0]).unwrap();
        let mut out = vec![99usize; 2_500];
        BatchDriver::with_chunk_size(1000)
            .drive_into(3, &mut out, |rng, slice| {
                LinearScanSelector.select_into(&fitness, rng, slice)
            })
            .unwrap();
        assert!(out.iter().all(|&i| i == 1));
    }

    #[test]
    #[should_panic]
    fn zero_chunk_size_is_rejected() {
        let _ = BatchDriver::with_chunk_size(0);
    }
}
