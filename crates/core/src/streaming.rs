//! Weighted reservoir sampling: one-pass roulette wheel selection over a
//! stream whose length and weights are not known in advance.
//!
//! The A-Res algorithm (Efraimidis & Spirakis) is the streaming face of the
//! logarithmic random bidding: each arriving item draws the same key
//! `ln(u)/w` and the reservoir keeps the largest keys seen so far. A-ExpJ
//! ("exponential jumps") produces the same distribution while skipping ahead
//! over items that cannot enter the reservoir, reducing the number of random
//! draws from `O(n)` to `O(m log(n/m))` in expectation.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use lrb_rng::exponential::log_bid;
use lrb_rng::RandomSource;

/// An entry held in the reservoir.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry<T> {
    key: f64,
    item: T,
}

impl<T: PartialEq> Eq for Entry<T> {}

impl<T: PartialEq> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the smallest key on top.
        other
            .key
            .partial_cmp(&self.key)
            .expect("reservoir keys are never NaN")
    }
}

impl<T: PartialEq> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A weighted reservoir of fixed capacity (A-Res).
///
/// Feed `(item, weight)` pairs with [`WeightedReservoir::offer`]; at any
/// point [`WeightedReservoir::items`] is a weighted sample without
/// replacement of everything offered so far. Zero-weight items are ignored;
/// negative or NaN weights panic.
#[derive(Debug, Clone)]
pub struct WeightedReservoir<T> {
    capacity: usize,
    heap: BinaryHeap<Entry<T>>,
}

impl<T: PartialEq> WeightedReservoir<T> {
    /// Create a reservoir holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        Self {
            capacity,
            heap: BinaryHeap::with_capacity(capacity + 1),
        }
    }

    /// The maximum number of items the reservoir retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of items currently retained.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the reservoir is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The smallest key currently in the reservoir (the threshold a new item
    /// must beat once the reservoir is full).
    pub fn threshold(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.key)
    }

    /// Offer one weighted item. Returns `true` if the item entered the
    /// reservoir (it may later be evicted by better items).
    pub fn offer(&mut self, item: T, weight: f64, rng: &mut dyn RandomSource) -> bool {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "weights must be finite and non-negative, got {weight}"
        );
        if weight == 0.0 {
            return false;
        }
        let key = log_bid(rng, weight);
        if self.heap.len() < self.capacity {
            self.heap.push(Entry { key, item });
            return true;
        }
        let current_min = self.threshold().expect("full reservoir has a threshold");
        if key > current_min {
            self.heap.pop();
            self.heap.push(Entry { key, item });
            true
        } else {
            false
        }
    }

    /// Consume the reservoir, returning the retained items ordered by
    /// decreasing key (the order a sequential weighted draw without
    /// replacement would have produced them).
    pub fn into_items(self) -> Vec<T> {
        let mut entries: Vec<Entry<T>> = self.heap.into_iter().collect();
        entries.sort_by(|a, b| b.key.partial_cmp(&a.key).expect("keys are never NaN"));
        entries.into_iter().map(|e| e.item).collect()
    }

    /// The retained items in unspecified order (non-consuming).
    pub fn items(&self) -> Vec<&T> {
        self.heap.iter().map(|e| &e.item).collect()
    }
}

/// One-shot convenience: select a single item from a weighted stream.
///
/// Equivalent to a [`WeightedReservoir`] of capacity 1 — and therefore to a
/// streaming execution of the paper's logarithmic random bidding.
pub fn select_from_stream<T: PartialEq>(
    stream: impl IntoIterator<Item = (T, f64)>,
    rng: &mut dyn RandomSource,
) -> Option<T> {
    let mut reservoir = WeightedReservoir::new(1);
    for (item, weight) in stream {
        reservoir.offer(item, weight, rng);
    }
    reservoir.into_items().into_iter().next()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrb_rng::{MersenneTwister64, SeedableSource};
    use lrb_stats::EmpiricalDistribution;

    #[test]
    fn reservoir_never_exceeds_capacity() {
        let mut rng = MersenneTwister64::seed_from_u64(1);
        let mut res = WeightedReservoir::new(3);
        for i in 0..100 {
            res.offer(i, 1.0 + (i % 5) as f64, &mut rng);
            assert!(res.len() <= 3);
        }
        assert_eq!(res.len(), 3);
    }

    #[test]
    fn zero_weight_items_are_ignored() {
        let mut rng = MersenneTwister64::seed_from_u64(2);
        let mut res = WeightedReservoir::new(2);
        assert!(!res.offer("zero", 0.0, &mut rng));
        assert!(res.is_empty());
        assert!(res.offer("one", 1.0, &mut rng));
        assert_eq!(res.len(), 1);
    }

    #[test]
    #[should_panic]
    fn negative_weights_panic() {
        let mut rng = MersenneTwister64::seed_from_u64(2);
        let mut res = WeightedReservoir::new(1);
        res.offer("bad", -1.0, &mut rng);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        let _ = WeightedReservoir::<u32>::new(0);
    }

    #[test]
    fn fewer_items_than_capacity_keeps_everything() {
        let mut rng = MersenneTwister64::seed_from_u64(3);
        let mut res = WeightedReservoir::new(10);
        for i in 0..4 {
            res.offer(i, 1.0, &mut rng);
        }
        let mut items = res.into_items();
        items.sort_unstable();
        assert_eq!(items, vec![0, 1, 2, 3]);
    }

    #[test]
    fn single_item_selection_follows_the_roulette_distribution() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let total: f64 = weights.iter().sum();
        let mut rng = MersenneTwister64::seed_from_u64(4);
        let trials = 150_000;
        let mut dist = EmpiricalDistribution::new(weights.len());
        for _ in 0..trials {
            let picked = select_from_stream(weights.iter().copied().enumerate(), &mut rng).unwrap();
            dist.record(picked);
        }
        let target: Vec<f64> = weights.iter().map(|w| w / total).collect();
        assert!(dist.max_abs_deviation(&target) < 0.005);
        assert!(dist.goodness_of_fit(&target).is_consistent(0.001));
    }

    #[test]
    fn select_from_all_zero_stream_returns_none() {
        let mut rng = MersenneTwister64::seed_from_u64(5);
        assert_eq!(
            select_from_stream([(0usize, 0.0), (1, 0.0)], &mut rng),
            None
        );
        assert_eq!(
            select_from_stream(Vec::<(usize, f64)>::new(), &mut rng),
            None
        );
    }

    #[test]
    fn threshold_is_the_smallest_retained_key() {
        let mut rng = MersenneTwister64::seed_from_u64(6);
        let mut res = WeightedReservoir::new(2);
        assert_eq!(res.threshold(), None);
        res.offer(1, 1.0, &mut rng);
        res.offer(2, 1.0, &mut rng);
        let t = res.threshold().unwrap();
        assert!(t < 0.0, "log bids are negative, got {t}");
    }

    #[test]
    fn heavier_items_are_retained_more_often() {
        let mut rng = MersenneTwister64::seed_from_u64(7);
        let trials = 20_000;
        let mut heavy_kept = 0usize;
        let mut light_kept = 0usize;
        for _ in 0..trials {
            let mut res = WeightedReservoir::new(1);
            res.offer("light", 1.0, &mut rng);
            res.offer("heavy", 9.0, &mut rng);
            match res.into_items()[0] {
                "heavy" => heavy_kept += 1,
                _ => light_kept += 1,
            }
        }
        let frac = heavy_kept as f64 / trials as f64;
        assert!((frac - 0.9).abs() < 0.01, "heavy retained {frac}");
        assert_eq!(heavy_kept + light_kept, trials);
    }

    #[test]
    fn into_items_orders_by_decreasing_key() {
        // With capacity equal to the stream length, the first returned item
        // is the overall roulette winner; check against a one-shot selection
        // under the same seed by re-running with capacity 1.
        let weights = [(0usize, 2.0), (1, 5.0), (2, 1.0)];
        let full = {
            let mut rng = MersenneTwister64::seed_from_u64(8);
            let mut res = WeightedReservoir::new(3);
            for &(i, w) in &weights {
                res.offer(i, w, &mut rng);
            }
            res.into_items()
        };
        let single = {
            let mut rng = MersenneTwister64::seed_from_u64(8);
            select_from_stream(weights.iter().copied(), &mut rng).unwrap()
        };
        assert_eq!(full[0], single);
        assert_eq!(full.len(), 3);
    }
}
