//! The textbook linear CDF scan: draw `R = rand() · Σf`, walk the values
//! accumulating until the running sum exceeds `R`.
//!
//! `O(n)` per selection, no preprocessing, exact probabilities. This is the
//! reference implementation the whole reproduction is validated against.

use lrb_rng::RandomSource;

use crate::error::SelectionError;
use crate::fitness::Fitness;
use crate::traits::Selector;

/// The shared linear CDF inversion over raw weights: draw `R = u · total`
/// and return the first index whose cumulative positive weight exceeds it.
///
/// Consumes exactly one uniform. Zero weights are skipped, so they are never
/// returned; when floating-point rounding leaves the accumulated sum a hair
/// below `total`, the residual draw belongs to the last positive weight.
/// This is the single definition behind [`LinearScanSelector`], the
/// stochastic-acceptance round-budget fallback here, and the dynamic
/// `StochasticAcceptanceSampler`'s degenerate-weight fallback in
/// `lrb-dynamic` — one rounding rule, everywhere.
///
/// The caller must guarantee `total > 0` (i.e. at least one positive
/// weight); an all-zero vector would return index 0 regardless of weight.
pub fn linear_scan_weights(weights: &[f64], total: f64, rng: &mut dyn RandomSource) -> usize {
    let r = rng.next_f64() * total;
    let mut acc = 0.0;
    let mut last_positive = 0usize;
    for (i, &w) in weights.iter().enumerate() {
        if w <= 0.0 {
            continue;
        }
        acc += w;
        last_positive = i;
        if r < acc {
            return i;
        }
    }
    last_positive
}

/// Linear-scan roulette wheel selection.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinearScanSelector;

impl Selector for LinearScanSelector {
    fn name(&self) -> &'static str {
        "sequential-linear-scan"
    }

    fn is_exact(&self) -> bool {
        true
    }

    fn select(
        &self,
        fitness: &Fitness,
        rng: &mut dyn RandomSource,
    ) -> Result<usize, SelectionError> {
        if fitness.is_all_zero() {
            return Err(SelectionError::AllZeroFitness);
        }
        Ok(linear_scan_weights(fitness.values(), fitness.total(), rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrb_rng::{MersenneTwister64, SeedableSource};
    use lrb_stats::EmpiricalDistribution;

    #[test]
    fn distribution_matches_targets() {
        let fitness = Fitness::new(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let selector = LinearScanSelector;
        let mut rng = MersenneTwister64::seed_from_u64(11);
        let trials = 200_000;
        let mut dist = EmpiricalDistribution::new(fitness.len());
        for _ in 0..trials {
            dist.record(selector.select(&fitness, &mut rng).unwrap());
        }
        assert!(
            dist.max_abs_deviation(&fitness.probabilities()) < 0.005,
            "deviation {}",
            dist.max_abs_deviation(&fitness.probabilities())
        );
        assert!(dist
            .goodness_of_fit(&fitness.probabilities())
            .is_consistent(0.001));
    }

    #[test]
    fn never_selects_zero_fitness() {
        let fitness = Fitness::new(vec![0.0, 1.0, 0.0, 1.0, 0.0]).unwrap();
        let selector = LinearScanSelector;
        let mut rng = MersenneTwister64::seed_from_u64(5);
        for _ in 0..10_000 {
            let i = selector.select(&fitness, &mut rng).unwrap();
            assert!(i == 1 || i == 3);
        }
    }

    #[test]
    fn single_positive_entry_is_deterministic() {
        let fitness = Fitness::new(vec![0.0, 0.0, 7.0]).unwrap();
        let selector = LinearScanSelector;
        let mut rng = MersenneTwister64::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(selector.select(&fitness, &mut rng).unwrap(), 2);
        }
    }

    #[test]
    fn all_zero_is_rejected() {
        let fitness = Fitness::new(vec![0.0, 0.0]).unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(5);
        assert_eq!(
            LinearScanSelector.select(&fitness, &mut rng),
            Err(SelectionError::AllZeroFitness)
        );
    }

    #[test]
    fn scale_invariance() {
        // Multiplying every fitness by a constant must not change the
        // distribution; compare empirical frequencies under the same seed.
        let base = Fitness::new(vec![1.0, 2.0, 3.0]).unwrap();
        let scaled = Fitness::new(vec![10.0, 20.0, 30.0]).unwrap();
        let selector = LinearScanSelector;
        let mut rng_a = MersenneTwister64::seed_from_u64(9);
        let mut rng_b = MersenneTwister64::seed_from_u64(9);
        for _ in 0..5000 {
            assert_eq!(
                selector.select(&base, &mut rng_a).unwrap(),
                selector.select(&scaled, &mut rng_b).unwrap()
            );
        }
    }

    #[test]
    fn select_many_returns_requested_count() {
        let fitness = Fitness::new(vec![1.0, 1.0]).unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(5);
        let picks = LinearScanSelector
            .select_many(&fitness, &mut rng, 1000)
            .unwrap();
        assert_eq!(picks.len(), 1000);
        assert!(picks.iter().all(|&i| i < 2));
    }
}
