//! Sequential (single-processor) roulette wheel selection algorithms.
//!
//! These serve three roles in the reproduction:
//!
//! 1. **Ground truth** — the linear CDF scan is the textbook algorithm whose
//!    probabilities are exact by construction; every parallel algorithm is
//!    validated against it.
//! 2. **Baselines** — the prepared samplers (binary search, alias method)
//!    are what a practitioner uses when the fitness vector is fixed and many
//!    draws are needed; the benches compare the paper's one-shot algorithms
//!    against them.
//! 3. **Building blocks** — stochastic acceptance shows the classic
//!    alternative trade-off (O(1) expected per draw, but needs the maximum
//!    fitness and its cost degrades with skew).

mod alias;
mod binary_search;
mod linear;
mod stochastic_acceptance;

pub use alias::{AliasSampler, AliasScratch};
pub use binary_search::CdfSampler;
pub use linear::{linear_scan_weights, LinearScanSelector};
pub use stochastic_acceptance::{acceptance_rounds, StochasticAcceptanceSelector};
