//! The Walker/Vose alias method: `O(n)` build, `O(1)` per draw, exact
//! probabilities.
//!
//! The fastest known approach when many draws are taken from a *fixed*
//! distribution; included as the strongest prepared-sampling baseline for the
//! throughput benches.

use lrb_rng::RandomSource;
use rayon::prelude::*;

use crate::error::SelectionError;
use crate::fitness::Fitness;
use crate::traits::PreparedSampler;

/// Tables at or above this size scale their probabilities and classify the
/// Vose worklists with rayon `par_chunks`; below it thread fan-out costs
/// more than the passes save. Chunk results merge in index order, so the
/// parallel build produces byte-identical tables to the sequential one at
/// any thread count.
const PARALLEL_BUILD_CUTOFF: usize = 1 << 14;

/// Worklist chunk size for the parallel classification pass.
const BUILD_CHUNK: usize = 4096;

/// An alias table built with Vose's numerically stable construction.
#[derive(Debug, Clone, PartialEq)]
pub struct AliasSampler {
    /// Probability of keeping the column's own index (scaled to [0, 1]).
    keep: Vec<f64>,
    /// The alias index used when the column's own index is rejected.
    alias: Vec<usize>,
}

/// Reusable build scratch for [`AliasSampler`]: Vose's scaled-probability
/// work vector and the two worklists. These are transient — nothing in them
/// survives the build — so a caller that rebuilds tables repeatedly (the
/// `lrb-engine` publish path) can pool one `AliasScratch` and stop paying
/// three allocations per rebuild. A default-constructed scratch is always
/// valid; buffers grow to the largest table built through them and are
/// reused thereafter.
#[derive(Debug, Clone, Default)]
pub struct AliasScratch {
    work: Vec<f64>,
    small: Vec<usize>,
    large: Vec<usize>,
    /// Per-chunk worklists for the parallel classification pass, pooled so
    /// a steady-state rebuild of a large table stays allocation-free.
    parts: Vec<(Vec<usize>, Vec<usize>)>,
}

impl AliasSampler {
    /// Build the alias table from a fitness vector.
    pub fn new(fitness: &Fitness) -> Result<Self, SelectionError> {
        if fitness.is_all_zero() {
            return Err(SelectionError::AllZeroFitness);
        }
        let mut scratch = AliasScratch::default();
        Self::from_validated_weights(fitness.values(), fitness.total(), &mut scratch)
    }

    /// Build the alias table from **already validated** weights (non-empty,
    /// finite, non-negative, with strictly positive `total`), reusing the
    /// caller's [`AliasScratch`] for every transient buffer. Only the
    /// `keep`/`alias` tables that live inside the returned sampler are
    /// allocated.
    pub fn from_validated_weights(
        weights: &[f64],
        total: f64,
        scratch: &mut AliasScratch,
    ) -> Result<Self, SelectionError> {
        if !total.is_finite() {
            // Individually valid weights can only get here by their sum
            // overflowing to +∞ (e.g. an evaporation fold upstream): blame
            // the largest weight instead of claiming the vector is
            // all-zero.
            let (index, &value) = weights
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .expect("a non-finite total needs at least one weight");
            return Err(SelectionError::InvalidFitness { index, value });
        }
        if total <= 0.0 {
            return Err(SelectionError::AllZeroFitness);
        }
        let n = weights.len();
        let mut keep = vec![0.0; n];
        let mut alias = vec![0usize; n];
        let AliasScratch {
            work,
            small,
            large,
            parts,
        } = scratch;
        small.clear();
        large.clear();
        if n >= PARALLEL_BUILD_CUTOFF {
            // Scale and classify chunk-parallel (same `v · n / total`
            // expression as the sequential pass, so the tables are
            // bit-identical). Two passes — the shim's parallel iterators
            // have no `zip`, so the scale pass (mutating `work`) and the
            // classification pass (mutating the pooled per-chunk worklists
            // while reading `work`) cannot share one sweep — merged in
            // chunk order below, i.e. index order, exactly what the
            // sequential loop produces, with no transient allocation once
            // the pools have grown to the workload.
            if work.len() != n {
                // Every element is overwritten by the scale pass; only a
                // size change needs the (zero-filling) resize.
                work.clear();
                work.resize(n, 0.0);
            }
            work.par_chunks_mut(BUILD_CHUNK)
                .with_min_len(1)
                .enumerate()
                .for_each(|(chunk, slice)| {
                    let base = chunk * BUILD_CHUNK;
                    for (offset, w) in slice.iter_mut().enumerate() {
                        *w = weights[base + offset] * n as f64 / total;
                    }
                });
            let chunk_count = n.div_ceil(BUILD_CHUNK);
            if parts.len() < chunk_count {
                parts.resize_with(chunk_count, Default::default);
            }
            parts[..chunk_count]
                .par_chunks_mut(1)
                .with_min_len(1)
                .enumerate()
                .for_each(|(chunk, part)| {
                    let (chunk_small, chunk_large) = &mut part[0];
                    chunk_small.clear();
                    chunk_large.clear();
                    let base = chunk * BUILD_CHUNK;
                    let end = (base + BUILD_CHUNK).min(n);
                    for (offset, &w) in work[base..end].iter().enumerate() {
                        if w < 1.0 {
                            chunk_small.push(base + offset);
                        } else {
                            chunk_large.push(base + offset);
                        }
                    }
                });
            for (chunk_small, chunk_large) in &parts[..chunk_count] {
                small.extend_from_slice(chunk_small);
                large.extend_from_slice(chunk_large);
            }
        } else {
            work.clear();
            // Scaled probabilities: mean 1 across columns.
            work.extend(weights.iter().map(|&v| v * n as f64 / total));
            for (i, &w) in work.iter().enumerate() {
                if w < 1.0 {
                    small.push(i);
                } else {
                    large.push(i);
                }
            }
        }

        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            large.pop();
            keep[s] = work[s];
            alias[s] = l;
            // The large column donates the mass that fills column s up to 1.
            work[l] = (work[l] + work[s]) - 1.0;
            if work[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Whatever remains (numerical leftovers) keeps its own index with
        // probability 1.
        for &i in large.iter().chain(small.iter()) {
            keep[i] = 1.0;
            alias[i] = i;
        }

        Ok(Self { keep, alias })
    }

    /// The keep-probability table (exposed for tests and diagnostics).
    pub fn keep_probabilities(&self) -> &[f64] {
        &self.keep
    }

    /// The alias table (exposed for tests and diagnostics).
    pub fn aliases(&self) -> &[usize] {
        &self.alias
    }
}

impl PreparedSampler for AliasSampler {
    fn len(&self) -> usize {
        self.keep.len()
    }

    fn sample(&self, rng: &mut dyn RandomSource) -> usize {
        let n = self.keep.len();
        let column = rng.next_u64_below(n as u64) as usize;
        if rng.next_f64() < self.keep[column] {
            column
        } else {
            self.alias[column]
        }
    }

    /// Tight-loop fill: one virtual call per buffer instead of per draw,
    /// with the column count hoisted. Randomness consumption per draw is
    /// identical to [`sample`](PreparedSampler::sample), so a buffer fill
    /// and a `sample` loop on equal seeds agree draw for draw.
    fn sample_into(&self, rng: &mut dyn RandomSource, out: &mut [usize]) {
        let n = self.keep.len() as u64;
        for slot in out.iter_mut() {
            let column = rng.next_u64_below(n) as usize;
            *slot = if rng.next_f64() < self.keep[column] {
                column
            } else {
                self.alias[column]
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrb_rng::{MersenneTwister64, SeedableSource};
    use lrb_stats::EmpiricalDistribution;
    use proptest::prelude::*;

    #[test]
    fn all_zero_rejected() {
        let f = Fitness::new(vec![0.0, 0.0]).unwrap();
        assert_eq!(AliasSampler::new(&f), Err(SelectionError::AllZeroFitness));
    }

    #[test]
    fn uniform_distribution_keeps_every_column() {
        let f = Fitness::uniform(8, 3.0).unwrap();
        let s = AliasSampler::new(&f).unwrap();
        assert!(s
            .keep_probabilities()
            .iter()
            .all(|&k| (k - 1.0).abs() < 1e-12));
    }

    #[test]
    fn implied_probabilities_match_targets() {
        // Reconstruct each index's total probability from the table:
        // P(i) = (keep_i + Σ_{j: alias_j = i} (1 − keep_j)) / n.
        let f = Fitness::new(vec![0.5, 1.5, 3.0, 0.0, 5.0]).unwrap();
        let s = AliasSampler::new(&f).unwrap();
        let n = f.len();
        let mut implied = vec![0.0; n];
        for i in 0..n {
            implied[i] += s.keep_probabilities()[i];
            let j = s.aliases()[i];
            implied[j] += 1.0 - s.keep_probabilities()[i];
        }
        for (i, p) in implied.iter_mut().enumerate() {
            *p /= n as f64;
            assert!(
                (*p - f.probability(i)).abs() < 1e-12,
                "index {i}: implied {p}, target {}",
                f.probability(i)
            );
        }
    }

    #[test]
    fn zero_fitness_indices_are_never_sampled() {
        let f = Fitness::new(vec![0.0, 1.0, 0.0, 2.0, 0.0]).unwrap();
        let s = AliasSampler::new(&f).unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(4);
        for _ in 0..20_000 {
            let i = s.sample(&mut rng);
            assert!(f.values()[i] > 0.0, "sampled zero-fitness index {i}");
        }
    }

    #[test]
    fn empirical_distribution_matches_table1() {
        let f = Fitness::table1();
        let s = AliasSampler::new(&f).unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(8);
        let trials = 300_000;
        let mut dist = EmpiricalDistribution::new(f.len());
        for _ in 0..trials {
            dist.record(s.sample(&mut rng));
        }
        assert!(dist.max_abs_deviation(&f.probabilities()) < 0.004);
        assert!(dist
            .goodness_of_fit(&f.probabilities())
            .is_consistent(0.001));
    }

    #[test]
    fn single_element_distribution() {
        let f = Fitness::new(vec![4.0]).unwrap();
        let s = AliasSampler::new(&f).unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(8);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut rng), 0);
        }
    }

    proptest! {
        #[test]
        fn prop_alias_table_conserves_probability_mass(
            values in proptest::collection::vec(0.0f64..100.0, 1..64)
        ) {
            prop_assume!(values.iter().any(|&v| v > 0.0));
            let f = Fitness::new(values).unwrap();
            let s = AliasSampler::new(&f).unwrap();
            let n = f.len();
            let mut implied = vec![0.0; n];
            for i in 0..n {
                implied[i] += s.keep_probabilities()[i];
                implied[s.aliases()[i]] += 1.0 - s.keep_probabilities()[i];
            }
            for (i, p) in implied.iter().enumerate() {
                prop_assert!((p / n as f64 - f.probability(i)).abs() < 1e-9);
            }
        }
    }
}
