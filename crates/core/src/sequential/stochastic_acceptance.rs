//! Roulette wheel selection by stochastic acceptance (Lipowski & Lipowska,
//! 2012): repeatedly pick a uniform index and accept it with probability
//! `f_i / f_max`.
//!
//! Exact probabilities, `O(1)` expected time per draw when the fitness values
//! are reasonably balanced, but the expected number of rejection rounds grows
//! as `n·f_max / Σf` — the benches show exactly where this crosses over
//! against the other methods.

use lrb_rng::RandomSource;

use crate::error::SelectionError;
use crate::fitness::Fitness;
use crate::traits::Selector;

/// The shared acceptance loop over raw weights: propose a uniform index,
/// accept it with probability `w_i / f_max`, for at most `max_rounds`
/// rounds. Returns `None` when the round budget runs out (the caller falls
/// back to an exact linear scan).
///
/// This is the single definition behind both [`StochasticAcceptanceSelector`]
/// and the dynamic `StochasticAcceptanceSampler` in `lrb-dynamic`, so the
/// acceptance test (`w >= f_max || u · f_max < w`) can never diverge between
/// them. The caller must guarantee a non-empty vector with at least one
/// positive weight and `f_max` equal to the maximum weight.
pub fn acceptance_rounds(
    weights: &[f64],
    f_max: f64,
    max_rounds: usize,
    rng: &mut dyn RandomSource,
) -> Option<usize> {
    let n = weights.len() as u64;
    for _ in 0..max_rounds {
        let candidate = rng.next_u64_below(n) as usize;
        let w = weights[candidate];
        if w <= 0.0 {
            continue;
        }
        if w >= f_max || rng.next_f64() * f_max < w {
            return Some(candidate);
        }
    }
    None
}

/// Stochastic-acceptance (rejection) roulette wheel selection.
#[derive(Debug, Clone, Copy)]
pub struct StochasticAcceptanceSelector {
    /// Hard cap on rejection rounds before falling back to a linear scan,
    /// which keeps worst-case behaviour bounded on pathologically skewed
    /// inputs (e.g. one huge fitness among thousands of tiny ones).
    pub max_rounds: usize,
}

impl Default for StochasticAcceptanceSelector {
    fn default() -> Self {
        Self { max_rounds: 10_000 }
    }
}

impl Selector for StochasticAcceptanceSelector {
    fn name(&self) -> &'static str {
        "sequential-stochastic-acceptance"
    }

    fn is_exact(&self) -> bool {
        true
    }

    fn select(
        &self,
        fitness: &Fitness,
        rng: &mut dyn RandomSource,
    ) -> Result<usize, SelectionError> {
        if fitness.is_all_zero() {
            return Err(SelectionError::AllZeroFitness);
        }
        let values = fitness.values();
        let f_max = values.iter().cloned().fold(0.0, f64::max);
        if let Some(candidate) = acceptance_rounds(values, f_max, self.max_rounds, rng) {
            return Ok(candidate);
        }
        // Statistically unreachable for sane inputs; keep exactness by
        // falling back to the linear scan rather than returning a biased
        // "best so far".
        crate::sequential::LinearScanSelector.select(fitness, rng)
    }

    /// Buffer fill with the `O(n)` fitness-maximum scan hoisted out of the
    /// loop: one max pass per buffer instead of one per draw, with the same
    /// per-draw acceptance test (and linear-scan fallback) as
    /// [`select`](Selector::select), so randomness consumption per draw is
    /// unchanged.
    fn select_into(
        &self,
        fitness: &Fitness,
        rng: &mut dyn RandomSource,
        out: &mut [usize],
    ) -> Result<(), SelectionError> {
        if fitness.is_all_zero() {
            return Err(SelectionError::AllZeroFitness);
        }
        let values = fitness.values();
        let total = fitness.total();
        let f_max = values.iter().cloned().fold(0.0, f64::max);
        for slot in out.iter_mut() {
            *slot = match acceptance_rounds(values, f_max, self.max_rounds, rng) {
                Some(candidate) => candidate,
                None => crate::sequential::linear_scan_weights(values, total, rng),
            };
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrb_rng::{MersenneTwister64, SeedableSource};
    use lrb_stats::EmpiricalDistribution;

    #[test]
    fn distribution_matches_targets() {
        let fitness = Fitness::new(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let selector = StochasticAcceptanceSelector::default();
        let mut rng = MersenneTwister64::seed_from_u64(21);
        let trials = 200_000;
        let mut dist = EmpiricalDistribution::new(fitness.len());
        for _ in 0..trials {
            dist.record(selector.select(&fitness, &mut rng).unwrap());
        }
        assert!(dist.max_abs_deviation(&fitness.probabilities()) < 0.005);
        assert!(dist
            .goodness_of_fit(&fitness.probabilities())
            .is_consistent(0.001));
    }

    #[test]
    fn zero_fitness_entries_are_never_accepted() {
        let fitness = Fitness::new(vec![0.0, 5.0, 0.0]).unwrap();
        let selector = StochasticAcceptanceSelector::default();
        let mut rng = MersenneTwister64::seed_from_u64(2);
        for _ in 0..5000 {
            assert_eq!(selector.select(&fitness, &mut rng).unwrap(), 1);
        }
    }

    #[test]
    fn all_zero_rejected() {
        let fitness = Fitness::new(vec![0.0]).unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(2);
        assert_eq!(
            StochasticAcceptanceSelector::default().select(&fitness, &mut rng),
            Err(SelectionError::AllZeroFitness)
        );
    }

    #[test]
    fn tiny_round_budget_still_returns_an_exact_result() {
        // With max_rounds = 0 the selector falls straight back to the linear
        // scan, so the result is still exact (and never a zero-fitness index).
        let fitness = Fitness::new(vec![0.0, 1.0, 9.0]).unwrap();
        let selector = StochasticAcceptanceSelector { max_rounds: 0 };
        let mut rng = MersenneTwister64::seed_from_u64(2);
        let mut dist = EmpiricalDistribution::new(fitness.len());
        for _ in 0..50_000 {
            dist.record(selector.select(&fitness, &mut rng).unwrap());
        }
        assert_eq!(dist.counts()[0], 0);
        assert!(dist.max_abs_deviation(&fitness.probabilities()) < 0.01);
    }

    #[test]
    fn highly_skewed_fitness_still_exact() {
        let fitness = Fitness::new(vec![1000.0, 1.0, 1.0]).unwrap();
        let selector = StochasticAcceptanceSelector::default();
        let mut rng = MersenneTwister64::seed_from_u64(5);
        let trials = 100_000;
        let mut dist = EmpiricalDistribution::new(fitness.len());
        for _ in 0..trials {
            dist.record(selector.select(&fitness, &mut rng).unwrap());
        }
        let probs = fitness.probabilities();
        assert!((dist.frequency(0) - probs[0]).abs() < 0.005);
        // The two rare indices are each ~0.001; they should at least appear.
        assert!(dist.counts()[1] > 0 && dist.counts()[2] > 0);
    }
}
