//! Prepared sampling by binary search over the cumulative distribution:
//! `O(n)` build, `O(log n)` per draw, exact probabilities.

use lrb_rng::RandomSource;

use crate::error::SelectionError;
use crate::fitness::Fitness;
use crate::traits::PreparedSampler;

/// A sampler that stores the inclusive prefix sums of the fitness values and
/// answers each draw with a binary search.
#[derive(Debug, Clone, PartialEq)]
pub struct CdfSampler {
    cumulative: Vec<f64>,
    total: f64,
}

impl CdfSampler {
    /// Build the sampler from a fitness vector.
    pub fn new(fitness: &Fitness) -> Result<Self, SelectionError> {
        if fitness.is_all_zero() {
            return Err(SelectionError::AllZeroFitness);
        }
        let mut cumulative = Vec::with_capacity(fitness.len());
        let mut acc = 0.0;
        for &v in fitness.values() {
            acc += v;
            cumulative.push(acc);
        }
        Ok(Self {
            cumulative,
            total: acc,
        })
    }

    /// The prefix sums the sampler searches over.
    pub fn cumulative(&self) -> &[f64] {
        &self.cumulative
    }

    fn locate(&self, r: f64) -> usize {
        // partition_point returns the first index whose cumulative sum is
        // strictly greater than r, i.e. the slot [p_{i-1}, p_i) containing r.
        // Zero-fitness slots have empty intervals and can never be returned
        // except through exact ties, which the strict comparison avoids.
        let idx = self.cumulative.partition_point(|&c| c <= r);
        if idx < self.cumulative.len() {
            return idx;
        }
        // r can only reach the total through floating-point rounding of
        // `u · total`; attribute such a draw to the last positive-fitness
        // slot (the last index where the cumulative sum actually increases).
        let mut i = self.cumulative.len() - 1;
        while i > 0 && self.cumulative[i - 1] == self.cumulative[i] {
            i -= 1;
        }
        i
    }
}

impl PreparedSampler for CdfSampler {
    fn len(&self) -> usize {
        self.cumulative.len()
    }

    fn sample(&self, rng: &mut dyn RandomSource) -> usize {
        let r = rng.next_f64() * self.total;
        self.locate(r)
    }

    /// Tight-loop fill over the prebuilt prefix table: one virtual call per
    /// buffer, one uniform and one binary search per draw — exactly the
    /// per-draw consumption of [`sample`](PreparedSampler::sample).
    fn sample_into(&self, rng: &mut dyn RandomSource, out: &mut [usize]) {
        let total = self.total;
        for slot in out.iter_mut() {
            *slot = self.locate(rng.next_f64() * total);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrb_rng::{MersenneTwister64, SeedableSource};
    use lrb_stats::EmpiricalDistribution;
    use proptest::prelude::*;

    #[test]
    fn build_stores_prefix_sums() {
        let f = Fitness::new(vec![1.0, 2.0, 3.0]).unwrap();
        let s = CdfSampler::new(&f).unwrap();
        assert_eq!(s.cumulative(), &[1.0, 3.0, 6.0]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn all_zero_rejected() {
        let f = Fitness::new(vec![0.0, 0.0]).unwrap();
        assert_eq!(CdfSampler::new(&f), Err(SelectionError::AllZeroFitness));
    }

    #[test]
    fn locate_picks_the_right_slot() {
        let f = Fitness::new(vec![1.0, 2.0, 3.0]).unwrap();
        let s = CdfSampler::new(&f).unwrap();
        assert_eq!(s.locate(0.0), 0);
        assert_eq!(s.locate(0.999), 0);
        assert_eq!(s.locate(1.0), 1);
        assert_eq!(s.locate(2.5), 1);
        assert_eq!(s.locate(3.0), 2);
        assert_eq!(s.locate(5.999), 2);
    }

    #[test]
    fn locate_at_or_beyond_the_total_falls_back_to_the_last_positive_slot() {
        let f = Fitness::new(vec![1.0, 2.0, 0.0, 0.0]).unwrap();
        let s = CdfSampler::new(&f).unwrap();
        assert_eq!(s.locate(3.0), 1);
        assert_eq!(s.locate(100.0), 1);
    }

    #[test]
    fn zero_fitness_slots_are_skipped() {
        let f = Fitness::new(vec![0.0, 1.0, 0.0, 1.0]).unwrap();
        let s = CdfSampler::new(&f).unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(2);
        for _ in 0..10_000 {
            let i = s.sample(&mut rng);
            assert!(i == 1 || i == 3, "selected zero-fitness slot {i}");
        }
    }

    #[test]
    fn distribution_matches_targets() {
        let f = Fitness::table1();
        let s = CdfSampler::new(&f).unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(3);
        let trials = 200_000;
        let mut dist = EmpiricalDistribution::new(f.len());
        for _ in 0..trials {
            dist.record(s.sample(&mut rng));
        }
        assert!(dist.max_abs_deviation(&f.probabilities()) < 0.005);
        assert_eq!(dist.counts()[0], 0, "index 0 has zero fitness in Table I");
    }

    #[test]
    fn agrees_with_linear_scan_under_the_same_randomness() {
        use crate::sequential::LinearScanSelector;
        use crate::traits::Selector;
        let f = Fitness::new(vec![0.5, 0.0, 2.5, 1.0, 0.25]).unwrap();
        let s = CdfSampler::new(&f).unwrap();
        let mut rng_a = MersenneTwister64::seed_from_u64(17);
        let mut rng_b = MersenneTwister64::seed_from_u64(17);
        for _ in 0..5000 {
            assert_eq!(
                s.sample(&mut rng_a),
                LinearScanSelector.select(&f, &mut rng_b).unwrap()
            );
        }
    }

    proptest! {
        #[test]
        fn prop_samples_are_in_support(
            values in proptest::collection::vec(0.0f64..10.0, 1..100),
            seed: u64,
        ) {
            prop_assume!(values.iter().any(|&v| v > 0.0));
            let f = Fitness::new(values).unwrap();
            let s = CdfSampler::new(&f).unwrap();
            let mut rng = MersenneTwister64::seed_from_u64(seed);
            for _ in 0..100 {
                let i = s.sample(&mut rng);
                prop_assert!(f.values()[i] > 0.0);
            }
        }
    }
}
