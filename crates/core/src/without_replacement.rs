//! Weighted sampling **without replacement** (Efraimidis & Spirakis, 2006).
//!
//! The logarithmic random bidding generalises directly from "pick one index"
//! to "pick `m` distinct indices": draw the same per-index keys and keep the
//! `m` largest instead of the single largest. The resulting sample has the
//! Efraimidis–Spirakis distribution: item `i` is selected first with
//! probability `F_i`, the second item follows the roulette distribution over
//! the remainder, and so on — exactly sequential roulette selection without
//! replacement, but embarrassingly parallel.
//!
//! Two executions are provided: a sequential pass maintaining a size-`m` heap
//! (`O(n log m)`), and a rayon map + select-top-`m` reduction for large `n`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use lrb_rng::exponential::log_bid;
use lrb_rng::{Philox4x32, RandomSource};
use rayon::prelude::*;

use crate::error::SelectionError;
use crate::fitness::Fitness;

/// A keyed candidate used in the top-`m` selection.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Keyed {
    key: f64,
    index: usize,
}

impl Eq for Keyed {}

impl Ord for Keyed {
    fn cmp(&self, other: &Self) -> Ordering {
        // Keys are never NaN (zero-fitness indices are filtered out before
        // keys are built), so total ordering by (key, index) is safe.
        self.key
            .partial_cmp(&other.key)
            .expect("keys are never NaN")
            .then(self.index.cmp(&other.index))
    }
}

impl PartialOrd for Keyed {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Reverse ordering so the `BinaryHeap` acts as a min-heap over keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MinKeyed(Keyed);

impl Ord for MinKeyed {
    fn cmp(&self, other: &Self) -> Ordering {
        other.0.cmp(&self.0)
    }
}

impl PartialOrd for MinKeyed {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

fn validate(fitness: &Fitness, count: usize) -> Result<(), SelectionError> {
    if fitness.is_all_zero() {
        return Err(SelectionError::AllZeroFitness);
    }
    let available = fitness.non_zero_count();
    if count > available {
        return Err(SelectionError::NotEnoughCandidates {
            requested: count,
            available,
        });
    }
    Ok(())
}

/// Sample `count` distinct indices without replacement, sequentially.
///
/// The returned indices are ordered by decreasing key, i.e. in the order a
/// sequential roulette-without-replacement process would have drawn them.
pub fn sample_without_replacement(
    fitness: &Fitness,
    count: usize,
    rng: &mut dyn RandomSource,
) -> Result<Vec<usize>, SelectionError> {
    validate(fitness, count)?;
    if count == 0 {
        return Ok(vec![]);
    }

    // Min-heap of the best `count` keys seen so far.
    let mut heap: BinaryHeap<MinKeyed> = BinaryHeap::with_capacity(count + 1);
    for (index, &f) in fitness.values().iter().enumerate() {
        if f == 0.0 {
            continue;
        }
        let key = log_bid(rng, f);
        heap.push(MinKeyed(Keyed { key, index }));
        if heap.len() > count {
            heap.pop();
        }
    }

    let mut picked: Vec<Keyed> = heap.into_iter().map(|m| m.0).collect();
    picked.sort_by(|a, b| b.cmp(a));
    Ok(picked.into_iter().map(|k| k.index).collect())
}

/// Sample `count` distinct indices without replacement using a rayon
/// map + top-`count` merge, with per-index Philox streams derived from one
/// master draw (reproducible regardless of the thread schedule).
pub fn par_sample_without_replacement(
    fitness: &Fitness,
    count: usize,
    rng: &mut dyn RandomSource,
) -> Result<Vec<usize>, SelectionError> {
    validate(fitness, count)?;
    if count == 0 {
        return Ok(vec![]);
    }
    let master = rng.next_u64();
    let values = fitness.values();

    // Each worker folds its portion into a sorted top-`count` vector; the
    // reduction merges two such vectors.
    let top = values
        .par_iter()
        .enumerate()
        .filter(|&(_, &f)| f > 0.0)
        .map(|(index, &f)| {
            let mut stream = Philox4x32::for_substream(master, index as u64);
            vec![Keyed {
                key: log_bid(&mut stream, f),
                index,
            }]
        })
        .reduce(Vec::new, |a, b| merge_top(a, b, count));

    Ok(top.into_iter().map(|k| k.index).collect())
}

fn merge_top(a: Vec<Keyed>, b: Vec<Keyed>, count: usize) -> Vec<Keyed> {
    let mut merged = a;
    merged.extend(b);
    merged.sort_by(|x, y| y.cmp(x));
    merged.truncate(count);
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrb_rng::{MersenneTwister64, SeedableSource};

    #[test]
    fn returns_the_requested_number_of_distinct_indices() {
        let fitness = Fitness::new(vec![1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(1);
        for count in 0..=5 {
            let picks = sample_without_replacement(&fitness, count, &mut rng).unwrap();
            assert_eq!(picks.len(), count);
            let mut dedup = picks.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), count, "duplicates in {picks:?}");
        }
    }

    #[test]
    fn zero_fitness_indices_are_never_sampled() {
        let fitness = Fitness::new(vec![0.0, 1.0, 0.0, 1.0, 1.0]).unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(2);
        for _ in 0..200 {
            let picks = sample_without_replacement(&fitness, 3, &mut rng).unwrap();
            assert!(picks.iter().all(|&i| fitness.values()[i] > 0.0));
        }
    }

    #[test]
    fn requesting_more_than_the_support_fails() {
        let fitness = Fitness::new(vec![0.0, 1.0, 1.0]).unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(3);
        assert_eq!(
            sample_without_replacement(&fitness, 3, &mut rng),
            Err(SelectionError::NotEnoughCandidates {
                requested: 3,
                available: 2
            })
        );
        assert!(par_sample_without_replacement(&fitness, 3, &mut rng).is_err());
    }

    #[test]
    fn all_zero_rejected() {
        let fitness = Fitness::new(vec![0.0, 0.0]).unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(3);
        assert_eq!(
            sample_without_replacement(&fitness, 1, &mut rng),
            Err(SelectionError::AllZeroFitness)
        );
    }

    #[test]
    fn sampling_everything_returns_a_permutation_of_the_support() {
        let fitness = Fitness::new(vec![0.0, 2.0, 1.0, 0.0, 4.0]).unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(4);
        let mut picks = sample_without_replacement(&fitness, 3, &mut rng).unwrap();
        picks.sort_unstable();
        assert_eq!(picks, vec![1, 2, 4]);
    }

    #[test]
    fn first_pick_follows_the_roulette_distribution() {
        // The first element of the without-replacement sample has exactly the
        // one-shot roulette distribution.
        let fitness = Fitness::new(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let total: f64 = fitness.total();
        let mut rng = MersenneTwister64::seed_from_u64(5);
        let trials = 100_000;
        let mut counts = vec![0usize; fitness.len()];
        for _ in 0..trials {
            let picks = sample_without_replacement(&fitness, 2, &mut rng).unwrap();
            counts[picks[0]] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let got = c as f64 / trials as f64;
            let want = fitness.values()[i] / total;
            assert!((got - want).abs() < 0.006, "index {i}: {got} vs {want}");
        }
    }

    #[test]
    fn inclusion_is_monotone_in_fitness() {
        // Higher-fitness items should be included in the sample at least as
        // often as lower-fitness ones.
        let fitness = Fitness::new(vec![1.0, 2.0, 4.0, 8.0]).unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(6);
        let trials = 50_000;
        let mut inclusion = vec![0usize; fitness.len()];
        for _ in 0..trials {
            for i in sample_without_replacement(&fitness, 2, &mut rng).unwrap() {
                inclusion[i] += 1;
            }
        }
        assert!(inclusion[0] < inclusion[1]);
        assert!(inclusion[1] < inclusion[2]);
        assert!(inclusion[2] < inclusion[3]);
    }

    #[test]
    fn parallel_version_matches_sequential_distribution() {
        let fitness = Fitness::new(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let total = fitness.total();
        let mut rng = MersenneTwister64::seed_from_u64(7);
        let trials = 60_000;
        let mut counts = vec![0usize; fitness.len()];
        for _ in 0..trials {
            let picks = par_sample_without_replacement(&fitness, 1, &mut rng).unwrap();
            counts[picks[0]] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let got = c as f64 / trials as f64;
            let want = fitness.values()[i] / total;
            assert!((got - want).abs() < 0.008, "index {i}: {got} vs {want}");
        }
    }

    #[test]
    fn parallel_version_is_reproducible() {
        let fitness = Fitness::linear(2000).unwrap();
        let a =
            par_sample_without_replacement(&fitness, 10, &mut MersenneTwister64::seed_from_u64(9))
                .unwrap();
        let b =
            par_sample_without_replacement(&fitness, 10, &mut MersenneTwister64::seed_from_u64(9))
                .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn results_are_sorted_by_descending_key_order() {
        // Property of the API: picks[0] is the roulette winner among all,
        // picks[1] the winner among the rest, etc. We can't observe the keys
        // directly, but sampling the full support twice with the same seed
        // must give the same order.
        let fitness = Fitness::new(vec![3.0, 1.0, 2.0]).unwrap();
        let a = sample_without_replacement(&fitness, 3, &mut MersenneTwister64::seed_from_u64(11))
            .unwrap();
        let b = sample_without_replacement(&fitness, 3, &mut MersenneTwister64::seed_from_u64(11))
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
    }
}
