//! # lrb-core — roulette wheel selection with precise probabilities
//!
//! This crate is the reproduction of the primary contribution of
//! *"The Logarithmic Random Bidding for the Parallel Roulette Wheel Selection
//! with Precise Probabilities"* (Nakano, 2024): given non-negative fitness
//! values `f_0 … f_{n−1}`, select index `i` with probability exactly
//! `F_i = f_i / Σ_j f_j`, in parallel, using the **logarithmic random
//! bidding** `r_i = ln(u_i) / f_i` and an arg-max reduction.
//!
//! The crate contains:
//!
//! * [`Fitness`] — a validated fitness vector with the workload constructors
//!   used throughout the paper's evaluation (Table I, Table II, sparse
//!   ant-colony-style vectors).
//! * [`sequential`] — classic single-threaded samplers: linear CDF scan,
//!   binary search over prefix sums, the Vose alias method, and stochastic
//!   acceptance. These are the ground truth and the "sample many times"
//!   baselines.
//! * [`parallel`] — the paper's algorithms: the prefix-sum-based parallel
//!   selection (exact, the classical approach), the *independent roulette*
//!   (fast but **biased** — reproduced here because the paper quantifies its
//!   error), and the **logarithmic random bidding** in three executions:
//!   sequential streaming, rayon data-parallel, and CRCW-PRAM-simulated
//!   (`O(log k)` expected steps, `O(1)` shared memory).
//! * [`batch`] — the shared deterministic batch kernel
//!   ([`BatchDriver`](batch::BatchDriver)): buffer chunks filled from
//!   counter-based Philox substreams through the traits' `select_into` /
//!   `sample_into` primitives, schedule-independent at any thread count.
//!   `lrb-dynamic` batches, `ShardedArena::sample_batch` and the
//!   `lrb-engine` snapshot batches all run on it.
//! * [`analysis`] — closed-form selection probabilities of the independent
//!   roulette, used to print the "analytic" column next to the empirical one.
//! * [`without_replacement`] — Efraimidis–Spirakis weighted sampling without
//!   replacement, the natural k-item extension of the same exponential-race
//!   trick.
//! * [`streaming`] — weighted reservoir sampling (A-Res and A-ExpJ) for
//!   one-pass selection over streams.
//!
//! ## Quickstart
//!
//! ```
//! use lrb_core::{Fitness, Selector, parallel::LogBiddingSelector};
//! use lrb_rng::{MersenneTwister64, SeedableSource};
//!
//! let fitness = Fitness::new(vec![0.0, 1.0, 2.0, 3.0, 4.0]).unwrap();
//! let selector = LogBiddingSelector::default();
//! let mut rng = MersenneTwister64::seed_from_u64(7);
//! let chosen = selector.select(&fitness, &mut rng).unwrap();
//! assert!(fitness.values()[chosen] > 0.0); // zero-fitness indices are never chosen
//! ```

// `deny`, not `forbid`: the one module implementing the fused bid kernel's
// vectorised row filter (`parallel::bid_kernel::filter`) carries an audited
// `#[allow(unsafe_code)]` with its safety argument in the module docs —
// `#[target_feature]` dispatch guarded by runtime detection plus
// bounds-checked unaligned loads; everything else stays safe Rust.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod batch;
pub mod error;
pub mod fitness;
pub mod parallel;
pub mod sequential;
pub mod sharding;
pub mod streaming;
pub mod traits;
pub mod without_replacement;

pub use error::{ConfigError, SelectionError};
pub use fitness::Fitness;
pub use sharding::{ShardTotals, TotalsCut};
pub use traits::{DynamicSampler, FrozenSampler, PreparedSampler, Selector};

/// All one-shot selectors in the crate behind one constructor, keyed by name.
///
/// Useful for benches and examples that sweep "every algorithm".
pub fn all_selectors() -> Vec<Box<dyn Selector>> {
    vec![
        Box::new(sequential::LinearScanSelector),
        Box::new(sequential::StochasticAcceptanceSelector::default()),
        Box::new(parallel::PrefixSumSelector::default()),
        Box::new(parallel::IndependentRouletteSelector),
        Box::new(parallel::LogBiddingSelector::default()),
        Box::new(parallel::ParallelLogBiddingSelector::default()),
        Box::new(parallel::ParallelIndependentRouletteSelector::default()),
        Box::new(parallel::GumbelMaxSelector),
        Box::new(parallel::CrcwLogBiddingSelector),
    ]
}

/// The selectors whose selection probabilities are exactly `F_i`
/// (i.e. everything except the independent roulette variants).
pub fn exact_selectors() -> Vec<Box<dyn Selector>> {
    all_selectors()
        .into_iter()
        .filter(|s| s.is_exact())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrb_rng::{MersenneTwister64, SeedableSource};

    #[test]
    fn all_selectors_have_distinct_names() {
        let names: Vec<&str> = all_selectors().iter().map(|s| s.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(
            names.len(),
            dedup.len(),
            "duplicate selector names: {names:?}"
        );
    }

    #[test]
    fn exact_selectors_exclude_independent_roulette() {
        let exact = exact_selectors();
        assert!(exact.iter().all(|s| !s.name().contains("independent")));
        assert!(exact.len() >= 6);
    }

    #[test]
    fn every_selector_picks_a_positive_fitness_index() {
        let fitness = Fitness::new(vec![0.0, 2.0, 0.0, 5.0, 1.0]).unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(3);
        for selector in all_selectors() {
            for _ in 0..50 {
                let i = selector.select(&fitness, &mut rng).unwrap();
                assert!(
                    fitness.values()[i] > 0.0,
                    "{} picked zero-fitness index {i}",
                    selector.name()
                );
            }
        }
    }

    #[test]
    fn every_selector_rejects_all_zero_fitness() {
        let fitness = Fitness::new(vec![0.0, 0.0, 0.0]).unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(3);
        for selector in all_selectors() {
            assert!(
                matches!(
                    selector.select(&fitness, &mut rng),
                    Err(SelectionError::AllZeroFitness)
                ),
                "{} accepted an all-zero fitness vector",
                selector.name()
            );
        }
    }
}
