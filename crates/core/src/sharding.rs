//! The shared **shard-total layer** behind every two-level draw.
//!
//! Both the sharded dynamic arena (`lrb_dynamic::ShardedArena`) and the
//! sharded selection service (`lrb-service`) partition the category space
//! into contiguous shards and draw in two levels: pick the owning shard by
//! total weight, then delegate the in-shard inverse-CDF descent — one
//! uniform variate for the whole walk, so the composite distribution is
//! exactly `F_i = w_i / Σ w_j`, identical to a flat tree over the same
//! weights. This module is the level-one machinery they share:
//!
//! * [`ShardTotals`] — per-shard total weights published as `f64` bits in
//!   cache-padded atomics. Writers refresh their shard's cell after each
//!   update or publish; readers take lock-free snapshots.
//! * [`TotalsCut`] — one consistent snapshot of the totals, frozen into a
//!   **Fenwick prefix tree over the shard totals** so each shard pick is an
//!   `O(log S)` descent (the paper's tree, one level up). A cut is built
//!   once per draw batch and serves every pick in it.
//!
//! A pick returns the landing shard *and the residual mass* inside it, so
//! the caller can continue the very same draw down the shard's own sampler
//! (`residual / shard_total` is the uniform the in-shard descent expects).

use std::sync::atomic::{AtomicU64, Ordering};

use lrb_obs::CachePadded;

/// Lock-free published per-shard total weights (see the module docs).
///
/// Cells are `f64` bits in `CachePadded` atomics: each shard's writer
/// refreshes only its own cache line, so concurrent publishes on different
/// shards never false-share.
#[derive(Debug)]
pub struct ShardTotals {
    cells: Vec<CachePadded<AtomicU64>>,
}

impl ShardTotals {
    /// `shards` cells, all starting at zero mass.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "a shard-total table needs at least one shard");
        Self {
            cells: (0..shards)
                .map(|_| CachePadded(AtomicU64::new(0f64.to_bits())))
                .collect(),
        }
    }

    /// Cells seeded from an initial total per shard.
    pub fn from_totals(totals: &[f64]) -> Self {
        assert!(
            !totals.is_empty(),
            "a shard-total table needs at least one shard"
        );
        Self {
            cells: totals
                .iter()
                .map(|&t| CachePadded(AtomicU64::new(t.to_bits())))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the table has zero shards (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Publish `total` as shard `shard`'s current mass (release-ordered, so
    /// a reader that observes the new total also observes everything the
    /// writer did before publishing it).
    pub fn set(&self, shard: usize, total: f64) {
        self.cells[shard]
            .0
            .store(total.to_bits(), Ordering::Release);
    }

    /// Shard `shard`'s last published total (acquire-ordered).
    pub fn get(&self, shard: usize) -> f64 {
        f64::from_bits(self.cells[shard].0.load(Ordering::Acquire))
    }

    /// A plain copy of every published total.
    pub fn snapshot(&self) -> Vec<f64> {
        self.cells
            .iter()
            .map(|cell| f64::from_bits(cell.0.load(Ordering::Acquire)))
            .collect()
    }

    /// Freeze one consistent-enough cut of the totals into the level-one
    /// Fenwick (each cell is read atomically; cells move independently, so
    /// the cut is the standard lock-free approximation both users accept —
    /// exact whenever no writer races the snapshot).
    pub fn cut(&self) -> TotalsCut {
        TotalsCut::from_totals(self.snapshot())
    }

    /// Rebuild `cut` in place from the current cells — the allocation-free
    /// sibling of [`cut`](Self::cut) for pooled callers (`DrawPlan` scratch
    /// in `lrb-service`): once `cut`'s buffers have grown to this table's
    /// shard count, refreshing it touches no allocator.
    pub fn refill_cut(&self, cut: &mut TotalsCut) {
        cut.refill(self.len(), |shard| self.get(shard));
    }
}

/// One frozen cut of the shard totals, with a Fenwick prefix tree over them
/// for `O(log S)` shard picks. See the module docs.
#[derive(Debug, Clone)]
pub struct TotalsCut {
    /// The raw per-shard totals of this cut.
    totals: Vec<f64>,
    /// One-based Fenwick partial sums over `totals`.
    tree: Vec<f64>,
    /// Largest power of two ≤ shard count (descent start step).
    top: usize,
    /// Sum of every shard total.
    total: f64,
}

impl TotalsCut {
    /// Freeze a totals vector (non-empty; negative entries are treated as
    /// zero mass — they cannot arise from validated weights).
    pub fn from_totals(totals: Vec<f64>) -> Self {
        assert!(!totals.is_empty(), "a totals cut needs at least one shard");
        let n = totals.len();
        let mut tree = vec![0.0f64; n + 1];
        for (i, &t) in totals.iter().enumerate() {
            tree[i + 1] += t.max(0.0);
            let next = (i + 1) + ((i + 1) & (i + 1).wrapping_neg());
            if next <= n {
                let carried = tree[i + 1];
                tree[next] += carried;
            }
        }
        let mut top = 1usize;
        while top * 2 <= n {
            top *= 2;
        }
        let total = totals.iter().map(|&t| t.max(0.0)).sum();
        Self {
            totals,
            tree,
            top,
            total,
        }
    }

    /// An empty cut for pooled scratch: carries no shards and no mass (so
    /// [`pick`](Self::pick) returns `None`) until [`refill`](Self::refill)
    /// rebuilds it over live totals. `const`, so it can seed
    /// `thread_local!` plan scratch without a lazy initializer.
    pub const fn empty() -> Self {
        Self {
            totals: Vec::new(),
            tree: Vec::new(),
            top: 0,
            total: 0.0,
        }
    }

    /// Rebuild this cut in place over `shards` totals read through `get` —
    /// same result as [`from_totals`](Self::from_totals) over the same
    /// values, but both internal buffers are reused, so refreshing a cut
    /// whose capacity already covers `shards` performs no allocation.
    pub fn refill(&mut self, shards: usize, get: impl Fn(usize) -> f64) {
        assert!(shards > 0, "a totals cut needs at least one shard");
        self.totals.clear();
        self.totals.reserve(shards);
        self.tree.clear();
        self.tree.resize(shards + 1, 0.0);
        let mut total = 0.0f64;
        for i in 0..shards {
            let t = get(i);
            self.totals.push(t);
            let clamped = t.max(0.0);
            total += clamped;
            self.tree[i + 1] += clamped;
            let next = (i + 1) + ((i + 1) & (i + 1).wrapping_neg());
            if next <= shards {
                let carried = self.tree[i + 1];
                self.tree[next] += carried;
            }
        }
        let mut top = 1usize;
        while top * 2 <= shards {
            top *= 2;
        }
        self.top = top;
        self.total = total;
    }

    /// Number of shards in the cut.
    pub fn len(&self) -> usize {
        self.totals.len()
    }

    /// Whether the cut has zero shards (only true for a not-yet-refilled
    /// [`empty`](Self::empty) cut).
    pub fn is_empty(&self) -> bool {
        self.totals.is_empty()
    }

    /// The raw per-shard totals of this cut.
    pub fn totals(&self) -> &[f64] {
        &self.totals
    }

    /// Total mass across every shard.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Level-one pick: descend the Fenwick with mass coordinate
    /// `r ∈ [0, total)`, returning the landing shard and the residual mass
    /// within it (`0 ≤ residual < totals[shard]` up to floating-point
    /// rounding at the right edge). Returns `None` when the cut carries no
    /// mass at all. Rounding at a shard boundary can only land on a
    /// positive-total shard: zero-total shards are walked over exactly like
    /// zero weights in the flat tree.
    pub fn pick(&self, r: f64) -> Option<(usize, f64)> {
        if !self.total.is_finite() || self.total <= 0.0 || !r.is_finite() {
            return None;
        }
        let r = r.clamp(0.0, self.total * (1.0 - f64::EPSILON));
        let n = self.totals.len();
        let mut residual = r;
        let mut pos = 0usize; // one-based count of shards fully below `r`
        let mut step = self.top;
        while step > 0 {
            let next = pos + step;
            if next <= n && self.tree[next] <= residual {
                residual -= self.tree[next];
                pos = next;
            }
            step /= 2;
        }
        let candidate = pos.min(n - 1);
        if self.totals[candidate] > 0.0 {
            return Some((candidate, residual.min(self.totals[candidate])));
        }
        // Right-edge rounding landed on a zero-total shard: take the last
        // positive shard to its left (or the first positive one at all).
        let shard = self.totals[..candidate]
            .iter()
            .rposition(|&t| t > 0.0)
            .or_else(|| self.totals.iter().position(|&t| t > 0.0))?;
        Some((shard, self.totals[shard] * (1.0 - f64::EPSILON)))
    }

    /// Like [`pick`](Self::pick) but takes a unit uniform `u ∈ [0, 1)` and
    /// scales it onto the cut's mass — the common caller shape (`u` fresh
    /// from a [`RandomSource`](lrb_rng::RandomSource)).
    pub fn pick_uniform(&self, u: f64) -> Option<(usize, f64)> {
        self.pick(u * self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cut_prefix_tree_matches_linear_walk() {
        let totals = vec![3.0, 0.0, 2.0, 5.0, 0.0, 1.0, 4.0];
        let cut = TotalsCut::from_totals(totals.clone());
        assert_eq!(cut.total(), 15.0);
        // For a dense grid of mass coordinates, the Fenwick pick must agree
        // with the obvious linear cumulative walk.
        for k in 0..1500 {
            let r = k as f64 * 0.01;
            let (shard, residual) = cut.pick(r).unwrap();
            let mut linear_r = r.clamp(0.0, 15.0 * (1.0 - f64::EPSILON));
            let mut linear = totals.len() - 1;
            for (j, &t) in totals.iter().enumerate() {
                if linear_r < t {
                    linear = j;
                    break;
                }
                linear_r -= t;
            }
            assert_eq!(shard, linear, "r={r}");
            assert!(
                (residual - linear_r).abs() < 1e-12,
                "r={r}: residual {residual} vs {linear_r}"
            );
            assert!(totals[shard] > 0.0, "r={r} landed on an empty shard");
            assert!(residual < totals[shard] || residual == 0.0);
        }
    }

    #[test]
    fn pick_skips_zero_total_shards_at_the_edges() {
        let cut = TotalsCut::from_totals(vec![0.0, 0.0, 7.0, 0.0]);
        for k in 0..700 {
            let (shard, _) = cut.pick(k as f64 * 0.01).unwrap();
            assert_eq!(shard, 2);
        }
        // The extreme right edge (clamped) still lands on the mass.
        assert_eq!(cut.pick(7.0).unwrap().0, 2);
        assert_eq!(cut.pick_uniform(0.999_999).unwrap().0, 2);
    }

    #[test]
    fn all_zero_cut_has_no_pick() {
        let cut = TotalsCut::from_totals(vec![0.0, 0.0]);
        assert_eq!(cut.pick(0.0), None);
        assert_eq!(cut.pick_uniform(0.5), None);
    }

    #[test]
    fn totals_table_roundtrips_and_cuts() {
        let table = ShardTotals::new(3);
        assert_eq!(table.len(), 3);
        assert_eq!(table.snapshot(), vec![0.0, 0.0, 0.0]);
        table.set(0, 1.5);
        table.set(2, 3.5);
        assert_eq!(table.get(0), 1.5);
        assert_eq!(table.get(1), 0.0);
        let cut = table.cut();
        assert_eq!(cut.total(), 5.0);
        assert_eq!(cut.pick(1.0).unwrap(), (0, 1.0));
        assert_eq!(cut.pick(2.0).unwrap(), (2, 0.5));

        let seeded = ShardTotals::from_totals(&[2.0, 4.0]);
        assert_eq!(seeded.snapshot(), vec![2.0, 4.0]);
    }

    #[test]
    fn refilled_cut_matches_a_fresh_one() {
        let rounds = [
            vec![3.0, 0.0, 2.0, 5.0, 0.0, 1.0, 4.0],
            vec![1.0, 1.0],
            vec![0.5, 9.5, 0.0, 0.25, 7.75],
        ];
        let mut cut = TotalsCut::empty();
        assert!(cut.is_empty());
        assert_eq!(cut.pick(0.0), None);
        for totals in rounds {
            cut.refill(totals.len(), |s| totals[s]);
            let fresh = TotalsCut::from_totals(totals.clone());
            assert_eq!(cut.totals(), fresh.totals());
            assert_eq!(cut.total(), fresh.total());
            for k in 0..1000 {
                let r = k as f64 * cut.total() / 1000.0;
                assert_eq!(cut.pick(r), fresh.pick(r), "r={r} totals={totals:?}");
            }
        }
    }

    #[test]
    fn refill_cut_reads_the_live_cells() {
        let table = ShardTotals::new(3);
        table.set(0, 1.5);
        table.set(2, 3.5);
        let mut cut = TotalsCut::empty();
        table.refill_cut(&mut cut);
        assert_eq!(cut.totals(), &[1.5, 0.0, 3.5]);
        table.set(1, 2.0);
        table.refill_cut(&mut cut);
        assert_eq!(cut.totals(), &[1.5, 2.0, 3.5]);
        assert_eq!(cut.total(), 7.0);
    }

    #[test]
    fn single_shard_cut_degenerates_to_identity() {
        let cut = TotalsCut::from_totals(vec![9.0]);
        for k in 0..90 {
            let r = k as f64 * 0.1;
            let (shard, residual) = cut.pick(r).unwrap();
            assert_eq!(shard, 0);
            assert!((residual - r).abs() < 1e-12);
        }
    }
}
