//! The paper's contribution: roulette wheel selection by **logarithmic random
//! bidding**.
//!
//! Every index draws a bid `r_i = ln(u_i) / f_i` (with `u_i` uniform on
//! `(0, 1)`); the index with the largest bid is selected. Because `−r_i` is
//! exponentially distributed with rate `f_i`, the minimum of the exponentials
//! (= maximum of the bids) lands on index `i` with probability exactly
//! `f_i / Σ_j f_j` — the proof is the paper's Section II integral, and the
//! same fact underlies the Gumbel-max trick and Efraimidis–Spirakis sampling.
//!
//! Three selectors share this mathematics:
//!
//! * [`LogBiddingSelector`] — a sequential streaming arg-max (one pass, no
//!   allocation); this is what a single thread of the ACO application uses.
//! * [`ParallelLogBiddingSelector`] — a rayon `map → reduce` arg-max over the
//!   fitness slice; this is the "real multicore machine" execution.
//! * [`GumbelMaxSelector`] — the algebraically equivalent Gumbel-key variant
//!   (`ln f_i − ln(−ln u_i)`), kept separate so the benches can compare the
//!   two formulas' cost and verify they induce the same distribution.

use lrb_rng::exponential::{log_bid, standard_exponential_ziggurat, ExponentialSampler};
use lrb_rng::{Philox4x32, RandomSource};
use rayon::prelude::*;

use crate::error::SelectionError;
use crate::fitness::Fitness;
use crate::parallel::bid_kernel::{select_block, select_many_block};
use crate::parallel::max_by_key_then_index;
use crate::traits::Selector;

/// Sequential streaming logarithmic random bidding.
#[derive(Debug, Clone, Copy, Default)]
pub struct LogBiddingSelector {
    /// Which exponential sampler generates the bids (`ln(u)/f` by inversion,
    /// or the Ziggurat). Both are exact; the choice only affects speed.
    pub sampler: ExponentialSampler,
}

impl Selector for LogBiddingSelector {
    fn name(&self) -> &'static str {
        "log-bidding-sequential"
    }

    fn is_exact(&self) -> bool {
        true
    }

    fn select(
        &self,
        fitness: &Fitness,
        rng: &mut dyn RandomSource,
    ) -> Result<usize, SelectionError> {
        if fitness.is_all_zero() {
            return Err(SelectionError::AllZeroFitness);
        }
        let mut best = (f64::NEG_INFINITY, usize::MAX);
        for (i, &f) in fitness.values().iter().enumerate() {
            if f == 0.0 {
                continue;
            }
            // r_i = ln(u)/f  ==  −Exp(rate f); both samplers produce the same
            // distribution, the Ziggurat just avoids the ln call. One direct
            // call per arm — the enum has already been matched here, so
            // nothing re-dispatches on `self.sampler` inside the loop.
            let bid = match self.sampler {
                ExponentialSampler::InverseCdf => log_bid(rng, f),
                ExponentialSampler::Ziggurat => -standard_exponential_ziggurat(rng) / f,
            };
            best = max_by_key_then_index(best, (bid, i));
        }
        Ok(best.1)
    }
}

/// Rayon data-parallel logarithmic random bidding through the
/// [block-Philox bid kernel](crate::parallel::bid_kernel).
///
/// One master draw of the caller's generator keys a counter-based Philox
/// stream; the kernel generates two per-index uniforms per counter bump and
/// evaluates `ln` lazily behind the branch-free `(u − 1)/f` upper bound, so
/// a selection costs `Θ(n)` arithmetic but only `O(log n)` expected
/// logarithms. The result is reproducible regardless of thread count or
/// work-stealing order (fixed even-aligned chunking, deterministic arg-max
/// reduction with ties broken by index), and the bid-stream layout is
/// versioned —
/// [`STREAM_LAYOUT_VERSION`](crate::parallel::bid_kernel::STREAM_LAYOUT_VERSION).
#[derive(Debug, Clone, Copy)]
pub struct ParallelLogBiddingSelector {
    /// Inputs shorter than this are handled sequentially; the rayon overhead
    /// is not worth paying for a handful of items.
    pub sequential_cutoff: usize,
}

impl Default for ParallelLogBiddingSelector {
    fn default() -> Self {
        Self {
            sequential_cutoff: 1024,
        }
    }
}

impl Selector for ParallelLogBiddingSelector {
    fn name(&self) -> &'static str {
        "log-bidding-rayon"
    }

    fn is_exact(&self) -> bool {
        true
    }

    fn select(
        &self,
        fitness: &Fitness,
        rng: &mut dyn RandomSource,
    ) -> Result<usize, SelectionError> {
        if fitness.is_all_zero() {
            return Err(SelectionError::AllZeroFitness);
        }
        let values = fitness.values();
        let master = rng.next_u64();
        Ok(select_block(
            values,
            master,
            values.len() >= self.sequential_cutoff,
        ))
    }

    /// Tight-loop fill through the **fused multi-draw kernel**: the support
    /// check happens once per buffer, the masters are drawn up front (one
    /// `next_u64` per slot, in slot order — the same caller-generator
    /// consumption as a [`select`](Selector::select) loop), and the fitness
    /// array is then streamed once per
    /// [`FUSED_WIDTH`](crate::parallel::bid_kernel::FUSED_WIDTH) draws with
    /// eight bid streams tested per load. Winners are bit-identical to a
    /// `select` loop on equal seeds; only the throughput differs.
    fn select_into(
        &self,
        fitness: &Fitness,
        rng: &mut dyn RandomSource,
        out: &mut [usize],
    ) -> Result<(), SelectionError> {
        if fitness.is_all_zero() {
            return Err(SelectionError::AllZeroFitness);
        }
        let values = fitness.values();
        let parallel = values.len() >= self.sequential_cutoff;
        use crate::parallel::bid_kernel::FUSED_WIDTH;
        if out.len() <= FUSED_WIDTH {
            // One fused group (or the per-draw fallback) — keep the
            // masters on the stack so small fills stay allocation-free.
            let mut masters = [0u64; FUSED_WIDTH];
            for master in masters[..out.len()].iter_mut() {
                *master = rng.next_u64();
            }
            select_many_block(values, &masters[..out.len()], parallel, out);
        } else {
            let masters: Vec<u64> = out.iter().map(|_| rng.next_u64()).collect();
            select_many_block(values, &masters, parallel, out);
        }
        Ok(())
    }
}

/// The legacy per-index formulation (bid-stream layout **v1**): one
/// `Philox4x32::for_substream(master, index)` and one eager `ln` per index.
///
/// Distributionally identical to [`ParallelLogBiddingSelector`] — both are
/// exact — but draw-for-draw different, because the per-index substream
/// layout consumes different uniforms than the block layout. Kept as the
/// differential oracle for conformance tests and as the baseline the
/// `selector_quick` gate measures the block kernel against.
#[derive(Debug, Clone, Copy)]
pub struct PerIndexLogBiddingSelector {
    /// Inputs shorter than this are handled sequentially.
    pub sequential_cutoff: usize,
}

impl Default for PerIndexLogBiddingSelector {
    fn default() -> Self {
        Self {
            sequential_cutoff: 1024,
        }
    }
}

impl PerIndexLogBiddingSelector {
    fn bid_for(master: u64, index: usize, f: f64) -> (f64, usize) {
        if f == 0.0 {
            return (f64::NEG_INFINITY, index);
        }
        let mut stream = Philox4x32::for_substream(master, index as u64);
        (log_bid(&mut stream, f), index)
    }
}

impl Selector for PerIndexLogBiddingSelector {
    fn name(&self) -> &'static str {
        "log-bidding-per-index"
    }

    fn is_exact(&self) -> bool {
        true
    }

    fn select(
        &self,
        fitness: &Fitness,
        rng: &mut dyn RandomSource,
    ) -> Result<usize, SelectionError> {
        if fitness.is_all_zero() {
            return Err(SelectionError::AllZeroFitness);
        }
        let master = rng.next_u64();
        let values = fitness.values();

        let best = if values.len() < self.sequential_cutoff {
            values
                .iter()
                .enumerate()
                .map(|(i, &f)| Self::bid_for(master, i, f))
                .fold((f64::NEG_INFINITY, usize::MAX), max_by_key_then_index)
        } else {
            values
                .par_iter()
                .enumerate()
                .map(|(i, &f)| Self::bid_for(master, i, f))
                .reduce(|| (f64::NEG_INFINITY, usize::MAX), max_by_key_then_index)
        };
        Ok(best.1)
    }
}

/// The Gumbel-max formulation of the same selection rule: key
/// `g_i = ln f_i − ln(−ln u_i)`, arg-max.
///
/// Monotone-equivalent to the logarithmic bid, so the induced distribution is
/// identical; included because it is the form most common in the machine
/// learning literature and it behaves differently numerically (it tolerates
/// fitness values spanning hundreds of orders of magnitude since `ln f_i` is
/// additive rather than `1/f_i` multiplicative).
#[derive(Debug, Clone, Copy, Default)]
pub struct GumbelMaxSelector;

impl Selector for GumbelMaxSelector {
    fn name(&self) -> &'static str {
        "gumbel-max"
    }

    fn is_exact(&self) -> bool {
        true
    }

    fn select(
        &self,
        fitness: &Fitness,
        rng: &mut dyn RandomSource,
    ) -> Result<usize, SelectionError> {
        if fitness.is_all_zero() {
            return Err(SelectionError::AllZeroFitness);
        }
        let mut best = (f64::NEG_INFINITY, usize::MAX);
        for (i, &f) in fitness.values().iter().enumerate() {
            if f == 0.0 {
                continue;
            }
            let u = rng.next_f64_open();
            let gumbel = -(-u.ln()).ln();
            best = max_by_key_then_index(best, (f.ln() + gumbel, i));
        }
        Ok(best.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrb_rng::{MersenneTwister64, SeedableSource};
    use lrb_stats::EmpiricalDistribution;

    fn check_distribution(selector: &dyn Selector, fitness: &Fitness, trials: usize, tol: f64) {
        let mut rng = MersenneTwister64::seed_from_u64(1234);
        let mut dist = EmpiricalDistribution::new(fitness.len());
        for _ in 0..trials {
            dist.record(selector.select(fitness, &mut rng).unwrap());
        }
        let dev = dist.max_abs_deviation(&fitness.probabilities());
        assert!(
            dev < tol,
            "{}: max deviation {dev} exceeds {tol}",
            selector.name()
        );
        assert!(
            dist.goodness_of_fit(&fitness.probabilities())
                .is_consistent(0.001),
            "{}: chi-square rejects the target distribution",
            selector.name()
        );
    }

    #[test]
    fn sequential_log_bidding_is_exact_on_table1() {
        check_distribution(
            &LogBiddingSelector::default(),
            &Fitness::table1(),
            200_000,
            0.005,
        );
    }

    #[test]
    fn ziggurat_variant_is_also_exact() {
        let selector = LogBiddingSelector {
            sampler: ExponentialSampler::Ziggurat,
        };
        check_distribution(
            &selector,
            &Fitness::new(vec![1.0, 2.0, 3.0]).unwrap(),
            150_000,
            0.005,
        );
    }

    #[test]
    fn rayon_log_bidding_is_exact() {
        check_distribution(
            &ParallelLogBiddingSelector::default(),
            &Fitness::new(vec![5.0, 1.0, 3.0, 1.0]).unwrap(),
            150_000,
            0.006,
        );
    }

    #[test]
    fn gumbel_max_is_exact() {
        check_distribution(
            &GumbelMaxSelector,
            &Fitness::new(vec![2.0, 1.0, 1.0]).unwrap(),
            150_000,
            0.006,
        );
    }

    #[test]
    fn paper_intro_example_two_processors() {
        // n = 2, f = [2, 1]: the exact probability of selecting 0 is 2/3
        // (the independent roulette gets 3/4 — see the independent module).
        let fitness = Fitness::new(vec![2.0, 1.0]).unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(5);
        let selector = LogBiddingSelector::default();
        let trials = 300_000;
        let zero = (0..trials)
            .filter(|_| selector.select(&fitness, &mut rng).unwrap() == 0)
            .count();
        let freq = zero as f64 / trials as f64;
        assert!((freq - 2.0 / 3.0).abs() < 0.004, "frequency {freq}");
    }

    #[test]
    fn zero_fitness_indices_never_win() {
        let fitness = Fitness::new(vec![0.0, 1.0, 0.0, 0.5, 0.0]).unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(6);
        for selector in [
            &LogBiddingSelector::default() as &dyn Selector,
            &ParallelLogBiddingSelector::default(),
            &GumbelMaxSelector,
        ] {
            for _ in 0..5000 {
                let i = selector.select(&fitness, &mut rng).unwrap();
                assert!(i == 1 || i == 3, "{} chose {i}", selector.name());
            }
        }
    }

    #[test]
    fn all_zero_is_rejected() {
        let fitness = Fitness::new(vec![0.0, 0.0]).unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(6);
        assert!(LogBiddingSelector::default()
            .select(&fitness, &mut rng)
            .is_err());
        assert!(ParallelLogBiddingSelector::default()
            .select(&fitness, &mut rng)
            .is_err());
        assert!(GumbelMaxSelector.select(&fitness, &mut rng).is_err());
    }

    #[test]
    fn rayon_selector_is_reproducible_for_a_fixed_caller_stream() {
        // Same caller RNG state → same master seed → same selection, no
        // matter how the parallel reduction is scheduled.
        let fitness = Fitness::linear(5000).unwrap();
        let selector = ParallelLogBiddingSelector {
            sequential_cutoff: 0,
        };
        let a = selector
            .select(&fitness, &mut MersenneTwister64::seed_from_u64(99))
            .unwrap();
        let b = selector
            .select(&fitness, &mut MersenneTwister64::seed_from_u64(99))
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_and_sequential_cutoff_paths_agree() {
        // Forcing the parallel path and the sequential path with the same
        // master seed must give the same winner (same per-index streams).
        let fitness = Fitness::new((1..=200).map(|i| (i % 13) as f64).collect()).unwrap();
        let par = ParallelLogBiddingSelector {
            sequential_cutoff: 0,
        };
        let seq = ParallelLogBiddingSelector {
            sequential_cutoff: usize::MAX,
        };
        for seed in 0..50 {
            let a = par
                .select(&fitness, &mut MersenneTwister64::seed_from_u64(seed))
                .unwrap();
            let b = seq
                .select(&fitness, &mut MersenneTwister64::seed_from_u64(seed))
                .unwrap();
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn single_candidate_is_always_selected() {
        let fitness = Fitness::new(vec![0.0, 0.0, 4.0]).unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(
                LogBiddingSelector::default()
                    .select(&fitness, &mut rng)
                    .unwrap(),
                2
            );
            assert_eq!(GumbelMaxSelector.select(&fitness, &mut rng).unwrap(), 2);
        }
    }

    #[test]
    fn table2_small_probability_index_is_still_selected() {
        // The heart of Table II: index 0 has probability ~0.005; over 100k
        // trials the logarithmic bidding must select it a few hundred times
        // (the independent roulette selects it zero times — tested in the
        // independent module).
        let fitness = Fitness::table2();
        let selector = LogBiddingSelector::default();
        let mut rng = MersenneTwister64::seed_from_u64(77);
        let trials = 100_000;
        let zero_count = (0..trials)
            .filter(|_| selector.select(&fitness, &mut rng).unwrap() == 0)
            .count();
        let freq = zero_count as f64 / trials as f64;
        assert!(
            (freq - 1.0 / 199.0).abs() < 0.002,
            "index 0 frequency {freq}, expected ≈ 0.005025"
        );
    }
}
