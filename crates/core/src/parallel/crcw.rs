//! The logarithmic random bidding executed on the simulated CRCW-PRAM.
//!
//! This is the execution the paper's Theorem 1 is about: the arg-max over the
//! bids is found by the constant-memory CRCW while-loop of
//! [`lrb_pram::algorithms::bid_max`], taking expected `O(log k)` iterations
//! with `O(1)` shared cells. The selector exposes both the plain
//! [`Selector`] interface (for uniform comparison with the other algorithms)
//! and [`CrcwLogBiddingSelector::select_with_stats`], which additionally
//! returns the measured iteration count and PRAM cost so the Theorem 1
//! experiment can tabulate them.

use lrb_pram::algorithms::roulette::{log_bidding_selection, PramSelection};
use lrb_rng::RandomSource;

use crate::error::SelectionError;
use crate::fitness::Fitness;
use crate::traits::Selector;

/// Logarithmic random bidding on the simulated CRCW-PRAM.
#[derive(Debug, Clone, Copy, Default)]
pub struct CrcwLogBiddingSelector;

impl CrcwLogBiddingSelector {
    /// Run one selection and return the full PRAM-level outcome (winner,
    /// while-loop iterations, cost report).
    pub fn select_with_stats(
        &self,
        fitness: &Fitness,
        rng: &mut dyn RandomSource,
    ) -> Result<PramSelection, SelectionError> {
        if fitness.is_all_zero() {
            return Err(SelectionError::AllZeroFitness);
        }
        let master_seed = rng.next_u64();
        log_bidding_selection(fitness.values(), master_seed)
            .map_err(|_| SelectionError::AllZeroFitness)
    }
}

impl Selector for CrcwLogBiddingSelector {
    fn name(&self) -> &'static str {
        "log-bidding-crcw-pram"
    }

    fn is_exact(&self) -> bool {
        true
    }

    fn select(
        &self,
        fitness: &Fitness,
        rng: &mut dyn RandomSource,
    ) -> Result<usize, SelectionError> {
        let outcome = self.select_with_stats(fitness, rng)?;
        outcome.selected.ok_or(SelectionError::AllZeroFitness)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrb_rng::{MersenneTwister64, SeedableSource};
    use lrb_stats::EmpiricalDistribution;

    #[test]
    fn distribution_matches_targets() {
        let fitness = Fitness::new(vec![1.0, 2.0, 3.0]).unwrap();
        let selector = CrcwLogBiddingSelector;
        let mut rng = MersenneTwister64::seed_from_u64(41);
        let trials = 30_000;
        let mut dist = EmpiricalDistribution::new(fitness.len());
        for _ in 0..trials {
            dist.record(selector.select(&fitness, &mut rng).unwrap());
        }
        assert!(dist.max_abs_deviation(&fitness.probabilities()) < 0.012);
        assert!(dist
            .goodness_of_fit(&fitness.probabilities())
            .is_consistent(0.001));
    }

    #[test]
    fn stats_report_constant_memory_and_low_iterations() {
        let fitness = Fitness::sparse(512, 8, 1.0).unwrap();
        let selector = CrcwLogBiddingSelector;
        let mut rng = MersenneTwister64::seed_from_u64(2);
        for _ in 0..20 {
            let s = selector.select_with_stats(&fitness, &mut rng).unwrap();
            assert!(s.cost.memory_footprint <= 2);
            assert!(s.while_iterations >= 1 && s.while_iterations <= 8);
            assert!(fitness.values()[s.selected.unwrap()] > 0.0);
        }
    }

    #[test]
    fn all_zero_rejected() {
        let fitness = Fitness::new(vec![0.0, 0.0]).unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(2);
        assert!(CrcwLogBiddingSelector.select(&fitness, &mut rng).is_err());
        assert!(CrcwLogBiddingSelector
            .select_with_stats(&fitness, &mut rng)
            .is_err());
    }

    #[test]
    fn zero_fitness_indices_never_win() {
        let fitness = Fitness::new(vec![0.0, 1.0, 0.0, 2.0]).unwrap();
        let selector = CrcwLogBiddingSelector;
        let mut rng = MersenneTwister64::seed_from_u64(3);
        for _ in 0..500 {
            let i = selector.select(&fitness, &mut rng).unwrap();
            assert!(i == 1 || i == 3);
        }
    }
}
