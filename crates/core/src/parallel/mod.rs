//! Parallel roulette wheel selection algorithms.
//!
//! Three families, mirroring the paper's Section I–III:
//!
//! * [`PrefixSumSelector`] — the prefix-sum-based algorithm (exact, the
//!   classical parallel approach; `O(n)` work split across threads).
//! * [`IndependentRouletteSelector`] / [`ParallelIndependentRouletteSelector`]
//!   — the independent roulette (`r_i = f_i · u_i`, arg-max). Fast and
//!   popular in GPU ant-colony implementations, but its selection
//!   probabilities are **not** `F_i`; the paper (and our Table I / Table II
//!   reproduction) quantifies how wrong it is.
//! * [`LogBiddingSelector`] / [`ParallelLogBiddingSelector`] /
//!   [`CrcwLogBiddingSelector`] / [`GumbelMaxSelector`] — the paper's
//!   logarithmic random bidding (`r_i = ln(u_i) / f_i`, arg-max), which is
//!   exact. The three implementations share the same mathematics and differ
//!   only in how the arg-max is executed: a sequential stream, a rayon
//!   data-parallel reduction, or the simulated CRCW-PRAM constant-memory
//!   loop whose step count Theorem 1 bounds.

pub mod bid_kernel;
mod crcw;
mod independent;
mod log_bidding;
mod prefix_sum;

pub use bid_kernel::{kernel_counters, KernelCounters};
pub use crcw::CrcwLogBiddingSelector;
pub use independent::{IndependentRouletteSelector, ParallelIndependentRouletteSelector};
pub use log_bidding::{
    GumbelMaxSelector, LogBiddingSelector, ParallelLogBiddingSelector, PerIndexLogBiddingSelector,
};
pub use prefix_sum::PrefixSumSelector;

/// Deterministic lexicographic arg-max used by every parallel reduction in
/// this module: compare by key first, then by index, so the result does not
/// depend on how rayon splits the input.
pub(crate) fn max_by_key_then_index(a: (f64, usize), b: (f64, usize)) -> (f64, usize) {
    if b.0 > a.0 || (b.0 == a.0 && b.1 > a.1) {
        b
    } else {
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_prefers_larger_key() {
        assert_eq!(max_by_key_then_index((1.0, 5), (2.0, 3)), (2.0, 3));
        assert_eq!(max_by_key_then_index((2.0, 3), (1.0, 5)), (2.0, 3));
    }

    #[test]
    fn argmax_breaks_ties_by_larger_index() {
        assert_eq!(max_by_key_then_index((1.0, 2), (1.0, 7)), (1.0, 7));
        assert_eq!(max_by_key_then_index((1.0, 7), (1.0, 2)), (1.0, 7));
    }

    #[test]
    fn argmax_handles_negative_infinity() {
        let ninf = f64::NEG_INFINITY;
        assert_eq!(max_by_key_then_index((ninf, 0), (-3.0, 1)), (-3.0, 1));
        assert_eq!(max_by_key_then_index((ninf, 0), (ninf, 4)), (ninf, 4));
    }

    #[test]
    fn argmax_is_associative_on_samples() {
        let items = [
            (-1.5, 0usize),
            (-0.25, 1),
            (-0.25, 2),
            (f64::NEG_INFINITY, 3),
            (-7.0, 4),
        ];
        // ((a b) c) == (a (b c)) for every consecutive triple.
        for w in items.windows(3) {
            let left = max_by_key_then_index(max_by_key_then_index(w[0], w[1]), w[2]);
            let right = max_by_key_then_index(w[0], max_by_key_then_index(w[1], w[2]));
            assert_eq!(left, right);
        }
    }
}
