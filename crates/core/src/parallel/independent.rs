//! The **independent roulette** selection (Cecilia et al., 2013): each index
//! draws `r_i = f_i · u_i` and the arg-max wins.
//!
//! This is the fast data-parallel heuristic used by several GPU ant-colony
//! implementations, and the foil of the paper: its selection probabilities
//! are *not* `F_i`. The bias is dramatic for small fitness values — the
//! paper's introduction works out `n = 2, f = [2, 1]`, where index 0 is
//! selected with probability 3/4 instead of 2/3, and Table II shows an index
//! whose true probability is 1/199 being selected essentially never
//! (≈ 1.6·10⁻³²). We reproduce the algorithm faithfully so the tables and
//! benches can quantify exactly that gap; the closed-form probabilities it
//! *does* follow are computed in [`crate::analysis`].

use lrb_rng::{Philox4x32, RandomSource};
use rayon::prelude::*;

use crate::error::SelectionError;
use crate::fitness::Fitness;
use crate::parallel::max_by_key_then_index;
use crate::traits::Selector;

/// Sequential streaming independent roulette (`r_i = f_i · u_i`, arg-max).
#[derive(Debug, Clone, Copy, Default)]
pub struct IndependentRouletteSelector;

impl Selector for IndependentRouletteSelector {
    fn name(&self) -> &'static str {
        "independent-roulette-sequential"
    }

    fn is_exact(&self) -> bool {
        false
    }

    fn select(
        &self,
        fitness: &Fitness,
        rng: &mut dyn RandomSource,
    ) -> Result<usize, SelectionError> {
        if fitness.is_all_zero() {
            return Err(SelectionError::AllZeroFitness);
        }
        let mut best = (f64::NEG_INFINITY, usize::MAX);
        for (i, &f) in fitness.values().iter().enumerate() {
            if f == 0.0 {
                continue;
            }
            best = max_by_key_then_index(best, (f * rng.next_f64(), i));
        }
        Ok(best.1)
    }
}

/// Rayon data-parallel independent roulette, with per-index Philox streams
/// derived from one master draw (same reproducibility contract as
/// [`crate::parallel::ParallelLogBiddingSelector`]).
#[derive(Debug, Clone, Copy)]
pub struct ParallelIndependentRouletteSelector {
    /// Inputs shorter than this are handled sequentially.
    pub sequential_cutoff: usize,
}

impl Default for ParallelIndependentRouletteSelector {
    fn default() -> Self {
        Self {
            sequential_cutoff: 1024,
        }
    }
}

impl ParallelIndependentRouletteSelector {
    fn key_for(master: u64, index: usize, f: f64) -> (f64, usize) {
        if f == 0.0 {
            return (f64::NEG_INFINITY, index);
        }
        let mut stream = Philox4x32::for_substream(master, index as u64);
        (f * stream.next_f64(), index)
    }
}

impl Selector for ParallelIndependentRouletteSelector {
    fn name(&self) -> &'static str {
        "independent-roulette-rayon"
    }

    fn is_exact(&self) -> bool {
        false
    }

    fn select(
        &self,
        fitness: &Fitness,
        rng: &mut dyn RandomSource,
    ) -> Result<usize, SelectionError> {
        if fitness.is_all_zero() {
            return Err(SelectionError::AllZeroFitness);
        }
        let master = rng.next_u64();
        let values = fitness.values();
        let best = if values.len() < self.sequential_cutoff {
            values
                .iter()
                .enumerate()
                .map(|(i, &f)| Self::key_for(master, i, f))
                .fold((f64::NEG_INFINITY, usize::MAX), max_by_key_then_index)
        } else {
            values
                .par_iter()
                .enumerate()
                .map(|(i, &f)| Self::key_for(master, i, f))
                .reduce(|| (f64::NEG_INFINITY, usize::MAX), max_by_key_then_index)
        };
        Ok(best.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrb_rng::{MersenneTwister64, SeedableSource};
    use lrb_stats::EmpiricalDistribution;

    #[test]
    fn paper_intro_example_shows_the_bias() {
        // n = 2, f = [2, 1]: the paper derives P(select 0) = 3/4 for the
        // independent roulette (the exact answer would be 2/3).
        let fitness = Fitness::new(vec![2.0, 1.0]).unwrap();
        let selector = IndependentRouletteSelector;
        let mut rng = MersenneTwister64::seed_from_u64(3);
        let trials = 300_000;
        let zero = (0..trials)
            .filter(|_| selector.select(&fitness, &mut rng).unwrap() == 0)
            .count();
        let freq = zero as f64 / trials as f64;
        assert!(
            (freq - 0.75).abs() < 0.004,
            "frequency {freq}, expected 0.75"
        );
        assert!(
            (freq - 2.0 / 3.0).abs() > 0.05,
            "the bias should be clearly visible"
        );
    }

    #[test]
    fn equal_fitness_values_are_selected_uniformly() {
        // With all fitness equal the independent roulette happens to be
        // unbiased; this pins down that the implementation is not *always*
        // wrong, only for unequal weights.
        let fitness = Fitness::uniform(4, 3.0).unwrap();
        let selector = IndependentRouletteSelector;
        let mut rng = MersenneTwister64::seed_from_u64(9);
        let mut dist = EmpiricalDistribution::new(4);
        for _ in 0..100_000 {
            dist.record(selector.select(&fitness, &mut rng).unwrap());
        }
        assert!(dist.max_abs_deviation(&fitness.probabilities()) < 0.01);
    }

    #[test]
    fn table2_index_zero_is_essentially_never_selected() {
        // Table II's headline: the true probability of index 0 is 1/199 ≈
        // 0.005, but the independent roulette selects it with probability
        // ≈ 1.6·10⁻³² — i.e. never in any feasible number of trials.
        let fitness = Fitness::table2();
        let selector = IndependentRouletteSelector;
        let mut rng = MersenneTwister64::seed_from_u64(5);
        let trials = 200_000;
        let zero = (0..trials)
            .filter(|_| selector.select(&fitness, &mut rng).unwrap() == 0)
            .count();
        assert_eq!(
            zero, 0,
            "index 0 should never win under independent roulette"
        );
    }

    #[test]
    fn table1_small_indices_are_starved() {
        // In Table I the independent roulette gives index 1 probability
        // 0.000000 and index 2 probability 0.000088 — drastically below their
        // true 0.0222 / 0.0444.
        let fitness = Fitness::table1();
        let selector = IndependentRouletteSelector;
        let mut rng = MersenneTwister64::seed_from_u64(6);
        let mut dist = EmpiricalDistribution::new(fitness.len());
        for _ in 0..200_000 {
            dist.record(selector.select(&fitness, &mut rng).unwrap());
        }
        assert!(dist.frequency(1) < 1e-4);
        assert!(dist.frequency(2) < 1e-3);
        // … while the largest index is grossly over-selected (0.3935 vs 0.2).
        assert!(dist.frequency(9) > 0.35);
        // And the chi-square test rejects the exact distribution decisively.
        assert!(!dist
            .goodness_of_fit(&fitness.probabilities())
            .is_consistent(0.001));
    }

    #[test]
    fn zero_fitness_is_never_selected_and_all_zero_is_rejected() {
        let fitness = Fitness::new(vec![0.0, 1.0, 0.0]).unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(2);
        for _ in 0..2000 {
            assert_eq!(
                IndependentRouletteSelector
                    .select(&fitness, &mut rng)
                    .unwrap(),
                1
            );
        }
        let all_zero = Fitness::new(vec![0.0, 0.0]).unwrap();
        assert!(IndependentRouletteSelector
            .select(&all_zero, &mut rng)
            .is_err());
        assert!(ParallelIndependentRouletteSelector::default()
            .select(&all_zero, &mut rng)
            .is_err());
    }

    #[test]
    fn parallel_variant_shows_the_same_bias() {
        let fitness = Fitness::new(vec![2.0, 1.0]).unwrap();
        let selector = ParallelIndependentRouletteSelector {
            sequential_cutoff: 0,
        };
        let mut rng = MersenneTwister64::seed_from_u64(8);
        let trials = 150_000;
        let zero = (0..trials)
            .filter(|_| selector.select(&fitness, &mut rng).unwrap() == 0)
            .count();
        let freq = zero as f64 / trials as f64;
        assert!((freq - 0.75).abs() < 0.006, "frequency {freq}");
    }

    #[test]
    fn parallel_and_sequential_cutoff_paths_agree() {
        let fitness = Fitness::new((1..=300).map(|i| ((i * 7) % 11) as f64).collect()).unwrap();
        let par = ParallelIndependentRouletteSelector {
            sequential_cutoff: 0,
        };
        let seq = ParallelIndependentRouletteSelector {
            sequential_cutoff: usize::MAX,
        };
        for seed in 0..30 {
            let a = par
                .select(&fitness, &mut MersenneTwister64::seed_from_u64(seed))
                .unwrap();
            let b = seq
                .select(&fitness, &mut MersenneTwister64::seed_from_u64(seed))
                .unwrap();
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn both_variants_are_flagged_as_inexact() {
        assert!(!IndependentRouletteSelector.is_exact());
        assert!(!ParallelIndependentRouletteSelector::default().is_exact());
    }
}
