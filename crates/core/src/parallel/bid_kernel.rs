//! The block-Philox bid kernel: chunked, lazily-logarithmic argmax of
//! `ln(u_i) / f_i` — the constant-factor-free hot path under
//! [`ParallelLogBiddingSelector`](crate::parallel::ParallelLogBiddingSelector).
//!
//! ## Why a kernel
//!
//! The straightforward parallel implementation (kept as
//! [`PerIndexLogBiddingSelector`](crate::parallel::PerIndexLogBiddingSelector))
//! pays three per-index constants the mathematics does not require:
//!
//! 1. a fresh `Philox4x32::for_substream` per index — a key-schedule setup
//!    and cursor bookkeeping for every element;
//! 2. one full Philox block (ten rounds) per index, of which only two of the
//!    four 32-bit lanes are consumed;
//! 3. one `ln` call per index, even though only the argmax is wanted.
//!
//! The kernel removes all three. Uniforms are drawn through one
//! [`PhiloxBlock`] per chunk (two 64-bit words per counter bump, round keys
//! expanded once), and the `ln` is evaluated **lazily** behind a branch-free
//! filter: since `ln(u) ≤ u − 1` for all `u ∈ (0, 1)`, `(u − 1)/f` is an
//! upper bound on the true bid, so an index can only win if
//! `u − 1 ≥ best · f` (the product form of the same comparison — one
//! multiply, no divide, no zero-fitness special case). Any index failing the
//! filter is skipped without ever calling `ln`. The running maximum of `n`
//! i.i.d.-ish bids is beaten `O(log n)` times in expectation, so almost
//! every index takes the skip path: the kernel performs `Θ(n)` multiplies
//! but only `O(log n)` expected logarithms and divisions.
//!
//! The filter threshold carries `FILTER_SLACK` (a `1e-12` relative
//! cushion, ~10⁴ ulps) so 1-ulp rounding in `ln`, the multiply or the
//! division can never skip an index whose *computed* bid would have won:
//! the kernel's winner is bit-identical to the winner of the full
//! `ln`-per-index scan over the same uniforms.
//!
//! ## Stream layout (versioned)
//!
//! The uniforms consumed by one selection are pinned by
//! [`STREAM_LAYOUT_VERSION`]:
//!
//! * **v2 (current)** — index `j` reads word `j` of the *sequential* Philox
//!   stream keyed by the master draw (the `j`-th
//!   [`next_u64`](lrb_rng::RandomSource::next_u64) of
//!   `Philox4x32::with_key(master)`), converted by
//!   [`f64_open_open`]. Word `j` lives in Philox block `j / 2`, so any
//!   even-aligned index range can be generated independently — this is what
//!   makes the layout simultaneously chunkable, thread-count-invariant and
//!   cheap (two indices per counter bump).
//! * **v1 (legacy)** — index `j` read the first `next_u64` of
//!   `Philox4x32::for_substream(master, j)`: one whole block and one key
//!   setup per index. Kept verbatim in `PerIndexLogBiddingSelector` as the
//!   differential oracle and the bench baseline.
//!
//! Both layouts consume exactly **one** `next_u64` from the *caller's*
//! generator per selection (the master draw), so selector-level sequences
//! (`select` loops, `select_into` buffers, the `BatchDriver`) are unchanged
//! between versions; only the internal bid-stream derivation differs — that
//! is the consumption contract the draw-for-draw proptests pin.

use lrb_rng::uniform::f64_open_open;
use lrb_rng::PhiloxBlock;
use rayon::prelude::*;

use crate::parallel::max_by_key_then_index;

/// Version of the bid-stream layout (see the module docs). Bump whenever
/// the mapping from `(master, index)` to a uniform changes; reproducibility
/// of stored selection sequences is per layout version.
pub const STREAM_LAYOUT_VERSION: u32 = 2;

/// Indices processed per inner fill: the uniforms buffer lives on the
/// stack, so the kernel allocates nothing. Even by construction (two words
/// per Philox block).
pub const KERNEL_CHUNK: usize = 256;

/// Indices per rayon task in the parallel path. A fixed multiple of two so
/// every task starts on a block boundary; chunk boundaries are part of
/// *scheduling*, not of the stream layout — any even split yields the same
/// uniforms, hence the same winner, at any thread count.
pub const PAR_CHUNK: usize = 8192;

/// Relative slack applied to the filter threshold `best · f` (both sides of
/// the comparison are ≤ 0, so inflating the threshold's magnitude admits
/// *more* indices to the exact refinement — strictly conservative). `ln`,
/// the multiply and the `u − 1` are each faithful to ≲1 ulp (~2.2e-16
/// relative), so a 1e-12 cushion is ~10⁴ ulps of margin while still
/// rejecting essentially every non-winning index.
const FILTER_SLACK: f64 = 1.0 + 1.0e-12;

/// The sequential block kernel over `values[..]`, whose global indices are
/// `base..base + values.len()`. `base` must be even (block-aligned).
///
/// Folds `(bid, index)` candidates into `best` through
/// [`max_by_key_then_index`], evaluating `ln` only for indices whose proxy
/// upper bound could beat the running maximum. The filter is the product
/// form of the proxy test — `u − 1 ≥ best · f` instead of
/// `(u − 1)/f ≥ best` — which is the same comparison for `f > 0` (both
/// sides are ≤ 0) but costs a multiply instead of a divide, and needs no
/// zero-fitness branch at all: for `f = ±0.0` the threshold `best · f` is
/// `±0.0` (or NaN while `best` is still `−∞`), which `u − 1 < 0` can never
/// reach, so zero-weight indices are filtered out before the division that
/// would have mis-signed them.
#[inline]
pub(crate) fn block_argmax(
    values: &[f64],
    base: usize,
    master: u64,
    mut best: (f64, usize),
) -> (f64, usize) {
    debug_assert!(
        base.is_multiple_of(2),
        "chunks must start on a block boundary"
    );
    let mut stream = PhiloxBlock::at_block(master, (base / 2) as u128);
    let mut uniforms = [0u64; KERNEL_CHUNK];
    let mut offset = 0;
    while offset < values.len() {
        let len = KERNEL_CHUNK.min(values.len() - offset);
        stream.fill_u64(&mut uniforms[..len]);
        for (k, &word) in uniforms[..len].iter().enumerate() {
            let f = values[offset + k];
            let u = f64_open_open(word);
            if u - 1.0 >= best.0 * f * FILTER_SLACK {
                let bid = u.ln() / f;
                best = max_by_key_then_index(best, (bid, base + offset + k));
            }
        }
        offset += len;
    }
    best
}

/// Select the bid-argmax index of `values` under stream layout v2.
///
/// `parallel` chooses between one sequential pass and a rayon
/// `par_chunks(PAR_CHUNK) → reduce`; both return the same index for the
/// same `master` because chunk-local argmaxes combine associatively under
/// [`max_by_key_then_index`] and the uniforms are a pure function of
/// `(master, index)`.
pub(crate) fn select_block(values: &[f64], master: u64, parallel: bool) -> usize {
    let identity = (f64::NEG_INFINITY, usize::MAX);
    let best = if parallel {
        values
            .par_chunks(PAR_CHUNK)
            .with_min_len(1)
            .enumerate()
            .map(|(chunk, slice)| block_argmax(slice, chunk * PAR_CHUNK, master, identity))
            .reduce(|| identity, max_by_key_then_index)
    } else {
        block_argmax(values, 0, master, identity)
    };
    best.1
}

/// The exact bid of one index under layout v2, computed the slow way —
/// test-support oracle for pinning the layout (`u_j` = word `j` of the
/// sequential stream) independently of the kernel's skip logic.
pub fn reference_bid(master: u64, index: usize, fitness: f64) -> f64 {
    let mut stream = PhiloxBlock::at_block(master, (index / 2) as u128);
    let words = stream.next_u64_pair();
    let u = f64_open_open(words[index % 2]);
    u.ln() / (fitness + 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrb_rng::{RandomSource, SeedableSource, SplitMix64};

    /// The unfiltered oracle: every index pays the `ln`, same uniforms.
    fn naive_argmax(values: &[f64], master: u64) -> usize {
        let mut best = (f64::NEG_INFINITY, usize::MAX);
        for (j, &f) in values.iter().enumerate() {
            let bid = reference_bid(master, j, f);
            best = max_by_key_then_index(best, (bid, j));
        }
        best.1
    }

    #[test]
    fn kernel_matches_the_naive_full_ln_scan() {
        let mut rng = SplitMix64::seed_from_u64(404);
        for n in [1usize, 2, 3, 17, 255, 256, 257, 1000, 5000] {
            let values: Vec<f64> = (0..n).map(|i| ((i * 7) % 13) as f64).collect();
            if values.iter().all(|&v| v == 0.0) {
                continue;
            }
            for _ in 0..20 {
                let master = rng.next_u64();
                assert_eq!(
                    select_block(&values, master, false),
                    naive_argmax(&values, master),
                    "n = {n}, master = {master}"
                );
            }
        }
    }

    #[test]
    fn parallel_and_sequential_kernels_agree() {
        let values: Vec<f64> = (0..30_000).map(|i| ((i % 97) + 1) as f64).collect();
        let mut rng = SplitMix64::seed_from_u64(7);
        for _ in 0..10 {
            let master = rng.next_u64();
            assert_eq!(
                select_block(&values, master, true),
                select_block(&values, master, false)
            );
        }
    }

    #[test]
    fn zero_and_negative_zero_fitness_never_win() {
        let values = vec![0.0, -0.0, 5.0, 0.0];
        let mut rng = SplitMix64::seed_from_u64(9);
        for _ in 0..200 {
            assert_eq!(select_block(&values, rng.next_u64(), false), 2);
        }
    }

    #[test]
    fn layout_v2_reads_the_sequential_philox_stream() {
        // The layout contract in one assertion: index j's uniform is the
        // j-th next_u64 of the sequential stream keyed by the master.
        let master = 0xBEEF;
        let mut seq = lrb_rng::Philox4x32::with_key(master);
        for j in 0..16usize {
            let word = seq.next_u64();
            let expected = lrb_rng::uniform::f64_open_open(word).ln() / 3.0;
            assert_eq!(reference_bid(master, j, 3.0), expected, "index {j}");
        }
    }

    #[test]
    fn layout_version_is_pinned() {
        assert_eq!(STREAM_LAYOUT_VERSION, 2);
        assert_eq!(KERNEL_CHUNK % 2, 0);
        assert_eq!(PAR_CHUNK % KERNEL_CHUNK, 0);
    }
}
