//! The block-Philox bid kernel: chunked, lazily-logarithmic argmax of
//! `ln(u_i) / f_i` — the constant-factor-free hot path under
//! [`ParallelLogBiddingSelector`](crate::parallel::ParallelLogBiddingSelector).
//!
//! ## Why a kernel
//!
//! The straightforward parallel implementation (kept as
//! [`PerIndexLogBiddingSelector`](crate::parallel::PerIndexLogBiddingSelector))
//! pays three per-index constants the mathematics does not require:
//!
//! 1. a fresh `Philox4x32::for_substream` per index — a key-schedule setup
//!    and cursor bookkeeping for every element;
//! 2. one full Philox block (ten rounds) per index, of which only two of the
//!    four 32-bit lanes are consumed;
//! 3. one `ln` call per index, even though only the argmax is wanted.
//!
//! The kernel removes all three. Uniforms are drawn through one
//! [`PhiloxBlock`] per chunk (two 64-bit words per counter bump, round keys
//! expanded once), and the `ln` is evaluated **lazily** behind a branch-free
//! filter: since `ln(u) ≤ u − 1` for all `u ∈ (0, 1)`, `(u − 1)/f` is an
//! upper bound on the true bid, so an index can only win if
//! `u − 1 ≥ best · f` (the product form of the same comparison — one
//! multiply, no divide, no zero-fitness special case). Any index failing the
//! filter is skipped without ever calling `ln`. The running maximum of `n`
//! i.i.d.-ish bids is beaten `O(log n)` times in expectation, so almost
//! every index takes the skip path: the kernel performs `Θ(n)` multiplies
//! but only `O(log n)` expected logarithms and divisions.
//!
//! The filter threshold carries `FILTER_SLACK` (a `1e-12` relative
//! cushion, ~10⁴ ulps) so 1-ulp rounding in `ln`, the multiply or the
//! division can never skip an index whose *computed* bid would have won:
//! the kernel's winner is bit-identical to the winner of the full
//! `ln`-per-index scan over the same uniforms.
//!
//! ## Stream layout (versioned)
//!
//! The uniforms consumed by one selection are pinned by
//! [`STREAM_LAYOUT_VERSION`]:
//!
//! * **v2 (current)** — index `j` reads word `j` of the *sequential* Philox
//!   stream keyed by the master draw (the `j`-th
//!   [`next_u64`](lrb_rng::RandomSource::next_u64) of
//!   `Philox4x32::with_key(master)`), converted by
//!   [`f64_open_open`]. Word `j` lives in Philox block `j / 2`, so any
//!   even-aligned index range can be generated independently — this is what
//!   makes the layout simultaneously chunkable, thread-count-invariant and
//!   cheap (two indices per counter bump).
//! * **v1 (legacy)** — index `j` read the first `next_u64` of
//!   `Philox4x32::for_substream(master, j)`: one whole block and one key
//!   setup per index. Kept verbatim in `PerIndexLogBiddingSelector` as the
//!   differential oracle and the bench baseline.
//!
//! Both layouts consume exactly **one** `next_u64` from the *caller's*
//! generator per selection (the master draw), so selector-level sequences
//! (`select` loops, `select_into` buffers, the `BatchDriver`) are unchanged
//! between versions; only the internal bid-stream derivation differs — that
//! is the consumption contract the draw-for-draw proptests pin.
//!
//! ## The fused multi-draw path
//!
//! A *batch* of selections through the per-draw kernel streams the fitness
//! array once per draw: at `n = 2²⁰` that is 8 MiB of memory traffic per
//! selection, and the Philox chain of each draw runs latency-bound on its
//! ten serial rounds. The fused `select_many_block` kernel removes both
//! costs by
//! register-blocking [`FUSED_WIDTH`] = 8 draws into **one pass**: each
//! chunk
//! of the fitness array is loaded once and tested against eight independent
//! bid streams, whose uniforms are generated eight-streams-at-a-time by
//! [`lrb_rng::PhiloxMulti8`] (the same round executed across
//! eight key schedules — straight-line data parallelism that vectorises
//! under AVX-512/AVX2 and pipelines even in scalar form), while eight
//! running maxima sit in registers behind a row-wide lazy-`ln` filter.
//!
//! **The stream layout does not change**: [`STREAM_LAYOUT_VERSION`] stays
//! at 2, because fused draw `m` reads exactly the v2 stream keyed by its
//! own master draw — word `j` of the sequential Philox stream for index
//! `j`. The fused path consumes one caller `next_u64` per selection (the
//! masters are drawn up front, in slot order) and elects the same winners,
//! so `select_many(M)` is bit-identical, draw for draw, to `M` sequential
//! [`select`](crate::traits::Selector::select) calls on the same caller
//! generator — the property the fused proptests pin. Batches whose length
//! is not a multiple of eight pad the last group with duplicate lanes whose
//! results are discarded; padding consumes no caller randomness.

use lrb_obs::Counter;
use lrb_rng::uniform::f64_open_open;
use lrb_rng::{PhiloxBlock, PhiloxMulti8, SimdTier};
use rayon::prelude::*;

use crate::parallel::max_by_key_then_index;

/// `ln` evaluations the lazy filter actually paid for, process-wide — the
/// direct measurement of the kernel's `O(log n)`-expected-logs claim
/// (sharded counter: recording is one relaxed `fetch_add` per *chunk*, not
/// per `ln`, so the telemetry cannot distort what it measures).
static LN_CALLS: Counter = Counter::new();

/// Rows the fused row filter admitted for exact refinement, process-wide
/// (each admitted row re-tests up to [`FUSED_WIDTH`] lanes).
static REFINE_HITS: Counter = Counter::new();

/// Point-in-time totals of the kernel's process-wide telemetry counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelCounters {
    /// `ln` evaluations performed across all kernel paths.
    pub ln_calls: u64,
    /// Rows admitted by the fused row filter for exact refinement.
    pub refine_hits: u64,
}

/// Read the kernel's process-wide counters (relaxed sums; exact once the
/// recording threads quiesce).
pub fn kernel_counters() -> KernelCounters {
    KernelCounters {
        ln_calls: LN_CALLS.get(),
        refine_hits: REFINE_HITS.get(),
    }
}

/// Version of the bid-stream layout (see the module docs). Bump whenever
/// the mapping from `(master, index)` to a uniform changes; reproducibility
/// of stored selection sequences is per layout version.
pub const STREAM_LAYOUT_VERSION: u32 = 2;

/// Indices processed per inner fill: the uniforms buffer lives on the
/// stack, so the kernel allocates nothing. Even by construction (two words
/// per Philox block).
pub const KERNEL_CHUNK: usize = 256;

/// Indices per rayon task in the parallel path. A fixed multiple of two so
/// every task starts on a block boundary; chunk boundaries are part of
/// *scheduling*, not of the stream layout — any even split yields the same
/// uniforms, hence the same winner, at any thread count.
pub const PAR_CHUNK: usize = 8192;

/// Relative slack applied to the filter threshold `best · f` (both sides of
/// the comparison are ≤ 0, so inflating the threshold's magnitude admits
/// *more* indices to the exact refinement — strictly conservative). `ln`,
/// the multiply and the `u − 1` are each faithful to ≲1 ulp (~2.2e-16
/// relative), so a 1e-12 cushion is ~10⁴ ulps of margin while still
/// rejecting essentially every non-winning index.
const FILTER_SLACK: f64 = 1.0 + 1.0e-12;

/// The sequential block kernel over `values[..]`, whose global indices are
/// `base..base + values.len()`. `base` must be even (block-aligned).
///
/// Folds `(bid, index)` candidates into `best` through
/// [`max_by_key_then_index`], evaluating `ln` only for indices whose proxy
/// upper bound could beat the running maximum. The filter is the product
/// form of the proxy test — `u − 1 ≥ best · f` instead of
/// `(u − 1)/f ≥ best` — which is the same comparison for `f > 0` (both
/// sides are ≤ 0) but costs a multiply instead of a divide, and needs no
/// zero-fitness branch at all: for `f = ±0.0` the threshold `best · f` is
/// `±0.0` (or NaN while `best` is still `−∞`), which `u − 1 < 0` can never
/// reach, so zero-weight indices are filtered out before the division that
/// would have mis-signed them.
#[inline]
pub(crate) fn block_argmax(
    values: &[f64],
    base: usize,
    master: u64,
    mut best: (f64, usize),
) -> (f64, usize) {
    debug_assert!(
        base.is_multiple_of(2),
        "chunks must start on a block boundary"
    );
    let mut stream = PhiloxBlock::at_block(master, (base / 2) as u128);
    let mut uniforms = [0u64; KERNEL_CHUNK];
    let mut offset = 0;
    // Accumulated locally, recorded once per call: the telemetry must not
    // add a shared RMW to the filter loop it instruments.
    let mut ln_calls = 0u64;
    while offset < values.len() {
        let len = KERNEL_CHUNK.min(values.len() - offset);
        stream.fill_u64(&mut uniforms[..len]);
        for (k, &word) in uniforms[..len].iter().enumerate() {
            let f = values[offset + k];
            let u = f64_open_open(word);
            if u - 1.0 >= best.0 * f * FILTER_SLACK {
                let bid = u.ln() / f;
                ln_calls += 1;
                best = max_by_key_then_index(best, (bid, base + offset + k));
            }
        }
        offset += len;
    }
    if ln_calls > 0 {
        LN_CALLS.add(ln_calls);
    }
    best
}

/// Select the bid-argmax index of `values` under stream layout v2.
///
/// `parallel` chooses between one sequential pass and a rayon
/// `par_chunks(PAR_CHUNK) → reduce`; both return the same index for the
/// same `master` because chunk-local argmaxes combine associatively under
/// [`max_by_key_then_index`] and the uniforms are a pure function of
/// `(master, index)`.
pub(crate) fn select_block(values: &[f64], master: u64, parallel: bool) -> usize {
    let identity = (f64::NEG_INFINITY, usize::MAX);
    let best = if parallel {
        values
            .par_chunks(PAR_CHUNK)
            .with_min_len(1)
            .enumerate()
            .map(|(chunk, slice)| block_argmax(slice, chunk * PAR_CHUNK, master, identity))
            .reduce(|| identity, max_by_key_then_index)
    } else {
        block_argmax(values, 0, master, identity)
    };
    best.1
}

/// Draws register-blocked per fused pass (equals
/// [`lrb_rng::MULTI_WIDTH`]): eight running maxima ride one sweep of the
/// fitness array.
pub const FUSED_WIDTH: usize = lrb_rng::MULTI_WIDTH;

/// One fused group's running state: eight `(bid, index)` maxima plus the
/// slack-inflated filter thresholds derived from them (`thresh = best ·
/// FILTER_SLACK`, kept separately so the row filter is one multiply per
/// lane).
#[derive(Debug, Clone, Copy)]
struct FusedLanes {
    best: [(f64, usize); FUSED_WIDTH],
    thresh: [f64; FUSED_WIDTH],
}

impl FusedLanes {
    fn identity() -> Self {
        Self {
            best: [(f64::NEG_INFINITY, usize::MAX); FUSED_WIDTH],
            thresh: [f64::NEG_INFINITY; FUSED_WIDTH],
        }
    }

    /// Lane-wise argmax merge (associative; used by the rayon reduction).
    fn merge(mut self, other: Self) -> Self {
        for m in 0..FUSED_WIDTH {
            self.best[m] = max_by_key_then_index(self.best[m], other.best[m]);
            self.thresh[m] = self.best[m].0 * FILTER_SLACK;
        }
        self
    }
}

/// The sequential fused kernel over `values[..]` (global indices
/// `base..base + values.len()`, `base` even): every chunk of the fitness
/// array is loaded once and tested against all groups' bid streams.
fn fused_argmax(
    values: &[f64],
    base: usize,
    multis: &[PhiloxMulti8],
    lanes: &mut [FusedLanes],
    tier: SimdTier,
) {
    debug_assert!(
        base.is_multiple_of(2),
        "chunks must start on a block boundary"
    );
    debug_assert_eq!(multis.len(), lanes.len());
    let mut uniforms = [0.0f64; KERNEL_CHUNK * FUSED_WIDTH];
    let mut hits = [(0u16, 0u8); KERNEL_CHUNK];
    let mut offset = 0;
    while offset < values.len() {
        let len = KERNEL_CHUNK.min(values.len() - offset);
        let rows = len.next_multiple_of(2);
        let chunk = &values[offset..offset + len];
        for (group, multi) in multis.iter().enumerate() {
            multi.fill_uniforms(((base + offset) / 2) as u64, rows, &mut uniforms);
            let hit_count = filter::rows(tier, chunk, &uniforms, &lanes[group].thresh, &mut hits);
            if hit_count > 0 {
                refine_hits(
                    chunk,
                    base + offset,
                    &uniforms,
                    &hits[..hit_count],
                    &mut lanes[group],
                );
            }
        }
        offset += len;
    }
}

/// Exact refinement of the rows the filter admitted: re-test against the
/// *current* (tighter) thresholds — the row filter ran with the thresholds
/// frozen at chunk entry, which is conservative because thresholds only
/// rise — then pay the `ln` and fold into the lane's running maximum. Kept
/// out of line: the running maximum of `n` i.i.d.-ish bids is beaten
/// `O(log n)` times, so this body runs orders of magnitude less often than
/// the filter loop and must not bloat it.
#[inline(never)]
fn refine_hits(
    chunk: &[f64],
    global_base: usize,
    uniforms: &[f64],
    hits: &[(u16, u8)],
    lanes: &mut FusedLanes,
) {
    let mut ln_calls = 0u64;
    for &(row, mask) in hits {
        let k = row as usize;
        let f = chunk[k];
        for m in 0..FUSED_WIDTH {
            if mask & (1 << m) != 0 {
                let u = uniforms[k * FUSED_WIDTH + m];
                if u - 1.0 >= lanes.thresh[m] * f {
                    let bid = u.ln() / f;
                    ln_calls += 1;
                    lanes.best[m] = max_by_key_then_index(lanes.best[m], (bid, global_base + k));
                    lanes.thresh[m] = lanes.best[m].0 * FILTER_SLACK;
                }
            }
        }
    }
    // One shard add per refinement call — this body already runs orders of
    // magnitude less often than the filter, so the telemetry rides along.
    REFINE_HITS.add(hits.len() as u64);
    if ln_calls > 0 {
        LN_CALLS.add(ln_calls);
    }
}

/// Pad a partial last group with duplicates of its first master; the
/// padded lanes run like real ones and their winners are discarded, so
/// padding never touches the caller's generator.
fn pad_group(group: &[u64]) -> [u64; FUSED_WIDTH] {
    let mut padded = [group[0]; FUSED_WIDTH];
    padded[..group.len()].copy_from_slice(group);
    padded
}

/// Select the bid-argmax winners of `values` for every master in `masters`
/// (one selection per master, stream layout v2 per draw) in fused passes
/// over the fitness array: `out[t]` is the winner `select_block(values,
/// masters[t], …)` would have produced, computed
/// `masters.len() / FUSED_WIDTH`-fold cheaper.
///
/// `parallel` fans the fitness array out over rayon chunks exactly like the
/// per-draw kernel; chunk-local lane maxima merge associatively, so the
/// winners are identical at any thread count.
///
/// Small batches take cheaper shapes (same winners, draw for draw): below
/// a tier-dependent floor the per-draw kernel is simply looped — on the
/// scalar tier a padded fused group costs up to eight single passes, so
/// fusing pays only from a full group; on the SIMD tiers two draws already
/// amortise the vector fill — and a batch that fits one fused group runs
/// entirely on the stack (no per-call `Vec`s).
pub(crate) fn select_many_block(
    values: &[f64],
    masters: &[u64],
    parallel: bool,
    out: &mut [usize],
) {
    assert_eq!(masters.len(), out.len());
    if masters.is_empty() {
        return;
    }
    let tier = lrb_rng::simd_tier();
    let fused_min = match tier {
        SimdTier::Scalar => FUSED_WIDTH,
        _ => 2,
    };
    if masters.len() < fused_min {
        for (slot, &master) in out.iter_mut().zip(masters) {
            *slot = select_block(values, master, parallel);
        }
        return;
    }
    if masters.len() <= FUSED_WIDTH {
        let multi = PhiloxMulti8::new(pad_group(masters));
        let group = std::slice::from_ref(&multi);
        let lanes = if parallel {
            values
                .par_chunks(PAR_CHUNK)
                .with_min_len(1)
                .enumerate()
                .map(|(chunk, slice)| {
                    let mut local = [FusedLanes::identity()];
                    fused_argmax(slice, chunk * PAR_CHUNK, group, &mut local, tier);
                    local[0]
                })
                .reduce(FusedLanes::identity, FusedLanes::merge)
        } else {
            let mut local = [FusedLanes::identity()];
            fused_argmax(values, 0, group, &mut local, tier);
            local[0]
        };
        for (t, slot) in out.iter_mut().enumerate() {
            *slot = lanes.best[t].1;
        }
        return;
    }
    let multis: Vec<PhiloxMulti8> = masters
        .chunks(FUSED_WIDTH)
        .map(|group| PhiloxMulti8::new(pad_group(group)))
        .collect();
    let lanes = if parallel {
        values
            .par_chunks(PAR_CHUNK)
            .with_min_len(1)
            .enumerate()
            .map(|(chunk, slice)| {
                let mut local = vec![FusedLanes::identity(); multis.len()];
                fused_argmax(slice, chunk * PAR_CHUNK, &multis, &mut local, tier);
                local
            })
            .reduce(
                || vec![FusedLanes::identity(); multis.len()],
                |a, b| {
                    a.into_iter()
                        .zip(b)
                        .map(|(x, y)| FusedLanes::merge(x, y))
                        .collect()
                },
            )
    } else {
        let mut local = vec![FusedLanes::identity(); multis.len()];
        fused_argmax(values, 0, &multis, &mut local, tier);
        local
    };
    for (t, slot) in out.iter_mut().enumerate() {
        *slot = lanes[t / FUSED_WIDTH].best[t % FUSED_WIDTH].1;
    }
}

/// The row filter: for every fitness index of the chunk, test all eight
/// lanes' proxy bound `u − 1 ≥ thresh · f` at once and append rows with any
/// passing lane (plus their lane masks) to `hits`.
///
/// Three tiers with identical semantics: AVX-512 (one 8-lane compare per
/// row), AVX2 (two 4-lane halves) and scalar (a branchless mask
/// accumulation). The comparison is `>=` with quiet-NaN-fails ordering in
/// every tier, so a NaN threshold product (`−∞ · 0` while a lane is still
/// empty against a zero fitness) rejects the row exactly like the scalar
/// per-draw kernel.
///
/// ## Safety argument (audited `unsafe`)
///
/// The SIMD paths contain only `#[target_feature]` entry calls — reached
/// solely through the tier dispatch, where the tier came from
/// [`lrb_rng::simd_tier`]'s runtime detection — and unaligned vector loads
/// whose pointers stay in bounds by the debug-asserted preconditions
/// (`uniforms.len() ≥ values.len() · 8`, `thresh` is exactly eight lanes).
#[allow(unsafe_code)]
mod filter {
    use super::{SimdTier, FUSED_WIDTH, KERNEL_CHUNK};

    /// Filter one chunk; returns the number of hits written.
    #[inline]
    pub(super) fn rows(
        tier: SimdTier,
        values: &[f64],
        uniforms: &[f64],
        thresh: &[f64; FUSED_WIDTH],
        hits: &mut [(u16, u8); KERNEL_CHUNK],
    ) -> usize {
        debug_assert!(values.len() <= KERNEL_CHUNK);
        debug_assert!(uniforms.len() >= values.len() * FUSED_WIDTH);
        match tier {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: the tier is the runtime-detected one (module docs).
            SimdTier::Avx512 => unsafe { rows_avx512(values, uniforms, thresh, hits) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above.
            SimdTier::Avx2 => unsafe { rows_avx2(values, uniforms, thresh, hits) },
            _ => rows_scalar(values, uniforms, thresh, hits),
        }
    }

    fn rows_scalar(
        values: &[f64],
        uniforms: &[f64],
        thresh: &[f64; FUSED_WIDTH],
        hits: &mut [(u16, u8); KERNEL_CHUNK],
    ) -> usize {
        let mut count = 0;
        for (k, &f) in values.iter().enumerate() {
            let row = &uniforms[k * FUSED_WIDTH..(k + 1) * FUSED_WIDTH];
            let mut mask = 0u8;
            for m in 0..FUSED_WIDTH {
                let pass = row[m] - 1.0 >= thresh[m] * f;
                mask |= (pass as u8) << m;
            }
            if mask != 0 {
                hits[count] = (k as u16, mask);
                count += 1;
            }
        }
        count
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f,avx512dq")]
    fn rows_avx512(
        values: &[f64],
        uniforms: &[f64],
        thresh: &[f64; FUSED_WIDTH],
        hits: &mut [(u16, u8); KERNEL_CHUNK],
    ) -> usize {
        use std::arch::x86_64::*;
        // SAFETY: thresh is exactly eight f64 (512 bits).
        let t = unsafe { _mm512_loadu_pd(thresh.as_ptr()) };
        let one = _mm512_set1_pd(1.0);
        let mut count = 0;
        for (k, &f) in values.iter().enumerate() {
            let fv = _mm512_set1_pd(f);
            // SAFETY: row k is in bounds (uniforms.len() >= values.len()·8).
            let u = unsafe { _mm512_loadu_pd(uniforms.as_ptr().add(k * FUSED_WIDTH)) };
            let lhs = _mm512_sub_pd(u, one);
            let rhs = _mm512_mul_pd(t, fv);
            let mask = _mm512_cmp_pd_mask::<_CMP_GE_OQ>(lhs, rhs);
            if mask != 0 {
                hits[count] = (k as u16, mask);
                count += 1;
            }
        }
        count
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    fn rows_avx2(
        values: &[f64],
        uniforms: &[f64],
        thresh: &[f64; FUSED_WIDTH],
        hits: &mut [(u16, u8); KERNEL_CHUNK],
    ) -> usize {
        use std::arch::x86_64::*;
        // SAFETY: thresh halves are four f64 each (256 bits).
        let t_lo = unsafe { _mm256_loadu_pd(thresh.as_ptr()) };
        let t_hi = unsafe { _mm256_loadu_pd(thresh.as_ptr().add(4)) };
        let one = _mm256_set1_pd(1.0);
        let mut count = 0;
        for (k, &f) in values.iter().enumerate() {
            let fv = _mm256_set1_pd(f);
            // SAFETY: row k (both halves) is in bounds as above.
            let (u_lo, u_hi) = unsafe {
                (
                    _mm256_loadu_pd(uniforms.as_ptr().add(k * FUSED_WIDTH)),
                    _mm256_loadu_pd(uniforms.as_ptr().add(k * FUSED_WIDTH + 4)),
                )
            };
            let pass_lo =
                _mm256_cmp_pd::<_CMP_GE_OQ>(_mm256_sub_pd(u_lo, one), _mm256_mul_pd(t_lo, fv));
            let pass_hi =
                _mm256_cmp_pd::<_CMP_GE_OQ>(_mm256_sub_pd(u_hi, one), _mm256_mul_pd(t_hi, fv));
            let mask = (_mm256_movemask_pd(pass_lo) | (_mm256_movemask_pd(pass_hi) << 4)) as u8;
            if mask != 0 {
                hits[count] = (k as u16, mask);
                count += 1;
            }
        }
        count
    }
}

/// The exact bid of one index under layout v2, computed the slow way —
/// test-support oracle for pinning the layout (`u_j` = word `j` of the
/// sequential stream) independently of the kernel's skip logic.
pub fn reference_bid(master: u64, index: usize, fitness: f64) -> f64 {
    let mut stream = PhiloxBlock::at_block(master, (index / 2) as u128);
    let words = stream.next_u64_pair();
    let u = f64_open_open(words[index % 2]);
    u.ln() / (fitness + 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrb_rng::{RandomSource, SeedableSource, SplitMix64};

    /// The unfiltered oracle: every index pays the `ln`, same uniforms.
    fn naive_argmax(values: &[f64], master: u64) -> usize {
        let mut best = (f64::NEG_INFINITY, usize::MAX);
        for (j, &f) in values.iter().enumerate() {
            let bid = reference_bid(master, j, f);
            best = max_by_key_then_index(best, (bid, j));
        }
        best.1
    }

    #[test]
    fn kernel_matches_the_naive_full_ln_scan() {
        let mut rng = SplitMix64::seed_from_u64(404);
        for n in [1usize, 2, 3, 17, 255, 256, 257, 1000, 5000] {
            let values: Vec<f64> = (0..n).map(|i| ((i * 7) % 13) as f64).collect();
            if values.iter().all(|&v| v == 0.0) {
                continue;
            }
            for _ in 0..20 {
                let master = rng.next_u64();
                assert_eq!(
                    select_block(&values, master, false),
                    naive_argmax(&values, master),
                    "n = {n}, master = {master}"
                );
            }
        }
    }

    #[test]
    fn parallel_and_sequential_kernels_agree() {
        let values: Vec<f64> = (0..30_000).map(|i| ((i % 97) + 1) as f64).collect();
        let mut rng = SplitMix64::seed_from_u64(7);
        for _ in 0..10 {
            let master = rng.next_u64();
            assert_eq!(
                select_block(&values, master, true),
                select_block(&values, master, false)
            );
        }
    }

    #[test]
    fn zero_and_negative_zero_fitness_never_win() {
        let values = vec![0.0, -0.0, 5.0, 0.0];
        let mut rng = SplitMix64::seed_from_u64(9);
        for _ in 0..200 {
            assert_eq!(select_block(&values, rng.next_u64(), false), 2);
        }
    }

    #[test]
    fn layout_v2_reads_the_sequential_philox_stream() {
        // The layout contract in one assertion: index j's uniform is the
        // j-th next_u64 of the sequential stream keyed by the master.
        let master = 0xBEEF;
        let mut seq = lrb_rng::Philox4x32::with_key(master);
        for j in 0..16usize {
            let word = seq.next_u64();
            let expected = lrb_rng::uniform::f64_open_open(word).ln() / 3.0;
            assert_eq!(reference_bid(master, j, 3.0), expected, "index {j}");
        }
    }

    #[test]
    fn layout_version_is_pinned() {
        assert_eq!(STREAM_LAYOUT_VERSION, 2);
        assert_eq!(KERNEL_CHUNK % 2, 0);
        assert_eq!(PAR_CHUNK % KERNEL_CHUNK, 0);
        assert_eq!(FUSED_WIDTH, 8);
    }

    #[test]
    fn fused_kernel_matches_the_per_draw_kernel_lane_for_lane() {
        // The fused contract: out[t] == select_block(values, masters[t]) for
        // every batch length, including lengths that do not divide by 8.
        let mut rng = SplitMix64::seed_from_u64(2024);
        for n in [1usize, 2, 17, 255, 256, 257, 1000, 5000] {
            let values: Vec<f64> = (0..n).map(|i| ((i * 7) % 13) as f64).collect();
            if values.iter().all(|&v| v == 0.0) {
                continue;
            }
            for batch in [1usize, 3, 7, 8, 9, 16, 20] {
                let masters: Vec<u64> = (0..batch).map(|_| rng.next_u64()).collect();
                let mut out = vec![0usize; batch];
                select_many_block(&values, &masters, false, &mut out);
                for (t, &master) in masters.iter().enumerate() {
                    assert_eq!(
                        out[t],
                        select_block(&values, master, false),
                        "n = {n}, batch = {batch}, draw {t}"
                    );
                }
            }
        }
    }

    #[test]
    fn fused_parallel_and_sequential_paths_agree() {
        let values: Vec<f64> = (0..30_000).map(|i| ((i % 97) + 1) as f64).collect();
        let mut rng = SplitMix64::seed_from_u64(55);
        let masters: Vec<u64> = (0..19).map(|_| rng.next_u64()).collect();
        let mut seq = vec![0usize; masters.len()];
        let mut par = vec![0usize; masters.len()];
        select_many_block(&values, &masters, false, &mut seq);
        select_many_block(&values, &masters, true, &mut par);
        assert_eq!(seq, par);
    }

    #[test]
    fn fused_kernel_never_elects_zero_fitness_indices() {
        let values = vec![0.0, -0.0, 5.0, 0.0, 3.0];
        let mut rng = SplitMix64::seed_from_u64(77);
        let masters: Vec<u64> = (0..200).map(|_| rng.next_u64()).collect();
        let mut out = vec![0usize; masters.len()];
        select_many_block(&values, &masters, false, &mut out);
        assert!(out.iter().all(|&i| i == 2 || i == 4));
    }

    #[test]
    fn fused_kernel_accepts_an_empty_batch() {
        select_many_block(&[1.0, 2.0], &[], false, &mut []);
    }

    #[test]
    fn kernel_counters_measure_the_lazy_ln_claim() {
        // Process-wide counters: other tests record too, so assert on the
        // *delta* across a known workload. 50 draws over n = 20_000 through
        // the per-draw kernel must pay far fewer than n·draws logs — the
        // O(log n) expected-logs claim with generous slack (the filter also
        // admits near-winners).
        let n = 20_000usize;
        let draws = 50u64;
        let values: Vec<f64> = (0..n).map(|i| ((i % 97) + 1) as f64).collect();
        let mut rng = SplitMix64::seed_from_u64(313);
        let before = kernel_counters();
        for _ in 0..draws {
            let _ = select_block(&values, rng.next_u64(), false);
        }
        let after = kernel_counters();
        let lns = after.ln_calls - before.ln_calls;
        assert!(lns >= draws, "every draw pays at least the winner's ln");
        assert!(
            lns < draws * 40 * (n as f64).log2() as u64,
            "{lns} logs over {draws} draws of n = {n} — the filter is broken"
        );
        // The fused path also counts its refinement rows.
        let masters: Vec<u64> = (0..16).map(|_| rng.next_u64()).collect();
        let mut out = vec![0usize; masters.len()];
        select_many_block(&values, &masters, false, &mut out);
        let fused = kernel_counters();
        assert!(fused.refine_hits > after.refine_hits);
        assert!(fused.ln_calls > after.ln_calls);
    }
}
