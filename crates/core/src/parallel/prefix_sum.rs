//! The prefix-sum-based parallel roulette wheel selection (the classical
//! exact algorithm the paper reviews in Section I), executed as a
//! chunked rayon computation.
//!
//! 1. split the fitness slice into chunks and sum each chunk in parallel,
//! 2. scan the chunk totals sequentially (there are only `n / chunk` of them),
//! 3. draw `R = u · Σf`, locate the chunk whose cumulative range contains
//!    `R`, and scan inside that one chunk.
//!
//! Probabilities are exact; the work is `O(n)` like the logarithmic bidding,
//! but the algorithm needs the two-phase structure (sum, then locate) where
//! the bidding needs only a single arg-max pass — which is exactly the
//! trade-off the throughput benches measure.

use lrb_rng::RandomSource;
use rayon::prelude::*;

use crate::error::SelectionError;
use crate::fitness::Fitness;
use crate::traits::Selector;

/// Chunked rayon prefix-sum selection.
#[derive(Debug, Clone, Copy)]
pub struct PrefixSumSelector {
    /// Number of fitness values handled per chunk.
    pub chunk_size: usize,
    /// Inputs shorter than this are processed entirely sequentially.
    pub sequential_cutoff: usize,
}

impl Default for PrefixSumSelector {
    fn default() -> Self {
        Self {
            chunk_size: 4096,
            sequential_cutoff: 8192,
        }
    }
}

impl PrefixSumSelector {
    fn locate_in_slice(values: &[f64], mut r: f64) -> Option<usize> {
        for (i, &f) in values.iter().enumerate() {
            if f <= 0.0 {
                continue;
            }
            if r < f {
                return Some(i);
            }
            r -= f;
        }
        None
    }
}

impl Selector for PrefixSumSelector {
    fn name(&self) -> &'static str {
        "prefix-sum-rayon"
    }

    fn is_exact(&self) -> bool {
        true
    }

    fn select(
        &self,
        fitness: &Fitness,
        rng: &mut dyn RandomSource,
    ) -> Result<usize, SelectionError> {
        if fitness.is_all_zero() {
            return Err(SelectionError::AllZeroFitness);
        }
        let values = fitness.values();
        let chunk = self.chunk_size.max(1);

        // Phase 1: chunk sums (parallel when the input is large enough).
        let chunk_sums: Vec<f64> = if values.len() < self.sequential_cutoff {
            values.chunks(chunk).map(|c| c.iter().sum()).collect()
        } else {
            values.par_chunks(chunk).map(|c| c.iter().sum()).collect()
        };
        let total: f64 = chunk_sums.iter().sum();

        // Phase 2: draw the threshold and locate the owning chunk.
        let mut r = rng.next_f64() * total;
        let mut chunk_index = chunk_sums.len() - 1;
        for (ci, &cs) in chunk_sums.iter().enumerate() {
            if r < cs {
                chunk_index = ci;
                break;
            }
            r -= cs;
        }

        // Phase 3: locate the index inside the chunk. Rounding can push `r`
        // past the chunk's own mass; walk back to earlier chunks until a
        // positive-fitness index absorbs the draw.
        loop {
            let start = chunk_index * chunk;
            let end = (start + chunk).min(values.len());
            if let Some(offset) = Self::locate_in_slice(&values[start..end], r) {
                return Ok(start + offset);
            }
            // Exhausted this chunk without absorbing r (possible only through
            // floating-point rounding at the right edge): attribute the draw
            // to the last positive-fitness index seen so far.
            if let Some(i) = values[..end].iter().rposition(|&f| f > 0.0) {
                return Ok(i);
            }
            // No positive fitness up to this chunk; move forward.
            chunk_index += 1;
            r = 0.0;
            if chunk_index * chunk >= values.len() {
                // Cannot happen for a validated non-all-zero vector.
                return Err(SelectionError::AllZeroFitness);
            }
        }
    }

    /// Batch selection builds the prefix table **once** and then answers
    /// every draw with an `O(log n)` binary search, instead of re-scanning
    /// (and re-summing) the fitness vector per call as the default loop
    /// would — the hot-path fix surfaced by the dynamic-selection benches.
    fn select_into(
        &self,
        fitness: &Fitness,
        rng: &mut dyn RandomSource,
        out: &mut [usize],
    ) -> Result<(), SelectionError> {
        if fitness.is_all_zero() {
            return Err(SelectionError::AllZeroFitness);
        }
        let values = fitness.values();
        // Inclusive prefix sums: cumulative[i] = f_0 + … + f_i.
        let mut cumulative = Vec::with_capacity(values.len());
        let mut running = 0.0;
        for &f in values {
            running += f;
            cumulative.push(running);
        }
        let total = running;
        let last_positive = values
            .iter()
            .rposition(|&f| f > 0.0)
            .expect("non-all-zero vector has a positive entry");

        for slot in out.iter_mut() {
            let r = rng.next_f64() * total;
            // First index whose cumulative mass exceeds r. Ties on the
            // boundary (cumulative == r) move right, matching the strict
            // `r < f` comparison of the sequential scan.
            let index = cumulative.partition_point(|&c| c <= r);
            // Rounding at the right edge can land past the end or on a
            // zero-fitness index; attribute such draws to the last
            // positive-fitness index, as `select` does.
            let index = index.min(last_positive);
            *slot = if values[index] > 0.0 {
                index
            } else {
                values[..index]
                    .iter()
                    .rposition(|&f| f > 0.0)
                    .unwrap_or(last_positive)
            };
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrb_rng::{MersenneTwister64, SeedableSource};
    use lrb_stats::EmpiricalDistribution;
    use proptest::prelude::*;

    #[test]
    fn distribution_matches_targets_small_input() {
        let fitness = Fitness::new(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let selector = PrefixSumSelector::default();
        let mut rng = MersenneTwister64::seed_from_u64(31);
        let mut dist = EmpiricalDistribution::new(fitness.len());
        for _ in 0..200_000 {
            dist.record(selector.select(&fitness, &mut rng).unwrap());
        }
        assert!(dist.max_abs_deviation(&fitness.probabilities()) < 0.005);
        assert!(dist
            .goodness_of_fit(&fitness.probabilities())
            .is_consistent(0.001));
    }

    #[test]
    fn distribution_matches_targets_with_tiny_chunks() {
        // Chunk size 3 over 10 values exercises the chunk-walk logic heavily.
        let fitness = Fitness::table1();
        let selector = PrefixSumSelector {
            chunk_size: 3,
            sequential_cutoff: 0,
        };
        let mut rng = MersenneTwister64::seed_from_u64(32);
        let mut dist = EmpiricalDistribution::new(fitness.len());
        for _ in 0..200_000 {
            dist.record(selector.select(&fitness, &mut rng).unwrap());
        }
        assert!(dist.max_abs_deviation(&fitness.probabilities()) < 0.005);
        assert_eq!(dist.counts()[0], 0);
    }

    #[test]
    fn agrees_with_linear_scan_given_the_same_randomness() {
        // Both algorithms consume exactly one uniform per selection and place
        // the threshold identically, so with a shared seed they must agree.
        use crate::sequential::LinearScanSelector;
        let fitness = Fitness::new(vec![0.3, 0.0, 2.0, 1.7, 0.0, 5.0]).unwrap();
        let selector = PrefixSumSelector {
            chunk_size: 2,
            sequential_cutoff: 0,
        };
        let mut rng_a = MersenneTwister64::seed_from_u64(12);
        let mut rng_b = MersenneTwister64::seed_from_u64(12);
        for _ in 0..5000 {
            assert_eq!(
                selector.select(&fitness, &mut rng_a).unwrap(),
                LinearScanSelector.select(&fitness, &mut rng_b).unwrap()
            );
        }
    }

    #[test]
    fn zero_fitness_never_selected() {
        let fitness = Fitness::sparse(1000, 5, 2.0).unwrap();
        let selector = PrefixSumSelector {
            chunk_size: 64,
            sequential_cutoff: 0,
        };
        let mut rng = MersenneTwister64::seed_from_u64(4);
        for _ in 0..5000 {
            let i = selector.select(&fitness, &mut rng).unwrap();
            assert!(fitness.values()[i] > 0.0);
        }
    }

    #[test]
    fn all_zero_rejected() {
        let fitness = Fitness::new(vec![0.0; 10]).unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(4);
        assert!(PrefixSumSelector::default()
            .select(&fitness, &mut rng)
            .is_err());
    }

    #[test]
    fn large_parallel_path_matches_probabilities_roughly() {
        // 20k values, forced through the parallel chunk-sum path.
        let fitness = Fitness::from_fn(20_000, |i| if i % 100 == 0 { 50.0 } else { 0.5 }).unwrap();
        let selector = PrefixSumSelector {
            chunk_size: 1024,
            sequential_cutoff: 0,
        };
        let mut rng = MersenneTwister64::seed_from_u64(5);
        // The 200 "heavy" indices carry 50·200 = 10000 of the total 19900.
        let heavy_mass: f64 = 50.0 * 200.0 / fitness.total();
        let trials = 20_000;
        let heavy = (0..trials)
            .filter(|_| {
                let i = selector.select(&fitness, &mut rng).unwrap();
                i % 100 == 0
            })
            .count();
        let freq = heavy as f64 / trials as f64;
        assert!(
            (freq - heavy_mass).abs() < 0.02,
            "freq {freq}, expected {heavy_mass}"
        );
    }

    #[test]
    fn select_many_agrees_with_repeated_select_on_a_shared_stream() {
        // The batch path consumes exactly one uniform per draw and inverts
        // the same CDF, so with a shared seed it tracks the one-at-a-time
        // sequence draw for draw. Agreement is not guaranteed bit-for-bit —
        // `select` subtracts iteratively (r -= f) while the batch path
        // compares against a precomputed cumulative table, and a threshold
        // within one ulp of a CDF boundary can round to different indices —
        // so a vanishing number of boundary mismatches is tolerated.
        let fitness = Fitness::new(vec![0.3, 0.0, 2.0, 1.7, 0.0, 5.0]).unwrap();
        let selector = PrefixSumSelector::default();
        let mut rng_a = MersenneTwister64::seed_from_u64(77);
        let mut rng_b = MersenneTwister64::seed_from_u64(77);
        let trials = 5_000;
        let batch = selector.select_many(&fitness, &mut rng_a, trials).unwrap();
        let mismatches = (0..trials)
            .filter(|&t| batch[t] != selector.select(&fitness, &mut rng_b).unwrap())
            .count();
        assert!(
            mismatches <= 2,
            "batch and single paths disagreed on {mismatches} of {trials} draws"
        );
    }

    #[test]
    fn select_many_rejects_all_zero_and_handles_zero_count() {
        let selector = PrefixSumSelector::default();
        let mut rng = MersenneTwister64::seed_from_u64(1);
        let zeros = Fitness::new(vec![0.0, 0.0]).unwrap();
        assert!(selector.select_many(&zeros, &mut rng, 3).is_err());
        let fitness = Fitness::table1();
        assert!(selector
            .select_many(&fitness, &mut rng, 0)
            .unwrap()
            .is_empty());
    }

    proptest! {
        #[test]
        fn prop_selected_index_has_positive_fitness(
            values in proptest::collection::vec(0.0f64..10.0, 1..300),
            seed: u64,
            chunk in 1usize..64,
        ) {
            prop_assume!(values.iter().any(|&v| v > 0.0));
            let fitness = Fitness::new(values).unwrap();
            let selector = PrefixSumSelector { chunk_size: chunk, sequential_cutoff: 0 };
            let mut rng = MersenneTwister64::seed_from_u64(seed);
            let i = selector.select(&fitness, &mut rng).unwrap();
            prop_assert!(fitness.values()[i] > 0.0);
        }
    }
}
