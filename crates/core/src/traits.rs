//! The selector abstractions shared by every algorithm in the crate.

use lrb_rng::RandomSource;

use crate::error::SelectionError;
use crate::fitness::Fitness;

/// A one-shot roulette wheel selector: given a fitness vector, pick one index.
///
/// The trait is object-safe (the random source is passed as `&mut dyn
/// RandomSource`), so benches and tables can iterate over
/// `Vec<Box<dyn Selector>>` and treat every algorithm uniformly.
pub trait Selector: Send + Sync {
    /// A short, stable, machine-friendly name (used in tables and benches).
    fn name(&self) -> &'static str;

    /// Whether the selection probabilities are exactly `F_i = f_i / Σ f_j`.
    ///
    /// `true` for every algorithm here except the independent roulette
    /// variants, whose bias is the paper's motivating observation.
    fn is_exact(&self) -> bool;

    /// Select one index according to the algorithm's distribution.
    fn select(
        &self,
        fitness: &Fitness,
        rng: &mut dyn RandomSource,
    ) -> Result<usize, SelectionError>;

    /// Fill `out` with independent selections (with replacement), reusing
    /// any per-call setup where the algorithm allows it. The default simply
    /// calls [`select`](Selector::select) once per slot; algorithms with
    /// per-call preprocessing (prefix tables, a fitness maximum) override
    /// this to hoist that work out of the loop. This is the primitive the
    /// [`BatchDriver`](crate::batch::BatchDriver) feeds with one
    /// deterministic substream per buffer chunk.
    fn select_into(
        &self,
        fitness: &Fitness,
        rng: &mut dyn RandomSource,
        out: &mut [usize],
    ) -> Result<(), SelectionError> {
        for slot in out.iter_mut() {
            *slot = self.select(fitness, rng)?;
        }
        Ok(())
    }

    /// Select `count` indices independently (with replacement). Allocates a
    /// buffer and delegates to [`select_into`](Selector::select_into), so
    /// overriding the buffer primitive speeds up both entry points.
    fn select_many(
        &self,
        fitness: &Fitness,
        rng: &mut dyn RandomSource,
        count: usize,
    ) -> Result<Vec<usize>, SelectionError> {
        let mut out = vec![0usize; count];
        self.select_into(fitness, rng, &mut out)?;
        Ok(out)
    }
}

/// A sampler that pre-processes a fitness vector once and then draws many
/// independent selections cheaply (alias method, binary search over prefix
/// sums).
///
/// Prepared samplers complement [`Selector`]: the paper's setting is "the
/// fitness values change every round" (ant colony construction), where
/// one-shot selection is the right primitive, but repeated sampling from a
/// fixed distribution is common enough downstream to deserve first-class
/// support.
pub trait PreparedSampler: Send + Sync {
    /// Number of categories the sampler was built over.
    fn len(&self) -> usize;

    /// Whether the sampler has zero categories.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Draw one index.
    fn sample(&self, rng: &mut dyn RandomSource) -> usize;

    /// Fill `out` with independent draws. The default calls
    /// [`sample`](PreparedSampler::sample) once per slot; implementations
    /// override it to amortise per-call setup across the buffer.
    fn sample_into(&self, rng: &mut dyn RandomSource, out: &mut [usize]) {
        for slot in out.iter_mut() {
            *slot = self.sample(rng);
        }
    }

    /// Draw `count` independent indices (allocating; delegates to
    /// [`sample_into`](PreparedSampler::sample_into)).
    fn sample_many(&self, rng: &mut dyn RandomSource, count: usize) -> Vec<usize> {
        let mut out = vec![0usize; count];
        self.sample_into(rng, &mut out);
        out
    }
}

/// A weighted sampler whose weights can be **updated in place** between
/// draws.
///
/// This is the dynamic counterpart of [`Selector`] (one-shot, immutable
/// input) and [`PreparedSampler`] (many draws, frozen input): the paper's
/// motivating workload — ant colony construction — mutates the fitness
/// vector every round, and rebuilding a prepared sampler from scratch after
/// every change costs `O(n)`. Implementations in the `lrb-dynamic` crate
/// support `O(log n)` point updates (Fenwick tree), amortised rebuilds
/// (dirty-tracked alias tables) and sharded concurrent updates.
///
/// The trait is object-safe; the random source is passed as
/// `&mut dyn RandomSource` just like [`Selector::select`].
///
/// # Contract
///
/// * `sample` returns index `i` with probability exactly
///   `w_i / total_weight()`, and never returns an index whose weight is zero.
/// * `update(i, w)` with a finite `w ≥ 0` replaces weight `i`; subsequent
///   draws follow the new distribution.
/// * When every weight is zero, `sample` fails with
///   [`SelectionError::AllZeroFitness`].
///
/// # Example
///
/// ```
/// use lrb_core::{DynamicSampler, Fitness};
/// # // The trait lives here; the implementations live in `lrb-dynamic`.
/// fn drain(sampler: &mut dyn DynamicSampler, rng: &mut dyn lrb_rng::RandomSource) {
///     while sampler.total_weight() > 0.0 {
///         let i = sampler.sample(rng).expect("positive mass remains");
///         sampler.update(i, 0.0).expect("index in range");
///     }
/// }
/// ```
pub trait DynamicSampler: Send + Sync {
    /// Number of categories (fixed at construction).
    fn len(&self) -> usize;

    /// Whether the sampler has zero categories.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current weight of category `index`.
    ///
    /// Panics if `index` is out of range.
    fn weight(&self, index: usize) -> f64;

    /// Sum of all current weights.
    fn total_weight(&self) -> f64;

    /// Draw one index with probability proportional to its current weight.
    fn sample(&self, rng: &mut dyn RandomSource) -> Result<usize, SelectionError>;

    /// Replace the weight of category `index` with `new_weight`.
    ///
    /// Fails with [`SelectionError::InvalidFitness`] when the weight is
    /// negative, NaN or infinite. Updating the last positive weight to zero
    /// is allowed; subsequent draws then fail with
    /// [`SelectionError::AllZeroFitness`].
    fn update(&mut self, index: usize, new_weight: f64) -> Result<(), SelectionError>;

    /// Apply many `(index, new_weight)` updates.
    ///
    /// The default applies them in order; implementations may override to
    /// batch tree maintenance or reduce locking.
    fn update_many(&mut self, updates: &[(usize, f64)]) -> Result<(), SelectionError> {
        for &(index, weight) in updates {
            self.update(index, weight)?;
        }
        Ok(())
    }

    /// Fill `out` with independent draws (with replacement).
    ///
    /// The default loops over [`sample`](DynamicSampler::sample); samplers
    /// with per-draw setup (the Fenwick total, the stochastic-acceptance
    /// regime check, the alias sampler's cache lock) override it to hoist
    /// that work out of the loop. Overrides must consume randomness exactly
    /// like the one-at-a-time path, so a buffer fill and a `sample` loop on
    /// identically seeded generators agree draw for draw.
    fn sample_into(
        &self,
        rng: &mut dyn RandomSource,
        out: &mut [usize],
    ) -> Result<(), SelectionError> {
        for slot in out.iter_mut() {
            *slot = self.sample(rng)?;
        }
        Ok(())
    }

    /// Draw `count` indices independently (with replacement; allocating,
    /// delegates to [`sample_into`](DynamicSampler::sample_into)).
    fn sample_many(
        &self,
        rng: &mut dyn RandomSource,
        count: usize,
    ) -> Result<Vec<usize>, SelectionError> {
        let mut out = vec![0usize; count];
        self.sample_into(rng, &mut out)?;
        Ok(out)
    }

    /// A consistent copy of every current weight, `weights[i] = weight(i)`.
    ///
    /// This is the hand-off point between the mutable samplers and the
    /// snapshot-isolated serving path: batch sampling and the `lrb-engine`
    /// snapshots freeze this vector and draw against the frozen copy, so a
    /// concurrent (or interleaved) update can never tear a batch.
    ///
    /// The default reads the weights one by one, which is consistent for
    /// single-owner samplers; internally locked samplers (e.g. a sharded
    /// arena) must override it to take a mutually consistent cut.
    fn snapshot_weights(&self) -> Vec<f64> {
        (0..self.len()).map(|i| self.weight(i)).collect()
    }
}

/// A **frozen** weighted sampler: read-only draws with exact probabilities.
///
/// This is the read side of the `lrb-engine` snapshot contract: a snapshot
/// exposes draws and aggregate inspection but no mutation, so a reader
/// holding one can never perturb what other readers see. Every
/// [`DynamicSampler`] satisfies the shape (its `sample` already takes
/// `&self`); the blanket impl below makes each one usable as a frozen
/// backend the moment it stops being updated.
pub trait FrozenSampler: Send + Sync {
    /// Number of categories.
    fn len(&self) -> usize;

    /// Whether the sampler has zero categories.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current weight of category `index` (panics if out of range).
    fn weight(&self, index: usize) -> f64;

    /// Sum of all weights.
    fn total_weight(&self) -> f64;

    /// Draw one index with probability `w_i / total_weight()`.
    fn sample(&self, rng: &mut dyn RandomSource) -> Result<usize, SelectionError>;

    /// Fill `out` with independent draws. The default loops over
    /// [`sample`](FrozenSampler::sample); the blanket impl forwards to the
    /// dynamic sampler's tight-loop override where one exists.
    fn sample_into(
        &self,
        rng: &mut dyn RandomSource,
        out: &mut [usize],
    ) -> Result<(), SelectionError> {
        for slot in out.iter_mut() {
            *slot = self.sample(rng)?;
        }
        Ok(())
    }

    /// The concrete sampler as [`Any`](std::any::Any), so a backend's
    /// incremental-publish path can downcast a previous snapshot's sampler
    /// back to its own type and patch it instead of rebuilding from
    /// scratch. Implementations return `self`.
    fn as_any(&self) -> &dyn std::any::Any;
}

impl<T: DynamicSampler + 'static> FrozenSampler for T {
    fn len(&self) -> usize {
        DynamicSampler::len(self)
    }

    fn weight(&self, index: usize) -> f64 {
        DynamicSampler::weight(self, index)
    }

    fn total_weight(&self) -> f64 {
        DynamicSampler::total_weight(self)
    }

    fn sample(&self, rng: &mut dyn RandomSource) -> Result<usize, SelectionError> {
        DynamicSampler::sample(self, rng)
    }

    fn sample_into(
        &self,
        rng: &mut dyn RandomSource,
        out: &mut [usize],
    ) -> Result<(), SelectionError> {
        DynamicSampler::sample_into(self, rng, out)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrb_rng::{MersenneTwister64, SeedableSource};

    /// A trivial selector used to exercise the default methods.
    struct FirstPositive;

    impl Selector for FirstPositive {
        fn name(&self) -> &'static str {
            "first-positive"
        }
        fn is_exact(&self) -> bool {
            false
        }
        fn select(
            &self,
            fitness: &Fitness,
            _rng: &mut dyn RandomSource,
        ) -> Result<usize, SelectionError> {
            fitness
                .values()
                .iter()
                .position(|&v| v > 0.0)
                .ok_or(SelectionError::AllZeroFitness)
        }
    }

    #[test]
    fn select_many_default_uses_select() {
        let fitness = Fitness::new(vec![0.0, 3.0, 1.0]).unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(1);
        let picks = FirstPositive.select_many(&fitness, &mut rng, 5).unwrap();
        assert_eq!(picks, vec![1, 1, 1, 1, 1]);
    }

    #[test]
    fn selector_is_usable_as_a_trait_object() {
        let boxed: Box<dyn Selector> = Box::new(FirstPositive);
        let fitness = Fitness::new(vec![2.0]).unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(1);
        assert_eq!(boxed.select(&fitness, &mut rng).unwrap(), 0);
        assert_eq!(boxed.name(), "first-positive");
    }

    struct AlwaysZero;
    impl PreparedSampler for AlwaysZero {
        fn len(&self) -> usize {
            1
        }
        fn sample(&self, _rng: &mut dyn RandomSource) -> usize {
            0
        }
    }

    #[test]
    fn prepared_sampler_defaults() {
        let s = AlwaysZero;
        assert!(!s.is_empty());
        let mut rng = MersenneTwister64::seed_from_u64(1);
        assert_eq!(s.sample_many(&mut rng, 3), vec![0, 0, 0]);
    }

    /// A two-category dynamic sampler exercising the trait defaults.
    struct TwoWeights {
        weights: [f64; 2],
    }

    impl DynamicSampler for TwoWeights {
        fn len(&self) -> usize {
            2
        }
        fn weight(&self, index: usize) -> f64 {
            self.weights[index]
        }
        fn total_weight(&self) -> f64 {
            self.weights.iter().sum()
        }
        fn sample(&self, rng: &mut dyn RandomSource) -> Result<usize, SelectionError> {
            // Qualified: the `FrozenSampler` blanket impl offers the same
            // method name whenever both traits are in scope.
            let total = DynamicSampler::total_weight(self);
            if total <= 0.0 {
                return Err(SelectionError::AllZeroFitness);
            }
            let r = rng.next_f64() * total;
            Ok(if r < self.weights[0] { 0 } else { 1 })
        }
        fn update(&mut self, index: usize, new_weight: f64) -> Result<(), SelectionError> {
            if !new_weight.is_finite() || new_weight < 0.0 {
                return Err(SelectionError::InvalidFitness {
                    index,
                    value: new_weight,
                });
            }
            self.weights[index] = new_weight;
            Ok(())
        }
    }

    #[test]
    fn dynamic_sampler_is_object_safe_with_working_defaults() {
        let mut boxed: Box<dyn DynamicSampler> = Box::new(TwoWeights {
            weights: [1.0, 3.0],
        });
        let mut rng = MersenneTwister64::seed_from_u64(9);
        assert_eq!(boxed.len(), 2);
        assert!(!boxed.is_empty());
        assert_eq!(boxed.total_weight(), 4.0);
        let draws = boxed.sample_many(&mut rng, 100).unwrap();
        assert!(draws.iter().all(|&i| i < 2));
        boxed.update_many(&[(0, 0.0), (1, 0.0)]).unwrap();
        assert!(matches!(
            boxed.sample(&mut rng),
            Err(SelectionError::AllZeroFitness)
        ));
        assert!(boxed.update(0, f64::NAN).is_err());
    }

    #[test]
    fn snapshot_weights_default_copies_every_weight() {
        let sampler = TwoWeights {
            weights: [1.5, 2.5],
        };
        assert_eq!(sampler.snapshot_weights(), vec![1.5, 2.5]);
    }

    #[test]
    fn every_dynamic_sampler_is_a_frozen_sampler() {
        let sampler = TwoWeights {
            weights: [1.0, 3.0],
        };
        let frozen: &dyn FrozenSampler = &sampler;
        assert_eq!(frozen.len(), 2);
        assert!(!frozen.is_empty());
        assert_eq!(frozen.weight(1), 3.0);
        assert_eq!(frozen.total_weight(), 4.0);
        let mut rng = MersenneTwister64::seed_from_u64(2);
        assert!(frozen.sample(&mut rng).unwrap() < 2);
    }
}
