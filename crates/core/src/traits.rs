//! The selector abstractions shared by every algorithm in the crate.

use lrb_rng::RandomSource;

use crate::error::SelectionError;
use crate::fitness::Fitness;

/// A one-shot roulette wheel selector: given a fitness vector, pick one index.
///
/// The trait is object-safe (the random source is passed as `&mut dyn
/// RandomSource`), so benches and tables can iterate over
/// `Vec<Box<dyn Selector>>` and treat every algorithm uniformly.
pub trait Selector: Send + Sync {
    /// A short, stable, machine-friendly name (used in tables and benches).
    fn name(&self) -> &'static str;

    /// Whether the selection probabilities are exactly `F_i = f_i / Σ f_j`.
    ///
    /// `true` for every algorithm here except the independent roulette
    /// variants, whose bias is the paper's motivating observation.
    fn is_exact(&self) -> bool;

    /// Select one index according to the algorithm's distribution.
    fn select(
        &self,
        fitness: &Fitness,
        rng: &mut dyn RandomSource,
    ) -> Result<usize, SelectionError>;

    /// Select `count` indices independently (with replacement), reusing any
    /// per-call setup where the algorithm allows it. The default simply calls
    /// [`select`](Selector::select) in a loop.
    fn select_many(
        &self,
        fitness: &Fitness,
        rng: &mut dyn RandomSource,
        count: usize,
    ) -> Result<Vec<usize>, SelectionError> {
        (0..count).map(|_| self.select(fitness, rng)).collect()
    }
}

/// A sampler that pre-processes a fitness vector once and then draws many
/// independent selections cheaply (alias method, binary search over prefix
/// sums).
///
/// Prepared samplers complement [`Selector`]: the paper's setting is "the
/// fitness values change every round" (ant colony construction), where
/// one-shot selection is the right primitive, but repeated sampling from a
/// fixed distribution is common enough downstream to deserve first-class
/// support.
pub trait PreparedSampler: Send + Sync {
    /// Number of categories the sampler was built over.
    fn len(&self) -> usize;

    /// Whether the sampler has zero categories.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Draw one index.
    fn sample(&self, rng: &mut dyn RandomSource) -> usize;

    /// Draw `count` independent indices.
    fn sample_many(&self, rng: &mut dyn RandomSource, count: usize) -> Vec<usize> {
        (0..count).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrb_rng::{MersenneTwister64, SeedableSource};

    /// A trivial selector used to exercise the default methods.
    struct FirstPositive;

    impl Selector for FirstPositive {
        fn name(&self) -> &'static str {
            "first-positive"
        }
        fn is_exact(&self) -> bool {
            false
        }
        fn select(
            &self,
            fitness: &Fitness,
            _rng: &mut dyn RandomSource,
        ) -> Result<usize, SelectionError> {
            fitness
                .values()
                .iter()
                .position(|&v| v > 0.0)
                .ok_or(SelectionError::AllZeroFitness)
        }
    }

    #[test]
    fn select_many_default_uses_select() {
        let fitness = Fitness::new(vec![0.0, 3.0, 1.0]).unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(1);
        let picks = FirstPositive.select_many(&fitness, &mut rng, 5).unwrap();
        assert_eq!(picks, vec![1, 1, 1, 1, 1]);
    }

    #[test]
    fn selector_is_usable_as_a_trait_object() {
        let boxed: Box<dyn Selector> = Box::new(FirstPositive);
        let fitness = Fitness::new(vec![2.0]).unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(1);
        assert_eq!(boxed.select(&fitness, &mut rng).unwrap(), 0);
        assert_eq!(boxed.name(), "first-positive");
    }

    struct AlwaysZero;
    impl PreparedSampler for AlwaysZero {
        fn len(&self) -> usize {
            1
        }
        fn sample(&self, _rng: &mut dyn RandomSource) -> usize {
            0
        }
    }

    #[test]
    fn prepared_sampler_defaults() {
        let s = AlwaysZero;
        assert!(!s.is_empty());
        let mut rng = MersenneTwister64::seed_from_u64(1);
        assert_eq!(s.sample_many(&mut rng, 3), vec![0, 0, 0]);
    }
}
