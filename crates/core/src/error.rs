//! Error type shared by every selector in the crate.

use std::fmt;

/// Reasons a roulette wheel selection can fail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SelectionError {
    /// The fitness vector was empty.
    EmptyFitness,
    /// Every fitness value was zero, so the target distribution is undefined.
    AllZeroFitness,
    /// A fitness value was negative, NaN or infinite.
    InvalidFitness {
        /// Index of the offending value.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// A sampler was asked for more distinct items than there are indices
    /// with positive fitness (sampling without replacement only).
    NotEnoughCandidates {
        /// How many items were requested.
        requested: usize,
        /// How many indices have positive fitness.
        available: usize,
    },
    /// A category index was outside the sampler's `0..len` range.
    ///
    /// The in-place samplers historically panicked here; the concurrent
    /// engine routes writer mistakes through `Result` instead, because a
    /// misbehaving client must not poison shared snapshots.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of categories in the sampler.
        len: usize,
    },
    /// A multiplicative weight scale (e.g. an evaporation factor) was
    /// negative, NaN or infinite.
    InvalidScale {
        /// The offending factor.
        factor: f64,
    },
    /// A sampler backend was requested by a name no registry entry carries
    /// (the `lrb-engine` backend registry validates fixed choices up
    /// front, so a typo fails at construction instead of at publish time).
    UnknownBackend {
        /// The name that failed to resolve.
        name: &'static str,
    },
    /// The durability layer failed — a WAL append could not be persisted
    /// or recovery found irreconcilable state. The publish that hit it is
    /// rolled back (its updates return to the pending queue), so a flaky
    /// disk loses no writes, only progress.
    Durability {
        /// Which durability operation failed (`"wal-append"`,
        /// `"recovery"`, ...).
        op: &'static str,
    },
}

impl fmt::Display for SelectionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectionError::EmptyFitness => write!(f, "the fitness vector is empty"),
            SelectionError::AllZeroFitness => {
                write!(f, "all fitness values are zero; the selection probabilities are undefined")
            }
            SelectionError::InvalidFitness { index, value } => write!(
                f,
                "fitness[{index}] = {value} is invalid: values must be finite and non-negative"
            ),
            SelectionError::NotEnoughCandidates {
                requested,
                available,
            } => write!(
                f,
                "cannot sample {requested} distinct items: only {available} indices have positive fitness"
            ),
            SelectionError::IndexOutOfRange { index, len } => {
                write!(f, "category index {index} is outside 0..{len}")
            }
            SelectionError::InvalidScale { factor } => write!(
                f,
                "scale factor {factor} is invalid: factors must be finite and non-negative"
            ),
            SelectionError::UnknownBackend { name } => {
                write!(f, "no sampler backend named '{name}' is registered")
            }
            SelectionError::Durability { op } => {
                write!(f, "durability operation '{op}' failed; the publish was rolled back")
            }
        }
    }
}

impl std::error::Error for SelectionError {}

/// Errors from parsing configuration input — command-line flags of the
/// experiment binaries and engine workload descriptions.
///
/// Shared here (rather than in `lrb-bench`) so library code can validate
/// configuration without depending on the harness crate, and so every binary
/// reports malformed input the same way instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// An argument did not look like a `--key` flag.
    NotAFlag {
        /// The argument as given.
        argument: String,
    },
    /// A `--key` flag was not followed by a value.
    MissingValue {
        /// The flag name (without the `--` prefix).
        key: String,
    },
    /// A flag's value failed to parse as the expected type.
    InvalidValue {
        /// The flag name (without the `--` prefix).
        key: String,
        /// The value as given.
        value: String,
        /// What the flag expects (e.g. `"an unsigned integer"`).
        expected: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NotAFlag { argument } => {
                write!(f, "expected --key, got '{argument}'")
            }
            ConfigError::MissingValue { key } => write!(f, "missing value for --{key}"),
            ConfigError::InvalidValue {
                key,
                value,
                expected,
            } => write!(f, "--{key} expects {expected}, got '{value}'"),
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(SelectionError::EmptyFitness.to_string().contains("empty"));
        assert!(SelectionError::AllZeroFitness.to_string().contains("zero"));
        let e = SelectionError::InvalidFitness {
            index: 4,
            value: -1.0,
        };
        assert!(e.to_string().contains('4'));
        assert!(e.to_string().contains("-1"));
        let e = SelectionError::NotEnoughCandidates {
            requested: 5,
            available: 3,
        };
        assert!(e.to_string().contains('5'));
        assert!(e.to_string().contains('3'));
        let e = SelectionError::IndexOutOfRange { index: 9, len: 4 };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));
        let e = SelectionError::InvalidScale { factor: -0.5 };
        assert!(e.to_string().contains("-0.5"));
        let e = SelectionError::UnknownBackend { name: "gpu-table" };
        assert!(e.to_string().contains("gpu-table"));
        let e = SelectionError::Durability { op: "wal-append" };
        assert!(e.to_string().contains("wal-append"));
    }

    #[test]
    fn config_error_display_is_informative() {
        let e = ConfigError::NotAFlag {
            argument: "trials".into(),
        };
        assert!(e.to_string().contains("trials"));
        let e = ConfigError::MissingValue { key: "seed".into() };
        assert!(e.to_string().contains("--seed"));
        let e = ConfigError::InvalidValue {
            key: "trials".into(),
            value: "abc".into(),
            expected: "an unsigned integer",
        };
        let text = e.to_string();
        assert!(text.contains("--trials"));
        assert!(text.contains("abc"));
        assert!(text.contains("unsigned integer"));
        let boxed: Box<dyn std::error::Error> = Box::new(e);
        assert!(!boxed.to_string().is_empty());
    }

    #[test]
    fn works_as_a_boxed_error() {
        let e: Box<dyn std::error::Error> = Box::new(SelectionError::EmptyFitness);
        assert!(!e.to_string().is_empty());
    }
}
