//! Error type shared by every selector in the crate.

use std::fmt;

/// Reasons a roulette wheel selection can fail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SelectionError {
    /// The fitness vector was empty.
    EmptyFitness,
    /// Every fitness value was zero, so the target distribution is undefined.
    AllZeroFitness,
    /// A fitness value was negative, NaN or infinite.
    InvalidFitness {
        /// Index of the offending value.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// A sampler was asked for more distinct items than there are indices
    /// with positive fitness (sampling without replacement only).
    NotEnoughCandidates {
        /// How many items were requested.
        requested: usize,
        /// How many indices have positive fitness.
        available: usize,
    },
}

impl fmt::Display for SelectionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectionError::EmptyFitness => write!(f, "the fitness vector is empty"),
            SelectionError::AllZeroFitness => {
                write!(f, "all fitness values are zero; the selection probabilities are undefined")
            }
            SelectionError::InvalidFitness { index, value } => write!(
                f,
                "fitness[{index}] = {value} is invalid: values must be finite and non-negative"
            ),
            SelectionError::NotEnoughCandidates {
                requested,
                available,
            } => write!(
                f,
                "cannot sample {requested} distinct items: only {available} indices have positive fitness"
            ),
        }
    }
}

impl std::error::Error for SelectionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(SelectionError::EmptyFitness.to_string().contains("empty"));
        assert!(SelectionError::AllZeroFitness.to_string().contains("zero"));
        let e = SelectionError::InvalidFitness {
            index: 4,
            value: -1.0,
        };
        assert!(e.to_string().contains('4'));
        assert!(e.to_string().contains("-1"));
        let e = SelectionError::NotEnoughCandidates {
            requested: 5,
            available: 3,
        };
        assert!(e.to_string().contains('5'));
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn works_as_a_boxed_error() {
        let e: Box<dyn std::error::Error> = Box::new(SelectionError::EmptyFitness);
        assert!(!e.to_string().is_empty());
    }
}
