//! Closed-form selection probabilities.
//!
//! Two analytic quantities accompany the empirical tables:
//!
//! * [`exact_probabilities`] — the target `F_i = f_i / Σf_j` (trivial, but
//!   kept here so tables read uniformly from one module).
//! * [`independent_roulette_probabilities`] — the probabilities the
//!   *independent roulette* actually follows. With `r_j` uniform on
//!   `[0, f_j)`, index `i` wins when its draw exceeds everyone else's:
//!
//!   `P(i wins) = ∫₀^{f_i} (1/f_i) · Π_{j≠i} min(x / f_j, 1) dx`.
//!
//!   The integrand is piecewise polynomial between the sorted fitness values,
//!   so the integral evaluates exactly in `O(n log n)` per index (`O(n² log
//!   n)` overall), computed in log-space so that Table II's ~10⁻³² values do
//!   not underflow intermediate products. This reproduces the analysis of
//!   Lloyd & Amos (2017) that the paper cites, and the paper's own worked
//!   example (`n = 2, f = [2, 1] → 3/4`).
//!
//! Ties between the top draws occur with probability zero for continuous
//! uniforms, so they do not affect the probabilities.

use crate::fitness::Fitness;

/// The exact roulette-wheel target distribution `F_i`.
pub fn exact_probabilities(fitness: &Fitness) -> Vec<f64> {
    fitness.probabilities()
}

/// The exact selection distribution of the independent roulette
/// (`r_i = f_i·u_i`, arg-max), computed by piecewise integration.
///
/// Indices with zero fitness have probability zero. If every fitness is zero
/// the result is all zeros.
pub fn independent_roulette_probabilities(fitness: &Fitness) -> Vec<f64> {
    let values = fitness.values();
    let n = values.len();
    if fitness.is_all_zero() {
        return vec![0.0; n];
    }

    (0..n)
        .map(|i| independent_win_probability(values, i))
        .collect()
}

/// P(index `i` has the strictly largest draw) for the independent roulette.
fn independent_win_probability(values: &[f64], i: usize) -> f64 {
    let f_i = values[i];
    if f_i <= 0.0 {
        return 0.0;
    }

    // Breakpoints of the piecewise integrand inside [0, f_i]: the other
    // fitness values (where a competitor's CDF saturates at 1), clipped to
    // the integration range.
    let mut breaks: Vec<f64> = values
        .iter()
        .enumerate()
        .filter(|&(j, &f)| j != i && f > 0.0 && f < f_i)
        .map(|(_, &f)| f)
        .collect();
    breaks.push(0.0);
    breaks.push(f_i);
    breaks.sort_by(|a, b| a.partial_cmp(b).expect("finite fitness"));
    breaks.dedup();

    // Pre-sort the competitors so that on each interval we can count how many
    // are still "active" (f_j >= x) and accumulate Σ ln f_j of the active set
    // incrementally from the largest interval down… simpler: recompute per
    // interval; n is small for the workloads where this is called (tables).
    let mut probability = 0.0;
    for window in breaks.windows(2) {
        let (a, b) = (window[0], window[1]);
        if b <= a {
            continue;
        }
        // On (a, b): competitors with f_j <= a have CDF 1; competitors with
        // f_j >= b contribute x / f_j.
        let mut active = 0usize;
        let mut ln_denominator = 0.0;
        for (j, &f_j) in values.iter().enumerate() {
            if j == i || f_j <= 0.0 {
                continue;
            }
            if f_j >= b {
                active += 1;
                ln_denominator += f_j.ln();
            } else if f_j > a {
                // Cannot happen: (a, b) contains no breakpoint.
                unreachable!("breakpoint {f_j} strictly inside interval ({a}, {b})");
            }
        }
        // ∫_a^b x^active dx / (f_i · Π active f_j)
        // = (b^(active+1) − a^(active+1)) / ((active+1) · f_i · Π f_j),
        // evaluated in log space to avoid under/overflow for large `active`.
        let m = active as f64 + 1.0;
        let log_scale = -(m.ln() + f_i.ln() + ln_denominator);
        let upper = (m * b.ln() + log_scale).exp();
        let lower = if a == 0.0 {
            0.0
        } else {
            (m * a.ln() + log_scale).exp()
        };
        probability += upper - lower;
    }
    probability
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::IndependentRouletteSelector;
    use crate::traits::Selector;
    use lrb_rng::{MersenneTwister64, SeedableSource};
    use lrb_stats::EmpiricalDistribution;

    #[test]
    fn exact_probabilities_are_just_the_normalised_fitness() {
        let f = Fitness::new(vec![1.0, 3.0]).unwrap();
        assert_eq!(exact_probabilities(&f), vec![0.25, 0.75]);
    }

    #[test]
    fn paper_worked_example_two_processors() {
        // n = 2, f = [2, 1]: the paper derives 3/4 and 1/4.
        let f = Fitness::new(vec![2.0, 1.0]).unwrap();
        let p = independent_roulette_probabilities(&f);
        assert!((p[0] - 0.75).abs() < 1e-12, "{p:?}");
        assert!((p[1] - 0.25).abs() < 1e-12, "{p:?}");
    }

    #[test]
    fn probabilities_sum_to_one_when_some_fitness_is_positive() {
        for values in [
            vec![1.0, 2.0, 3.0],
            vec![5.0, 5.0, 5.0],
            vec![0.0, 1.0, 10.0, 0.5],
            vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6],
        ] {
            let f = Fitness::new(values.clone()).unwrap();
            let p = independent_roulette_probabilities(&f);
            let sum: f64 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{values:?} → {p:?} (sum {sum})");
        }
    }

    #[test]
    fn equal_fitness_gives_uniform_probabilities() {
        let f = Fitness::uniform(5, 2.0).unwrap();
        let p = independent_roulette_probabilities(&f);
        for &x in &p {
            assert!((x - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_fitness_and_all_zero_cases() {
        let f = Fitness::new(vec![0.0, 1.0, 0.0]).unwrap();
        let p = independent_roulette_probabilities(&f);
        assert_eq!(p[0], 0.0);
        assert_eq!(p[2], 0.0);
        assert!((p[1] - 1.0).abs() < 1e-12);

        let all_zero = Fitness::new(vec![0.0, 0.0]).unwrap();
        assert_eq!(
            independent_roulette_probabilities(&all_zero),
            vec![0.0, 0.0]
        );
    }

    #[test]
    fn table1_matches_the_papers_independent_column() {
        // Table I (empirical over 10⁹ trials) reports for f_i = i:
        // i=2: 0.000088, i=5: 0.038787, i=9: 0.393536. Our closed form should
        // agree to the paper's printed precision.
        let f = Fitness::table1();
        let p = independent_roulette_probabilities(&f);
        assert!(p[0].abs() < 1e-15);
        assert!(p[1] < 1e-5, "p[1] = {}", p[1]);
        assert!((p[2] - 0.000088).abs() < 2e-5, "p[2] = {}", p[2]);
        assert!((p[3] - 0.001708).abs() < 5e-5, "p[3] = {}", p[3]);
        assert!((p[5] - 0.038787).abs() < 2e-4, "p[5] = {}", p[5]);
        assert!((p[8] - 0.282382).abs() < 5e-4, "p[8] = {}", p[8]);
        assert!((p[9] - 0.393536).abs() < 5e-4, "p[9] = {}", p[9]);
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn table2_index_zero_probability_matches_the_papers_analysis() {
        // The paper derives (1/2)^99 · 1/100 ≈ 1.57772·10⁻³² for index 0.
        let f = Fitness::table2();
        let p = independent_roulette_probabilities(&f);
        let expected = 0.5f64.powi(99) / 100.0;
        assert!(
            (p[0] - expected).abs() < expected * 1e-6,
            "p[0] = {}, expected {expected}",
            p[0]
        );
        // The other 99 indices share the rest equally.
        let others = (1.0 - p[0]) / 99.0;
        for &x in &p[1..] {
            assert!((x - others).abs() < 1e-12);
        }
    }

    #[test]
    fn closed_form_matches_simulation() {
        let f = Fitness::new(vec![0.5, 1.0, 2.0, 4.0]).unwrap();
        let p = independent_roulette_probabilities(&f);
        let mut rng = MersenneTwister64::seed_from_u64(13);
        let mut dist = EmpiricalDistribution::new(f.len());
        for _ in 0..300_000 {
            dist.record(IndependentRouletteSelector.select(&f, &mut rng).unwrap());
        }
        for (i, &target) in p.iter().enumerate() {
            assert!(
                (dist.frequency(i) - target).abs() < 0.004,
                "index {i}: simulated {}, analytic {target}",
                dist.frequency(i),
            );
        }
    }
}
