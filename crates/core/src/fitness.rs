//! The validated fitness vector and the workload generators used by the
//! paper's evaluation.

use crate::error::SelectionError;

/// A vector of non-negative, finite fitness values together with cached
/// aggregate information (total mass, number of non-zero entries).
///
/// `Fitness` is the input to every selector in this crate. Construction
/// validates the values once, so the selectors can assume well-formed input
/// and concentrate on their own logic. An all-zero vector is constructible
/// (it occurs naturally, e.g. an ant that has visited every city) — selectors
/// report [`SelectionError::AllZeroFitness`] when asked to draw from it.
#[derive(Debug, Clone, PartialEq)]
pub struct Fitness {
    values: Vec<f64>,
    total: f64,
    non_zero: usize,
}

impl Fitness {
    /// Validate and wrap a vector of fitness values.
    pub fn new(values: Vec<f64>) -> Result<Self, SelectionError> {
        if values.is_empty() {
            return Err(SelectionError::EmptyFitness);
        }
        let mut total = 0.0;
        let mut non_zero = 0usize;
        for (index, &value) in values.iter().enumerate() {
            if !value.is_finite() || value < 0.0 {
                return Err(SelectionError::InvalidFitness { index, value });
            }
            if value > 0.0 {
                non_zero += 1;
            }
            total += value;
        }
        Ok(Self {
            values,
            total,
            non_zero,
        })
    }

    /// Build a fitness vector by evaluating `f` at every index.
    pub fn from_fn(n: usize, f: impl Fn(usize) -> f64) -> Result<Self, SelectionError> {
        Self::new((0..n).map(f).collect())
    }

    /// The workload of the paper's **Table I**: `f_i = i` for `0 ≤ i ≤ 9`
    /// (index 0 has zero fitness and must never be selected).
    pub fn table1() -> Self {
        Self::new((0..10).map(|i| i as f64).collect()).expect("static workload is valid")
    }

    /// The workload of the paper's **Table II**: `n = 100`, `f_0 = 1`,
    /// `f_1 = … = f_99 = 2`. The interesting index is 0: its exact selection
    /// probability is `1/199 ≈ 0.005025`, yet the independent roulette
    /// selects it with probability `≈ 1.6·10⁻³²`.
    pub fn table2() -> Self {
        let mut v = vec![2.0; 100];
        v[0] = 1.0;
        Self::new(v).expect("static workload is valid")
    }

    /// `f_i = i` for `0 ≤ i < n` (a larger version of Table I).
    pub fn linear(n: usize) -> Result<Self, SelectionError> {
        Self::from_fn(n, |i| i as f64)
    }

    /// All entries equal to `value`.
    pub fn uniform(n: usize, value: f64) -> Result<Self, SelectionError> {
        Self::new(vec![value; n])
    }

    /// A sparse vector of length `n` with exactly `k` entries equal to
    /// `value` at deterministic, well-spread positions (useful for the
    /// `O(log k)` experiments where `k ≪ n`).
    ///
    /// Positions are chosen as `⌊j·n/k⌋` for `j = 0..k`, which spreads the
    /// non-zero entries evenly without needing a random source.
    pub fn sparse(n: usize, k: usize, value: f64) -> Result<Self, SelectionError> {
        assert!(k <= n, "cannot place {k} non-zero entries in {n} slots");
        let mut values = vec![0.0; n];
        for j in 0..k {
            values[j * n / k.max(1)] = value;
        }
        Self::new(values)
    }

    /// The underlying values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the vector has no entries (never true for a constructed
    /// `Fitness`, kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Sum of all fitness values.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Number of strictly positive entries — the paper's `k`.
    pub fn non_zero_count(&self) -> usize {
        self.non_zero
    }

    /// Whether every entry is zero.
    pub fn is_all_zero(&self) -> bool {
        self.non_zero == 0
    }

    /// The exact target probability `F_i = f_i / Σ f_j` of index `i`,
    /// or 0 if every fitness is zero.
    pub fn probability(&self, index: usize) -> f64 {
        if self.total == 0.0 {
            0.0
        } else {
            self.values[index] / self.total
        }
    }

    /// All exact target probabilities `F_i`.
    pub fn probabilities(&self) -> Vec<f64> {
        (0..self.len()).map(|i| self.probability(i)).collect()
    }

    /// Indices with strictly positive fitness.
    pub fn support(&self) -> Vec<usize> {
        self.values
            .iter()
            .enumerate()
            .filter_map(|(i, &v)| (v > 0.0).then_some(i))
            .collect()
    }
}

impl TryFrom<Vec<f64>> for Fitness {
    type Error = SelectionError;

    fn try_from(values: Vec<f64>) -> Result<Self, Self::Error> {
        Self::new(values)
    }
}

impl TryFrom<&[f64]> for Fitness {
    type Error = SelectionError;

    fn try_from(values: &[f64]) -> Result<Self, Self::Error> {
        Self::new(values.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn valid_construction_and_aggregates() {
        let f = Fitness::new(vec![0.0, 1.0, 2.0, 3.0]).unwrap();
        assert_eq!(f.len(), 4);
        assert_eq!(f.total(), 6.0);
        assert_eq!(f.non_zero_count(), 3);
        assert!(!f.is_all_zero());
        assert_eq!(f.support(), vec![1, 2, 3]);
    }

    #[test]
    fn empty_vector_is_rejected() {
        assert_eq!(Fitness::new(vec![]), Err(SelectionError::EmptyFitness));
    }

    #[test]
    fn negative_nan_and_infinite_values_are_rejected() {
        assert!(matches!(
            Fitness::new(vec![1.0, -0.5]),
            Err(SelectionError::InvalidFitness { index: 1, .. })
        ));
        assert!(matches!(
            Fitness::new(vec![f64::NAN]),
            Err(SelectionError::InvalidFitness { index: 0, .. })
        ));
        assert!(matches!(
            Fitness::new(vec![1.0, f64::INFINITY, 2.0]),
            Err(SelectionError::InvalidFitness { index: 1, .. })
        ));
    }

    #[test]
    fn all_zero_is_constructible_but_flagged() {
        let f = Fitness::new(vec![0.0, 0.0]).unwrap();
        assert!(f.is_all_zero());
        assert_eq!(f.probability(0), 0.0);
        assert_eq!(f.support(), Vec::<usize>::new());
    }

    #[test]
    fn probabilities_sum_to_one_and_match_definition() {
        let f = Fitness::new(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let probs = f.probabilities();
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((probs[2] - 0.3).abs() < 1e-12);
    }

    #[test]
    fn table1_matches_the_paper() {
        let f = Fitness::table1();
        assert_eq!(f.len(), 10);
        assert_eq!(f.values()[0], 0.0);
        assert_eq!(f.values()[9], 9.0);
        assert_eq!(f.total(), 45.0);
        // F_9 = 9/45 = 0.2 as printed in Table I.
        assert!((f.probability(9) - 0.2).abs() < 1e-12);
        assert!((f.probability(1) - 0.022222).abs() < 1e-6);
    }

    #[test]
    fn table2_matches_the_paper() {
        let f = Fitness::table2();
        assert_eq!(f.len(), 100);
        assert_eq!(f.values()[0], 1.0);
        assert!(f.values()[1..].iter().all(|&v| v == 2.0));
        assert_eq!(f.total(), 199.0);
        assert!((f.probability(0) - 0.005025).abs() < 1e-6);
        assert!((f.probability(1) - 0.010050).abs() < 1e-6);
    }

    #[test]
    fn sparse_places_exactly_k_entries() {
        for (n, k) in [(100, 1), (100, 7), (128, 64), (50, 50), (10, 0)] {
            let f = Fitness::sparse(n, k, 3.0).unwrap();
            assert_eq!(f.len(), n);
            assert_eq!(f.non_zero_count(), k, "n={n}, k={k}");
            assert_eq!(f.total(), 3.0 * k as f64);
        }
    }

    #[test]
    #[should_panic]
    fn sparse_with_k_larger_than_n_panics() {
        let _ = Fitness::sparse(5, 6, 1.0);
    }

    #[test]
    fn linear_and_uniform_builders() {
        let lin = Fitness::linear(5).unwrap();
        assert_eq!(lin.values(), &[0.0, 1.0, 2.0, 3.0, 4.0]);
        let uni = Fitness::uniform(4, 2.5).unwrap();
        assert_eq!(uni.total(), 10.0);
        assert_eq!(uni.non_zero_count(), 4);
    }

    #[test]
    fn try_from_conversions() {
        let f: Fitness = vec![1.0, 2.0].try_into().unwrap();
        assert_eq!(f.total(), 3.0);
        let f2: Fitness = Fitness::try_from(&[1.0, 2.0][..]).unwrap();
        assert_eq!(f, f2);
    }

    proptest! {
        #[test]
        fn prop_probabilities_are_a_distribution(
            values in proptest::collection::vec(0.0f64..1e6, 1..200)
        ) {
            prop_assume!(values.iter().any(|&v| v > 0.0));
            let f = Fitness::new(values).unwrap();
            let probs = f.probabilities();
            prop_assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }

        #[test]
        fn prop_support_size_equals_non_zero_count(
            values in proptest::collection::vec(0.0f64..10.0, 1..100)
        ) {
            let f = Fitness::new(values).unwrap();
            prop_assert_eq!(f.support().len(), f.non_zero_count());
        }
    }
}
