//! Publish-latency driver: full snapshot rebuilds versus incremental
//! patches, per backend — the workload behind the `publish_quick` gate and
//! the `BENCH_publish.json` baseline.
//!
//! Two levels are measured:
//!
//! * **Backend level** ([`bench_backend_publish`]) — the freeze step in
//!   isolation: [`FrozenBackend::build_pooled`] over the folded weights
//!   against [`FrozenBackend::try_patch`] over the previous sampler plus
//!   the same coalesced batch. This isolates exactly the cost the patch
//!   path removes; everything else a publish does (weight fold, snapshot
//!   assembly, pointer swap) is common to both paths.
//! * **Engine level** ([`bench_engine_publish`]) — end-to-end
//!   [`SelectionEngine::publish`] latency under a [`PatchPolicy`], so the
//!   backend-level win is shown in its serving context.

use std::sync::Arc;
use std::time::Instant;

use lrb_engine::{
    BackendChoice, BuildScratch, EngineConfig, FrozenBackend, PatchPolicy, SelectionEngine,
};
use serde::Serialize;

/// The mildly varied weight family used by every publish measurement
/// (matches `selector_workload::bench_fitness`): no backend-friendly
/// structure, no zero weights.
pub fn bench_weights(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i * 7) % 13 + 1) as f64).collect()
}

/// Prime glibc's dynamic mmap threshold once per process: freeing one
/// large block raises the threshold past the per-publish `Vec` sizes, so
/// subsequent snapshot allocations recycle arena memory instead of paying
/// a fresh `mmap` plus page faults per call. A long-running engine reaches
/// this steady state within its first publishes; without priming, a cold
/// bench process measures kernel page-zeroing instead of the publish path.
fn prime_allocator() {
    use std::sync::Once;
    static PRIMED: Once = Once::new();
    PRIMED.call_once(|| {
        let block = vec![1u8; 24 << 20];
        std::hint::black_box(&block);
    });
}

/// A deterministic coalesced batch touching `dirty` distinct categories.
pub fn bench_overrides(n: usize, dirty: usize) -> Vec<(usize, f64)> {
    assert!(dirty <= n, "cannot dirty more categories than exist");
    // A stride walk scatters the dirty set across the table; when the
    // stride's orbit is smaller than `dirty` (n a multiple of 97), linear
    // probing to the next unseen index keeps the walk terminating for any
    // `(n, dirty)` pair while staying deterministic.
    let stride = 97;
    let mut seen = vec![false; n];
    let mut overrides = Vec::with_capacity(dirty);
    let mut index = 0usize;
    while overrides.len() < dirty {
        index = (index + stride) % n;
        while seen[index] {
            index = (index + 1) % n;
        }
        seen[index] = true;
        overrides.push((index, ((index % 11) + 1) as f64 * 0.5));
    }
    // The engine's coalescing queue drains sorted by category; measure the
    // same access pattern.
    overrides.sort_unstable_by_key(|&(index, _)| index);
    overrides
}

/// One backend at one `(n, dirty fraction, scaled)` point.
#[derive(Debug, Clone, Serialize)]
pub struct BackendPublishReport {
    /// Registry name of the backend.
    pub backend: String,
    /// Category count.
    pub n: u64,
    /// Dirty categories in the batch.
    pub dirty: u64,
    /// Whether the batch carried an evaporation scale fold.
    pub scaled: bool,
    /// Mean microseconds per full rebuild over the folded weights.
    pub rebuild_us: f64,
    /// Mean microseconds per incremental patch (absent when the backend
    /// has no patch path — the alias table rebuilds, with its Vose
    /// worklists classified rayon-parallel).
    pub patch_us: Option<f64>,
    /// `rebuild_us / patch_us`.
    pub speedup: Option<f64>,
}

/// Measure one backend's freeze step both ways.
pub fn bench_backend_publish(
    backend: &Arc<dyn FrozenBackend>,
    n: usize,
    dirty_fraction: f64,
    scaled: bool,
    budget: u64,
) -> BackendPublishReport {
    let dirty = ((n as f64 * dirty_fraction) as usize).max(1);
    let scale = if scaled { 0.97 } else { 1.0 };
    let weights = bench_weights(n);
    let overrides = bench_overrides(n, dirty);
    // The folded vector a publish would hand to a full rebuild.
    let mut folded = weights.clone();
    if scale != 1.0 {
        for w in folded.iter_mut() {
            *w *= scale;
        }
    }
    for &(index, weight) in &overrides {
        folded[index] = weight;
    }
    prime_allocator();
    let prev = backend.build(&weights).expect("bench weights are valid");
    let reps = (budget / n as u64).clamp(5, 400) as usize;
    // Noise robustness on shared hosts: split the reps into batches and
    // keep the *fastest* batch mean of each path — a scheduler or reclaim
    // hiccup inflates some batches, never deflates one.
    let batches = 5usize;
    let batch_reps = reps.div_ceil(batches);
    let mut scratch = BuildScratch::default();
    // Warm the pooled scratch so the rebuild path is steady-state.
    let _ = backend.build_pooled(&folded, &mut scratch);
    let mut rebuild_us = f64::INFINITY;
    for _ in 0..batches {
        let started = Instant::now();
        for _ in 0..batch_reps {
            std::hint::black_box(
                backend
                    .build_pooled(&folded, &mut scratch)
                    .expect("folded weights are valid"),
            );
        }
        rebuild_us = rebuild_us.min(started.elapsed().as_secs_f64() * 1e6 / batch_reps as f64);
    }
    let patch_us = match backend.try_patch(prev.as_ref(), &overrides, scale) {
        Some(Ok(_)) => {
            let mut best = f64::INFINITY;
            for _ in 0..batches {
                let started = Instant::now();
                for _ in 0..batch_reps {
                    std::hint::black_box(
                        backend
                            .try_patch(prev.as_ref(), &overrides, scale)
                            .expect("patch path exists")
                            .expect("patch of valid batch succeeds"),
                    );
                }
                best = best.min(started.elapsed().as_secs_f64() * 1e6 / batch_reps as f64);
            }
            Some(best)
        }
        _ => None,
    };
    BackendPublishReport {
        backend: backend.name().to_string(),
        n: n as u64,
        dirty: dirty as u64,
        scaled,
        rebuild_us,
        patch_us,
        speedup: patch_us.map(|p| rebuild_us / p.max(1e-9)),
    }
}

/// End-to-end engine publish latency under one [`PatchPolicy`].
#[derive(Debug, Clone, Serialize)]
pub struct EnginePublishReport {
    /// `"always"` / `"never"` (the policy under test).
    pub policy: String,
    /// Category count.
    pub n: u64,
    /// Dirty categories per publish round.
    pub dirty: u64,
    /// Publish rounds measured.
    pub rounds: u64,
    /// Mean microseconds per `SelectionEngine::publish`.
    pub publish_us: f64,
    /// How many publishes took the patch path (engine stats).
    pub patched: u64,
}

/// Drive a fixed-Fenwick engine through `rounds` coalesced batches
/// (overrides plus a mild evaporation) and time `publish`.
pub fn bench_engine_publish(
    n: usize,
    dirty_fraction: f64,
    policy: PatchPolicy,
    rounds: usize,
) -> EnginePublishReport {
    prime_allocator();
    let dirty = ((n as f64 * dirty_fraction) as usize).max(1);
    let engine = SelectionEngine::new(
        bench_weights(n),
        EngineConfig {
            backend: BackendChoice::Fixed("fenwick"),
            patch: policy,
            ..EngineConfig::default()
        },
    )
    .expect("bench weights are valid");
    let overrides = bench_overrides(n, dirty);
    let mut total = 0.0;
    for round in 0..rounds {
        engine.scale_all(0.99).expect("valid factor");
        for &(index, weight) in &overrides {
            engine
                .enqueue(index, weight + (round % 3) as f64)
                .expect("valid override");
        }
        let started = Instant::now();
        engine.publish().expect("publish of a valid batch succeeds");
        total += started.elapsed().as_secs_f64();
    }
    EnginePublishReport {
        policy: match policy {
            PatchPolicy::Always => "always",
            PatchPolicy::Never => "never",
            PatchPolicy::Auto => "auto",
        }
        .to_string(),
        n: n as u64,
        dirty: dirty as u64,
        rounds: rounds as u64,
        publish_us: total * 1e6 / rounds.max(1) as f64,
        patched: engine.stats().patched,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrb_engine::BackendRegistry;

    #[test]
    fn backend_reports_measure_both_paths() {
        let registry = BackendRegistry::standard();
        let fenwick = registry.get("fenwick").unwrap();
        let report = bench_backend_publish(fenwick, 2048, 0.01, false, 1 << 14);
        assert_eq!(report.n, 2048);
        assert_eq!(report.dirty, 20);
        assert!(report.rebuild_us > 0.0);
        assert!(report.patch_us.unwrap() > 0.0);
        assert!(report.speedup.unwrap() > 0.0);
        let alias = registry.get("alias").unwrap();
        let report = bench_backend_publish(alias, 2048, 0.01, true, 1 << 14);
        assert!(report.patch_us.is_none(), "alias has no patch path");
    }

    #[test]
    fn overrides_touch_distinct_categories() {
        let overrides = bench_overrides(512, 64);
        let mut indices: Vec<usize> = overrides.iter().map(|&(i, _)| i).collect();
        indices.sort_unstable();
        indices.dedup();
        assert_eq!(indices.len(), 64);
    }

    #[test]
    fn engine_reports_respect_the_policy() {
        let always = bench_engine_publish(1024, 0.02, PatchPolicy::Always, 4);
        assert_eq!(always.patched, 4);
        assert!(always.publish_us > 0.0);
        let never = bench_engine_publish(1024, 0.02, PatchPolicy::Never, 4);
        assert_eq!(never.patched, 0);
    }
}
