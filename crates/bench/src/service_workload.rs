//! Open-loop socket load driver for the sharded selection service — the
//! workload behind the `service_quick` gate and the `BENCH_service.json`
//! baseline.
//!
//! ## Why open-loop
//!
//! A closed-loop driver (issue, wait, issue) silently slows down whenever
//! the service does: a stall shrinks the offered load instead of showing up
//! in the tail — the *coordinated omission* trap. This driver schedules
//! request `j` at the fixed instant `start + j/rate` and measures latency
//! from that **scheduled** time, not from when the request actually hit the
//! wire. If the service (or a queue in front of it) stalls, every request
//! scheduled during the stall is charged the full delay, which is exactly
//! what a p999 is supposed to surface.
//!
//! Requests are striped round-robin across a configurable number of client
//! connections (the protocol is strictly request/response per connection),
//! and latencies land in one shared lock-free [`Histogram`] whose snapshot
//! becomes a [`LatencySummary`].

use std::sync::Arc;
use std::time::{Duration, Instant};

use lrb_obs::Histogram;
use lrb_service::{ServerAddr, ServiceClient, ServiceError};
use serde::Serialize;

use crate::engine_workload::LatencySummary;

/// Shape of one open-loop run.
#[derive(Debug, Clone, Copy)]
pub struct ServiceLoadConfig {
    /// Offered request rate, requests per second.
    pub rate_hz: f64,
    /// Total requests to issue.
    pub requests: u64,
    /// Client connections the requests are striped across.
    pub connections: usize,
    /// Draws per request: `0` issues single draws (the server coalesces
    /// them through its flat-combining aggregator), `b > 0` issues
    /// `draw_batch(b)` (the fused buffer-fill path).
    pub batch: u32,
}

impl Default for ServiceLoadConfig {
    fn default() -> Self {
        Self {
            rate_hz: 1_500.0,
            requests: 3_000,
            connections: 4,
            batch: 0,
        }
    }
}

/// Measured outcome of one open-loop run (serialisable for
/// `BENCH_service.json`).
#[derive(Debug, Clone, Serialize)]
pub struct ServiceLoadReport {
    /// `"single"` (aggregated draws) or `"batch"` (buffer fills).
    pub mode: String,
    /// Offered request rate, requests per second.
    pub rate_hz: f64,
    /// Requests issued.
    pub requests: u64,
    /// Client connections used.
    pub connections: u64,
    /// Draws per request (1 for single-draw mode).
    pub batch: u64,
    /// Wall-clock seconds from the first scheduled instant to the last
    /// completion.
    pub duration_s: f64,
    /// Achieved request completion rate.
    pub achieved_rps: f64,
    /// Total category draws served.
    pub draws: u64,
    /// Request latency measured from the scheduled issue time.
    pub latency: LatencySummary,
}

/// Run one open-loop section against a live server. Connects
/// `config.connections` clients, schedules `config.requests` requests at
/// `config.rate_hz`, and reports scheduled-time latency percentiles.
pub fn run_open_loop(
    addr: &ServerAddr,
    config: &ServiceLoadConfig,
) -> Result<ServiceLoadReport, ServiceError> {
    let connections = config.connections.max(1);
    let rate_hz = config.rate_hz.max(1.0);

    // Connect and warm every client up-front (TLB/alloc/snapshot warm-up
    // and the TCP handshake stay out of the measured window).
    let mut clients = Vec::with_capacity(connections);
    for _ in 0..connections {
        let mut client = ServiceClient::connect(addr)?;
        if config.batch == 0 {
            client.draw()?;
        } else {
            client.draw_batch(config.batch)?;
        }
        clients.push(client);
    }

    let histogram = Arc::new(Histogram::new());
    // A small lead-in so every thread observes `start` in its future.
    let start = Instant::now() + Duration::from_millis(10);

    let mut handles = Vec::with_capacity(connections);
    for (lane, mut client) in clients.into_iter().enumerate() {
        let histogram = Arc::clone(&histogram);
        let requests = config.requests;
        let batch = config.batch;
        let stride = connections as u64;
        handles.push(std::thread::spawn(move || -> Result<u64, ServiceError> {
            let mut draws = 0u64;
            let mut j = lane as u64;
            while j < requests {
                let scheduled = start + Duration::from_secs_f64(j as f64 / rate_hz);
                let now = Instant::now();
                if scheduled > now {
                    std::thread::sleep(scheduled - now);
                }
                if batch == 0 {
                    client.draw()?;
                    draws += 1;
                } else {
                    draws += client.draw_batch(batch)?.len() as u64;
                }
                // Latency from the *scheduled* instant: queueing delay
                // (including a stalled service) is charged, not hidden.
                histogram.record(scheduled.elapsed().as_nanos() as u64);
                j += stride;
            }
            Ok(draws)
        }));
    }

    let mut draws = 0u64;
    for handle in handles {
        draws += handle.join().expect("load lane panicked")?;
    }
    let duration_s = start.elapsed().as_secs_f64();

    Ok(ServiceLoadReport {
        mode: if config.batch == 0 { "single" } else { "batch" }.to_string(),
        rate_hz,
        requests: config.requests,
        connections: connections as u64,
        batch: u64::from(config.batch.max(1)),
        duration_s,
        achieved_rps: config.requests as f64 / duration_s.max(f64::MIN_POSITIVE),
        draws,
        latency: LatencySummary::from_snapshot(&histogram.snapshot()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrb_service::{ServiceConfig, ServiceServer, ShardedService};

    #[test]
    fn open_loop_driver_issues_every_request() {
        let service = ShardedService::new(
            (1..=32).map(f64::from).collect(),
            ServiceConfig {
                shards: 4,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let server = ServiceServer::bind_tcp(service.core(), "127.0.0.1:0", 7).unwrap();
        let report = run_open_loop(
            server.local_addr(),
            &ServiceLoadConfig {
                rate_hz: 2_000.0,
                requests: 200,
                connections: 2,
                batch: 0,
            },
        )
        .unwrap();
        assert_eq!(report.mode, "single");
        assert_eq!(report.requests, 200);
        assert_eq!(report.draws, 200);
        assert_eq!(report.latency.count, 200);
        assert!(report.latency.p99_ns > 0);
        assert!(report.duration_s >= 200.0 / 2_000.0 * 0.5);

        let batch = run_open_loop(
            server.local_addr(),
            &ServiceLoadConfig {
                rate_hz: 500.0,
                requests: 20,
                connections: 1,
                batch: 16,
            },
        )
        .unwrap();
        assert_eq!(batch.mode, "batch");
        assert_eq!(batch.draws, 20 * 16);
        drop(server);
    }
}
