//! Open-loop socket load driver for the sharded selection service — the
//! workload behind the `service_quick` gate and the `BENCH_service.json`
//! baseline.
//!
//! ## Why open-loop
//!
//! A closed-loop driver (issue, wait, issue) silently slows down whenever
//! the service does: a stall shrinks the offered load instead of showing up
//! in the tail — the *coordinated omission* trap. This driver schedules
//! request `j` at the fixed instant `start + j/rate` and measures latency
//! from that **scheduled** time, not from when the request actually hit the
//! wire. If the service (or a queue in front of it) stalls, every request
//! scheduled during the stall is charged the full delay, which is exactly
//! what a p999 is supposed to surface.
//!
//! Requests are striped round-robin across a configurable number of client
//! connections, and latencies land in one shared lock-free [`Histogram`]
//! whose snapshot becomes a [`LatencySummary`].
//!
//! Two drivers live here:
//!
//! * [`run_open_loop`] — the original few-connection request/response
//!   sections (`single` and `batch`);
//! * [`run_fan_in`] — the 1000-connection storm: a handful of lane threads
//!   each own hundreds of connections (so the *client* is not
//!   thread-per-connection either, and the process thread count stays
//!   meaningful), optionally keeping a pipelined window in flight per
//!   connection. [`measure_pipeline_speedup`] is the closed-loop companion
//!   comparing serialized draws against the pipelined client on one
//!   connection.

use std::sync::Arc;
use std::time::{Duration, Instant};

use lrb_obs::Histogram;
use lrb_service::{ServerAddr, ServiceClient, ServiceError};
use serde::Serialize;

use crate::engine_workload::LatencySummary;

/// Shape of one open-loop run.
#[derive(Debug, Clone, Copy)]
pub struct ServiceLoadConfig {
    /// Offered request rate, requests per second.
    pub rate_hz: f64,
    /// Total requests to issue.
    pub requests: u64,
    /// Client connections the requests are striped across.
    pub connections: usize,
    /// Draws per request: `0` issues single draws (the server coalesces
    /// them through its flat-combining aggregator), `b > 0` issues
    /// `draw_batch(b)` (the fused buffer-fill path).
    pub batch: u32,
}

impl Default for ServiceLoadConfig {
    fn default() -> Self {
        Self {
            rate_hz: 1_500.0,
            requests: 3_000,
            connections: 4,
            batch: 0,
        }
    }
}

/// Measured outcome of one open-loop run (serialisable for
/// `BENCH_service.json`).
#[derive(Debug, Clone, Serialize)]
pub struct ServiceLoadReport {
    /// `"single"` (aggregated draws) or `"batch"` (buffer fills).
    pub mode: String,
    /// Offered request rate, requests per second.
    pub rate_hz: f64,
    /// Requests issued.
    pub requests: u64,
    /// Client connections used.
    pub connections: u64,
    /// Draws per request (1 for single-draw mode).
    pub batch: u64,
    /// Wall-clock seconds from the first scheduled instant to the last
    /// completion.
    pub duration_s: f64,
    /// Achieved request completion rate.
    pub achieved_rps: f64,
    /// Total category draws served.
    pub draws: u64,
    /// Request latency measured from the scheduled issue time.
    pub latency: LatencySummary,
}

/// Run one open-loop section against a live server. Connects
/// `config.connections` clients, schedules `config.requests` requests at
/// `config.rate_hz`, and reports scheduled-time latency percentiles.
pub fn run_open_loop(
    addr: &ServerAddr,
    config: &ServiceLoadConfig,
) -> Result<ServiceLoadReport, ServiceError> {
    let connections = config.connections.max(1);
    let rate_hz = config.rate_hz.max(1.0);

    // Connect and warm every client up-front (TLB/alloc/snapshot warm-up
    // and the TCP handshake stay out of the measured window).
    let mut clients = Vec::with_capacity(connections);
    for _ in 0..connections {
        let mut client = ServiceClient::connect(addr)?;
        if config.batch == 0 {
            client.draw()?;
        } else {
            client.draw_batch(config.batch)?;
        }
        clients.push(client);
    }

    let histogram = Arc::new(Histogram::new());
    // A small lead-in so every thread observes `start` in its future.
    let start = Instant::now() + Duration::from_millis(10);

    let mut handles = Vec::with_capacity(connections);
    for (lane, mut client) in clients.into_iter().enumerate() {
        let histogram = Arc::clone(&histogram);
        let requests = config.requests;
        let batch = config.batch;
        let stride = connections as u64;
        handles.push(std::thread::spawn(move || -> Result<u64, ServiceError> {
            let mut draws = 0u64;
            let mut j = lane as u64;
            while j < requests {
                let scheduled = start + Duration::from_secs_f64(j as f64 / rate_hz);
                let now = Instant::now();
                if scheduled > now {
                    std::thread::sleep(scheduled - now);
                }
                if batch == 0 {
                    client.draw()?;
                    draws += 1;
                } else {
                    draws += client.draw_batch(batch)?.len() as u64;
                }
                // Latency from the *scheduled* instant: queueing delay
                // (including a stalled service) is charged, not hidden.
                histogram.record(scheduled.elapsed().as_nanos() as u64);
                j += stride;
            }
            Ok(draws)
        }));
    }

    let mut draws = 0u64;
    for handle in handles {
        draws += handle.join().expect("load lane panicked")?;
    }
    let duration_s = start.elapsed().as_secs_f64();

    Ok(ServiceLoadReport {
        mode: if config.batch == 0 { "single" } else { "batch" }.to_string(),
        rate_hz,
        requests: config.requests,
        connections: connections as u64,
        batch: u64::from(config.batch.max(1)),
        duration_s,
        achieved_rps: config.requests as f64 / duration_s.max(f64::MIN_POSITIVE),
        draws,
        latency: LatencySummary::from_snapshot(&histogram.snapshot()),
    })
}

/// Shape of one fan-in storm.
#[derive(Debug, Clone, Copy)]
pub struct FanInConfig {
    /// Connections to open before the first draw (clamped to the process
    /// fd budget by [`run_fan_in`]).
    pub connections: usize,
    /// Lane threads driving the connections (each lane owns
    /// `connections / lanes` of them).
    pub lanes: usize,
    /// Offered request rate across all connections, requests per second.
    pub rate_hz: f64,
    /// Total requests to issue.
    pub requests: u64,
    /// Pipelined draws issued as one burst (queued, one flush, reaped in
    /// order) per scheduled slot; `<= 1` is strict request/response.
    pub window: usize,
}

impl Default for FanInConfig {
    fn default() -> Self {
        Self {
            connections: 1_000,
            lanes: 8,
            rate_hz: 2_000.0,
            requests: 4_000,
            window: 1,
        }
    }
}

/// Measured outcome of one fan-in storm.
#[derive(Debug, Clone, Serialize)]
pub struct FanInReport {
    /// `"fanin_single"` or `"fanin_pipelined"`.
    pub mode: String,
    /// Connections actually opened (after the fd-budget clamp).
    pub connections: u64,
    /// Lane threads used.
    pub lanes: u64,
    /// Pipelined window per connection (1 = request/response).
    pub window: u64,
    /// Offered request rate, requests per second.
    pub rate_hz: f64,
    /// Requests issued.
    pub requests: u64,
    /// Wall-clock seconds from the first scheduled instant to the last
    /// completion.
    pub duration_s: f64,
    /// Achieved request completion rate.
    pub achieved_rps: f64,
    /// Process thread count observed while every connection was open
    /// (server + lanes; the thread-per-connection regression detector).
    pub process_threads: u64,
    /// Request latency measured from the scheduled issue time.
    pub latency: LatencySummary,
}

/// The soft fd limit from `/proc/self/limits`, with the classic default as
/// the fallback (no `getrlimit` — this crate forbids unsafe code).
fn fd_soft_limit() -> usize {
    std::fs::read_to_string("/proc/self/limits")
        .ok()
        .and_then(|limits| {
            limits.lines().find_map(|line| {
                line.strip_prefix("Max open files")?
                    .split_whitespace()
                    .next()?
                    .parse()
                    .ok()
            })
        })
        .unwrap_or(1024)
}

/// Threads in this process (`/proc/self/status`); 0 when unavailable.
pub fn process_threads() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find_map(|line| line.strip_prefix("Threads:")?.trim().parse().ok())
        })
        .unwrap_or(0)
}

/// Run one open-loop fan-in storm: open every connection (clamped to the
/// fd budget), then drive draws across all of them from `config.lanes`
/// threads. With `window > 1` each scheduled slot issues a whole window
/// of pipelined draws on one connection (queued back-to-back, one flush,
/// reaped in order), so the slot's requests share the wire and coalesce
/// server-side into a fused batch. Latency is charged per request from
/// the slot's scheduled instant — a stalled service is charged its full
/// wait, never hidden by the driver slowing down.
pub fn run_fan_in(addr: &ServerAddr, config: &FanInConfig) -> Result<FanInReport, ServiceError> {
    // Each connection costs two fds in-process (client + server end).
    let connections = config
        .connections
        .min(fd_soft_limit().saturating_sub(128) / 2)
        .max(1);
    let lanes = config.lanes.clamp(1, connections);
    let window = config.window.max(1);
    let rate_hz = config.rate_hz.max(1.0);

    // Accept storm: every connection opens (and warms) before the clock
    // starts.
    let mut per_lane: Vec<Vec<ServiceClient>> = (0..lanes).map(|_| Vec::new()).collect();
    for c in 0..connections {
        let mut client = ServiceClient::connect(addr)?;
        client.draw()?;
        per_lane[c % lanes].push(client);
    }
    let threads = process_threads();

    let histogram = Arc::new(Histogram::new());
    let start = Instant::now() + Duration::from_millis(20);

    let mut handles = Vec::with_capacity(lanes);
    for (lane, mut clients) in per_lane.into_iter().enumerate() {
        let histogram = Arc::clone(&histogram);
        let requests = config.requests;
        let stride = lanes as u64;
        handles.push(std::thread::spawn(move || -> Result<(), ServiceError> {
            // Request indices are striped across lanes in window-sized
            // slots: lane `l` owns requests `[s*W, (s+1)*W)` for slots
            // `s ≡ l (mod lanes)`. A slot is scheduled at its first
            // request's instant, issues its whole window as one pipelined
            // burst on one connection and reaps it in order.
            let slot_stride = stride * window as u64;
            let mut j = lane as u64 * window as u64;
            let mut turn = 0usize;
            while j < requests {
                let burst = (window as u64).min(requests - j) as usize;
                let scheduled = start + Duration::from_secs_f64(j as f64 / rate_hz);
                let now = Instant::now();
                if scheduled > now {
                    std::thread::sleep(scheduled - now);
                }
                let c = turn % clients.len();
                turn += 1;
                if burst == 1 {
                    clients[c].draw()?;
                    histogram.record(scheduled.elapsed().as_nanos() as u64);
                } else {
                    for _ in 0..burst {
                        clients[c].queue_draw();
                    }
                    clients[c].flush()?;
                    for _ in 0..burst {
                        clients[c].recv_draw()?;
                        histogram.record(scheduled.elapsed().as_nanos() as u64);
                    }
                }
                j += slot_stride;
            }
            Ok(())
        }));
    }
    for handle in handles {
        handle.join().expect("fan-in lane panicked")?;
    }
    let duration_s = start.elapsed().as_secs_f64();

    Ok(FanInReport {
        mode: if window <= 1 {
            "fanin_single"
        } else {
            "fanin_pipelined"
        }
        .to_string(),
        connections: connections as u64,
        lanes: lanes as u64,
        window: window as u64,
        rate_hz,
        requests: config.requests,
        duration_s,
        achieved_rps: config.requests as f64 / duration_s.max(f64::MIN_POSITIVE),
        process_threads: threads,
        latency: LatencySummary::from_snapshot(&histogram.snapshot()),
    })
}

/// Closed-loop comparison of the serialized client (one round trip per
/// draw) against the pipelined client (`window` in flight) on one fresh
/// connection each.
#[derive(Debug, Clone, Serialize)]
pub struct PipelineReport {
    /// Draws per side.
    pub draws: u64,
    /// Pipelined window.
    pub window: u64,
    /// Serialized draws per second.
    pub serial_rps: f64,
    /// Pipelined draws per second.
    pub pipelined_rps: f64,
    /// `pipelined_rps / serial_rps`.
    pub speedup: f64,
}

/// Measure [`PipelineReport`]: `draws` serialized single draws, then the
/// same count through [`ServiceClient::draw_pipelined`] with `window` in
/// flight, each on its own fresh connection.
pub fn measure_pipeline_speedup(
    addr: &ServerAddr,
    draws: u64,
    window: usize,
) -> Result<PipelineReport, ServiceError> {
    let mut serial = ServiceClient::connect(addr)?;
    serial.draw()?; // warm-up outside the timed window
    let started = Instant::now();
    for _ in 0..draws {
        serial.draw()?;
    }
    let serial_s = started.elapsed().as_secs_f64().max(f64::MIN_POSITIVE);

    let mut pipelined = ServiceClient::connect(addr)?;
    pipelined.draw()?;
    let started = Instant::now();
    let indices = pipelined.draw_pipelined(draws as usize, window)?;
    let pipelined_s = started.elapsed().as_secs_f64().max(f64::MIN_POSITIVE);
    assert_eq!(indices.len() as u64, draws, "pipelined run lost draws");

    let serial_rps = draws as f64 / serial_s;
    let pipelined_rps = draws as f64 / pipelined_s;
    Ok(PipelineReport {
        draws,
        window: window as u64,
        serial_rps,
        pipelined_rps,
        speedup: pipelined_rps / serial_rps.max(f64::MIN_POSITIVE),
    })
}

/// In-process comparison of the v2 parallel batch planner against the v1
/// sequential oracle: same weights, same per-shard engines (fenwick
/// pinned — see [`measure_batch_speedup`]), draws measured through
/// [`ServiceCore::draw_into_with_plan`] with a warm
/// [`DrawPlan`](lrb_service::DrawPlan) on each side.
///
/// [`ServiceCore::draw_into_with_plan`]: lrb_service::ServiceCore::draw_into_with_plan
#[derive(Debug, Clone, Serialize)]
pub struct BatchPlanReport {
    /// Categories served.
    pub categories: u64,
    /// Shards the space was partitioned into.
    pub shards: u64,
    /// Draws per batch.
    pub batch: u64,
    /// Timed batches per side.
    pub iters: u64,
    /// Fan-out lanes the parallel side resolved to (including the
    /// submitting thread).
    pub lanes: u64,
    /// Threads the parallel side's pinner actually pinned (0 when the
    /// policy is [`CoreMap::None`](lrb_service::CoreMap::None) or the
    /// host refuses the syscall).
    pub pinned_threads: u64,
    /// Parallel-planner draws per second.
    pub parallel_rps: f64,
    /// Sequential-oracle draws per second.
    pub sequential_rps: f64,
    /// `parallel_rps / sequential_rps`.
    pub speedup: f64,
}

/// Measure [`BatchPlanReport`]: two identical in-process services — one on
/// [`RouteLayout::V2Parallel`](lrb_service::RouteLayout::V2Parallel) with
/// auto fan-out, one on
/// [`RouteLayout::V1Sequential`](lrb_service::RouteLayout::V1Sequential) —
/// each timed over `iters` warm batches of `batch` draws (best of two
/// rounds per side).
///
/// Both sides pin the **fenwick** backend: under the auto heuristic a
/// draw-only workload drifts to stochastic acceptance, whose O(1) fills
/// would leave the sequential level-one assignment as the Amdahl floor
/// and make the comparison about backend choice, not the planner.
pub fn measure_batch_speedup(
    categories: usize,
    shards: usize,
    batch: usize,
    iters: usize,
    core_map: lrb_service::CoreMap,
) -> Result<BatchPlanReport, ServiceError> {
    use lrb_engine::{BackendChoice, EngineConfig};
    use lrb_rng::{Philox4x32, RandomSource, SeedableSource};
    use lrb_service::{DrawPlan, RouteLayout, ServiceConfig, ShardedService};

    let weights: Vec<f64> = (0..categories).map(|i| ((i % 97) + 1) as f64).collect();
    let engine = EngineConfig {
        backend: BackendChoice::Fixed("fenwick"),
        ..EngineConfig::default()
    };
    let build = |layout: RouteLayout, core_map: lrb_service::CoreMap| {
        ShardedService::new(
            weights.clone(),
            ServiceConfig {
                shards,
                engine: engine.clone(),
                route_layout: layout,
                fanout_workers: 0,
                core_map,
                ..ServiceConfig::default()
            },
        )
    };
    let parallel = build(RouteLayout::V2Parallel, core_map)?;
    let sequential = build(RouteLayout::V1Sequential, lrb_service::CoreMap::None)?;

    let mut out = vec![0usize; batch.max(1)];
    let iters = iters.max(1);
    let mut time_side = |service: &ShardedService, seed: u64| -> f64 {
        let mut plan = DrawPlan::new();
        let mut rng = Philox4x32::seed_from_u64(seed);
        // Warm the plan's buffers and every shard's snapshot out of the
        // timed window.
        for _ in 0..3 {
            service
                .draw_into_with_plan(&mut rng as &mut dyn RandomSource, &mut out, &mut plan)
                .expect("warm-up batch failed");
        }
        let mut best = f64::INFINITY;
        for _ in 0..2 {
            let started = Instant::now();
            for _ in 0..iters {
                service
                    .draw_into_with_plan(&mut rng as &mut dyn RandomSource, &mut out, &mut plan)
                    .expect("timed batch failed");
            }
            best = best.min(started.elapsed().as_secs_f64());
        }
        (iters * out.len()) as f64 / best.max(f64::MIN_POSITIVE)
    };

    let parallel_rps = time_side(&parallel, 0x5eed_0001);
    let sequential_rps = time_side(&sequential, 0x5eed_0002);
    Ok(BatchPlanReport {
        categories: categories as u64,
        shards: shards as u64,
        batch: out.len() as u64,
        iters: iters as u64,
        lanes: parallel.fanout_lanes() as u64,
        pinned_threads: parallel.pinner().pinned_threads(),
        parallel_rps,
        sequential_rps,
        speedup: parallel_rps / sequential_rps.max(f64::MIN_POSITIVE),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrb_service::{ServiceConfig, ServiceServer, ShardedService};

    #[test]
    fn open_loop_driver_issues_every_request() {
        let service = ShardedService::new(
            (1..=32).map(f64::from).collect(),
            ServiceConfig {
                shards: 4,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let server = ServiceServer::bind_tcp(service.core(), "127.0.0.1:0", 7).unwrap();
        let report = run_open_loop(
            server.local_addr(),
            &ServiceLoadConfig {
                rate_hz: 2_000.0,
                requests: 200,
                connections: 2,
                batch: 0,
            },
        )
        .unwrap();
        assert_eq!(report.mode, "single");
        assert_eq!(report.requests, 200);
        assert_eq!(report.draws, 200);
        assert_eq!(report.latency.count, 200);
        assert!(report.latency.p99_ns > 0);
        assert!(report.duration_s >= 200.0 / 2_000.0 * 0.5);

        let batch = run_open_loop(
            server.local_addr(),
            &ServiceLoadConfig {
                rate_hz: 500.0,
                requests: 20,
                connections: 1,
                batch: 16,
            },
        )
        .unwrap();
        assert_eq!(batch.mode, "batch");
        assert_eq!(batch.draws, 20 * 16);
        drop(server);
    }

    #[test]
    fn fan_in_driver_answers_every_request_in_both_modes() {
        let service = ShardedService::new(
            (1..=32).map(f64::from).collect(),
            ServiceConfig {
                shards: 4,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let server = ServiceServer::bind_tcp(service.core(), "127.0.0.1:0", 11).unwrap();
        for window in [1usize, 4] {
            let report = run_fan_in(
                server.local_addr(),
                &FanInConfig {
                    connections: 32,
                    lanes: 4,
                    rate_hz: 4_000.0,
                    requests: 256,
                    window,
                },
            )
            .unwrap();
            assert_eq!(report.connections, 32);
            assert_eq!(report.latency.count, 256);
            assert!(report.process_threads > 0);
            assert_eq!(
                report.mode,
                if window == 1 {
                    "fanin_single"
                } else {
                    "fanin_pipelined"
                }
            );
        }
        drop(server);
    }

    #[test]
    fn batch_speedup_measures_both_planners() {
        let report = measure_batch_speedup(256, 4, 512, 4, lrb_service::CoreMap::None).unwrap();
        assert_eq!(report.categories, 256);
        assert_eq!(report.shards, 4);
        assert_eq!(report.batch, 512);
        assert!(report.lanes >= 1);
        assert!(report.parallel_rps > 0.0);
        assert!(report.sequential_rps > 0.0);
        assert!(report.speedup > 0.0);
    }

    #[test]
    fn pipeline_speedup_measures_both_sides() {
        let service =
            ShardedService::new((1..=32).map(f64::from).collect(), ServiceConfig::default())
                .unwrap();
        let server = ServiceServer::bind_tcp(service.core(), "127.0.0.1:0", 13).unwrap();
        let report = measure_pipeline_speedup(server.local_addr(), 200, 16).unwrap();
        assert_eq!(report.draws, 200);
        assert!(report.serial_rps > 0.0);
        assert!(report.pipelined_rps > 0.0);
        assert!(report.speedup > 0.0);
        drop(server);
    }
}
