//! The shared mutate-and-sample workload used by the dynamic-selection
//! benches, the `dynamic_quick` regression gate and the `dynamic_updates`
//! example — one definition so the CI gate, the criterion sweep and the
//! example all measure the same regime.

use std::time::Instant;

use lrb_core::DynamicSampler;
use lrb_rng::{MersenneTwister64, RandomSource, SeedableSource};

/// Deterministic workload weights: positive, moderately skewed.
pub fn workload(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i % 97) + 1) as f64).collect()
}

/// One mixed round against a dynamic engine: `updates` random weight
/// replacements followed by one draw.
pub fn mixed_round(
    engine: &mut dyn DynamicSampler,
    updates: usize,
    rng: &mut dyn RandomSource,
) -> usize {
    let n = engine.len();
    for _ in 0..updates {
        let index = (rng.next_u64() % n as u64) as usize;
        let weight = (rng.next_u64() % 100) as f64 + 1.0;
        engine.update(index, weight).expect("valid weight");
    }
    engine.sample(rng).expect("positive mass")
}

/// Time `rounds` rounds of (one update, one draw) and return seconds.
pub fn time_churn(engine: &mut dyn DynamicSampler, rounds: usize, seed: u64) -> f64 {
    let mut rng = MersenneTwister64::seed_from_u64(seed);
    let start = Instant::now();
    let mut sink = 0usize;
    for _ in 0..rounds {
        sink ^= mixed_round(engine, 1, &mut rng);
    }
    std::hint::black_box(sink);
    start.elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrb_dynamic::FenwickSampler;

    #[test]
    fn workload_is_positive_and_deterministic() {
        let w = workload(200);
        assert_eq!(w.len(), 200);
        assert!(w.iter().all(|&x| x >= 1.0));
        assert_eq!(w, workload(200));
    }

    #[test]
    fn mixed_round_and_time_churn_run() {
        let mut engine = FenwickSampler::from_weights(workload(64)).unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(1);
        let i = mixed_round(&mut engine, 3, &mut rng);
        assert!(i < 64);
        assert!(time_churn(&mut engine, 50, 2) >= 0.0);
    }
}
