//! Quick perf-smoke gate for the block-Philox bid kernel.
//!
//! ```text
//! cargo run -p lrb-bench --release --bin selector_quick \
//!     [-- --gate-n 65536 --min-speedup 2.0 --seed 2024 --json 1]
//! ```
//!
//! Measures single-thread one-shot selection throughput of the block
//! kernel (`ParallelLogBiddingSelector`, bid-stream layout v2) against the
//! legacy per-index substream path (`PerIndexLogBiddingSelector`, layout
//! v1) across a sweep of problem sizes, plus the kernel's rayon path at the
//! gate size. Both selectors are forced onto their sequential paths for the
//! speedup measurement, so the ratio isolates the purged per-index
//! constants (key schedule, wasted Philox lanes, eager `ln`) rather than
//! thread fan-out.
//!
//! Exits non-zero when the kernel's speedup at `--gate-n` falls below
//! `--min-speedup` — but, like `engine_quick`, only on hosts with more than
//! one hardware thread; on single-core machines (CI sandboxes, small
//! containers) the number is printed and recorded but advisory, since such
//! hosts are routinely noisy, throttled or oversubscribed. The `--json 1`
//! report is the `BENCH_selectors.json` baseline.

use lrb_bench::cli::{Options, OrExit};
use lrb_bench::selector_workload::{bench_fitness, bench_selector, SelectorReport};
use lrb_core::parallel::bid_kernel::STREAM_LAYOUT_VERSION;
use lrb_core::parallel::{ParallelLogBiddingSelector, PerIndexLogBiddingSelector};
use serde::Serialize;

/// One size of the sweep: both single-thread paths and their ratio.
#[derive(Debug, Serialize)]
struct SweepRow {
    n: u64,
    per_index: SelectorReport,
    block: SelectorReport,
    speedup: f64,
}

/// The machine-readable report (`--json 1`), recorded as the
/// `BENCH_selectors.json` baseline.
#[derive(Debug, Serialize)]
struct QuickReport {
    host_threads: u64,
    stream_layout_version: u32,
    gate_n: u64,
    min_speedup: f64,
    speedup: f64,
    gate_enforced: bool,
    sweep: Vec<SweepRow>,
    block_parallel: SelectorReport,
}

fn main() {
    let options = Options::from_env();
    let gate_n = options.usize_or("gate-n", 1 << 16).or_exit();
    let min_speedup = options.f64_or("min-speedup", 2.0).or_exit();
    let seed = options.u64_or("seed", 2024).or_exit();
    let budget = options.u64_or("budget", 1 << 22).or_exit();

    let host_threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1);

    // Force the sequential path on both selectors: the gate isolates
    // constant factors, not rayon fan-out.
    let per_index = PerIndexLogBiddingSelector {
        sequential_cutoff: usize::MAX,
    };
    let block = ParallelLogBiddingSelector {
        sequential_cutoff: usize::MAX,
    };

    println!(
        "selector_quick: block-Philox kernel (layout v{STREAM_LAYOUT_VERSION}) vs \
         per-index substreams, single thread, host threads = {host_threads}\n"
    );

    let mut sizes = vec![1 << 12, 1 << 16, 1 << 20];
    if !sizes.contains(&gate_n) {
        sizes.push(gate_n);
        sizes.sort_unstable();
    }
    let mut sweep = Vec::new();
    for n in sizes {
        // Keep total work roughly constant across sizes.
        let draws = (budget / n as u64).clamp(8, 4_096);
        let fitness = bench_fitness(n);
        let a = bench_selector(&per_index, &fitness, draws, seed);
        let b = bench_selector(&block, &fitness, draws, seed);
        let speedup = a.ns_per_select / b.ns_per_select.max(1e-9);
        println!(
            "  n = 2^{:<2} per-index {:>10.1} ns/select   block {:>10.1} ns/select   {speedup:>5.2}x",
            (n as f64).log2() as u32,
            a.ns_per_select,
            b.ns_per_select,
        );
        sweep.push(SweepRow {
            n: n as u64,
            per_index: a,
            block: b,
            speedup,
        });
    }

    let gate_row = sweep
        .iter()
        .find(|row| row.n == gate_n as u64)
        .expect("gate size is in the sweep");
    let speedup = gate_row.speedup;

    // The rayon path at the gate size, for the record (identical winner to
    // the sequential path by construction; faster only with real cores).
    let rayon_block = ParallelLogBiddingSelector {
        sequential_cutoff: 0,
    };
    let fitness = bench_fitness(gate_n);
    let draws = (budget / gate_n as u64).clamp(8, 4_096);
    let block_parallel = bench_selector(&rayon_block, &fitness, draws, seed);
    println!(
        "\n  rayon block path at n = {gate_n}: {:.1} ns/select ({} threads available)",
        block_parallel.ns_per_select, host_threads
    );

    let gate_enforced = host_threads >= 2;
    println!(
        "\nblock kernel vs per-index at n = {gate_n}: {speedup:.2}x \
         (gate: >= {min_speedup}x, {})",
        if gate_enforced {
            "enforced"
        } else {
            "advisory on this host"
        }
    );

    if options.contains("json") {
        let report = QuickReport {
            host_threads: host_threads as u64,
            stream_layout_version: STREAM_LAYOUT_VERSION,
            gate_n: gate_n as u64,
            min_speedup,
            speedup,
            gate_enforced,
            sweep,
            block_parallel,
        };
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("report serialisation cannot fail")
        );
    }

    if gate_enforced && speedup < min_speedup {
        eprintln!("FAIL: expected the block kernel to be >= {min_speedup}x the per-index path");
        std::process::exit(1);
    }
    println!("OK");
}
