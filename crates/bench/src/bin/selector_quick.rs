//! Quick perf-smoke gates for the block-Philox bid kernel and the fused
//! multi-draw batch path.
//!
//! ```text
//! cargo run -p lrb-bench --release --bin selector_quick \
//!     [-- --gate-n 65536 --min-speedup 2.0 --min-fused-speedup <tiered> \
//!         --seed 2024 --json 1]
//! ```
//!
//! Two comparisons, both single-thread (they isolate algorithmic constants,
//! not rayon fan-out), both **enforced on every host** — neither needs more
//! than one core, so a 1-core CI sandbox gates them exactly like a
//! workstation:
//!
//! 1. **Block kernel vs per-index substreams** — one-shot selection through
//!    the layout-v2 block kernel (`ParallelLogBiddingSelector::select`)
//!    against the legacy per-index path (`PerIndexLogBiddingSelector`,
//!    layout v1). Gate: `--min-speedup` (default 2x) at `--gate-n`.
//! 2. **Fused batch vs per-draw kernel** — a buffer fill through the fused
//!    multi-draw kernel (`select_into`, eight bid streams per pass over the
//!    fitness array) against a `select` loop of the same block kernel (the
//!    pre-fused batched path). Gate: `--min-fused-speedup`, defaulting by
//!    the detected SIMD tier — **4x** with AVX-512, **3x** with AVX2,
//!    **1.25x** scalar (without vector units the fused win reduces to
//!    fitness-reuse and batched generation, so the bar tracks what the
//!    hardware can express; the tier is recorded in the report).
//!
//! A thin-margin miss on either gate is re-measured once (the better run
//! counts); both outcomes are recorded as [`GateMargin`]s in the `--json 1`
//! report, the `BENCH_selectors.json` baseline.

use lrb_bench::cli::{Options, OrExit};
use lrb_bench::gate::{print_margins, GateMargin};
use lrb_bench::selector_workload::{
    bench_fitness, bench_selector, bench_selector_per_draw, SelectorReport,
};
use lrb_core::parallel::bid_kernel::STREAM_LAYOUT_VERSION;
use lrb_core::parallel::{ParallelLogBiddingSelector, PerIndexLogBiddingSelector};
use lrb_rng::SimdTier;
use serde::Serialize;

/// One size of the sweep: single-thread per-index, per-draw block and fused
/// batch paths, plus their gate ratios.
#[derive(Debug, Serialize)]
struct SweepRow {
    n: u64,
    per_index: SelectorReport,
    block: SelectorReport,
    fused: SelectorReport,
    /// block kernel vs per-index substreams (one-shot selections).
    speedup: f64,
    /// fused batch fill vs a per-draw block-kernel loop.
    fused_speedup: f64,
}

/// The machine-readable report (`--json 1`), recorded as the
/// `BENCH_selectors.json` baseline.
#[derive(Debug, Serialize)]
struct QuickReport {
    host_threads: u64,
    simd_tier: String,
    stream_layout_version: u32,
    gate_n: u64,
    min_speedup: f64,
    speedup: f64,
    min_fused_speedup: f64,
    fused_speedup: f64,
    gate_enforced: bool,
    sweep: Vec<SweepRow>,
    block_parallel: SelectorReport,
    margins: Vec<GateMargin>,
}

/// Measure the two gate ratios at one size (used for the sweep row at
/// `gate_n` and for the retry re-measurement on a thin-margin miss).
fn gate_ratios(
    per_index: &PerIndexLogBiddingSelector,
    block: &ParallelLogBiddingSelector,
    n: usize,
    draws: u64,
    seed: u64,
) -> (f64, f64) {
    let fitness = bench_fitness(n);
    let a = bench_selector_per_draw(per_index, &fitness, draws, seed);
    let b = bench_selector_per_draw(block, &fitness, draws, seed);
    let c = bench_selector(block, &fitness, draws, seed);
    (
        a.ns_per_select / b.ns_per_select.max(1e-9),
        b.ns_per_select / c.ns_per_select.max(1e-9),
    )
}

fn main() {
    let options = Options::from_env();
    let gate_n = options.usize_or("gate-n", 1 << 16).or_exit();
    let min_speedup = options.f64_or("min-speedup", 2.0).or_exit();
    let seed = options.u64_or("seed", 2024).or_exit();
    let budget = options.u64_or("budget", 1 << 22).or_exit();

    let tier = lrb_rng::simd_tier();
    let tier_name = match tier {
        SimdTier::Avx512 => "avx512",
        SimdTier::Avx2 => "avx2",
        SimdTier::Scalar => "scalar",
    };
    // The fused win is mostly vector throughput; the bar tracks the tier.
    let default_fused_bar = match tier {
        SimdTier::Avx512 => 4.0,
        SimdTier::Avx2 => 3.0,
        SimdTier::Scalar => 1.25,
    };
    let min_fused_speedup = options
        .f64_or("min-fused-speedup", default_fused_bar)
        .or_exit();

    let host_threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1);

    // Force the sequential path on both selectors: the gates isolate
    // constant factors, not rayon fan-out.
    let per_index = PerIndexLogBiddingSelector {
        sequential_cutoff: usize::MAX,
    };
    let block = ParallelLogBiddingSelector {
        sequential_cutoff: usize::MAX,
    };

    println!(
        "selector_quick: block-Philox kernel (layout v{STREAM_LAYOUT_VERSION}) vs per-index \
         substreams, and fused batch vs per-draw loop; single thread, simd tier = {tier_name}, \
         host threads = {host_threads}\n"
    );

    let mut sizes = vec![1 << 12, 1 << 16, 1 << 20];
    if !sizes.contains(&gate_n) {
        sizes.push(gate_n);
        sizes.sort_unstable();
    }
    let mut sweep = Vec::new();
    for n in sizes {
        // Keep total work roughly constant across sizes.
        let draws = (budget / n as u64).clamp(8, 4_096);
        let fitness = bench_fitness(n);
        let a = bench_selector_per_draw(&per_index, &fitness, draws, seed);
        let b = bench_selector_per_draw(&block, &fitness, draws, seed);
        let c = bench_selector(&block, &fitness, draws, seed);
        let speedup = a.ns_per_select / b.ns_per_select.max(1e-9);
        let fused_speedup = b.ns_per_select / c.ns_per_select.max(1e-9);
        println!(
            "  n = 2^{:<2} per-index {:>10.1} ns/select   block {:>10.1} ns/select ({speedup:>5.2}x)   \
             fused {:>9.1} ns/select ({fused_speedup:>5.2}x)",
            (n as f64).log2() as u32,
            a.ns_per_select,
            b.ns_per_select,
            c.ns_per_select,
        );
        sweep.push(SweepRow {
            n: n as u64,
            per_index: a,
            block: b,
            fused: c,
            speedup,
            fused_speedup,
        });
    }

    let gate_row = sweep
        .iter()
        .find(|row| row.n == gate_n as u64)
        .expect("gate size is in the sweep");
    let mut speedup = gate_row.speedup;
    let mut fused_speedup = gate_row.fused_speedup;

    // Thin-margin hardening: a miss is re-measured once and the better of
    // the two runs kept — a one-off scheduler hiccup passes on retry, a
    // real regression fails twice.
    if speedup < min_speedup || fused_speedup < min_fused_speedup {
        eprintln!("  (a gate ratio missed its bar; re-measuring the gate point once)");
        let draws = (budget / gate_n as u64).clamp(8, 4_096);
        let (retry_speedup, retry_fused) = gate_ratios(&per_index, &block, gate_n, draws, seed);
        speedup = speedup.max(retry_speedup);
        fused_speedup = fused_speedup.max(retry_fused);
    }

    // The rayon path at the gate size, for the record (identical winner to
    // the sequential path by construction; faster only with real cores).
    let rayon_block = ParallelLogBiddingSelector {
        sequential_cutoff: 0,
    };
    let fitness = bench_fitness(gate_n);
    let draws = (budget / gate_n as u64).clamp(8, 4_096);
    let block_parallel = bench_selector(&rayon_block, &fitness, draws, seed);
    println!(
        "\n  rayon block path at n = {gate_n}: {:.1} ns/select ({} threads available)",
        block_parallel.ns_per_select, host_threads
    );

    // Both gates compare single-thread code paths doing the same logical
    // work — they need no cores, so they are enforced everywhere. The fused
    // bar is tier-dependent (1.25x scalar: without vector units the win
    // reduces to fitness-reuse and batched generation), so the margin
    // record carries the tier in its gate name.
    let gate_enforced = true;
    println!(
        "\nblock kernel vs per-index at n = {gate_n}: {speedup:.2}x (gate: >= {min_speedup}x)\n\
         fused batch vs per-draw at n = {gate_n}: {fused_speedup:.2}x \
         (gate: >= {min_fused_speedup}x, {tier_name} tier)"
    );

    let margins = vec![
        GateMargin::at_least("block_kernel_speedup", speedup, min_speedup, gate_enforced),
        GateMargin::at_least(
            &format!("fused_batch_speedup_{tier_name}"),
            fused_speedup,
            min_fused_speedup,
            gate_enforced,
        ),
    ];
    print_margins(&margins);

    if options.contains("json") {
        let report = QuickReport {
            host_threads: host_threads as u64,
            simd_tier: tier_name.to_string(),
            stream_layout_version: STREAM_LAYOUT_VERSION,
            gate_n: gate_n as u64,
            min_speedup,
            speedup,
            min_fused_speedup,
            fused_speedup,
            gate_enforced,
            sweep,
            block_parallel,
            margins: margins.clone(),
        };
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("report serialisation cannot fail")
        );
    }

    let mut failed = false;
    if speedup < min_speedup {
        eprintln!("FAIL: expected the block kernel to be >= {min_speedup}x the per-index path");
        failed = true;
    }
    if fused_speedup < min_fused_speedup {
        eprintln!(
            "FAIL: expected the fused batch path to be >= {min_fused_speedup}x the per-draw loop \
             ({tier_name} tier)"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("OK");
}
