//! Quick perf-smoke gate for incremental snapshot publishes.
//!
//! ```text
//! cargo run -p lrb-bench --release --bin publish_quick \
//!     [-- --gate-n 65536 --gate-dirty 0.01 --min-speedup 5.0 --json 1]
//! ```
//!
//! Sweeps publish latency over `n × dirty-fraction × backend`, comparing a
//! full snapshot rebuild ([`FrozenBackend::build_pooled`] over the folded
//! weights) against the incremental patch path
//! ([`FrozenBackend::try_patch`]: Fenwick point updates on a pooled copy,
//! stochastic-acceptance `O(d)` aggregate maintenance; the alias table has
//! no patch path — its rebuild classifies the Vose worklists with rayon
//! `par_chunks` instead). An end-to-end engine section records
//! `SelectionEngine::publish` latency under `PatchPolicy::Never` versus
//! `Always`.
//!
//! Exits non-zero when the Fenwick patch speedup at `--gate-n` /
//! `--gate-dirty` falls below `--min-speedup`. The gate is **enforced on
//! every host** — it compares two single-thread code paths doing the same
//! logical work, so it needs no cores and no SIMD; only a pathologically
//! noisy machine could flip it, and a thin-margin miss is re-measured once
//! (the better run counts). The measured-vs-threshold margin is recorded as
//! a [`GateMargin`] in the `--json 1` report, the `BENCH_publish.json`
//! baseline.
//!
//! [`FrozenBackend::build_pooled`]: lrb_engine::FrozenBackend::build_pooled
//! [`FrozenBackend::try_patch`]: lrb_engine::FrozenBackend::try_patch

use lrb_bench::cli::{Options, OrExit};
use lrb_bench::gate::{print_margins, GateMargin};
use lrb_bench::publish_workload::{
    bench_backend_publish, bench_engine_publish, BackendPublishReport, EnginePublishReport,
};
use lrb_engine::{BackendRegistry, PatchPolicy};
use serde::Serialize;

/// The machine-readable report (`--json 1`), recorded as the
/// `BENCH_publish.json` baseline.
#[derive(Debug, Serialize)]
struct QuickReport {
    host_threads: u64,
    gate_n: u64,
    gate_dirty: f64,
    min_speedup: f64,
    speedup: f64,
    gate_enforced: bool,
    sweep: Vec<BackendPublishReport>,
    engine: Vec<EnginePublishReport>,
    margins: Vec<GateMargin>,
}

fn main() {
    let options = Options::from_env();
    let gate_n = options.usize_or("gate-n", 1 << 16).or_exit();
    let gate_dirty = options.f64_or("gate-dirty", 0.01).or_exit();
    let min_speedup = options.f64_or("min-speedup", 5.0).or_exit();
    let budget = options.u64_or("budget", 1 << 23).or_exit();
    let rounds = options.usize_or("rounds", 64).or_exit();

    let host_threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1);
    let registry = BackendRegistry::standard();

    println!(
        "publish_quick: full rebuild vs incremental patch per backend, \
         host threads = {host_threads}\n"
    );

    let mut sizes = vec![1 << 12, 1 << 16, 1 << 18];
    if !sizes.contains(&gate_n) {
        sizes.push(gate_n);
        sizes.sort_unstable();
    }
    let dirty_fractions = [0.001, 0.01, 0.1];
    let mut sweep = Vec::new();
    for &n in &sizes {
        for &dirty in &dirty_fractions {
            for backend in registry.entries() {
                let report = bench_backend_publish(backend, n, dirty, false, budget);
                let patch = match (report.patch_us, report.speedup) {
                    (Some(p), Some(s)) => format!("patch {p:>9.1} us   {s:>5.2}x"),
                    _ => "patch      (none)".to_string(),
                };
                println!(
                    "  n = 2^{:<2} dirty {:>5.1}%  {:<22} rebuild {:>9.1} us   {patch}",
                    (n as f64).log2() as u32,
                    dirty * 100.0,
                    report.backend,
                    report.rebuild_us,
                );
                sweep.push(report);
            }
        }
        // One evaporation-fold row per size for the record (scale ≠ 1 adds
        // a multiply pass to every patch).
        for backend in registry.entries() {
            sweep.push(bench_backend_publish(backend, n, 0.01, true, budget));
        }
    }

    let gate_row = sweep
        .iter()
        .find(|r| {
            r.backend == "fenwick"
                && r.n == gate_n as u64
                && !r.scaled
                && r.dirty == ((gate_n as f64 * gate_dirty) as u64).max(1)
        })
        .expect("gate point is in the sweep");
    let mut speedup = gate_row.speedup.expect("fenwick has a patch path");

    // Thin-margin hardening: a miss is re-measured once and the better run
    // kept — a scheduler hiccup passes on retry, a real regression fails
    // twice.
    if speedup < min_speedup {
        eprintln!("  (gate speedup {speedup:.2}x under the bar; re-measuring the gate point once)");
        let fenwick = registry
            .entries()
            .iter()
            .find(|backend| backend.name() == "fenwick")
            .expect("the standard registry has a fenwick backend");
        let retry = bench_backend_publish(fenwick, gate_n, gate_dirty, false, budget);
        speedup = speedup.max(retry.speedup.expect("fenwick has a patch path"));
    }

    println!(
        "\nend-to-end engine publish (fenwick, n = {gate_n}, {:.1}% dirty):",
        gate_dirty * 100.0
    );
    let mut engine = Vec::new();
    for policy in [PatchPolicy::Never, PatchPolicy::Always] {
        let report = bench_engine_publish(gate_n, gate_dirty, policy, rounds);
        println!(
            "  policy {:<7} {:>9.1} us/publish   ({} of {} patched)",
            report.policy, report.publish_us, report.patched, report.rounds
        );
        engine.push(report);
    }

    // Two single-thread code paths doing the same logical work: the gate
    // needs neither cores nor SIMD, so it is enforced everywhere.
    let gate_enforced = true;
    println!(
        "\nfenwick patch vs rebuild at n = {gate_n}, {:.1}% dirty: {speedup:.2}x \
         (gate: >= {min_speedup}x, enforced)",
        gate_dirty * 100.0
    );

    let margins = vec![GateMargin::at_least(
        "fenwick_patch_speedup",
        speedup,
        min_speedup,
        gate_enforced,
    )];
    print_margins(&margins);

    if options.contains("json") {
        let report = QuickReport {
            host_threads: host_threads as u64,
            gate_n: gate_n as u64,
            gate_dirty,
            min_speedup,
            speedup,
            gate_enforced,
            sweep,
            engine,
            margins: margins.clone(),
        };
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("report serialisation cannot fail")
        );
    }

    if speedup < min_speedup {
        eprintln!("FAIL: expected the fenwick patch to be >= {min_speedup}x a full rebuild");
        std::process::exit(1);
    }
    println!("OK");
}
